"""Repository tooling: docs gate (``check_docs``) and the repo-aware
static-analysis pass (``tools.analysis``)."""
