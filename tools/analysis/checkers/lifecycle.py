"""Resource-lifecycle checker: segments unlink, pools survive interrupts.

Four rules, each encoding a leak or corruption class this repo has
actually shipped a fix for:

* **sharedmem-unlink** — a class that creates a POSIX shared-memory
  segment (``SharedMemory(create=True)``) must also call ``unlink()``
  somewhere: the name outlives the process, so a missing unlink leaks
  ``/dev/shm`` until reboot.  Attach-side ``SharedMemory(name=...)``
  never unlinks and is not flagged.
* **executor-shutdown** — a class (or function) that constructs a
  ``ThreadPoolExecutor`` / ``ProcessPoolExecutor`` / ``Pool`` must
  either use it as a context manager or contain a teardown call
  (``shutdown``/``terminate``/``close``); otherwise worker threads and
  processes outlive the owner.
* **pool-baseexception** — an ``except`` handler that *discards* a pool
  (calls ``terminate``/``_discard_pool*`` or nulls the pool attribute)
  must be reachable for ``BaseException``: a ``KeyboardInterrupt``
  mid-``map`` corrupts a process pool exactly as hard as a task failure,
  and an ``except Exception`` discard path silently skips it, poisoning
  every later frame.  Narrow handlers that do not discard anything
  (``except (OSError, ValueError): pass``) are untouched.
* **open-context** — ``open()`` outside a ``with`` statement: the
  handle's lifetime is then implicit, and on any exception path the
  file stays open until the GC gets around to it.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set

from tools.analysis.core import Checker, Finding, ParsedModule, dotted, enclosing_symbol

_EXECUTOR_CTORS = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor", "Pool"})
_TEARDOWN_ATTRS = frozenset({"shutdown", "terminate", "close"})


def _is_create_true(call: ast.Call) -> bool:
    return any(
        kw.arg == "create"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in call.keywords
    )


def _handler_catches_baseexception(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    return any(dotted(t).split(".")[-1] == "BaseException" for t in types)


def _handler_discards_pool(handler: ast.ExceptHandler) -> bool:
    """Does this handler tear down / null out a worker pool?"""
    for node in ast.walk(handler):
        if isinstance(node, ast.Call):
            name = dotted(node.func)
            leaf = name.split(".")[-1]
            if leaf == "terminate" or "discard" in leaf:
                return True
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and ("pool" in target.attr or "worker" in target.attr)
                        and isinstance(node.value, (ast.Constant, ast.List))
                        and (not isinstance(node.value, ast.Constant)
                             or node.value.value is None)):
                    return True
    return False


class ResourceLifecycleChecker(Checker):
    """Segments unlink, executors shut down, discards survive interrupts."""

    name = "resource-lifecycle"
    rules = (
        "sharedmem-unlink",
        "executor-shutdown",
        "pool-baseexception",
        "open-context",
    )
    description = (
        "SharedMemory(create=True) pairs with unlink(); executors are torn "
        "down; pool-discard handlers catch BaseException; open() uses with"
    )

    def check_module(self, mod: ParsedModule) -> Iterable[Finding]:
        findings: List[Finding] = []
        with_contexts = self._with_context_ids(mod.tree)
        stack: List[ast.AST] = []

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.append(node)
                for child in ast.iter_child_nodes(node):
                    visit(child)
                stack.pop()
                return
            if isinstance(node, ast.Call):
                self._check_sharedmem(mod, node, stack, findings)
                self._check_executor(mod, node, stack, with_contexts, findings)
                self._check_open(mod, node, stack, with_contexts, findings)
            elif isinstance(node, ast.Try):
                self._check_try(mod, node, stack, findings)
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(mod.tree)
        return findings

    @staticmethod
    def _with_context_ids(tree: ast.Module) -> Set[int]:
        ids: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    ids.add(id(item.context_expr))
        return ids

    @staticmethod
    def _enclosing_scope(stack: Sequence[ast.AST]) -> Optional[ast.AST]:
        """Innermost class if any, else innermost function, else None."""
        for node in reversed(stack):
            if isinstance(node, ast.ClassDef):
                return node
        for node in reversed(stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    # -- sharedmem-unlink ------------------------------------------------------
    def _check_sharedmem(
        self,
        mod: ParsedModule,
        call: ast.Call,
        stack: Sequence[ast.AST],
        findings: List[Finding],
    ) -> None:
        if dotted(call.func).split(".")[-1] != "SharedMemory" or not _is_create_true(call):
            return
        scope = self._enclosing_scope(stack) or mod.tree
        for node in ast.walk(scope):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "unlink"):
                return
        findings.append(Finding(
            rule="sharedmem-unlink",
            path=mod.rel,
            line=call.lineno,
            message=(
                "SharedMemory(create=True) without a matching unlink() in the "
                "owning scope: the segment name outlives the process and leaks "
                "/dev/shm until reboot"
            ),
            symbol=enclosing_symbol(stack),
        ))

    # -- executor-shutdown -----------------------------------------------------
    def _check_executor(
        self,
        mod: ParsedModule,
        call: ast.Call,
        stack: Sequence[ast.AST],
        with_contexts: Set[int],
        findings: List[Finding],
    ) -> None:
        if dotted(call.func).split(".")[-1] not in _EXECUTOR_CTORS:
            return
        if id(call) in with_contexts:
            return
        scope = self._enclosing_scope(stack) or mod.tree
        for node in ast.walk(scope):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _TEARDOWN_ATTRS):
                return
        findings.append(Finding(
            rule="executor-shutdown",
            path=mod.rel,
            line=call.lineno,
            message=(
                f"{dotted(call.func).split('.')[-1]}(...) is never torn down in "
                f"its owning scope: use `with` or call shutdown()/terminate()/"
                f"close() so workers cannot outlive the owner"
            ),
            symbol=enclosing_symbol(stack),
        ))

    # -- pool-baseexception ----------------------------------------------------
    def _check_try(
        self,
        mod: ParsedModule,
        node: ast.Try,
        stack: Sequence[ast.AST],
        findings: List[Finding],
    ) -> None:
        if any(_handler_catches_baseexception(h) for h in node.handlers):
            return
        for handler in node.handlers:
            if not _handler_discards_pool(handler):
                continue
            findings.append(Finding(
                rule="pool-baseexception",
                path=mod.rel,
                line=handler.lineno,
                message=(
                    "this handler discards a worker pool but cannot catch "
                    "BaseException: a KeyboardInterrupt mid-dispatch corrupts "
                    "the pool exactly like a task failure and would skip the "
                    "discard, poisoning every later frame — catch BaseException "
                    "(and re-raise)"
                ),
                symbol=enclosing_symbol(stack),
            ))

    # -- open-context ----------------------------------------------------------
    def _check_open(
        self,
        mod: ParsedModule,
        call: ast.Call,
        stack: Sequence[ast.AST],
        with_contexts: Set[int],
        findings: List[Finding],
    ) -> None:
        if not (isinstance(call.func, ast.Name) and call.func.id == "open"):
            return
        if id(call) in with_contexts:
            return
        findings.append(Finding(
            rule="open-context",
            path=mod.rel,
            line=call.lineno,
            message=(
                "open() outside a `with` statement: the handle leaks on any "
                "exception path until the GC closes it"
            ),
            symbol=enclosing_symbol(stack),
        ))
