"""The repo-specific rule set.

Six checkers, one per invariant class the repository's correctness
story rests on (see ``docs/static_analysis.md`` for the full catalogue):

* :class:`~tools.analysis.checkers.determinism.DeterminismChecker` —
  bit-exactness-critical modules may not consult wall clocks, global
  RNGs or set iteration order;
* :class:`~tools.analysis.checkers.fingerprint.FingerprintChecker` —
  content-addressed cache keys must consume every field of the
  dataclasses they fingerprint;
* :class:`~tools.analysis.checkers.locks.LockDisciplineChecker` —
  attributes annotated ``#: guarded-by: <lock>`` are only touched under
  ``with self.<lock>`` (plus the admission-backlog rule);
* :class:`~tools.analysis.checkers.lifecycle.ResourceLifecycleChecker` —
  shared-memory segments unlink, executors shut down, process-pool
  dispatch accounts for ``BaseException``, ``open()`` uses ``with``;
* :class:`~tools.analysis.checkers.atomicwrite.AtomicWriteChecker` —
  durable artifacts land via the temp + ``os.replace`` idiom;
* :class:`~tools.analysis.checkers.asyncdiscipline.AsyncDisciplineChecker` —
  ``async def``\\ s on the runtime spine never call blocking primitives
  (``time.sleep``, blocking sockets, non-awaited ``.wait()``).
"""

from __future__ import annotations

from typing import List

from tools.analysis.core import Checker
from tools.analysis.checkers.asyncdiscipline import AsyncDisciplineChecker
from tools.analysis.checkers.atomicwrite import AtomicWriteChecker
from tools.analysis.checkers.determinism import DeterminismChecker
from tools.analysis.checkers.fingerprint import FingerprintChecker
from tools.analysis.checkers.lifecycle import ResourceLifecycleChecker
from tools.analysis.checkers.locks import LockDisciplineChecker

__all__ = [
    "AsyncDisciplineChecker",
    "AtomicWriteChecker",
    "DeterminismChecker",
    "FingerprintChecker",
    "LockDisciplineChecker",
    "ResourceLifecycleChecker",
    "all_checkers",
]


def all_checkers() -> List[Checker]:
    """One fresh instance of every registered checker."""
    return [
        DeterminismChecker(),
        FingerprintChecker(),
        LockDisciplineChecker(),
        ResourceLifecycleChecker(),
        AtomicWriteChecker(),
        AsyncDisciplineChecker(),
    ]
