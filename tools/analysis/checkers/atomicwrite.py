"""Atomic-write checker for durable artifacts.

The disk cache, checkpoint store and DNS chunk store all promise that a
reader never observes a partial file — a crash mid-write must leave
either the old bytes or the new bytes, never a truncated ``.npz`` that
every later open treats as corruption.  The repo's one blessed idiom is
:func:`repro.utils.fileio.atomic_write` (same-directory temp file +
``os.replace``).

In modules matching :data:`DURABLE_MODULES`, this checker flags direct
path writes:

* ``open(path, "w"/"wb"/"a"/"x")`` — whether or not it is inside a
  ``with`` (a context manager closes the handle; it does not make the
  write atomic);
* ``numpy`` path writers: ``np.save``/``np.savez``/
  ``np.savez_compressed``/``np.savetxt`` and ``arr.tofile``;
* ``pathlib``'s ``.write_text()``/``.write_bytes()``.

Not flagged:

* writes to an open *handle* — the first argument is a lambda/function
  parameter conventionally named like a handle (``fh``, ``fp``,
  ``fileobj``, ...), which is exactly what an ``atomic_write`` writer
  callback receives;
* functions that perform the temp + ``os.replace`` dance themselves
  (an ``os.replace`` call in the enclosing function);
* :mod:`repro.utils.fileio` itself, the one place the idiom lives.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterable, List, Optional, Sequence, Set

from tools.analysis.core import Checker, Finding, ParsedModule, dotted, enclosing_symbol

#: Modules whose on-disk artifacts are durable (caches, checkpoints,
#: stores, exported images) and therefore must land atomically.
DURABLE_MODULES = (
    "repro.service.*",
    "repro.anim.*",
    "repro.apps.dns.store",
    "repro.fields.io",
    "repro.viz.*",
    # The cluster tier persists synced chunks and manifests through the
    # blob store; any direct path write in it would break the same
    # no-partial-reads promise.
    "repro.cluster.*",
)

#: The implementation of the idiom is exempt from itself.
EXEMPT_MODULES = ("repro.utils.fileio",)

_NUMPY_PATH_WRITERS = frozenset({"save", "savez", "savez_compressed", "savetxt"})

#: First-argument names that denote an already-open handle, not a path.
_HANDLE_NAMES = frozenset({"fh", "fileobj", "fp", "file", "stream", "handle", "buf"})

_WRITE_MODE_CHARS = set("wax+")


def _open_mode_writes(call: ast.Call) -> bool:
    mode: Optional[str] = None
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        if isinstance(call.args[1].value, str):
            mode = call.args[1].value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, str):
                mode = kw.value.value
    if mode is None:
        return False  # default "r"
    return bool(set(mode) & _WRITE_MODE_CHARS)


def _lambda_params(tree: ast.Module) -> Set[str]:
    params: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Lambda):
            for arg in node.args.args:
                params.add(arg.arg)
    return params


def _is_handle_expr(node: ast.AST, lambda_params: Set[str]) -> bool:
    return isinstance(node, ast.Name) and (
        node.id in _HANDLE_NAMES or node.id in lambda_params
    )


def _function_replaces(stack: Sequence[ast.AST]) -> bool:
    """True when the innermost enclosing function calls ``os.replace``
    (or routes through ``atomic_write*``) — the manual form of the idiom."""
    for scope in reversed(stack):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(scope):
            if isinstance(node, ast.Call):
                name = dotted(node.func)
                leaf = name.split(".")[-1]
                if leaf == "replace" and name.startswith("os."):
                    return True
                if leaf.startswith("atomic_write"):
                    return True
        return False
    return False


class AtomicWriteChecker(Checker):
    """Durable files land via temp + ``os.replace``, never a direct write."""

    name = "atomic-write"
    rules = ("atomic-write",)
    description = (
        "modules with durable on-disk artifacts must write through "
        "repro.utils.fileio.atomic_write (temp file + os.replace), not "
        "directly to the destination path"
    )

    def __init__(
        self,
        durable_modules: Sequence[str] = DURABLE_MODULES,
        exempt_modules: Sequence[str] = EXEMPT_MODULES,
    ):
        self.durable_modules = tuple(durable_modules)
        self.exempt_modules = tuple(exempt_modules)

    def applies_to(self, module: str) -> bool:
        if any(fnmatch.fnmatchcase(module, pat) for pat in self.exempt_modules):
            return False
        return any(fnmatch.fnmatchcase(module, pat) for pat in self.durable_modules)

    def check_module(self, mod: ParsedModule) -> Iterable[Finding]:
        if not self.applies_to(mod.module):
            return
        lambda_params = _lambda_params(mod.tree)
        stack: List[ast.AST] = []
        findings: List[Finding] = []

        def flag(call: ast.Call, what: str) -> None:
            if _function_replaces(stack):
                return
            findings.append(Finding(
                rule="atomic-write",
                path=mod.rel,
                line=call.lineno,
                message=(
                    f"{what} writes the destination file in place; a crash "
                    f"mid-write leaves a partial file for readers — route it "
                    f"through repro.utils.fileio.atomic_write"
                ),
                symbol=enclosing_symbol(stack),
            ))

        def check_call(call: ast.Call) -> None:
            func = call.func
            if isinstance(func, ast.Name) and func.id == "open":
                if _open_mode_writes(call) and call.args and not _is_handle_expr(
                    call.args[0], lambda_params
                ):
                    flag(call, "open(path, mode=...w...)")
                return
            if not isinstance(func, ast.Attribute):
                return
            if func.attr in _NUMPY_PATH_WRITERS:
                if call.args and not _is_handle_expr(call.args[0], lambda_params):
                    flag(call, f"{dotted(func) or func.attr}(path, ...)")
            elif func.attr in ("write_text", "write_bytes"):
                flag(call, f".{func.attr}()")
            elif func.attr == "tofile":
                if call.args and not _is_handle_expr(call.args[0], lambda_params):
                    flag(call, ".tofile(path)")

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.append(node)
                for child in ast.iter_child_nodes(node):
                    visit(child)
                stack.pop()
                return
            if isinstance(node, ast.Call):
                check_call(node)
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(mod.tree)
        yield from findings
