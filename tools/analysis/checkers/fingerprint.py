"""Fingerprint-completeness: cache keys must cover every keyed field.

The serving stack is content-addressed end to end: a texture is cached
under ``SpotNoiseConfig.fingerprint()`` + field digest, an animation
frame under ``SequenceKey.digest``.  Adding a render-relevant field to a
fingerprinted dataclass without extending its key method is silent cache
poisoning — two configs that differ in the new field hash identically
and serve each other's bytes.  This checker makes that a lint error.

Two parts:

* **per-file** — every dataclass that defines a key method
  (:data:`KEY_METHODS`: ``fingerprint``, ``digest``, ``state_digest``)
  must consume each of its fields inside *each* key method, either by an
  explicit ``self.<field>`` reference or by iterating
  ``self.__dataclass_fields__`` / ``dataclasses.fields(self)`` (complete
  by construction).  A field that is deliberately not part of the key —
  e.g. a frame index carried for observability only — is declared with a
  trailing ``#: cache-key: exempt`` comment, which documents the design
  decision at the field instead of hiding it in a suppression.

* **cross-file** — functions that serialise *another* module's dataclass
  into a key token (registered in :data:`CROSS_REFS`, e.g.
  ``repro.service.keys.policy_token`` over
  ``repro.advection.lifecycle.LifeCyclePolicy``) must reference every
  field of that dataclass, so extending the policy without extending the
  token is caught at lint time, not at cache-collision time.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.analysis.core import Checker, Finding, ParsedModule, dotted

#: Method/property names treated as cache-key producers.
KEY_METHODS = ("fingerprint", "digest", "state_digest")

#: Trailing comment that declares a field deliberately outside the key.
EXEMPT_MARKER = "#: cache-key: exempt"

#: (function module, function name, parameter, dataclass module, class
#: name) — the function must reference every field of the dataclass on
#: its parameter.  Entries whose modules are absent from the analysed
#: corpus are skipped, so fixture runs stay self-contained.
CROSS_REFS = (
    ("repro.service.keys", "policy_token", "policy",
     "repro.advection.lifecycle", "LifeCyclePolicy"),
)


def _is_dataclass(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if dotted(target).split(".")[-1] == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef, mod: ParsedModule) -> List[Tuple[str, int, bool]]:
    """``(name, lineno, exempt)`` for each dataclass field of *node*."""
    out = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annotation = ast.dump(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            exempt = EXEMPT_MARKER in mod.line(stmt.lineno)
            out.append((stmt.target.id, stmt.lineno, exempt))
    return out


def _self_attr_loads(func: ast.AST) -> Set[str]:
    refs: Set[str] = set()
    for node in ast.walk(func):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            refs.add(node.attr)
    return refs


def _iterates_all_fields(func: ast.AST) -> bool:
    """True when the method walks ``__dataclass_fields__``/``fields(self)``."""
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and node.attr == "__dataclass_fields__":
            return True
        if isinstance(node, ast.Call):
            name = dotted(node.func)
            if name.split(".")[-1] in ("fields", "astuple", "asdict") and any(
                isinstance(a, ast.Name) and a.id == "self" for a in node.args
            ):
                return True
    return False


def _param_attr_loads(func: ast.AST, param: str) -> Set[str]:
    refs: Set[str] = set()
    for node in ast.walk(func):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == param):
            refs.add(node.attr)
    return refs


class FingerprintChecker(Checker):
    """Every field of a fingerprinted dataclass feeds its cache key."""

    name = "fingerprint-completeness"
    rules = ("fingerprint-completeness",)
    description = (
        "dataclasses with fingerprint()/digest methods must consume every "
        "field (or declare `#: cache-key: exempt`); key-token functions "
        "must cover their source dataclass"
    )

    def __init__(self, cross_refs: Sequence[Tuple[str, str, str, str, str]] = CROSS_REFS):
        self.cross_refs = tuple(cross_refs)

    def check_module(self, mod: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.ClassDef) and _is_dataclass(node)):
                continue
            key_methods = [
                stmt for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name in KEY_METHODS
            ]
            if not key_methods:
                continue
            fields = _dataclass_fields(node, mod)
            for method in key_methods:
                if _iterates_all_fields(method):
                    continue
                consumed = _self_attr_loads(method)
                for field_name, lineno, exempt in fields:
                    if exempt or field_name in consumed:
                        continue
                    yield Finding(
                        rule="fingerprint-completeness",
                        path=mod.rel,
                        line=lineno,
                        message=(
                            f"field '{field_name}' of {node.name} is not consumed "
                            f"by {node.name}.{method.name}(); a config differing "
                            f"only in it would hash to the same cache entry — "
                            f"extend the key or annotate the field "
                            f"`{EXEMPT_MARKER} (<why>)`"
                        ),
                        symbol=f"{node.name}.{method.name}",
                    )

    def check_project(self, corpus: Dict[str, ParsedModule]) -> Iterable[Finding]:
        for func_mod, func_name, param, dc_mod, dc_name in self.cross_refs:
            fmod = corpus.get(func_mod)
            dmod = corpus.get(dc_mod)
            if fmod is None or dmod is None:
                continue
            func = self._find_function(fmod, func_name)
            klass = self._find_class(dmod, dc_name)
            if func is None or klass is None:
                continue
            fields = _dataclass_fields(klass, dmod)
            referenced = _param_attr_loads(func, param)
            for field_name, _lineno, exempt in fields:
                if exempt or field_name in referenced:
                    continue
                yield Finding(
                    rule="fingerprint-completeness",
                    path=fmod.rel,
                    line=func.lineno,
                    message=(
                        f"{func_name}() does not reference field '{field_name}' "
                        f"of {dc_mod}.{dc_name}; sequence identities would not "
                        f"change when it does — extend the token"
                    ),
                    symbol=func_name,
                )

    @staticmethod
    def _find_function(mod: ParsedModule, name: str) -> Optional[ast.AST]:
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == name:
                return node
        return None

    @staticmethod
    def _find_class(mod: ParsedModule, name: str) -> Optional[ast.ClassDef]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return node
        return None
