"""Determinism lint for bit-exactness-critical modules.

The backend-equivalence zoo proves that every execution backend renders
bit-identical textures, and the serving/animation caches depend on
renders being pure functions of ``(config, field)``.  Both properties
die silently the moment a module on the critical path consults a wall
clock, a global RNG, OS entropy, or iterates a ``set`` into an
order-sensitive sink (set order varies with hash seeding across
processes — exactly the cross-process divergence the equivalence zoo
exists to rule out).

Flagged in modules matching :data:`CRITICAL_MODULES`:

* any ``time.*`` call (including names imported from :mod:`time`);
* wall-clock :mod:`datetime` constructors (``now``, ``utcnow``,
  ``today``);
* the global numpy RNG (``numpy.random.<fn>``) and the global stdlib
  RNG (``random.<fn>``) — seeded generator *construction*
  (``default_rng``, ``Generator``, ``RandomState``, ``Random``…) stays
  legal, module-level sampling does not;
* OS entropy: ``os.urandom``, ``uuid.uuid1``/``uuid4``, ``secrets.*``;
* iterating a set (literal, comprehension, ``set()``/``frozenset()``
  call) in a ``for`` loop, comprehension, or ``list``/``tuple``/
  ``enumerate`` conversion.  ``sorted(...)`` is the deterministic way
  to consume one.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Dict, Iterable, List, Sequence

from tools.analysis.core import Checker, Finding, ParsedModule, enclosing_symbol

#: Modules whose output must be bit-identical across backends, hosts and
#: replays (the de Leeuw '97 equivalence zoo plus the incremental
#: animator's replay identity).
CRITICAL_MODULES = (
    "repro.anim.incremental",
    "repro.anim.delta",
    "repro.raster.*",
    "repro.advection.*",
    "repro.spots.*",
    "repro.parallel.sharedmem",
)

#: Seeded-generator constructors: building an RNG from an explicit seed
#: is how deterministic code is *supposed* to get randomness.
_NUMPY_RANDOM_ALLOWED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "RandomState",
     "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64", "BitGenerator"}
)
_STDLIB_RANDOM_ALLOWED = frozenset({"Random"})

_DATETIME_WALLCLOCK = frozenset({"now", "utcnow", "today"})


class _ImportTable:
    """Map local names to the canonical modules they were imported from."""

    def __init__(self, tree: ast.Module):
        self.modules: Dict[str, str] = {}   # local alias -> module path
        self.names: Dict[str, str] = {}     # local name -> module.attr
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = f"{node.module}.{alias.name}"


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class DeterminismChecker(Checker):
    """No clocks, global RNGs or set-order dependence on the exact path."""

    name = "determinism"
    rules = ("determinism",)
    description = (
        "bit-exactness-critical modules may not consult wall clocks, "
        "global RNGs, OS entropy, or set iteration order"
    )

    def __init__(self, critical_modules: Sequence[str] = CRITICAL_MODULES):
        self.critical_modules = tuple(critical_modules)

    def applies_to(self, module: str) -> bool:
        return any(fnmatch.fnmatchcase(module, pat) for pat in self.critical_modules)

    def check_module(self, mod: ParsedModule) -> Iterable[Finding]:
        if not self.applies_to(mod.module):
            return
        imports = _ImportTable(mod.tree)
        stack: List[ast.AST] = []

        def finding(node: ast.AST, message: str) -> Finding:
            return Finding(
                rule="determinism",
                path=mod.rel,
                line=getattr(node, "lineno", 1),
                message=message,
                symbol=enclosing_symbol(stack),
            )

        findings: List[Finding] = []

        def check_call(node: ast.Call) -> None:
            func = node.func
            if isinstance(func, ast.Attribute):
                base = func.value
                # time.<anything>()
                if isinstance(base, ast.Name) and imports.modules.get(base.id) == "time":
                    findings.append(finding(
                        node, f"wall-clock call time.{func.attr}() in a "
                              f"bit-exactness-critical module"))
                # os.urandom()
                elif (isinstance(base, ast.Name)
                      and imports.modules.get(base.id) == "os"
                      and func.attr == "urandom"):
                    findings.append(finding(node, "os.urandom() draws OS entropy"))
                # uuid.uuid1/uuid4()
                elif (isinstance(base, ast.Name)
                      and imports.modules.get(base.id) == "uuid"
                      and func.attr in ("uuid1", "uuid4")):
                    findings.append(finding(
                        node, f"uuid.{func.attr}() is nondeterministic"))
                # secrets.<anything>()
                elif (isinstance(base, ast.Name)
                      and imports.modules.get(base.id) == "secrets"):
                    findings.append(finding(
                        node, f"secrets.{func.attr}() draws OS entropy"))
                # random.<fn>() — stdlib global RNG
                elif (isinstance(base, ast.Name)
                      and imports.modules.get(base.id) == "random"
                      and func.attr not in _STDLIB_RANDOM_ALLOWED):
                    findings.append(finding(
                        node, f"global stdlib RNG random.{func.attr}(); construct a "
                              f"seeded random.Random instead"))
                # numpy.random.<fn>() — global numpy RNG
                elif (isinstance(base, ast.Attribute)
                      and base.attr == "random"
                      and isinstance(base.value, ast.Name)
                      and imports.modules.get(base.value.id) == "numpy"
                      and func.attr not in _NUMPY_RANDOM_ALLOWED):
                    findings.append(finding(
                        node, f"global numpy RNG numpy.random.{func.attr}(); use a "
                              f"seeded numpy.random.default_rng(...) generator"))
                # datetime.datetime.now() / datetime.now() / date.today()
                elif func.attr in _DATETIME_WALLCLOCK:
                    root = base
                    while isinstance(root, ast.Attribute):
                        root = root.value
                    if isinstance(root, ast.Name):
                        origin = imports.modules.get(root.id, "")
                        from_name = imports.names.get(root.id, "")
                        if origin == "datetime" or from_name.startswith("datetime."):
                            findings.append(finding(
                                node, f"wall-clock datetime call .{func.attr}()"))
            elif isinstance(func, ast.Name):
                origin = imports.names.get(func.id, "")
                if origin.startswith("time."):
                    findings.append(finding(
                        node, f"wall-clock call {origin}() in a "
                              f"bit-exactness-critical module"))
                elif (origin.startswith("random.")
                      and origin.split(".", 1)[1] not in _STDLIB_RANDOM_ALLOWED):
                    findings.append(finding(
                        node, f"global stdlib RNG {origin}(); construct a seeded "
                              f"random.Random instead"))
                elif (origin.startswith("numpy.random.")
                      and origin.rsplit(".", 1)[1] not in _NUMPY_RANDOM_ALLOWED):
                    findings.append(finding(
                        node, f"global numpy RNG {origin}(); use a seeded "
                              f"numpy.random.default_rng(...) generator"))
                # list(set_expr) / tuple(set_expr) / enumerate(set_expr)
                if func.id in ("list", "tuple", "enumerate") and node.args:
                    if _is_set_expr(node.args[0]):
                        findings.append(finding(
                            node, f"{func.id}() over a set materialises hash order; "
                                  f"sort it (sorted(...)) before it reaches an "
                                  f"order-sensitive sink"))

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.append(node)
                for child in ast.iter_child_nodes(node):
                    visit(child)
                stack.pop()
                return
            if isinstance(node, ast.Call):
                check_call(node)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
                findings.append(finding(
                    node, "for-loop over a set iterates in hash order; sort it "
                          "(sorted(...)) to keep downstream results replayable"))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
                for gen in node.generators:
                    # A set comprehension *target* is fine (it produces a
                    # set); iterating *over* a set inside any
                    # comprehension is the order leak.
                    if not isinstance(node, ast.SetComp) and _is_set_expr(gen.iter):
                        findings.append(finding(
                            node, "comprehension over a set iterates in hash order; "
                                  "sort it (sorted(...)) first"))
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(mod.tree)
        yield from findings
