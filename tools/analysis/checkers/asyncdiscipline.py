"""Async-discipline lint for the runtime spine and the cluster tier.

The async spine's whole contract is that the event loop never blocks:
one stalled coroutine freezes every connection pump, every stream
iterator and every re-plan tick in the process.  The blocking world is
still reachable from async code — that is the point of the executor
bridge — but only through ``await loop.run_in_executor(...)``; calling
a blocking primitive *directly* inside an ``async def`` compiles,
passes small tests (the stall needs concurrency to bite) and then
wedges production under load.

Flagged inside ``async def`` bodies of modules matching
:data:`ASYNC_MODULES`:

* ``time.sleep(...)`` — use ``await asyncio.sleep(...)``, or offload an
  injected sleep to an executor;
* blocking socket construction — ``socket.socket(...)`` /
  ``socket.create_connection(...)``; async code speaks asyncio streams;
* a call of a blocking synchronisation/socket primitive that is not
  awaited: ``.wait()``, ``.accept()``, ``.recv()``, ``.sendall()``,
  ``.connect()``.  Awaited calls (``await flight.wait()``) are the
  async twins and pass.

Nested *sync* ``def``\\ s and ``lambda``\\ s inside an ``async def`` are
**not** scanned: they are off-loop closures — executor thunks, loop
callbacks — where blocking is exactly what they exist for.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterable, List

from tools.analysis.core import Checker, Finding, ParsedModule, enclosing_symbol

#: Modules whose ``async def``\ s run on the runtime loop.
ASYNC_MODULES = (
    "repro.runtime",
    "repro.runtime.*",
    "repro.cluster",
    "repro.cluster.*",
)

#: Method names whose bare (non-awaited) call inside async code is a
#: blocking primitive: threading.Event.wait, socket.accept/recv/sendall/
#: connect, concurrent future .wait.  Their awaited namesakes are the
#: legitimate async twins.
_BLOCKING_ATTRS = frozenset({"wait", "accept", "recv", "sendall", "connect"})

_SOCKET_CONSTRUCTORS = frozenset({"socket", "create_connection"})


class AsyncDisciplineChecker(Checker):
    """No blocking primitives on the event loop."""

    name = "async-discipline"
    rules = ("async-blocking",)
    description = (
        "async defs on the runtime spine may not call blocking "
        "primitives (time.sleep, blocking sockets, non-awaited waits)"
    )

    def applies_to(self, module: str) -> bool:
        return any(fnmatch.fnmatchcase(module, pat) for pat in ASYNC_MODULES)

    def check_module(self, mod: ParsedModule) -> Iterable[Finding]:
        if not self.applies_to(mod.module):
            return
        stack: List[ast.AST] = []
        findings: List[Finding] = []

        def finding(node: ast.AST, message: str) -> Finding:
            return Finding(
                rule="async-blocking",
                path=mod.rel,
                line=getattr(node, "lineno", 1),
                message=message,
                symbol=enclosing_symbol(stack),
            )

        def check_call(node: ast.Call, awaited: bool) -> None:
            func = node.func
            if isinstance(func, ast.Attribute):
                base = func.value
                if isinstance(base, ast.Name):
                    if base.id == "time" and func.attr == "sleep":
                        findings.append(finding(
                            node, "blocking time.sleep() on the event loop; "
                                  "await asyncio.sleep(...) or offload via "
                                  "run_in_executor"))
                        return
                    if base.id == "socket" and func.attr in _SOCKET_CONSTRUCTORS:
                        findings.append(finding(
                            node, f"blocking socket.{func.attr}() in async code; "
                                  f"use asyncio streams "
                                  f"(open_connection/start_server)"))
                        return
                if not awaited and func.attr in _BLOCKING_ATTRS:
                    findings.append(finding(
                        node, f"non-awaited .{func.attr}() in an async def "
                              f"blocks the event loop; await the async twin "
                              f"or offload via run_in_executor"))
            elif isinstance(func, ast.Name):
                if func.id == "sleep":
                    findings.append(finding(
                        node, "blocking sleep() on the event loop; "
                              "await asyncio.sleep(...) instead"))
                elif func.id == "create_connection":
                    findings.append(finding(
                        node, "blocking create_connection() in async code; "
                              "use asyncio.open_connection"))

        def visit_async_body(node: ast.AST, in_await: bool = False) -> None:
            # Off-loop closures (sync defs, lambdas) may block; the loop
            # never runs them.  Nested async defs stay on the loop.
            if isinstance(node, (ast.FunctionDef, ast.Lambda)):
                return
            if isinstance(node, ast.AsyncFunctionDef):
                stack.append(node)
                for child in ast.iter_child_nodes(node):
                    visit_async_body(child)
                stack.pop()
                return
            if isinstance(node, ast.Await):
                # Anything under the await — including a call fed to a
                # combinator like asyncio.wait_for(flight.wait(), t) —
                # counts as awaited for the non-awaited-wait rule.
                visit_async_body(node.value, in_await=True)
                return
            if isinstance(node, ast.Call):
                check_call(node, awaited=in_await)
                for child in ast.iter_child_nodes(node):
                    if child is not node.func:
                        visit_async_body(child, in_await=in_await)
                return
            for child in ast.iter_child_nodes(node):
                visit_async_body(child)

        def visit(node: ast.AST) -> None:
            if isinstance(node, ast.AsyncFunctionDef):
                visit_async_body(node)
                return
            if isinstance(node, (ast.ClassDef, ast.FunctionDef)):
                stack.append(node)
                for child in ast.iter_child_nodes(node):
                    visit(child)
                stack.pop()
                return
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(mod.tree)
        yield from findings
