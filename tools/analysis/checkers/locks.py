"""Lock-discipline race checker over ``#: guarded-by:`` annotations.

The serving spine is a handful of small classes whose mutable state is
protected by exactly one lock each (``RequestScheduler._lock``,
``SharedMemoryBackend._pool_lock``, ``SequenceFlight.cond``, ...).  The
discipline is simple — *every* touch of a guarded attribute happens
inside ``with self.<lock>`` — but nothing enforced it until now: one
refactor that hoists a read out of the ``with`` block reintroduces
exactly the torn-state races the PR history fixed.

Declaring the invariant is a trailing comment on the attribute's
canonical assignment (usually in ``__init__``)::

    self._inflight = {}  #: guarded-by: _lock

The checker then walks every method of the class and flags any
``self.<attr>`` access outside a ``with self.<lock>`` block, with the
repo's structural conventions encoded:

* ``__init__`` is exempt — no other thread can hold a reference yet;
* methods whose name ends in ``_locked`` are exempt — the repo-wide
  convention that such methods are only called with the lock held
  (their *callers* are still checked);
* nested functions and lambdas reset the held-lock state — a closure
  created under the lock typically runs after it was released, so it
  must re-acquire (``SequenceScheduler.stream``'s job closure is the
  canonical example);
* guard annotations are inherited by same-module subclasses
  (``DiskTextureCache`` manipulates counters its base declared).

The checker also owns the **admission-backlog** rule: an admission
callback invoked as ``self._admit(len(self.<attr>))`` is passing the
raw in-flight count, which includes renders already *executing* — the
over-shedding bug the scheduler previously had.  The backlog handed to
admission must subtract the executing count.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set

from tools.analysis.core import Checker, Finding, ParsedModule

_GUARD_RE = re.compile(r"#:\s*guarded-by:\s*([\w]+)")

_ADMIT_NAMES = frozenset({"_admit", "admit"})


def _guard_on_line(mod: ParsedModule, lineno: int) -> Optional[str]:
    match = _GUARD_RE.search(mod.line(lineno))
    return match.group(1) if match else None


def _collect_class_guards(klass: ast.ClassDef, mod: ParsedModule) -> Dict[str, str]:
    """``{attr: lock}`` declared by *klass* itself (no inheritance)."""
    guards: Dict[str, str] = {}
    for node in ast.walk(klass):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        else:
            continue
        lock = _guard_on_line(mod, node.lineno)
        if lock is None:
            continue
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                guards[target.attr] = lock
            elif isinstance(target, ast.Name):  # class-level declaration
                guards[target.id] = lock
    return guards


class LockDisciplineChecker(Checker):
    """Guarded attributes are only touched under their declared lock."""

    name = "lock-discipline"
    rules = ("guarded-by", "admission-backlog")
    description = (
        "attributes annotated `#: guarded-by: <lock>` may only be accessed "
        "inside `with self.<lock>` (outside __init__ and *_locked methods); "
        "admission callbacks may not receive a raw len() backlog"
    )

    def check_module(self, mod: ParsedModule) -> Iterable[Finding]:
        classes = {
            node.name: node
            for node in ast.walk(mod.tree)
            if isinstance(node, ast.ClassDef)
        }
        own_guards = {
            name: _collect_class_guards(node, mod) for name, node in classes.items()
        }

        def resolved_guards(name: str, seen: Set[str]) -> Dict[str, str]:
            if name in seen:
                return {}
            seen.add(name)
            guards: Dict[str, str] = {}
            for base in classes[name].bases:
                if isinstance(base, ast.Name) and base.id in classes:
                    guards.update(resolved_guards(base.id, seen))
            guards.update(own_guards[name])
            return guards

        for name, klass in classes.items():
            # The admission-backlog rule applies to every class (a
            # lock-free scheduler still has admission); the guarded-by
            # walk is a no-op when the class declares no guards.
            yield from self._check_class(mod, klass, resolved_guards(name, set()))

    # -- per-class walk --------------------------------------------------------
    def _check_class(
        self, mod: ParsedModule, klass: ast.ClassDef, guards: Dict[str, str]
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for method in klass.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._scan_admission(mod, klass, method, findings)
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            self._walk(mod, klass, method, method, guards, frozenset(), findings)
        return findings

    def _walk(
        self,
        mod: ParsedModule,
        klass: ast.ClassDef,
        method: ast.AST,
        node: ast.AST,
        guards: Dict[str, str],
        held: "frozenset[str]",
        findings: List[Finding],
    ) -> None:
        self._walk_children(
            mod, klass, method, ast.iter_child_nodes(node), guards, held, findings
        )

    def _walk_children(
        self,
        mod: ParsedModule,
        klass: ast.ClassDef,
        method: ast.AST,
        children: "Iterable[ast.AST]",
        guards: Dict[str, str],
        held: "frozenset[str]",
        findings: List[Finding],
    ) -> None:
        for child in children:
            if isinstance(child, (ast.With, ast.AsyncWith)):
                acquired = set()
                for item in child.items:
                    ctx = item.context_expr
                    self._walk(mod, klass, method, ctx, guards, held, findings)
                    if (isinstance(ctx, ast.Attribute)
                            and isinstance(ctx.value, ast.Name)
                            and ctx.value.id == "self"):
                        acquired.add(ctx.attr)
                    if item.optional_vars is not None:
                        self._walk(
                            mod, klass, method, item.optional_vars,
                            guards, held, findings,
                        )
                # Body statements go through the same dispatch as any
                # other child: a closure defined directly in the `with`
                # body must still reset the held set, and a nested
                # `with` must still extend it.
                inner = held | acquired
                self._walk_children(
                    mod, klass, method, child.body, guards, inner, findings
                )
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # A closure outruns the lock it was created under.
                self._walk(mod, klass, method, child, guards, frozenset(), findings)
                continue
            if (isinstance(child, ast.Attribute)
                    and isinstance(child.value, ast.Name)
                    and child.value.id == "self"
                    and child.attr in guards
                    and guards[child.attr] not in held):
                lock = guards[child.attr]
                findings.append(Finding(
                    rule="guarded-by",
                    path=mod.rel,
                    line=child.lineno,
                    message=(
                        f"self.{child.attr} is declared guarded-by {lock} but "
                        f"accessed without `with self.{lock}` (held here: "
                        f"{sorted(held) or 'none'})"
                    ),
                    symbol=f"{klass.name}.{getattr(method, 'name', '<lambda>')}",
                ))
            self._walk(mod, klass, method, child, guards, held, findings)

    # -- the admission-backlog rule --------------------------------------------
    def _scan_admission(
        self,
        mod: ParsedModule,
        klass: ast.ClassDef,
        method: ast.AST,
        findings: List[Finding],
    ) -> None:
        for node in ast.walk(method):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ADMIT_NAMES
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.args):
                continue
            arg = node.args[0]
            if (isinstance(arg, ast.Call)
                    and isinstance(arg.func, ast.Name)
                    and arg.func.id == "len"
                    and len(arg.args) == 1
                    and isinstance(arg.args[0], ast.Attribute)
                    and isinstance(arg.args[0].value, ast.Name)
                    and arg.args[0].value.id == "self"):
                attr = arg.args[0].attr
                findings.append(Finding(
                    rule="admission-backlog",
                    path=mod.rel,
                    line=node.lineno,
                    message=(
                        f"admission receives the raw len(self.{attr}) — that "
                        f"counts flights a worker is already executing, so "
                        f"budget-based admission over-sheds; pass the queued "
                        f"backlog (len(...) minus the executing count)"
                    ),
                    symbol=f"{klass.name}.{getattr(method, 'name', '<lambda>')}",
                ))
