"""Corpus building and checker dispatch.

:func:`run_analysis` walks the source roots once, parses every ``.py``
file into a :class:`~tools.analysis.core.ParsedModule`, then dispatches
the checker registry: per-file rules via ``check_module``, cross-file
rules via ``check_project`` over the whole corpus.  Findings are then
classified into *active* (fail the gate), *suppressed* (an inline
``# lint: disable=<rule>`` on the finding's line) and *baselined*
(grandfathered in the baseline file); all three are reported, only the
first fails.

Module names drive rule targeting (``repro.raster.*`` is a determinism-
critical pattern), so files under ``src/`` are named relative to
``src`` and everything else relative to the repo root — the same names
imports use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from tools.analysis.baseline import Baseline
from tools.analysis.core import Checker, Finding, ParsedModule, parse_module

#: Directory names never scanned.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})

#: Rule name that an inline suppression may use to silence every rule on
#: a line (``# lint: disable=all``) — intentionally loud in review.
_ALL = "all"


def repo_root() -> str:
    """The repository root (this file lives at tools/analysis/runner.py)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(here))


def default_paths(root: Optional[str] = None) -> List[str]:
    """The gate's default scan set: the library and the tools themselves."""
    root = root or repo_root()
    paths = []
    for rel in (os.path.join("src", "repro"), "tools"):
        path = os.path.join(root, rel)
        if os.path.isdir(path):
            paths.append(path)
    return paths


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)    # fail the gate
    suppressed: List[Finding] = field(default_factory=list)  # inline-disabled
    baselined: List[Finding] = field(default_factory=list)   # grandfathered
    files_scanned: int = 0
    parse_errors: List[str] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    @property
    def all_findings(self) -> List[Finding]:
        return self.findings + self.suppressed + self.baselined


def _source_root(path: str, root: str) -> str:
    """The import root for *path*: ``src`` for library files, else repo root."""
    src = os.path.join(root, "src")
    if os.path.abspath(path).startswith(os.path.abspath(src) + os.sep):
        return src
    return root


def _iter_py_files(path: str) -> Iterable[str]:
    if os.path.isfile(path):
        if path.endswith(".py"):
            yield path
        return
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def build_corpus(
    paths: Sequence[str], root: Optional[str] = None
) -> "tuple[Dict[str, ParsedModule], List[str]]":
    """Parse every ``.py`` under *paths*; returns ``(corpus, errors)``.

    The corpus maps dotted module names to parsed modules; a file that
    fails to parse is reported, never silently skipped — a syntax error
    in a critical module must not read as "no findings".
    """
    root = root or repo_root()
    corpus: Dict[str, ParsedModule] = {}
    errors: List[str] = []
    for path in paths:
        for file_path in _iter_py_files(path):
            try:
                mod = parse_module(file_path, _source_root(file_path, root), root)
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                errors.append(f"{file_path}: {exc}")
                continue
            corpus[mod.module] = mod
    return corpus, errors


def _select_checkers(
    checkers: Sequence[Checker], rules: Optional[Sequence[str]]
) -> List[Checker]:
    if not rules:
        return list(checkers)
    wanted = set(rules)
    selected = []
    for checker in checkers:
        if checker.name in wanted or wanted & set(checker.rules):
            selected.append(checker)
    return selected


def run_analysis(
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    root: Optional[str] = None,
    checkers: Optional[Sequence[Checker]] = None,
) -> AnalysisReport:
    """Run the full pass and classify its findings.

    Parameters
    ----------
    paths:
        Files/directories to scan (default: ``src/repro`` and ``tools``).
    rules:
        Restrict to these rule ids or checker names (``None`` = all).
        Naming a checker (e.g. ``lock-discipline``) enables its whole
        rule family.
    baseline:
        Grandfathered findings (``None`` loads the default baseline
        file; pass ``Baseline()`` for none).
    root:
        Repository root override (tests point this at fixture trees).
    checkers:
        Checker registry override (default:
        :func:`tools.analysis.checkers.all_checkers`).
    """
    from tools.analysis.checkers import all_checkers

    root = root or repo_root()
    paths = list(paths) if paths else default_paths(root)
    if baseline is None:
        baseline = Baseline.load()
    selected = _select_checkers(
        list(checkers) if checkers is not None else all_checkers(), rules
    )
    rule_filter = set(rules) if rules else None

    corpus, errors = build_corpus(paths, root)
    report = AnalysisReport(files_scanned=len(corpus), parse_errors=errors)

    raw: List[Finding] = []
    for checker in selected:
        for mod in corpus.values():
            raw.extend(checker.check_module(mod))
        raw.extend(checker.check_project(corpus))
        if rule_filter is not None:
            # A checker selected by family name keeps all its rules;
            # one selected by a specific rule id keeps only that rule.
            if checker.name not in rule_filter:
                raw = [
                    f for f in raw
                    if f.rule in rule_filter or f.rule not in checker.rules
                ]

    by_rel = {mod.rel: mod for mod in corpus.values()}
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule, f.message)):
        mod = by_rel.get(finding.path)
        disabled = mod.suppressed_rules(finding.line) if mod is not None else []
        if finding.rule in disabled or _ALL in disabled:
            report.suppressed.append(finding)
        elif baseline.matches(finding):
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    return report
