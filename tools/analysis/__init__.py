"""Repo-aware static-analysis pass.

Generic linters know nothing about this repository's actual correctness
story: bit-identical rendering across execution backends, content-
addressed cache keys that must cover every render-relevant config field,
and lock/pool lifecycle discipline in the serving spine.  The last three
PRs each shipped bugfixes that were *instances of those invariant
classes* found by hand; this package makes the invariants machine
checked so they are re-verified on every change instead of re-derived.

Architecture
------------

* :mod:`tools.analysis.core` — :class:`Finding`, :class:`ParsedModule`,
  the :class:`Checker` interface and inline-suppression parsing;
* :mod:`tools.analysis.runner` — file walking, per-file visitor dispatch
  and project-level (cross-file) checks over the parsed corpus;
* :mod:`tools.analysis.baseline` — grandfathered findings (shipped empty
  and intended to stay that way);
* :mod:`tools.analysis.report` — human and JSON output;
* :mod:`tools.analysis.checkers` — the repo-specific rules: determinism,
  fingerprint-completeness, lock-discipline, resource-lifecycle and
  atomic-write.

Run as ``python -m tools.analysis`` (or ``repro.cli lint``); the CI
``lint`` step fails on any non-baselined finding.
"""

from tools.analysis.core import Checker, Finding, ParsedModule, parse_module
from tools.analysis.runner import AnalysisReport, run_analysis

__all__ = [
    "AnalysisReport",
    "Checker",
    "Finding",
    "ParsedModule",
    "parse_module",
    "run_analysis",
]
