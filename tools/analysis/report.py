"""Rendering an :class:`~tools.analysis.runner.AnalysisReport`.

Two formats: ``human`` (one ``path:line: severity: rule: message`` line
per finding, grep- and editor-friendly) and ``json`` (stable structure
for the CI gate and tooling).  Suppressed and baselined findings are
shown in both — silencing a rule should stay visible in review, not
vanish.
"""

from __future__ import annotations

import json
from typing import List

from tools.analysis.runner import AnalysisReport

FORMATS = ("human", "json")


def format_human(report: AnalysisReport) -> str:
    lines: List[str] = []
    for finding in report.findings:
        lines.append(finding.format())
    for finding in report.suppressed:
        lines.append(f"{finding.format()} (suppressed inline)")
    for finding in report.baselined:
        lines.append(f"{finding.format()} (baselined)")
    for error in report.parse_errors:
        lines.append(f"parse error: {error}")
    lines.append(
        f"{report.files_scanned} files scanned: "
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined"
        + (f", {len(report.parse_errors)} parse error(s)"
           if report.parse_errors else "")
    )
    return "\n".join(lines)


def format_json(report: AnalysisReport) -> str:
    payload = {
        "ok": report.ok(),
        "files_scanned": report.files_scanned,
        "counts": {
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "parse_errors": len(report.parse_errors),
        },
        "findings": [f.as_dict() for f in report.findings],
        "suppressed": [f.as_dict() for f in report.suppressed],
        "baselined": [f.as_dict() for f in report.baselined],
        "parse_errors": report.parse_errors,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render(report: AnalysisReport, fmt: str = "human") -> str:
    if fmt == "json":
        return format_json(report)
    return format_human(report)
