"""Grandfathered findings.

A baseline lets the gate land strict rules on a codebase with known
pre-existing violations: baselined findings are reported (and counted)
but do not fail the run.  This repo ships an **empty** baseline — every
violation the pass surfaced was fixed instead — and the file exists so
the mechanism is exercised and future rules have a migration path.

Entries are matched by :meth:`Finding.key` (rule, path, enclosing
symbol, message) rather than line numbers, so unrelated edits above a
grandfathered finding do not un-baseline it.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Set, Tuple

from tools.analysis.core import Finding

_FORMAT_VERSION = 1

#: Default baseline location, next to this module.
DEFAULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "baseline.json")


class Baseline:
    """A set of grandfathered finding identities."""

    def __init__(self, entries: Iterable[Tuple[str, str, str, str]] = ()):
        self._entries: Set[Tuple[str, str, str, str]] = set(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def matches(self, finding: Finding) -> bool:
        return finding.key() in self._entries

    @classmethod
    def load(cls, path: str = DEFAULT_PATH) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls()
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        version = payload.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported baseline format {version!r} in {path}")
        entries = [
            (e["rule"], e["path"], e.get("symbol", ""), e["message"])
            for e in payload.get("entries", [])
        ]
        return cls(entries)

    @staticmethod
    def write(path: str, findings: Iterable[Finding]) -> int:
        """Write *findings* as the new baseline; returns the entry count.

        The write is atomic when :mod:`repro.utils.fileio` is importable
        (it is whenever the pass runs with ``src`` on the path); plain
        otherwise — the baseline is a dev artifact, not a served one.
        """
        entries: List[Dict[str, str]] = []
        seen = set()
        for f in sorted(findings, key=lambda f: f.key()):
            if f.key() in seen:
                continue
            seen.add(f.key())
            entries.append(
                {"rule": f.rule, "path": f.path, "symbol": f.symbol, "message": f.message}
            )
        payload = json.dumps(
            {"format_version": _FORMAT_VERSION, "entries": entries}, indent=2
        ) + "\n"
        try:
            from repro.utils.fileio import atomic_write_bytes

            atomic_write_bytes(path, payload.encode("utf-8"))
        except ImportError:  # pragma: no cover - src not on sys.path
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(payload)
        return len(entries)
