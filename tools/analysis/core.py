"""Analysis primitives: findings, parsed modules, checkers, suppressions.

A :class:`ParsedModule` is one source file parsed exactly once (AST plus
raw lines) and tagged with its dotted module name, so checkers can match
on module identity (``repro.raster.*``) without re-deriving paths.  A
:class:`Checker` contributes per-file findings via :meth:`check_module`
and cross-file findings via :meth:`check_project`.

Suppressions are inline trailing comments::

    frobnicate()  # lint: disable=determinism

and suppress any finding of the named rule(s) reported on that line.
Suppressed findings are still counted (and visible in JSON output) so a
creeping suppression habit shows up in review.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Finding severities, in increasing order of badness.  ``error``
#: findings fail the gate; ``warning`` findings are reported but do not
#: (no current rule emits warnings — the invariants here are the kind
#: that are either held or broken).
SEVERITIES = ("warning", "error")

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([\w\-,\s]+)")


@dataclass
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str            # repo-relative path, stable across checkouts
    line: int
    message: str
    severity: str = "error"
    symbol: str = ""     # enclosing ``Class.method`` (baseline identity)

    def key(self) -> Tuple[str, str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.path, self.symbol, self.message)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "symbol": self.symbol,
            "message": self.message,
        }

    def format(self) -> str:
        where = f"{self.path}:{self.line}"
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.severity}: {self.rule}: {self.message}{sym}"


@dataclass
class ParsedModule:
    """One parsed source file plus the metadata checkers key on."""

    path: str            # absolute path
    rel: str             # path relative to the repo root
    module: str          # dotted module name, e.g. ``repro.raster.clip``
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def line(self, lineno: int) -> str:
        """1-based source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressed_rules(self, lineno: int) -> List[str]:
        """Rules disabled by an inline comment on *lineno*."""
        match = _SUPPRESS_RE.search(self.line(lineno))
        if not match:
            return []
        return [r.strip() for r in match.group(1).split(",") if r.strip()]


def module_name(path: str, root: str) -> str:
    """Dotted module name of *path* relative to source *root*."""
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    rel = rel[:-3] if rel.endswith(".py") else rel
    parts = rel.split(os.sep)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def parse_module(path: str, root: str, repo_root: Optional[str] = None) -> ParsedModule:
    """Parse one file into a :class:`ParsedModule` (raises ``SyntaxError``)."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    rel_base = repo_root or root
    return ParsedModule(
        path=os.path.abspath(path),
        rel=os.path.relpath(os.path.abspath(path), os.path.abspath(rel_base)),
        module=module_name(path, root),
        tree=ast.parse(source, filename=path),
        lines=source.splitlines(),
    )


class Checker:
    """Interface every rule implements.

    ``rules`` lists every rule id the checker can emit (one checker may
    own several related rules — e.g. the resource-lifecycle checker
    emits ``sharedmem-unlink``, ``executor-shutdown``,
    ``pool-baseexception`` and ``open-context``).  ``name`` is the
    checker's primary id, used by ``--rule`` filtering to select the
    whole family.
    """

    name: str = "abstract"
    rules: Tuple[str, ...] = ()
    description: str = ""

    def check_module(self, mod: ParsedModule) -> Iterable[Finding]:
        """Per-file findings (the common case)."""
        return ()

    def check_project(self, corpus: Dict[str, ParsedModule]) -> Iterable[Finding]:
        """Cross-file findings over the whole parsed corpus."""
        return ()


def enclosing_symbol(stack: List[ast.AST]) -> str:
    """``Class.method`` label from a visitor's node stack."""
    names = [
        node.name
        for node in stack
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    return ".".join(names)


def dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``a.b.c`` or ``""``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
