"""Command-line entry point: ``python -m tools.analysis``.

Exit status: 0 when the gate passes (no active findings, no parse
errors), 1 when it fails.  Also reachable as ``repro.cli lint`` (see
:mod:`repro.cli`), which forwards here.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from tools.analysis import baseline as baseline_mod
from tools.analysis.baseline import Baseline
from tools.analysis.checkers import all_checkers
from tools.analysis.report import FORMATS, render
from tools.analysis.runner import run_analysis


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="Repo-aware static analysis: determinism, cache-key "
                    "completeness, lock discipline, resource lifecycle and "
                    "atomic writes (see docs/static_analysis.md)",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to scan (default: src/repro and tools)",
    )
    parser.add_argument(
        "--rule", "-r", action="append", default=None, metavar="RULE",
        help="restrict to this rule id or checker name (repeatable); a "
             "checker name enables its whole rule family",
    )
    parser.add_argument(
        "--format", "-f", choices=FORMATS, default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--baseline", default=baseline_mod.DEFAULT_PATH, metavar="PATH",
        help="baseline file of grandfathered findings",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file (report grandfathered findings as "
             "active)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current active findings to the baseline file and "
             "exit 0 (grandfather them)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every checker and rule id, then exit",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repository root override (module names are derived relative "
             "to it; tests point this at fixture trees)",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for checker in all_checkers():
        lines.append(f"{checker.name}: {checker.description}")
        for rule in checker.rules:
            if rule != checker.name:
                lines.append(f"  - {rule}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    baseline = Baseline() if args.no_baseline else Baseline.load(args.baseline)
    report = run_analysis(
        paths=args.paths or None,
        rules=args.rule,
        baseline=baseline,
        root=args.root,
    )
    if args.write_baseline:
        count = Baseline.write(args.baseline, report.findings)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {args.baseline}")
        return 0
    print(render(report, args.format))
    return 0 if report.ok() else 1


if __name__ == "__main__":
    sys.exit(main())
