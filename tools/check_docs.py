#!/usr/bin/env python3
"""Docs gate for CI.

Two checks, both cheap to keep honest:

1. **Docstring audit** — every public module under ``src/repro`` (any
   ``.py`` whose name does not start with an underscore, including
   package ``__init__``\\s) must open with a module docstring.
2. **Executable snippets** — every fenced ```python`` block in
   ``README.md`` and ``docs/*.md`` is executed with ``PYTHONPATH=src``
   in a scratch directory.  Documentation that cannot run is
   documentation that has drifted; mark genuinely non-runnable listings
   as ```text`` (or leave the fence untagged).

Exit status is non-zero with a per-failure report, so the CI step's log
says exactly which module or snippet broke.
"""

from __future__ import annotations

import ast
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
SNIPPET_TIMEOUT_S = 240

FENCE_RE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def public_modules() -> "list[str]":
    out = []
    for root, dirs, files in os.walk(os.path.join(SRC, "repro")):
        dirs[:] = sorted(d for d in dirs if not d.startswith(("_", ".")))
        for name in sorted(files):
            if name.endswith(".py") and (name == "__init__.py" or not name.startswith("_")):
                out.append(os.path.join(root, name))
    return out


def check_docstrings() -> "list[str]":
    failures = []
    for path in public_modules():
        rel = os.path.relpath(path, REPO)
        try:
            with open(path, encoding="utf-8") as fh:
                tree = ast.parse(fh.read(), filename=rel)
        except SyntaxError as exc:
            failures.append(f"{rel}: does not parse ({exc})")
            continue
        if not ast.get_docstring(tree):
            failures.append(f"{rel}: missing module docstring")
    return failures


def doc_files() -> "list[str]":
    out = [os.path.join(REPO, "README.md")]
    docs = os.path.join(REPO, "docs")
    if os.path.isdir(docs):
        out.extend(
            os.path.join(docs, name)
            for name in sorted(os.listdir(docs))
            if name.endswith(".md")
        )
    return [p for p in out if os.path.exists(p)]


def check_snippets() -> "list[str]":
    failures = []
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for path in doc_files():
        rel = os.path.relpath(path, REPO)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for i, match in enumerate(FENCE_RE.finditer(text), start=1):
            code = match.group(1)
            line = text[: match.start()].count("\n") + 2
            label = f"{rel} snippet {i} (line {line})"
            with tempfile.TemporaryDirectory() as scratch:
                try:
                    proc = subprocess.run(
                        [sys.executable, "-c", code],
                        cwd=scratch,
                        env=env,
                        capture_output=True,
                        text=True,
                        timeout=SNIPPET_TIMEOUT_S,
                    )
                except subprocess.TimeoutExpired:
                    failures.append(f"{label}: timed out after {SNIPPET_TIMEOUT_S}s")
                    continue
            if proc.returncode != 0:
                tail = (proc.stderr or proc.stdout).strip().splitlines()[-12:]
                failures.append(f"{label}: exited {proc.returncode}\n    " + "\n    ".join(tail))
            else:
                print(f"ok: {label}")
    return failures


def main() -> int:
    failures = check_docstrings()
    n_modules = len(public_modules())
    if not failures:
        print(f"ok: {n_modules} public modules all carry module docstrings")
    failures += check_snippets()
    if failures:
        print(f"\n{len(failures)} docs check failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("docs checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
