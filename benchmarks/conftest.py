"""Benchmark harness plumbing.

Every bench regenerates one table or figure of the paper and reports the
reproduced rows next to the paper's numbers.  Reports are printed in the
terminal summary (so they appear in ``bench_output.txt``) and written to
``benchmarks/results/<id>.txt``; figure benches additionally drop PGM/PPM
images into ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_reports: List[Tuple[str, str]] = []


def _record(report_id: str, text: str) -> None:
    _reports.append((report_id, text))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{report_id}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")


@pytest.fixture
def paper_report():
    """``paper_report(id, text)`` — record a paper-vs-reproduction report."""
    return _record


@pytest.fixture
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _reports:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for report_id, text in _reports:
        terminalreporter.write_sep("-", report_id)
        for line in text.splitlines():
            terminalreporter.write_line(line)


def format_cells_table(
    paper: "dict[tuple[int, int], float]",
    model: "dict[tuple[int, int], float]",
    processor_counts=(1, 2, 4, 8),
    pipe_counts=(1, 2, 4),
) -> str:
    """Side-by-side paper-vs-model table in the paper's layout."""
    lines = ["nP\\nG " + " ".join(f"{ng:>13d}" for ng in pipe_counts),
             "      " + " ".join(f"{'paper/model':>13s}" for _ in pipe_counts)]
    for np_ in processor_counts:
        cells = []
        for ng in pipe_counts:
            if (np_, ng) in paper:
                p = paper[(np_, ng)]
                m = model[(np_, ng)]
                cells.append(f"{p:5.1f} /{m:6.2f}")
            else:
                cells.append(" " * 13)
        lines.append(f"{np_:>5d} " + " ".join(cells))
    return "\n".join(lines)
