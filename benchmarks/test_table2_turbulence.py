"""Table 2: textures/second for the turbulent flow workload.

Paper (40 000 bent spots, 16x3 meshes, 512^2 texture, 278x208 grid):

    nP\\nG    1     2     4
      1    0.7
      2    1.3   1.3
      4    2.1   2.1   2.4
      8    2.5   3.2   3.5
"""

import pytest

from benchmarks.conftest import format_cells_table
from repro.machine.schedule import simulate_texture, sweep_configurations
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig

PAPER_TABLE2 = {
    (1, 1): 0.7,
    (2, 1): 1.3, (2, 2): 1.3,
    (4, 1): 2.1, (4, 2): 2.1, (4, 4): 2.4,
    (8, 1): 2.5, (8, 2): 3.2, (8, 4): 3.5,
}

WORKLOAD = SpotWorkload.turbulence()


@pytest.fixture(scope="module")
def sweep():
    return sweep_configurations(WORKLOAD)


def test_table2_report(benchmark, paper_report):
    sweep = benchmark.pedantic(
        sweep_configurations, args=(WORKLOAD,), rounds=3, iterations=1
    )
    model = {k: r.textures_per_second for k, r in sweep.items()}
    text = format_cells_table(PAPER_TABLE2, model)
    worst = max(
        max(model[k] / PAPER_TABLE2[k], PAPER_TABLE2[k] / model[k]) for k in PAPER_TABLE2
    )
    text += f"\nworst cell deviation: x{worst:.2f}"
    text += (
        f"\nbus geometry per texture: {WORKLOAD.total_bytes / 1e6:.1f} MB "
        "(paper: approximately 31.0 MB)"
    )
    paper_report("table2_turbulence", text)
    assert worst < 1.35


def test_table2_structure_similar_to_table1(sweep):
    # "The structure of table 2 is very similar to that of table 1."
    assert sweep[(2, 2)].textures_per_second <= sweep[(2, 1)].textures_per_second * 1.1
    best = max(sweep, key=lambda k: sweep[k].textures_per_second)
    assert best in {(8, 4), (8, 2)}


def test_table2_rates_below_table1(sweep):
    # "The numbers given in table 1 are somewhat higher" — 16x the spots
    # outweighs the smaller per-spot mesh.
    t1 = sweep_configurations(SpotWorkload.atmospheric())
    for key, res in sweep.items():
        assert res.textures_per_second < t1[key].textures_per_second


def test_table2_bus_traffic_31MB():
    # §5.2: "approximately 31.0 megabyte per texture".
    assert WORKLOAD.total_bytes == pytest.approx(31.0e6, rel=0.03)


def test_benchmark_simulate_full_machine(benchmark):
    result = benchmark(simulate_texture, WorkstationConfig(8, 4), WORKLOAD)
    assert result.textures_per_second > 2.0
