"""Ablation: frame pipelining — the conclusion's unexploited headroom.

Section 6: "Because spot noise allows variation of parameters, speed can
be traded for quality and higher speeds than presented in the paper are
possible."  One structural source of headroom needs no quality trade at
all: overlapping the next frame's particle/shape work with the current
frame's sequential blend.  This bench quantifies it on both workloads.
"""

from repro.machine.animation import pipelined_rate
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig

SHAPES = [(4, 2), (8, 2), (8, 4)]


def collect(workload):
    rows = []
    for shape in SHAPES:
        piped, sequential = pipelined_rate(WorkstationConfig(*shape), workload)
        rows.append((shape, sequential, piped))
    return rows


def test_pipelining_report(benchmark, paper_report):
    rows1 = benchmark.pedantic(collect, args=(SpotWorkload.atmospheric(),), rounds=1, iterations=1)
    rows2 = collect(SpotWorkload.turbulence())

    lines = ["frame pipelining (overlap next frame's CPU work with the blend):",
             f"{'config':>8s} {'seq tex/s':>10s} {'pipelined':>10s} {'gain':>6s}   workload"]
    for label, rows in (("atmospheric", rows1), ("turbulence", rows2)):
        for shape, seq, piped in rows:
            lines.append(
                f"{shape[0]}p/{shape[1]}g".rjust(8)
                + f" {seq:10.2f} {piped:10.2f} {piped / seq:5.2f}x   {label}"
            )
    lines.append("the paper's best cell (5.6 tex/s) had ~25% of headroom left "
                 "without touching quality — its conclusion, quantified")
    paper_report("ablation_pipelining", "\n".join(lines))

    for shape, seq, piped in rows1 + rows2:
        assert piped >= seq
    # The full machine gains noticeably.
    full = dict((s, (a, b)) for s, a, b in rows1)[(8, 4)]
    assert full[1] > 1.1 * full[0]
