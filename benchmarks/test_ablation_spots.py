"""Ablation: spot count (design choice 5 of DESIGN.md).

Section 5.2: "40,000 spots per texture will result in very accurate
renderings.  Using less spots will result in less accurate renderings,
but can increase performance substantially."  Throughput from the
machine model; rendering quality measured as texture coverage (fraction
of pixels receiving spot evidence).
"""

import numpy as np

from repro.advection.particles import ParticleSet
from repro.core.config import BentConfig, SpotNoiseConfig
from repro.fields.analytic import random_smooth_field
from repro.machine.schedule import simulate_texture
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig
from repro.parallel.runtime import DivideAndConquerRuntime

COUNTS = [40_000, 20_000, 10_000, 5_000]
FIELD = random_smooth_field(seed=15, n=65)


def model_rates():
    base = SpotWorkload.turbulence()
    return {
        n: simulate_texture(
            WorkstationConfig(8, 4), base.with_spots(n)
        ).textures_per_second
        for n in COUNTS
    }


def coverage(n_spots):
    # Scaled-down renderer run preserving the paper's spot density:
    # 40 000 spots on 512^2 = the same spots-per-pixel as 2500 on 128^2.
    cfg = SpotNoiseConfig(
        n_spots=max(n_spots // 16, 50),
        texture_size=128,
        spot_mode="bent",
        bent=BentConfig(n_along=6, n_across=3, length_cells=3.0, width_cells=0.8),
        seed=16,
    )
    ps = ParticleSet.uniform_random(cfg.n_spots, FIELD.grid.bounds, seed=16)
    with DivideAndConquerRuntime(cfg) as rt:
        tex, _ = rt.synthesize(FIELD, ps)
    return float((np.abs(tex) > 1e-9).mean())


def test_spot_count_report(benchmark, paper_report):
    rates = benchmark.pedantic(model_rates, rounds=1, iterations=1)
    lines = ["spot count, turbulence workload (8 procs, 4 pipes):",
             f"{'spots':>7s} {'tex/s':>7s} {'texture coverage':>17s}"]
    covers = {}
    for n in COUNTS:
        covers[n] = coverage(n)
        lines.append(f"{n:7d} {rates[n]:7.2f} {covers[n]:17.2%}")
    lines.append("fewer spots: faster but the texture no longer covers the field")
    paper_report("ablation_spots", "\n".join(lines))

    rate_list = [rates[n] for n in COUNTS]
    assert all(b > a for a, b in zip(rate_list, rate_list[1:]))
    assert rates[5_000] > 2.0 * rates[40_000]
    cover_list = [covers[n] for n in COUNTS]
    assert all(a >= b for a, b in zip(cover_list, cover_list[1:]))
    assert covers[40_000] > 0.8
    assert covers[5_000] < 0.5
