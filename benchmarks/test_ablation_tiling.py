"""Ablation: texture tiling (design choice 2 of DESIGN.md).

Section 3's texture-decomposition tradeoff: tiles shrink the partial
textures (cheaper sequential blend, less texture memory) but duplicate
border spots (more spot work).  Which side wins depends on the spot
extent — exactly what this bench maps out, in both the machine model and
the real runtime.
"""

import numpy as np

from repro.advection.particles import ParticleSet
from repro.core.config import SpotNoiseConfig
from repro.fields.analytic import random_smooth_field
from repro.machine.schedule import simulate_texture
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig
from repro.parallel.runtime import DivideAndConquerRuntime

FIELD = random_smooth_field(seed=11, n=33)


def model_comparison(workload):
    cfg = WorkstationConfig(8, 4)
    untiled = simulate_texture(cfg, workload, tiled=False)
    tiled = simulate_texture(cfg, workload, tiled=True)
    return untiled, tiled


def real_duplication(guard_px):
    cfg = SpotNoiseConfig(
        n_spots=2000,
        texture_size=128,
        spot_mode="standard",
        n_groups=4,
        partition="spatial",
        guard_px=guard_px,
        seed=12,
    )
    ps = ParticleSet.uniform_random(cfg.n_spots, FIELD.grid.bounds, seed=12)
    with DivideAndConquerRuntime(cfg) as rt:
        _, report = rt.synthesize(FIELD, ps)
    return report.duplication


def test_tiling_report(benchmark, paper_report):
    w2 = SpotWorkload.turbulence()
    untiled, tiled = benchmark.pedantic(
        model_comparison, args=(w2,), rounds=1, iterations=1
    )
    dup16 = real_duplication(16)
    dup32 = real_duplication(32)

    lines = [
        "texture tiling tradeoff, turbulence workload on (8 procs, 4 pipes):",
        f"  untiled: {untiled.textures_per_second:.2f} tex/s, blend {untiled.blend_s * 1e3:.1f} ms",
        f"  tiled:   {tiled.textures_per_second:.2f} tex/s, blend {tiled.blend_s * 1e3:.1f} ms, "
        f"{tiled.duplicated_spots} duplicated spots",
        "real runtime duplication factor (2000 spots, 2x2 tiles):",
        f"  guard 16 px: x{dup16:.3f}   guard 32 px: x{dup32:.3f}",
        "small spots (turbulence): tiling wins — cheap blend, few duplicates;",
        "large spots pay duplication proportional to extent/tile-size",
    ]
    paper_report("ablation_tiling", "\n".join(lines))

    assert tiled.blend_s < untiled.blend_s
    assert tiled.duplicated_spots > 0
    # Small DNS spots: duplication overhead is small, tiling is net-positive.
    assert tiled.textures_per_second > untiled.textures_per_second * 0.95
    assert 1.0 <= dup16 <= dup32 < 2.0


def test_tiled_output_matches_untiled_exactly():
    cfg = SpotNoiseConfig(
        n_spots=500, texture_size=96, spot_mode="standard", seed=13
    )
    ps = ParticleSet.uniform_random(cfg.n_spots, FIELD.grid.bounds, seed=13)
    with DivideAndConquerRuntime(cfg) as rt:
        ref, _ = rt.synthesize(FIELD, ps.copy())
    tiled_cfg = cfg.with_overrides(n_groups=4, partition="spatial", guard_px=20)
    with DivideAndConquerRuntime(tiled_cfg) as rt:
        out, _ = rt.synthesize(FIELD, ps.copy())
    np.testing.assert_allclose(out, ref, atol=1e-9)
