"""Zero-copy shared-memory rendering vs the pickling process pool.

The ISSUE-5 acceptance scenario: on the default ``plan-bench`` animation
workload (static large field, advected spots, several process groups)
the :class:`~repro.parallel.sharedmem.SharedMemoryBackend` must beat the
pickling :class:`~repro.parallel.backends.ProcessBackend` by >= 2x
frames/s, bit-identically.  The pickling pool re-ships the field to
every group on every frame; the shared-memory pool publishes it once per
epoch and ships only group index sets, so the gap *is* the serialisation
tax.  This bench runs the same workload shape as the CLI (slightly
shortened) and records the measured rates in
``results/sharedmem_speedup.txt``.
"""

import time

import numpy as np

from repro.core.config import SpotNoiseConfig
from repro.core.pipeline import SpotNoisePipeline
from repro.fields.analytic import random_smooth_field

#: Floor for the sharedmem-vs-process frames/s ratio — the acceptance
#: criterion itself (measured ~2.5-3x on the recording host).
MIN_SHAREDMEM_SPEEDUP = 2.0

GRID_N = 385
N_FRAMES = 16
N_GROUPS = 4

CONFIG = SpotNoiseConfig(
    n_spots=600, texture_size=64, spot_mode="standard", n_groups=N_GROUPS, seed=0
)
FIELD = random_smooth_field(seed=1000, n=GRID_N)


def _animate_fps(backend: str) -> float:
    cfg = CONFIG.with_overrides(backend=backend)
    with SpotNoisePipeline(cfg, FIELD) as pipe:
        pipe.step()  # warm-up: pool spin-up + first field publish
        t0 = time.perf_counter()
        for _ in range(N_FRAMES):
            pipe.step()
        return N_FRAMES / (time.perf_counter() - t0)


def test_sharedmem_beats_pickling_process(paper_report):
    # Bit-identity first: the speedup is only admissible if the bytes
    # are the serial reference's bytes.
    textures = {}
    for backend in ("serial", "process", "sharedmem"):
        cfg = CONFIG.with_overrides(backend=backend)
        with SpotNoisePipeline(cfg, FIELD) as pipe:
            textures[backend] = pipe.step().texture
    for backend in ("process", "sharedmem"):
        np.testing.assert_array_equal(textures[backend], textures["serial"])

    process_fps = _animate_fps("process")
    sharedmem_fps = _animate_fps("sharedmem")
    speedup = sharedmem_fps / process_fps

    paper_report(
        "sharedmem_speedup",
        "\n".join(
            [
                "zero-copy shared-memory vs pickling process pool "
                f"({N_FRAMES}-frame animation, {N_GROUPS} groups, "
                f"static {GRID_N}x{GRID_N} field):",
                f"  process backend (pickles field x{N_GROUPS}/frame): "
                f"{process_fps:8.2f} frames/s",
                f"  sharedmem backend (index sets + epochs):           "
                f"{sharedmem_fps:8.2f} frames/s",
                f"  speedup: {speedup:.1f}x (acceptance floor "
                f"{MIN_SHAREDMEM_SPEEDUP}x)",
                "  bit-identical to serial: yes",
            ]
        ),
    )

    assert speedup >= MIN_SHAREDMEM_SPEEDUP, (
        f"shared-memory rendering is only {speedup:.1f}x the pickling pool "
        f"(floor {MIN_SHAREDMEM_SPEEDUP}x) — the zero-copy path has regressed"
    )


def test_planner_prefers_sharedmem_over_process_for_this_workload():
    """The cost model must agree with the measurement above: for a
    parallel-worthy workload the planner prices sharedmem below the
    pickling pool at every group count."""
    from repro.machine.workload import workload_from_config
    from repro.parallel.planner import DecompositionPlanner

    workload = workload_from_config(CONFIG, FIELD)
    planner = DecompositionPlanner(host_workers=8)
    for n_groups in (2, 4, 8):
        assert planner.price(workload, "sharedmem", n_groups) < planner.price(
            workload, "process", n_groups
        )
