"""Figure 6: pollutant O3 superimposed on the wind-field spot noise.

Regenerates the snapshot end to end on the §5.1 configuration: the 53x55
grid, 2500 bent spots (reduced mesh for runtime), the rainbow colormap
for the pollutant and the (synthetic) map overlay.
"""

import os

import numpy as np

from repro.apps.smog.geography import land_mask_raster
from repro.apps.smog.steering import SteeredSmogApplication
from repro.core.config import BentConfig, SpotNoiseConfig
from repro.core.pipeline import SpotNoisePipeline
from repro.viz.colormap import rainbow
from repro.viz.image import write_ppm

# Paper parameters with a runtime-friendly mesh (32x17 -> 8x5) and texture.
CFG = SpotNoiseConfig(
    n_spots=2500,
    texture_size=256,
    spot_mode="bent",
    bent=BentConfig(n_along=8, n_across=5, length_cells=4.0, width_cells=1.2),
    seed=6,
)


def generate_snapshot():
    app = SteeredSmogApplication(nx=53, ny=55, n_sources=6, seed=1997)
    # Spin the model up so a plume exists, steering emissions on the way.
    wind, scalar = app.advance()
    app.steer("emission_scale", 4.0)
    for _ in range(8):
        wind, scalar = app.advance()
    mask = land_mask_raster(app.land, app.grid, CFG.texture_size)
    with SpotNoisePipeline(CFG, wind) as pipe:
        frame = pipe.step(scalar=scalar, colormap=rainbow(), mask=mask)
    return frame, scalar


def test_fig6_report(benchmark, paper_report, results_dir):
    frame, scalar = benchmark.pedantic(generate_snapshot, rounds=1, iterations=1)
    write_ppm(os.path.join(results_dir, "fig6_smog.ppm"), frame.image)

    img = frame.image
    colourfulness = (np.abs(img[..., 0] - img[..., 1]) + np.abs(img[..., 1] - img[..., 2])).mean()
    report = (
        "Figure 6 regenerated: fig6_smog.ppm\n"
        f"grid 53x55, {CFG.n_spots} bent spots, texture {CFG.texture_size}^2, "
        "rainbow colormap, synthetic-Europe map overlay\n"
        f"pollutant range: [{scalar.min():.3f}, {scalar.max():.3f}], "
        f"mean image colourfulness {colourfulness:.4f}"
    )
    paper_report("fig6_smog", report)

    assert frame.image.shape == (256, 256, 3)
    # The pollutant tints the image (it is not pure grayscale).
    assert colourfulness > 0.002
    # The plume covers part but not all of the domain.
    cover = (scalar.data > 0.1 * scalar.max()).mean()
    assert 0.02 < cover < 0.98
