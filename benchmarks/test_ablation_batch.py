"""Ablation: work-batch granularity.

The masters hand work to slaves and feed the pipes in batches; section 3
frames the related tradeoff as "the overhead involved in setting the
OpenGL state machine vs. the performance gain of the graphics pipe".
Small batches pipeline tightly but multiply per-dispatch overhead; large
batches starve the pipe in bursts.  The DES exposes the knob directly.
"""

from repro.machine.schedule import simulate_texture
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig

BATCHES = [10, 25, 50, 100, 250, 625]


def sweep(workload):
    return {
        b: simulate_texture(
            WorkstationConfig(8, 4), workload, batch_spots=b
        ).textures_per_second
        for b in BATCHES
    }


def test_batch_size_report(benchmark, paper_report):
    rates1 = benchmark.pedantic(sweep, args=(SpotWorkload.atmospheric(),), rounds=1, iterations=1)
    rates2 = sweep(SpotWorkload.turbulence())

    lines = ["work-batch size (spots per dispatch), (8 procs, 4 pipes) -> tex/s:",
             f"{'batch':>6s} {'atmospheric':>12s} {'turbulence':>11s}"]
    for b in BATCHES:
        lines.append(f"{b:6d} {rates1[b]:12.2f} {rates2[b]:11.2f}")
    best1 = max(rates1, key=rates1.get)
    best2 = max(rates2, key=rates2.get)
    lines.append(f"optima: atmospheric at {best1} spots/batch, turbulence at {best2}")
    lines.append("tiny batches pay dispatch overhead; huge batches starve the pipes")
    paper_report("ablation_batch", "\n".join(lines))

    # An interior optimum exists for at least one workload: the extremes
    # must not both dominate.
    for rates in (rates1, rates2):
        assert max(rates.values()) >= rates[BATCHES[0]]
        assert max(rates.values()) >= rates[BATCHES[-1]]
    # The turbulence workload (many spots) is the dispatch-sensitive one.
    assert rates2[10] < max(rates2.values()) * 0.98
