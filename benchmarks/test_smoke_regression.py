"""Throughput smoke guard: fail CI when the hot path regresses >2x.

Wall-clock thresholds do not transfer between machines, so the guard is
host-normalised: a small fixed numpy calibration kernel measures how
fast *this* host is relative to the host that recorded the baseline, and
the recorded batched-renderer time is scaled accordingly before the 2x
comparison.  A second, host-independent check pins the structural
speedup of the batched scanline backend over the per-quad reference
loop — if someone breaks the vectorisation, that ratio collapses by two
orders of magnitude long before it crosses the floor used here.

The baseline (``results/smoke_baseline.json``) is bootstrapped on first
run; delete it to re-record after an intentional performance change.
"""

import json
import os
import time

import numpy as np

from test_real_throughput import render_once

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "results", "smoke_baseline.json")

#: Allowed slowdown against the (host-normalised) recorded baseline.
MAX_REGRESSION = 2.0

#: Floor for the batched-vs-reference speedup (typically 100-250x; the
#: margin absorbs CI noise while still catching any devectorisation).
MIN_REFERENCE_SPEEDUP = 25.0

#: Floor for the serving-layer speedup on a repeated-request trace
#: (typically 10-100x; the acceptance criterion is 5x).
MIN_SERVING_SPEEDUP = 5.0


def _calibrate() -> float:
    """Seconds for a fixed numpy workload shaped like the hot path."""
    rng = np.random.default_rng(0)
    vals = rng.random(1 << 19)
    idx = rng.integers(0, 1 << 14, 1 << 19)
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        acc = np.bincount(idx, weights=vals, minlength=1 << 14)
        order = np.argsort(idx.astype(np.int16), kind="stable")
        acc2 = vals[order] * 0.5 + 1.0
        best = min(best, time.perf_counter() - t0)
    assert acc.shape[0] == 1 << 14 and acc2.shape == vals.shape
    return best


def _time_renderer(renderer: str, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        render_once("atmospheric/4", renderer)
        best = min(best, time.perf_counter() - t0)
    return best


def test_smoke_throughput_regression():
    render_once("atmospheric/4")  # warm numpy / caches
    calib = _calibrate()
    batched = _time_renderer("exact/batched")
    reference = _time_renderer("exact/reference", reps=1)

    # Host-independent structural check: the batched backend must stay
    # far faster than the per-quad loop on identical geometry (the
    # reference row renders a tenth of the spots).
    speedup = (reference * 10.0) / batched
    assert speedup >= MIN_REFERENCE_SPEEDUP, (
        f"batched scanline is only {speedup:.1f}x the per-quad reference "
        f"(floor {MIN_REFERENCE_SPEEDUP}x) — the vectorised path has regressed"
    )

    if not os.path.exists(BASELINE_PATH):
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(
                {"calibration_s": calib, "atmospheric4_batched_s": batched}, fh, indent=2
            )
        return  # first run records the baseline

    with open(BASELINE_PATH, encoding="utf-8") as fh:
        baseline = json.load(fh)
    host_factor = calib / baseline["calibration_s"]
    allowed = baseline["atmospheric4_batched_s"] * host_factor * MAX_REGRESSION
    assert batched <= allowed, (
        f"atmospheric/4 batched render took {batched * 1e3:.1f} ms; host-normalised "
        f"budget is {allowed * 1e3:.1f} ms (baseline "
        f"{baseline['atmospheric4_batched_s'] * 1e3:.1f} ms x host factor "
        f"{host_factor:.2f} x {MAX_REGRESSION}) — >2x throughput regression"
    )


def test_smoke_serving_cache():
    """Repeated-request serving scenario: the acceptance workload of the
    serving subsystem (Zipf over 32 frames, 4 concurrent clients) must
    stay >= 5x faster than the no-cache path, render each distinct frame
    exactly once, and serve bytes identical to fresh renders.  Both sides
    of the ratio run on this host, so the check is host-independent.
    """
    from repro.core.config import SpotNoiseConfig
    from repro.fields.analytic import random_smooth_field
    from repro.service import (
        FrameRenderer,
        TextureService,
        replay,
        replay_uncached,
        zipf_trace,
    )

    n_frames = 32
    fields = {f: random_smooth_field(seed=300 + f, n=33) for f in range(n_frames)}
    config = SpotNoiseConfig(n_spots=400, texture_size=96, seed=9)
    trace = zipf_trace(256, n_frames, seed=4)
    distinct = len(set(trace))

    renderer = FrameRenderer(config)
    with TextureService(
        lambda f: fields[f], config, n_workers=2, memoize_digests=True
    ) as service:
        cached = replay(
            service,
            trace,
            n_clients=4,
            verify_fresh=lambda f: renderer.render(fields[f]),
        )
    assert cached.bit_identical, "served textures differ from fresh renders"
    assert cached.renders <= distinct, (
        f"{cached.renders} renders for {distinct} distinct frames — "
        "duplicate requests are not being coalesced/cached"
    )

    baseline_trace = trace[:48]
    baseline = replay_uncached(
        lambda f: renderer.render(fields[f]), baseline_trace, n_clients=4
    )
    renderer.close()

    speedup = cached.throughput_rps / baseline.throughput_rps
    assert speedup >= MIN_SERVING_SPEEDUP, (
        f"serving layer is only {speedup:.1f}x the no-cache path "
        f"(floor {MIN_SERVING_SPEEDUP}x; cached {cached.throughput_rps:.0f} req/s, "
        f"uncached {baseline.throughput_rps:.0f} req/s) — the cache has regressed"
    )
