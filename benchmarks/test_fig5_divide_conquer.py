"""Figure 5: the divide-and-conquer pipeline, executed for real.

The figure's claim is structural: partition particles -> per-group
advect+generate on its own pipe -> gather and blend.  This bench runs
that decomposition with the real execution backends, asserts the gathered
texture is identical to the sequential one (the correctness property that
makes the decomposition legal), and times serial vs thread vs process
execution of the same work.
"""

import numpy as np
import pytest

from repro.advection.particles import ParticleSet
from repro.core.config import SpotNoiseConfig
from repro.fields.analytic import random_smooth_field
from repro.parallel.runtime import DivideAndConquerRuntime

FIELD = random_smooth_field(seed=4, n=65)
CFG = SpotNoiseConfig(n_spots=4000, texture_size=256, spot_mode="standard", seed=6)


def synthesize(config):
    particles = ParticleSet.uniform_random(config.n_spots, FIELD.grid.bounds, seed=8)
    with DivideAndConquerRuntime(config) as rt:
        texture, report = rt.synthesize(FIELD, particles)
    return texture, report


@pytest.fixture(scope="module")
def reference():
    texture, _ = synthesize(CFG.with_overrides(n_groups=1, backend="serial"))
    return texture


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_fig5_backend(benchmark, backend, reference):
    cfg = CFG.with_overrides(n_groups=4, backend=backend)
    texture, report = benchmark.pedantic(synthesize, args=(cfg,), rounds=2, iterations=1)
    # Different group counts re-associate the additive blend, so agreement
    # is to float round-off, not bitwise.
    np.testing.assert_allclose(texture, reference, atol=1e-9)
    assert report.n_groups == 4


def test_fig5_report(benchmark, paper_report, reference):
    cfg = CFG.with_overrides(n_groups=4, partition="spatial", guard_px=24)
    texture, report = benchmark.pedantic(synthesize, args=(cfg,), rounds=2, iterations=1)
    np.testing.assert_allclose(texture, reference, atol=1e-9)
    paper_report(
        "fig5_divide_conquer",
        "Figure 5 decomposition executed end to end:\n"
        f"  {report.summary()}\n"
        "gathered texture identical to the sequential rendering for\n"
        "round-robin, block and spatial (tiled) partitions and for the\n"
        "serial, thread and process backends",
    )
