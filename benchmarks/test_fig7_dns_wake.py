"""Figure 7: the DNS wake behind a block, shown with spot noise.

Runs the Navier-Stokes substrate to a shedding state on a reduced grid,
renders the slice with bent spots, and verifies the physics the figure
shows: free-stream inflow on the left, an unsteady vortex street behind
the block, flow recovering toward the fringe.
"""

import os

import numpy as np

from repro.apps.dns.solver import DNSConfig, DNSSolver
from repro.core.config import BentConfig, SpotNoiseConfig
from repro.core.pipeline import SpotNoisePipeline
from repro.fields.derived import vorticity_field
from repro.viz.colormap import diverging
from repro.viz.image import write_pgm, write_ppm

CFG = SpotNoiseConfig(
    n_spots=8000,
    texture_size=256,
    spot_mode="bent",
    bent=BentConfig(n_along=6, n_across=3, length_cells=3.0, width_cells=0.8),
    seed=7,
)


def simulate_and_render():
    solver = DNSSolver(DNSConfig(nx=139, ny=104, reynolds=150))
    solver.advance_to(14.0)  # past shedding onset
    field = solver.field()
    scalar = vorticity_field(field)
    with SpotNoisePipeline(CFG, field) as pipe:
        frame = pipe.step(scalar=scalar, colormap=diverging())
    return solver, field, frame


def test_fig7_report(benchmark, paper_report, results_dir):
    solver, field, frame = benchmark.pedantic(simulate_and_render, rounds=1, iterations=1)
    write_pgm(os.path.join(results_dir, "fig7_dns_wake.pgm"), frame.display)
    write_ppm(os.path.join(results_dir, "fig7_dns_wake_vorticity.ppm"), frame.image)

    w = vorticity_field(field).data
    c = solver.config
    X, Y = solver.grid.mesh()
    upstream = X < 0.5 * c.block_center[0]
    wake = (X > c.block_center[0] + c.block_width) & (X < 3.0)

    report = (
        "Figure 7 regenerated: fig7_dns_wake.pgm / fig7_dns_wake_vorticity.ppm\n"
        f"DNS slice {solver.grid.shape[1]}x{solver.grid.shape[0]} at t={solver.time:.1f}, "
        f"Re={c.reynolds:.0f}, {CFG.n_spots} bent spots\n"
        f"upstream |vorticity| rms: {np.sqrt((w[upstream] ** 2).mean()):.3f}\n"
        f"wake     |vorticity| rms: {np.sqrt((w[wake] ** 2).mean()):.3f}\n"
        "laminar inflow vs unsteady vortex street behind the block"
    )
    paper_report("fig7_dns_wake", report)

    # Laminar upstream, vortical wake — the transition the figure shows.
    assert np.sqrt((w[wake] ** 2).mean()) > 5.0 * np.sqrt((w[upstream] ** 2).mean())
    # The wake is asymmetric (shedding has broken the symmetry).
    top = w[(wake) & (Y > c.block_center[1])]
    bot = w[(wake) & (Y < c.block_center[1])]
    assert abs(top.mean() + bot.mean()) > 1e-4
