"""Figure 4: the simplified graphics workstation model.

The reproducible content of the figure is the machine model itself plus
the paper's bus arithmetic: at the best atmospheric rate (5.6 tex/s) the
raw geometric data needs ~116 MB/s, "well below the maximum of 800
MBytes/sec" — i.e. assumption 1 of eq 2.1 holds.
"""

import pytest

from repro.machine.schedule import simulate_texture
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig

W1 = SpotWorkload.atmospheric()


def test_fig4_report(benchmark, paper_report):
    result = benchmark(simulate_texture, WorkstationConfig(8, 4), W1)

    rate = result.textures_per_second
    geometry_MBps = W1.total_bytes * rate / 1e6
    report = (
        WorkstationConfig(8, 4).describe()
        + "\n"
        + f"geometry per texture: {W1.total_bytes / 1e6:.1f} MB\n"
        + f"at the model's best rate ({rate:.2f} tex/s): {geometry_MBps:.0f} MB/s of "
        + "raw geometric data\n"
        + "paper: 'approximately 116 MBytes/sec ... well below the maximum of 800'\n"
        + f"simulated bus utilisation: {result.bus_busy_s / result.makespan_s:5.1%}"
    )
    paper_report("fig4_machine_model", report)

    # The paper's figure: ~116 MB/s at 5.6 tex/s (21.8 MB/texture * rate).
    assert geometry_MBps == pytest.approx(116.0, rel=0.25)
    # Assumption 1 of eq 2.1: bandwidth is not the limiting factor.
    assert geometry_MBps < 0.25 * 800.0
    assert result.bus_busy_s < 0.25 * result.makespan_s


def test_fig4_even_processor_partition():
    cfg = WorkstationConfig(8, 4)
    assert cfg.processors_per_group() == [2, 2, 2, 2]
    groups = cfg.group_sizes()
    assert all(masters == 1 for masters, _ in groups)
