"""Equation 2.1: T = max(sum genP_i, sum genT_i).

The sequential generation time is the max — not the sum — of processor
and pipe work, because the pipe runs concurrently with the processor.
We sweep the genP/genT ratio by varying the bent-spot mesh resolution
and confirm the simulated sequential time tracks the max() of the two
work totals, staying well below their sum.
"""

import pytest

from repro.machine.analytic import eq21_time, total_genP, total_genT
from repro.machine.schedule import simulate_texture
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig

MESHES = [(32, 17), (16, 9), (8, 5), (4, 3)]


def sweep_meshes():
    base = SpotWorkload.atmospheric()
    rows = []
    for n_along, n_across in MESHES:
        w = base.with_mesh(n_along, n_across)
        genP = total_genP(w)
        genT = total_genT(w)
        sim = simulate_texture(WorkstationConfig(1, 1), w).makespan_s
        rows.append((w, genP, genT, eq21_time(w), sim))
    return rows


def test_eq21_report(benchmark, paper_report):
    rows = benchmark.pedantic(sweep_meshes, rounds=1, iterations=1)
    lines = ["eq 2.1 validation (1 processor, 1 pipe), atmospheric workload:",
             f"{'mesh':>8s} {'genP':>8s} {'genT':>8s} {'max()':>8s} {'simulated':>10s}"]
    for w, genP, genT, analytic, sim in rows:
        mesh = w.name.split("-")[-1]
        lines.append(f"{mesh:>8s} {genP:8.3f} {genT:8.3f} {analytic:8.3f} {sim:10.3f}")
    lines.append("simulated time tracks max(genP, genT) + overheads, never the sum")
    paper_report("eq21_overlap", "\n".join(lines))

    for w, genP, genT, analytic, sim in rows:
        assert sim >= analytic * 0.999          # eq 2.1 is a lower bound
        assert sim < (genP + genT) * 1.05        # overlap: far below the sum
        # Within 35% of the bound (overheads: feed, dispatch, blend).
        assert sim < analytic * 1.35 + 0.05


def test_eq21_pipe_bound_workload():
    # Huge pixel footprints make the pipe the bottleneck; eq 2.1 must then
    # report genT, independent of genP.
    w = SpotWorkload.standard_spots(1000, pixels_per_spot=50_000.0)
    assert eq21_time(w) == pytest.approx(total_genT(w))
    assert total_genT(w) > total_genP(w)
