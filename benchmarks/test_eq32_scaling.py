"""Equation 3.2: T = max(genP/nP, genT/nG) + c.

Validates the divide-and-conquer bound against the discrete-event
simulator across the whole configuration grid, and extracts the
sequential blend term c the paper blames for sub-linear speedup.
"""

from repro.machine.analytic import eq32_time, total_genP, total_genT
from repro.machine.costs import CostModel
from repro.machine.schedule import simulate_texture
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig

W1 = SpotWorkload.atmospheric()
CONFIGS = [(1, 1), (2, 1), (2, 2), (4, 1), (4, 2), (4, 4), (8, 1), (8, 2), (8, 4)]


def collect():
    rows = []
    for np_, ng in CONFIGS:
        analytic = eq32_time(W1, np_, ng)
        sim = simulate_texture(WorkstationConfig(np_, ng), W1)
        rows.append((np_, ng, analytic, sim.makespan_s, sim.blend_s))
    return rows


def test_eq32_report(benchmark, paper_report):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    costs = CostModel.onyx2()
    lines = [
        "eq 3.2 validation, atmospheric workload:",
        f"genP = {total_genP(W1):.3f}s  genT = {total_genT(W1):.3f}s",
        f"{'nP':>3s} {'nG':>3s} {'eq3.2':>8s} {'simulated':>10s} {'blend c':>8s}",
    ]
    for np_, ng, analytic, sim, blend in rows:
        lines.append(f"{np_:3d} {ng:3d} {analytic:8.3f} {sim:10.3f} {blend:8.3f}")
    lines.append(
        "c grows with the number of pipes (sequential blending of partial "
        "textures), which is why 4n processors + n pipes is sub-linear"
    )
    paper_report("eq32_scaling", "\n".join(lines))

    blends = {(np_, ng): blend for np_, ng, _, _, blend in rows}
    # c grows with nG...
    assert blends[(8, 4)] > blends[(8, 2)] > blends[(8, 1)]
    # ...and is independent of nP.
    assert abs(blends[(8, 2)] - blends[(4, 2)]) < 1e-9

    for np_, ng, analytic, sim, _ in rows:
        assert sim >= analytic * 0.999
        assert sim <= analytic * 1.4 + 0.05


def test_eq32_minimum_requires_growing_both():
    # Section 3: "T will approach a minimum if and only if both nP and nG
    # increase."  Fixing either resource bounds the achievable time.
    floor_pipe_fixed = min(eq32_time(W1, np_, 1) for np_ in (1, 2, 4, 8, 16, 64))
    floor_cpu_fixed = min(eq32_time(W1, 4, ng) for ng in (1, 2, 4, 8, 16))
    both = eq32_time(W1, 64, 16)
    assert both < floor_pipe_fixed
    assert both < floor_cpu_fixed
