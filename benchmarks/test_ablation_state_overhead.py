"""Ablation: OpenGL state-machine overhead (design choice 3 of DESIGN.md).

Section 4: spot transformation is performed in software "thus avoiding
the high synchronization overhead costs for setting transformation
matrices for each rendered spot" (the InfiniteReality synchronises four
geometry processors per matrix set).  This bench quantifies the tradeoff
by simulating the rejected design: cheaper per-vertex CPU work but one
synchronising state change per spot.
"""

from repro.machine.costs import CostModel
from repro.machine.schedule import simulate_texture
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig


def compare(workload, sync_cost):
    # 8 processors driving one pipe: the pipe is the bottleneck, which is
    # when per-spot synchronisation stalls hurt (with idle pipes the
    # rejected design can actually win — worth knowing, see the report).
    costs = CostModel.onyx2().with_overrides(pipe_state_sync_s=sync_cost)
    cfg = WorkstationConfig(8, 1)
    software = simulate_texture(cfg, workload, costs=costs, hardware_transform=False)
    hardware = simulate_texture(cfg, workload, costs=costs, hardware_transform=True)
    return software, hardware


def test_state_overhead_report(benchmark, paper_report):
    w2 = SpotWorkload.turbulence()
    software, hardware = benchmark.pedantic(
        compare, args=(w2, CostModel.onyx2().pipe_state_sync_s), rounds=1, iterations=1
    )
    # Sensitivity: how cheap would the sync have to be for hardware
    # transform to win?  "If the OpenGL state machine overhead was smaller
    # then spot transformation could be performed on the graphics pipe."
    crossover = None
    for sync in (5e-6, 2e-6, 1e-6, 5e-7, 2e-7, 1e-7, 0.0):
        sw, hw = compare(w2, sync)
        if hw.makespan_s <= sw.makespan_s:
            crossover = sync
            break

    lines = [
        "spot transform placement, turbulence workload (8 procs, 1 pipe — pipe-bound):",
        f"  software transform (paper's choice): {software.textures_per_second:.2f} tex/s",
        f"  hardware transform (+1 sync/spot):   {hardware.textures_per_second:.2f} tex/s",
        f"  sync cost crossover: {'%.1e s' % crossover if crossover is not None else 'none found'}"
        " (paper's footnote-1 overhead is far above it)",
    ]
    paper_report("ablation_state_overhead", "\n".join(lines))

    assert hardware.makespan_s > software.makespan_s
    assert crossover is not None and crossover < CostModel.onyx2().pipe_state_sync_s
