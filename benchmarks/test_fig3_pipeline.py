"""Figure 3: the four-stage spot noise pipeline.

The figure is a diagram, so the reproducible artefact is the pipeline's
stage structure and per-stage cost breakdown: read data -> advect
particles -> generate texture -> render scene, with texture generation
dominating — the imbalance that motivates the divide-and-conquer design.
"""

from repro.apps.smog.steering import SteeredSmogApplication
from repro.core.config import BentConfig, SpotNoiseConfig
from repro.core.pipeline import SpotNoisePipeline

CFG = SpotNoiseConfig(
    n_spots=600,
    texture_size=128,
    spot_mode="bent",
    bent=BentConfig(n_along=8, n_across=3, length_cells=3.0, width_cells=1.0),
    seed=3,
)


def run_pipeline_frames(n_frames=4):
    app = SteeredSmogApplication(nx=27, ny=28, n_sources=3, seed=5)
    wind, scalar = app.advance()
    with SpotNoisePipeline(CFG, wind) as pipe:
        for _ in range(n_frames):
            wind, scalar = app.advance()
            pipe.step(field=wind, scalar=scalar)
        return pipe.timer.report()


def test_fig3_report(benchmark, paper_report):
    stages = benchmark.pedantic(run_pipeline_frames, rounds=1, iterations=1)
    total = sum(stages.values())
    lines = ["Figure 3 pipeline stages (4 frames, 600 bent spots, 128^2 texture):"]
    for name in ("read", "advect", "synthesize", "render"):
        t = stages.get(name, 0.0)
        lines.append(f"  {name:<10s} {t * 1e3:8.1f} ms  ({t / total:5.1%})")
    lines.append(
        "texture synthesis dominates — the stage the paper parallelises "
        "over processors and pipes"
    )
    paper_report("fig3_pipeline", "\n".join(lines))

    assert set(stages) >= {"read", "advect", "synthesize", "render"}
    # Synthesis is the bottleneck stage.
    assert stages["synthesize"] == max(stages.values())
    # Reading a new frame of data is cheap (the 5-15 Hz budget of §2).
    assert stages["read"] < 0.2 * total
