"""Figure 2: separation line visibility via spot-parameter steering.

The paper shows the same skin-friction field twice: with default spot
noise parameters (top) and with advected spot positions and adjusted
life cycle (bottom), which concentrates texture evidence along the
separation line.  We regenerate both renderings on the analytic
separation field and verify the mechanism quantitatively: under advected
positions the spot population drifts onto the attracting line, so the
texture energy concentrates in a band around it.
"""

import os

import numpy as np

from repro.advection.lifecycle import LifeCyclePolicy
from repro.core.config import SpotNoiseConfig
from repro.core.pipeline import SpotNoisePipeline
from repro.fields.analytic import separation_field
from repro.viz.image import write_pgm

FIELD = separation_field(line_y=0.0, strength=1.5, along=0.5, n=65)
CFG = SpotNoiseConfig(
    n_spots=3000, texture_size=192, spot_mode="standard", anisotropy=1.5, seed=2
)


def band_energy_fraction(texture, half_width_px=24):
    """Fraction of squared intensity within the separation-line band."""
    t = np.asarray(texture) ** 2
    mid = t.shape[0] // 2
    band = t[mid - half_width_px : mid + half_width_px].sum()
    return band / t.sum()


def render(policy, advect_frames):
    """Advect the population *advect_frames* times, then synthesise once —
    the steady state a user watching the animation converges to."""
    with SpotNoisePipeline(CFG, FIELD, policy=policy) as pipe:
        for _ in range(advect_frames):
            pipe.advect()
        return pipe.step()


def test_fig2_report(benchmark, paper_report, results_dir):
    default_frame = render(LifeCyclePolicy.default_spot_noise(), 1)

    advected_frame = benchmark.pedantic(
        render,
        args=(LifeCyclePolicy(position_mode="advect", boundary="clamp", lifetime=0), 250),
        rounds=1,
        iterations=1,
    )

    write_pgm(os.path.join(results_dir, "fig2_default.pgm"), default_frame.display)
    write_pgm(os.path.join(results_dir, "fig2_advected.pgm"), advected_frame.display)

    f_default = band_energy_fraction(default_frame.texture)
    f_advected = band_energy_fraction(advected_frame.texture)
    band = 48 / 192
    report = (
        "Figure 2 regenerated: fig2_default.pgm (top), fig2_advected.pgm (bottom)\n"
        f"texture energy within the separation band ({band:.0%} of the image):\n"
        f"  default parameters:  {f_default:.2f}\n"
        f"  advected positions:  {f_advected:.2f}\n"
        "advected spot positions concentrate evidence on the separation line,\n"
        "matching the paper's qualitative claim"
    )
    paper_report("fig2_separation", report)

    # Default spots are uniform: band fraction ~ band area share.
    assert abs(f_default - band) < 0.12
    # Advected spots converge onto the line: strong concentration.
    assert f_advected > f_default + 0.25
