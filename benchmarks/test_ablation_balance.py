"""Ablation: processor-to-pipe balance (design choice 1 of DESIGN.md).

Section 3's "balanced resource allocation" tradeoff: too few processors
starve the pipe, too many saturate it.  The paper observes the optimum
at ~4 processors per pipe for both workloads; this bench sweeps the
ratio and locates the knee.
"""

from repro.machine.analytic import balanced_processors_per_pipe
from repro.machine.schedule import simulate_texture
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig


def sweep_ratio(workload):
    rates = {}
    for n_proc in range(1, 13):
        rates[n_proc] = simulate_texture(
            WorkstationConfig(n_proc, 1), workload
        ).textures_per_second
    return rates


def test_balance_report(benchmark, paper_report):
    w1 = SpotWorkload.atmospheric()
    w2 = SpotWorkload.turbulence()
    r1 = benchmark.pedantic(sweep_ratio, args=(w1,), rounds=1, iterations=1)
    r2 = sweep_ratio(w2)

    lines = ["processors per pipe (1 pipe) -> textures/s:",
             f"{'nP':>3s} {'atmospheric':>12s} {'turbulence':>11s}"]
    for n in sorted(r1):
        lines.append(f"{n:3d} {r1[n]:12.2f} {r2[n]:11.2f}")
    lines.append(
        f"analytic balance points: atmospheric {balanced_processors_per_pipe(w1):.1f}, "
        f"turbulence {balanced_processors_per_pipe(w2):.1f} processors/pipe "
        "(paper: 'approximately 4')"
    )
    paper_report("ablation_balance", "\n".join(lines))

    for rates in (r1, r2):
        # Gains up to ~4, then a flat (or slightly declining) plateau.
        assert rates[4] > 1.8 * rates[1] / 2.0 * 2 * 0.9  # real speedup to 4
        assert rates[4] > rates[2] > rates[1]
        plateau = max(rates[n] for n in (5, 6, 7, 8, 10, 12))
        assert plateau < rates[4] * 1.15
