"""Ablation: execution backend (design choice 6 of DESIGN.md).

Times the same divide-and-conquer decomposition on the serial, thread
and process backends.  On a single-CPU host the parallel backends mostly
measure their own dispatch overhead — the point is that the decomposition
is backend-agnostic and the outputs are identical; wall-clock speedups
belong to the calibrated machine model.
"""

import numpy as np
import pytest

from repro.advection.particles import ParticleSet
from repro.core.config import SpotNoiseConfig
from repro.fields.analytic import random_smooth_field
from repro.parallel.runtime import DivideAndConquerRuntime

FIELD = random_smooth_field(seed=17, n=65)
CFG = SpotNoiseConfig(n_spots=3000, texture_size=192, spot_mode="standard", seed=18)


def synthesize(backend):
    cfg = CFG.with_overrides(n_groups=4, backend=backend)
    ps = ParticleSet.uniform_random(cfg.n_spots, FIELD.grid.bounds, seed=18)
    with DivideAndConquerRuntime(cfg) as rt:
        texture, _ = rt.synthesize(FIELD, ps)
    return texture


@pytest.fixture(scope="module")
def reference():
    return synthesize("serial")


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_backend_timing(benchmark, backend, reference):
    texture = benchmark.pedantic(synthesize, args=(backend,), rounds=2, iterations=1)
    np.testing.assert_array_equal(texture, reference)
