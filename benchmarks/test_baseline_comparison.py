"""Baselines: spot noise vs the techniques it competes with.

The introduction's argument: texture methods give a *continuous* view of
the field, arrow plots and streamlines only discrete evidence.  This
bench measures pixel coverage and wall time for spot noise, LIC, arrow
plots and streamlines on the same field and raster.
"""

import time

import numpy as np

from repro.advection.particles import ParticleSet
from repro.baselines.arrowplot import arrow_plot
from repro.baselines.lic import lic_texture
from repro.baselines.streamlines import streamline_plot
from repro.core.config import SpotNoiseConfig
from repro.fields.analytic import random_smooth_field
from repro.parallel.runtime import DivideAndConquerRuntime

FIELD = random_smooth_field(seed=19, n=65)
SIZE = 128


def spot_noise_texture():
    cfg = SpotNoiseConfig(
        n_spots=3000, texture_size=SIZE, spot_mode="standard", anisotropy=1.5, seed=20
    )
    ps = ParticleSet.uniform_random(cfg.n_spots, FIELD.grid.bounds, seed=20)
    with DivideAndConquerRuntime(cfg) as rt:
        tex, _ = rt.synthesize(FIELD, ps)
    return tex


def coverage(img):
    return float((np.abs(img) > 1e-9).mean())


def test_baseline_report(benchmark, paper_report):
    spot_tex = benchmark.pedantic(spot_noise_texture, rounds=2, iterations=1)

    timings = {}
    images = {}
    for name, fn in (
        ("lic", lambda: lic_texture(FIELD, SIZE, kernel_half_length=10)),
        ("arrows", lambda: arrow_plot(FIELD, SIZE, grid_step=12)),
        ("streamlines", lambda: streamline_plot(FIELD, SIZE, n_seeds=36, n_steps=120)),
    ):
        t0 = time.perf_counter()
        images[name] = fn()
        timings[name] = time.perf_counter() - t0

    lines = ["flow visualisation baselines on the same field "
             f"({SIZE}^2 raster, this host):",
             f"{'method':>12s} {'coverage':>9s} {'seconds':>8s}"]
    lines.append(f"{'spot noise':>12s} {coverage(spot_tex):9.2%} {'(bench)':>8s}")
    lic_cov = float((np.abs(images['lic'] - images['lic'].mean()) > 1e-6).mean())
    lines.append(f"{'LIC':>12s} {lic_cov:9.2%} {timings['lic']:8.3f}")
    for name in ("arrows", "streamlines"):
        lines.append(f"{name:>12s} {coverage(images[name]):9.2%} {timings[name]:8.3f}")
    lines.append(
        "texture methods (spot noise, LIC) cover the field continuously; "
        "glyph methods leave most pixels empty — the paper's motivation"
    )
    paper_report("baseline_comparison", "\n".join(lines))

    assert coverage(spot_tex) > 0.9
    assert lic_cov > 0.9
    assert coverage(images["arrows"]) < 0.5
    assert coverage(images["streamlines"]) < 0.7
