"""Table 1: textures/second for the atmospheric pollution workload.

Paper (SGI Onyx2, 2500 bent spots, 32x17 meshes, 512^2 texture):

    nP\\nG    1     2     4
      1    1.0
      2    2.0   2.0
      4    2.8   3.6   3.9
      8    2.7   4.9   5.6

Reproduced by sweeping the calibrated workstation model over the same
(processors, pipes) grid.  Shape criteria asserted: saturation at ~4
processors/pipe, pipes useless without processors, sub-linear combined
scaling (sequential blend), Table-2 ordering, and every cell within a
bounded factor of the paper's number.
"""

import pytest

from benchmarks.conftest import format_cells_table
from repro.machine.schedule import simulate_texture, sweep_configurations
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig

PAPER_TABLE1 = {
    (1, 1): 1.0,
    (2, 1): 2.0, (2, 2): 2.0,
    (4, 1): 2.8, (4, 2): 3.6, (4, 4): 3.9,
    (8, 1): 2.7, (8, 2): 4.9, (8, 4): 5.6,
}

WORKLOAD = SpotWorkload.atmospheric()


@pytest.fixture(scope="module")
def sweep():
    return sweep_configurations(WORKLOAD)


def test_table1_report(benchmark, paper_report):
    sweep = benchmark.pedantic(
        sweep_configurations, args=(WORKLOAD,), rounds=3, iterations=1
    )
    model = {k: r.textures_per_second for k, r in sweep.items()}
    text = format_cells_table(PAPER_TABLE1, model)
    worst = max(
        max(model[k] / PAPER_TABLE1[k], PAPER_TABLE1[k] / model[k]) for k in PAPER_TABLE1
    )
    text += f"\nworst cell deviation: x{worst:.2f}"
    paper_report("table1_atmospheric", text)
    assert worst < 1.35  # every cell within 35% of the paper


def test_table1_shape_saturation(sweep):
    # "a maximum of approximately 4 processors per graphics pipe"
    assert sweep[(8, 1)].textures_per_second <= sweep[(4, 1)].textures_per_second * 1.05


def test_table1_shape_pipes_need_processors(sweep):
    assert sweep[(2, 2)].textures_per_second <= sweep[(2, 1)].textures_per_second * 1.1


def test_table1_shape_best_is_full_machine(sweep):
    best = max(sweep, key=lambda k: sweep[k].textures_per_second)
    assert best == (8, 4)


def test_table1_shape_sublinear_blend_overhead(sweep):
    # (8, 2) runs 4 CPUs/pipe like (4, 1): speedup must be < 2x (eq 3.2 c).
    assert (
        sweep[(8, 2)].textures_per_second
        < 2.0 * sweep[(4, 1)].textures_per_second
    )


def test_benchmark_simulate_full_machine(benchmark):
    result = benchmark(
        simulate_texture, WorkstationConfig(8, 4), WORKLOAD
    )
    assert result.textures_per_second > 3.0
