"""Animation streaming vs the per-frame no-reuse path.

The ISSUE-4 acceptance scenario: a 64-frame scrubbing trace served by
``repro.anim`` must beat the per-frame no-reuse service path by >= 3x
frames/s, with incremental frames bit-identical to one-shot renders.
This bench replays a scaled version of exactly the ``anim-bench`` CLI
workload (same trace generator, same analytic fields) and records the
measured rates in ``results/anim_streaming.txt``.

The structural floor asserted here is below the acceptance 3x to absorb
CI noise; the CLI run with the full default workload lands well above
it (~5x on the recording host).
"""

import time

import numpy as np

from repro.anim import AnimationService, one_shot_frame
from repro.core.config import SpotNoiseConfig
from repro.fields.analytic import random_smooth_field
from repro.parallel.runtime import DivideAndConquerRuntime
from repro.service.trace import scrubbing_trace

#: Floor for the streamed-vs-per-frame frames/s ratio (acceptance: 3x on
#: the full CLI workload; typically 4-8x even at this scale).
MIN_STREAMING_SPEEDUP = 2.5

N_FRAMES = 64
N_REQUESTS = 192
BASELINE_REQUESTS = 16


def test_anim_streaming_speedup(paper_report):
    config = SpotNoiseConfig(n_spots=400, texture_size=64, seed=0)
    fields = {}

    def source(frame):
        if frame not in fields:
            fields[frame] = random_smooth_field(seed=1000 + frame, n=32)
        return fields[frame]

    trace = scrubbing_trace(N_REQUESTS, N_FRAMES, seed=0)
    distinct = len(set(trace))

    with AnimationService(
        source, config, length=N_FRAMES, checkpoint_every=8
    ) as service:
        t0 = time.perf_counter()
        for frame in trace:
            service.request(frame)
        streamed_s = time.perf_counter() - t0
        renders = service.stats.renders
        dt = service.dt
        # Bit-identity spot checks against the one-shot reference path.
        identical = all(service.verify(f) for f in sorted(set(trace))[::20])

    streamed_fps = len(trace) / streamed_s

    runtime = DivideAndConquerRuntime(config)
    t0 = time.perf_counter()
    for frame in trace[:BASELINE_REQUESTS]:
        one_shot_frame(config, source, frame, dt=dt, runtime=runtime)
    baseline_s = time.perf_counter() - t0
    runtime.close()
    baseline_fps = BASELINE_REQUESTS / baseline_s
    speedup = streamed_fps / baseline_fps

    paper_report(
        "anim_streaming",
        "\n".join(
            [
                "animation streaming vs per-frame no-reuse (scrub trace):",
                f"  trace: {N_REQUESTS} requests over {N_FRAMES} frames "
                f"({distinct} distinct)",
                f"  streamed path:  {streamed_fps:8.1f} frames/s "
                f"({renders} incremental renders)",
                f"  per-frame path: {baseline_fps:8.1f} frames/s "
                f"(full prefix replay per request)",
                f"  speedup: {speedup:.1f}x (acceptance floor 3x on the full "
                "anim-bench workload)",
                f"  incremental bit-identical to one-shot: "
                f"{'yes' if identical else 'NO'}",
            ]
        ),
    )

    assert identical, "incremental frames diverged from one-shot renders"
    # Streaming renders each distinct frame at most ~once (small race
    # slack) instead of replaying the prefix per request.
    assert renders <= distinct + 4
    assert speedup >= MIN_STREAMING_SPEEDUP, (
        f"streaming is only {speedup:.1f}x the per-frame path "
        f"(floor {MIN_STREAMING_SPEEDUP}x) — state reuse has regressed"
    )


def test_streamed_frames_match_one_shot_exactly():
    """Dense bit-identity sweep at small scale: every frame of a short
    sequence, streamed, equals its one-shot render byte for byte."""
    config = SpotNoiseConfig(n_spots=150, texture_size=32, seed=1)
    fields = [random_smooth_field(seed=77 + t, n=20) for t in range(12)]
    with AnimationService(fields.__getitem__, config, length=12) as service:
        streamed = {r.frame: r.texture for r in service.stream(0, 12)}
        for t in range(12):
            reference = one_shot_frame(config, fields.__getitem__, t, dt=service.dt)
            assert np.array_equal(streamed[t], reference.display), f"frame {t}"
