"""Delta frame transport vs the full-texture path (bytes on the wire).

The ISSUE-7 acceptance scenario: the 64-frame scrub trace served through
the delta transport must ship <= 0.33x the bytes of the full-texture
baseline, with every decoded frame bit-identical to the incremental
render.  The win is the digest-sync protocol — a scrub trace revisits
frames constantly, and a digest-sync client ships each unique chunk
exactly once while the full-texture path re-ships the (compressed)
texture per request; the cost-model-priced keyframe cadence adds thin
diffs on top wherever frames are coherent.

This bench replays a scaled version of exactly the ``delta-bench`` CLI
workload (same trace generator, same analytic fields) and records the
measured ratio in ``results/delta_transport.txt``.
"""

import zlib

import numpy as np

from repro.anim import AnimationService
from repro.anim.delta import DeltaDecoder, DeltaManifest
from repro.core.config import SpotNoiseConfig
from repro.fields.analytic import random_smooth_field
from repro.service.trace import scrubbing_trace

#: Acceptance ceiling for delta bytes / full-texture bytes.
MAX_BYTES_RATIO = 0.33

N_FRAMES = 64
N_REQUESTS = 256


def canonical(texture) -> bytes:
    return np.ascontiguousarray(texture, dtype=np.float64).tobytes()


def test_delta_transport_ships_a_third_of_the_bytes(paper_report):
    config = SpotNoiseConfig(n_spots=400, texture_size=64, seed=0)
    fields = {}

    def source(frame):
        if frame not in fields:
            fields[frame] = random_smooth_field(seed=1000 + frame, n=32)
        return fields[frame]

    trace = scrubbing_trace(N_REQUESTS, N_FRAMES, seed=0)
    distinct = sorted(set(trace))

    textures = {}
    with AnimationService(
        source, config, length=N_FRAMES, checkpoint_every=8, delta_every=0,
    ) as service:
        for frame in trace:
            textures.setdefault(frame, service.request(frame).texture)
        stats = service.delta_stats()
        manifest = DeltaManifest.from_dict(service.manifest()["delta"])
        store = service.delta_transport.store

    # Digest-sync client: every unique chunk ships once, plus the manifest.
    delta_bytes = stats["shipped_bytes"] + manifest.json_bytes()
    # Full-texture transport: compressed texture bytes per request.
    frame_bytes = {
        t: len(zlib.compress(canonical(tex), 6)) for t, tex in textures.items()
    }
    baseline_bytes = sum(frame_bytes[t] for t in trace)
    ratio = delta_bytes / baseline_bytes

    # Every distinct frame decodes bit-identically from the published
    # manifest + chunk store alone.
    decoder = DeltaDecoder(store, manifest)
    mismatched = [
        t for t in distinct
        if (out := decoder.decode(t)) is None or out.tobytes() != canonical(textures[t])
    ]

    paper_report(
        "delta_transport",
        "\n".join(
            [
                "delta frame transport vs full-texture path (scrub trace):",
                f"  trace: {N_REQUESTS} requests over {N_FRAMES} frames "
                f"({len(distinct)} distinct)",
                f"  encoded: {stats['keys']} keyframes + {stats['deltas']} "
                f"deltas (cadence K={stats['keyframe_every']}, cost-model "
                "priced)",
                f"  delta transport: {delta_bytes:>12,d} bytes "
                f"(unique chunks once + {manifest.json_bytes():,d} B manifest)",
                f"  full-texture:    {baseline_bytes:>12,d} bytes "
                "(compressed texture per request)",
                f"  ratio: {ratio:.3f}x (ceiling {MAX_BYTES_RATIO}x)",
                f"  decoded frames bit-identical: "
                f"{'yes' if not mismatched else 'NO'}",
            ]
        ),
    )

    assert not mismatched, f"delta decode diverged on frames {mismatched[:5]}"
    assert ratio <= MAX_BYTES_RATIO, (
        f"delta transport shipped {ratio:.3f}x the full-texture bytes "
        f"(ceiling {MAX_BYTES_RATIO}x) — the bandwidth win has regressed"
    )


def test_coherent_sequences_get_thin_deltas():
    """Where frames *are* byte-coherent the diffs collapse: a repeated
    frame costs (almost) nothing beyond its first encoding, keeping the
    cadence economics honest on the coherent-data end."""
    from repro.anim.delta import DeltaEncoder
    from repro.service.cache import MemoryBlobStore

    rng = np.random.default_rng(0)
    store = MemoryBlobStore()
    enc = DeltaEncoder(store, "coherent", keyframe_every=8)
    base = rng.random((64, 64))
    enc.add_frame(0, base, "d0")
    key_bytes = enc.stats()["shipped_bytes"]
    for t in range(1, 8):
        enc.add_frame(t, base, f"d{t}")  # identical frames: all-zero diffs
    total = enc.stats()["shipped_bytes"]
    assert total - key_bytes < 0.02 * key_bytes, (
        f"7 identical frames shipped {total - key_bytes} bytes on top of a "
        f"{key_bytes}-byte keyframe — coherent deltas are not collapsing"
    )
    for t in range(8):
        assert enc.decode(t).tobytes() == canonical(base)
