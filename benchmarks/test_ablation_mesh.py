"""Ablation: bent-spot mesh resolution (design choice 4 of DESIGN.md).

Section 5.1: "Using a 32x17 mesh ... will result in very accurate
renderings.  Lower resolution meshes will result in less accurate
renderings, but can increase performance substantially."  We sweep mesh
resolutions through the machine model for throughput and through the
real renderer for accuracy (deviation from the highest-resolution mesh).
"""

import numpy as np

from repro.advection.particles import ParticleSet
from repro.core.config import BentConfig, SpotNoiseConfig
from repro.fields.analytic import vortex_field
from repro.machine.schedule import simulate_texture
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig
from repro.parallel.runtime import DivideAndConquerRuntime

MESHES = [(32, 17), (16, 9), (8, 5), (4, 3)]
FIELD = vortex_field(n=65)


def model_rates():
    base = SpotWorkload.atmospheric()
    return {
        mesh: simulate_texture(
            WorkstationConfig(8, 4), base.with_mesh(*mesh)
        ).textures_per_second
        for mesh in MESHES
    }


def real_texture(mesh):
    cfg = SpotNoiseConfig(
        n_spots=400,
        texture_size=128,
        spot_mode="bent",
        bent=BentConfig(
            n_along=mesh[0], n_across=mesh[1], length_cells=6.0, width_cells=2.0
        ),
        seed=14,
    )
    ps = ParticleSet.uniform_random(cfg.n_spots, FIELD.grid.bounds, seed=14)
    with DivideAndConquerRuntime(cfg) as rt:
        tex, _ = rt.synthesize(FIELD, ps)
    return tex


def test_mesh_report(benchmark, paper_report):
    from repro.viz.quality import ssim

    rates = benchmark.pedantic(model_rates, rounds=1, iterations=1)
    reference = real_texture(MESHES[0])
    ref_norm = np.abs(reference).sum()

    lines = ["bent-spot mesh resolution, atmospheric workload (8 procs, 4 pipes):",
             f"{'mesh':>7s} {'tex/s':>7s} {'L1 dev vs 32x17':>16s} {'SSIM':>6s}"]
    for mesh in MESHES:
        tex = real_texture(mesh) if mesh != MESHES[0] else reference
        dev = np.abs(tex - reference).sum() / ref_norm
        score = ssim(tex, reference)
        lines.append(f"{mesh[0]:3d}x{mesh[1]:<3d} {rates[mesh]:7.2f} {dev:16.3f} {score:6.3f}")
    lines.append("coarser meshes trade rendering accuracy for throughput")
    paper_report("ablation_mesh", "\n".join(lines))

    # Throughput strictly improves as the mesh coarsens...
    rate_list = [rates[m] for m in MESHES]
    assert all(b > a for a, b in zip(rate_list, rate_list[1:]))
    # ...and "substantially" so (paper's wording); the gain flattens once
    # per-texture overheads (blend, preprocess) dominate.
    assert rates[MESHES[-1]] > 2.5 * rates[MESHES[0]]
    # Accuracy degrades monotonically with coarseness.
    devs = [np.abs(real_texture(m) - reference).sum() / ref_norm for m in MESHES[1:]]
    assert devs[0] < devs[1] < devs[2]
