"""The interactivity claims of sections 1, 2 and 6.

Section 2 budgets data reads at "5 and 15 times a second"; the
conclusion claims "near interactive speeds" for the full machine.  This
bench evaluates the complete frame loop (read -> advect+synthesise ->
display) for both applications across machine shapes, and renders the
(8, 4) execution schedule as a Gantt chart.
"""

from repro.machine.animation import simulate_animation
from repro.machine.schedule import simulate_texture
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig

SHAPES = [(1, 1), (4, 1), (4, 4), (8, 4)]


def frame_rates(workload):
    out = {}
    for np_, ng in SHAPES:
        timing, _ = simulate_animation(WorkstationConfig(np_, ng), workload)
        out[(np_, ng)] = timing
    return out


def test_interactivity_report(benchmark, paper_report):
    w1 = SpotWorkload.atmospheric()
    rates1 = benchmark.pedantic(frame_rates, args=(w1,), rounds=1, iterations=1)
    rates2 = frame_rates(SpotWorkload.turbulence())

    lines = ["full frame loop (read + synthesis + display), frames/second:",
             f"{'config':>8s} {'atmospheric':>12s} {'turbulence':>11s} {'5 Hz budget':>12s}"]
    for key in SHAPES:
        t1, t2 = rates1[key], rates2[key]
        ok = "meets" if t1.meets_budget(5.0) else "misses"
        lines.append(
            f"{key[0]}p/{key[1]}g".rjust(8)
            + f" {t1.frames_per_second:12.2f} {t2.frames_per_second:11.2f} {ok:>12s}"
        )
    lines.append("data read cost per frame is negligible "
                 f"({rates1[(8, 4)].read_s * 1e6:.0f} us for the 53x55 slice)")
    paper_report("interactivity", "\n".join(lines))

    # The full machine reaches the steering budget for the atmospheric
    # application; one processor does not — the paper's motivation for
    # the parallel design.
    assert rates1[(8, 4)].meets_budget(5.0)
    assert not rates1[(1, 1)].meets_budget(5.0)


def test_schedule_gantt_report(benchmark, paper_report):
    result = benchmark.pedantic(
        simulate_texture,
        args=(WorkstationConfig(8, 4), SpotWorkload.atmospheric()),
        kwargs={"trace": True},
        rounds=1,
        iterations=1,
    )
    util = result.actor_utilization()
    lines = ["simulated (8 processors, 4 pipes) schedule, one texture:"]
    lines.append(result.format_gantt(width=68))
    lines.append("utilization: " + ", ".join(f"{a}={u:.0%}" for a, u in util.items()
                                             if not a.startswith("g") or "master" in a))
    paper_report("schedule_gantt", "\n".join(lines))

    # Processors busier than pipes (CPU-bound workload), blend tail present.
    assert util["g0.master"] > util["pipe0"]
    assert any(s.kind == "blend" for s in result.trace)
