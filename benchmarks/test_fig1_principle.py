"""Figure 1: the principle of spot noise — a single spot and the texture.

Regenerates both halves of the figure with the real renderer: the spot
profile image (left) and the texture obtained by blending many randomly
placed, randomly weighted copies of it (right), and checks the texture's
statistical signature (zero-mean, spot-scale correlation).
"""

import os

import numpy as np

from repro.advection.particles import ParticleSet
from repro.core.config import SpotNoiseConfig
from repro.fields.analytic import constant_field
from repro.parallel.runtime import DivideAndConquerRuntime
from repro.spots.functions import get_profile
from repro.spots.filtering import contrast_stretch
from repro.viz.image import write_pgm
from repro.viz.stats import texture_statistics

FIELD = constant_field(0.0, 0.0, n=17)  # no flow: the raw noise of fig 1
CFG = SpotNoiseConfig(
    n_spots=4000,
    texture_size=256,
    spot_mode="standard",
    anisotropy=0.0,
    spot_radius_cells=0.6,
    profile="disk",
    seed=1991,  # van Wijk's spot noise debut
)


def render_texture():
    particles = ParticleSet.uniform_random(CFG.n_spots, FIELD.grid.bounds, seed=CFG.seed)
    with DivideAndConquerRuntime(CFG) as rt:
        texture, _ = rt.synthesize(FIELD, particles)
    return texture


def test_fig1_report(benchmark, paper_report, results_dir):
    texture = benchmark.pedantic(render_texture, rounds=3, iterations=1)

    spot_image = get_profile(CFG.profile).make_texture(64)
    write_pgm(os.path.join(results_dir, "fig1_single_spot.pgm"), spot_image)
    write_pgm(os.path.join(results_dir, "fig1_texture.pgm"), contrast_stretch(texture))

    stats = texture_statistics(texture)
    report = (
        "Figure 1 regenerated: fig1_single_spot.pgm (left), fig1_texture.pgm (right)\n"
        f"spots: {CFG.n_spots}, profile: {CFG.profile}, texture: {CFG.texture_size}^2\n"
        f"texture mean {stats.mean:+.4f} (zero-mean spot weights), std {stats.std:.3f}"
    )
    paper_report("fig1_principle", report)

    # Zero-mean intensity sums: |mean| small compared to pixel std.
    assert abs(stats.mean) < 0.1 * stats.std
    # Non-degenerate texture: plenty of structure.
    assert stats.std > 0.1


def test_fig1_spot_correlation_scale(benchmark):
    """Texture autocorrelation length tracks the spot radius (the 'properties
    of the spot directly control the properties of the texture' claim)."""

    def corr_length(radius_cells):
        cfg = CFG.with_overrides(spot_radius_cells=radius_cells, n_spots=3000)
        ps = ParticleSet.uniform_random(cfg.n_spots, FIELD.grid.bounds, seed=7)
        with DivideAndConquerRuntime(cfg) as rt:
            tex, _ = rt.synthesize(FIELD, ps)
        t = tex - tex.mean()
        # Autocorrelation along x at lag k via FFT.
        spec = np.abs(np.fft.rfft(t, axis=1)) ** 2
        ac = np.fft.irfft(spec.mean(axis=0))
        ac /= ac[0]
        below = np.nonzero(ac < 0.3)[0]
        return int(below[0]) if below.size else len(ac)

    small = benchmark.pedantic(corr_length, args=(0.4,), rounds=1, iterations=1)
    large = corr_length(1.2)
    assert large > small
