"""Honest engineering data: the Python renderer's own throughput.

The paper's numbers come from 1997 graphics hardware; this bench records
what *this* implementation achieves on *this* host for scaled versions of
both workloads, so users know the real cost of a texture before asking
the machine model about hypothetical hardware.
"""

import time

from repro.advection.particles import ParticleSet
from repro.core.config import BentConfig, SpotNoiseConfig
from repro.fields.analytic import random_smooth_field
from repro.parallel.runtime import DivideAndConquerRuntime

FIELD_ATM = random_smooth_field(seed=21, n=53)
FIELD_DNS = random_smooth_field(seed=22, n=139)

# Scaled workloads: paper spot density on a quarter-resolution texture,
# reduced bent meshes (the full 32x17 mesh is a hardware-scale workload).
CONFIGS = {
    "atmospheric/4": (
        FIELD_ATM,
        SpotNoiseConfig(
            n_spots=2500,
            texture_size=128,
            spot_mode="bent",
            bent=BentConfig(n_along=8, n_across=5, length_cells=4.0, width_cells=1.2),
            seed=23,
        ),
    ),
    "turbulence/16": (
        FIELD_DNS,
        SpotNoiseConfig(
            n_spots=2500,
            texture_size=128,
            spot_mode="bent",
            bent=BentConfig(n_along=6, n_across=3, length_cells=3.0, width_cells=0.8),
            seed=23,
        ),
    ),
}


def render_once(name):
    field, cfg = CONFIGS[name]
    ps = ParticleSet.uniform_random(cfg.n_spots, field.grid.bounds, seed=cfg.seed)
    with DivideAndConquerRuntime(cfg) as rt:
        texture, report = rt.synthesize(field, ps)
    return texture, report


def test_real_throughput_report(benchmark, paper_report):
    texture, _ = benchmark.pedantic(render_once, args=("atmospheric/4",), rounds=2, iterations=1)
    assert texture.shape == (128, 128)

    lines = ["this implementation, this host (Python + numpy, 1 CPU):",
             f"{'workload':>16s} {'spots':>6s} {'quads':>8s} {'seconds':>8s} {'tex/s':>6s}"]
    for name in CONFIGS:
        t0 = time.perf_counter()
        _, report = render_once(name)
        dt = time.perf_counter() - t0
        lines.append(
            f"{name:>16s} {CONFIGS[name][1].n_spots:6d} "
            f"{report.counters.quads_drawn:8d} {dt:8.2f} {1.0 / dt:6.2f}"
        )
    lines.append(
        "the 1997 Onyx2 did the full-size versions at 5.6 / 3.5 tex/s in "
        "hardware; the calibrated model (tables 1-2) stands in for it"
    )
    paper_report("real_throughput", "\n".join(lines))
