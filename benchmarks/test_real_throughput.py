"""Honest engineering data: the Python renderer's own throughput.

The paper's numbers come from 1997 graphics hardware; this bench records
what *this* implementation achieves on *this* host for scaled versions of
both workloads, so users know the real cost of a texture before asking
the machine model about hypothetical hardware.

Three renderer configurations are timed per workload:

* ``exact/batched`` — the default scanline backend
  (:mod:`repro.raster.batched`): exact coverage, fully vectorised.
* ``sampled`` — the anti-aliased splatting renderer, the seed
  repository's default path (its recorded numbers are directly
  comparable to this row).
* ``exact/reference`` — the per-quad oracle loop, timed on a tenth of
  the spots (it is orders of magnitude slower); its full-workload
  throughput is extrapolated linearly and marked as such.

The batched backend renders the *same pixels* as the reference row, so
the reference-vs-batched ratio is the speedup of the rasterisation
subsystem itself; the sampled-vs-batched ratio is the end-to-end gain
over the seed's default path.
"""

import time

from repro.advection.particles import ParticleSet
from repro.core.config import BentConfig, SpotNoiseConfig
from repro.fields.analytic import random_smooth_field
from repro.parallel.runtime import DivideAndConquerRuntime

FIELD_ATM = random_smooth_field(seed=21, n=53)
FIELD_DNS = random_smooth_field(seed=22, n=139)

# Scaled workloads: paper spot density on a quarter-resolution texture,
# reduced bent meshes (the full 32x17 mesh is a hardware-scale workload).
CONFIGS = {
    "atmospheric/4": (
        FIELD_ATM,
        SpotNoiseConfig(
            n_spots=2500,
            texture_size=128,
            spot_mode="bent",
            bent=BentConfig(n_along=8, n_across=5, length_cells=4.0, width_cells=1.2),
            seed=23,
        ),
    ),
    "turbulence/16": (
        FIELD_DNS,
        SpotNoiseConfig(
            n_spots=2500,
            texture_size=128,
            spot_mode="bent",
            bent=BentConfig(n_along=6, n_across=3, length_cells=3.0, width_cells=0.8),
            seed=23,
        ),
    ),
}

#: Spot-count divisor for the per-quad reference row (it is ~2 orders of
#: magnitude slower than the batched backend on the same geometry).
_REFERENCE_SCALE = 10

RENDERERS = {
    "exact/batched": dict(render_mode="exact", raster_backend="batched"),
    "sampled": dict(),  # the config default; the seed's recorded path
    "exact/reference": dict(render_mode="exact", raster_backend="exact"),
}


def render_once(name, renderer="exact/batched"):
    field, cfg = CONFIGS[name]
    overrides = dict(RENDERERS[renderer])
    if renderer == "exact/reference":
        overrides["n_spots"] = max(1, cfg.n_spots // _REFERENCE_SCALE)
    cfg = cfg.with_overrides(**overrides)
    ps = ParticleSet.uniform_random(cfg.n_spots, field.grid.bounds, seed=cfg.seed)
    with DivideAndConquerRuntime(cfg) as rt:
        texture, report = rt.synthesize(field, ps)
    return texture, report


def test_real_throughput_report(benchmark, paper_report):
    texture, _ = benchmark.pedantic(render_once, args=("atmospheric/4",), rounds=2, iterations=1)
    assert texture.shape == (128, 128)

    lines = ["this implementation, this host (Python + numpy, 1 CPU; "
             "fast renderers best of 3, reference 1 run):",
             f"{'workload':>16s} {'renderer':>16s} {'spots':>6s} {'quads':>8s} "
             f"{'seconds':>8s} {'tex/s':>7s}"]
    rates = {}
    for name in CONFIGS:
        for renderer in RENDERERS:
            reps = 1 if renderer == "exact/reference" else 3
            dt = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                _, report = render_once(name, renderer)
                dt = min(dt, time.perf_counter() - t0)
            rates[(name, renderer)] = 1.0 / dt
            note = ""
            if renderer == "exact/reference":
                note = (f"  (spots/{_REFERENCE_SCALE}; ~{1.0 / (dt * _REFERENCE_SCALE):.2f}"
                        " tex/s at full spot count)")
            lines.append(
                f"{name:>16s} {renderer:>16s} {report.total_spots_rendered:6d} "
                f"{report.counters.quads_drawn:8d} {dt:8.3f} {1.0 / dt:7.2f}{note}"
            )
    for name in CONFIGS:
        batched = rates[(name, "exact/batched")]
        sampled = rates[(name, "sampled")]
        reference = rates[(name, "exact/reference")] / _REFERENCE_SCALE
        lines.append(
            f"{name}: batched scanline = {batched / sampled:.1f}x the seed's sampled "
            f"path, {batched / reference:.0f}x the per-quad reference (same pixels)"
        )
    lines.append(
        "the 1997 Onyx2 did the full-size versions at 5.6 / 3.5 tex/s in "
        "hardware; the calibrated model (tables 1-2) stands in for it"
    )
    paper_report("real_throughput", "\n".join(lines))
