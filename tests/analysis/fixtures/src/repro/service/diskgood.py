"""Fixture: durable artifacts landing atomically — no findings.

The blessed ``atomic_write`` callback idiom (the writer receives an
open *handle*, never a path) and the manual temp + ``os.replace`` form.
"""

import json
import os
import tempfile

import numpy as np

from repro.utils.fileio import atomic_write


def write_manifest(path, manifest):
    atomic_write(path, lambda fh: fh.write(json.dumps(manifest).encode("utf-8")))


def write_frames(path, frames):
    atomic_write(path, lambda fh: np.savez_compressed(fh, frames=frames))


def write_marker_manually(path, payload):
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
