"""Fixture: durable artifacts written in place (non-atomically).

Three direct-write shapes in a durable module: ``open(path, "w")``
(a ``with`` closes the handle but does not make the write atomic), a
numpy path writer, and pathlib's ``write_text``.
"""

import json

import numpy as np


def write_manifest(path, manifest):
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(manifest))


def write_frames(path, frames):
    np.savez_compressed(path, frames=frames)


def write_marker(path):
    path.write_text("done")
