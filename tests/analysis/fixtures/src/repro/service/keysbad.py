"""Fixture: a fingerprinted dataclass missing a field from its key.

``RequestPolicy.backend`` is render-relevant but never hashed — the
silent-cache-poisoning shape the fingerprint checker exists to catch.
``frame`` is deliberately outside the key and says so at the field.
"""

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class RequestPolicy:
    n_spots: int
    texture_size: int
    backend: str
    frame: int  #: cache-key: exempt (observability only, never keyed)

    def fingerprint(self) -> str:
        h = hashlib.sha256()
        h.update(str(self.n_spots).encode("ascii"))
        h.update(str(self.texture_size).encode("ascii"))
        return h.hexdigest()


@dataclass(frozen=True)
class CompleteByConstruction:
    alpha: float
    beta: float

    def digest(self) -> str:
        parts = [
            f"{name}={getattr(self, name)!r}"
            for name in sorted(self.__dataclass_fields__)
        ]
        return "|".join(parts)
