"""Fixture: a key-token function that misses one field of its source
dataclass (see fixtures/src/repro/advection/policymod.py)."""


def policy_token(policy):
    return f"{policy.mode}:{policy.lifetime:.6g}"
