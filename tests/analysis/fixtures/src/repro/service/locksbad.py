"""Fixture: guarded attributes touched outside their declared lock.

Seeds every shape the lock-discipline checker must catch: a plain
unlocked read, a read inside a closure created under the lock (the
closure outruns it), an inherited guard in a same-module subclass, and
the admission-backlog bug (raw ``len(self._inflight)`` fed to
``_admit``).  ``drain_locked`` exercises the ``*_locked`` exemption.
"""

import threading


class BadScheduler:
    def __init__(self):
        self._lock = threading.Lock()
        self._inflight = {}  #: guarded-by: _lock
        self._executing = 0  #: guarded-by: _lock

    def _admit(self, backlog):
        return backlog < 4

    def submit(self, key, job):
        if not self._admit(len(self._inflight)):
            return False
        with self._lock:
            self._inflight[key] = job
        return True

    def drain_locked(self):
        self._inflight.clear()
        self._executing = 0

    def snapshot(self):
        return dict(self._inflight)

    def deferred(self):
        with self._lock:
            def flush():
                self._inflight.clear()
            return flush


class ChildScheduler(BadScheduler):
    def peek(self):
        return len(self._inflight)
