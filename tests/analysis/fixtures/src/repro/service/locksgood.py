"""Fixture: disciplined locking — must produce no findings.

Every guarded access is under ``with self._lock``, the admission
callback receives the queued backlog (len minus executing), and
``finish_locked`` relies on the ``*_locked`` caller-holds-it convention.
"""

import threading


class GoodScheduler:
    def __init__(self):
        self._lock = threading.Lock()
        self._inflight = {}  #: guarded-by: _lock
        self._executing = 0  #: guarded-by: _lock

    def _admit(self, backlog):
        return backlog < 4

    def submit(self, key, job):
        with self._lock:
            backlog = len(self._inflight) - self._executing
            if not self._admit(backlog):
                return False
            self._inflight[key] = job
        return True

    def finish_locked(self, key):
        self._inflight.pop(key, None)

    def snapshot(self):
        with self._lock:
            return dict(self._inflight)
