"""Fixture: a policy dataclass serialised into a key token elsewhere.

``repro.service.tokenmod.policy_token`` covers ``mode`` and
``lifetime`` but not ``fade`` — the cross-file incompleteness a custom
``FingerprintChecker(cross_refs=...)`` must catch.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class FadePolicy:
    mode: str
    lifetime: float
    fade: float
