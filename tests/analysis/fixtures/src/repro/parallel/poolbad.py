"""Fixture: a pool-discard handler that cannot catch KeyboardInterrupt.

Re-seeds the shipped bug the pool-baseexception rule exists for: the
discard path is only reachable for ``Exception``, so an interrupt
mid-dispatch leaves a corrupted pool installed for every later frame.
"""


class FlakyPool:
    def __init__(self):
        self._pool = None

    def run(self, work):
        try:
            return [w() for w in work]
        except Exception:
            self._discard_pool()
            raise

    def _discard_pool(self):
        self._pool = None
