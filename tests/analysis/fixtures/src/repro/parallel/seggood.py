"""Fixture: owned resources with correct lifecycles — no findings.

The segment's creator also unlinks it, the executor is a context
manager, and the file handle lives inside ``with``.
"""

from concurrent.futures import ThreadPoolExecutor
from multiprocessing.shared_memory import SharedMemory


class OwnedSegment:
    def __init__(self, n):
        self.segment = SharedMemory(create=True, size=n)

    def close(self):
        self.segment.close()
        self.segment.unlink()


def fan_out(work):
    with ThreadPoolExecutor(max_workers=2) as pool:
        return list(pool.map(lambda w: w(), work))


def read_back(path):
    with open(path, encoding="utf-8") as fh:
        return fh.read()
