"""Fixture: every resource-lifecycle leak in one class.

A shared-memory segment created without an ``unlink()`` anywhere in the
owning class, an executor that is never torn down, and a bare ``open()``
whose handle leaks on any exception path.
"""

from concurrent.futures import ThreadPoolExecutor
from multiprocessing.shared_memory import SharedMemory


class LeakyWorkers:
    def __init__(self, n):
        self.segment = SharedMemory(create=True, size=n)
        self.executor = ThreadPoolExecutor(max_workers=2)

    def dump(self, path):
        fh = open(path, "w", encoding="utf-8")
        fh.write("leak")
