"""Fixture: pool discard done right — must produce no findings.

The discard handler catches ``BaseException`` (and re-raises), and the
narrow ``except (OSError, ValueError)`` handler is untouched because it
discards nothing.
"""


class SturdyPool:
    def __init__(self):
        self._pool = None

    def run(self, work):
        try:
            return [w() for w in work]
        except BaseException:
            self._discard_pool()
            raise

    def _discard_pool(self):
        self._pool = None

    def read_config(self, path):
        try:
            with open(path, encoding="utf-8") as fh:
                return fh.read()
        except (OSError, ValueError):
            return ""
