"""Fixture: a determinism-critical module full of violations.

Every statement here is a seeded bug for the determinism checker; the
expected finding count and messages are asserted in
tests/analysis/test_determinism.py.
"""

import random
import time

import numpy as np


def timed_render(field):
    start = time.perf_counter()
    jitter = random.random()
    noise = np.random.rand(4, 4)
    return start, jitter, noise


def order_leaks(cells):
    out = []
    for cell in {c * 2 for c in cells}:
        out.append(cell)
    materialised = list(set(cells))
    doubled = [c + 1 for c in set(cells)]
    return out, materialised, doubled
