"""Fixture: the blessed deterministic idioms — must produce no findings."""

import random

import numpy as np


def seeded_noise(seed, cells):
    rng = np.random.default_rng(seed)
    shuffler = random.Random(seed)
    values = rng.standard_normal(max(len(cells), 1))
    order = sorted(set(cells))
    return [values[i % len(values)] for i in range(len(order))], shuffler.random()
