"""Fixture: deliberate violations silenced with inline suppressions.

Both lines would be determinism findings in this critical module; the
first is disabled by rule name, the second by ``disable=all``.  The
runner must count them as *suppressed* (visible, not gate-failing).
"""

import time

import numpy as np


def profiled_splat(field):
    start = time.perf_counter()  # lint: disable=determinism
    scratch = np.random.rand(3)  # lint: disable=all
    return start, scratch
