"""Fixture: disciplined async code the checker must pass untouched.

Awaited async twins (``asyncio.sleep``, ``open_connection``, an awaited
``.wait()``), executor offload for genuinely blocking work, and a sync
helper that blocks legitimately because it never runs on the loop.
"""

import asyncio
import time


class GoodPump:
    async def throttle(self):
        await asyncio.sleep(0.1)

    async def dial(self, address):
        reader, writer = await asyncio.open_connection(address[0], address[1])
        return reader, writer

    async def pump(self, flight):
        await flight.wait()  # the async twin: awaited is fine
        return await asyncio.wait_for(flight.wait(), 1.0)

    async def offload(self, sleep=time.sleep):
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, sleep, 0.1)

    def blocking_shim(self):
        time.sleep(0.01)  # sync method: off-loop, allowed
        return True
