"""Fixture: every blocking shape the async-discipline checker must catch.

Seeds a ``time.sleep`` on the loop, a blocking socket construction, a
non-awaited ``Event.wait`` and a non-awaited ``sock.recv`` — plus a
nested *sync* closure whose ``time.sleep`` must NOT fire (it is an
executor thunk, off-loop by construction).
"""

import asyncio
import socket
import threading
import time


class BadPump:
    def __init__(self):
        self.ready = threading.Event()

    async def throttle(self):
        time.sleep(0.1)  # blocks the whole loop

    async def dial(self, address):
        sock = socket.create_connection(address)
        return sock

    async def pump(self, sock):
        self.ready.wait(1.0)  # sync Event.wait, never awaited
        return sock.recv(4096)

    async def offload(self):
        def thunk():
            time.sleep(0.1)  # fine: runs on an executor thread

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, thunk)
