"""Fixture: cluster-manifest-shaped dataclasses for the fingerprint rule.

``BadManifest.digest`` forgets its ``sequences`` field — the exact
mistake that would let two manifests differing only in their sequence
tables share a content address, so digest-sync peers would skip a sync
they need.  ``GoodManifest`` covers every field.
"""

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class BadManifest:
    node_id: str
    chunks: Tuple[str, ...]
    sequences: Tuple[Dict[str, Any], ...]

    @property
    def digest(self) -> str:
        payload = {"node_id": self.node_id, "chunks": list(self.chunks)}
        return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


@dataclass(frozen=True)
class GoodManifest:
    node_id: str
    chunks: Tuple[str, ...]
    sequences: Tuple[Dict[str, Any], ...]

    @property
    def digest(self) -> str:
        payload = {
            "node_id": self.node_id,
            "chunks": list(self.chunks),
            "sequences": list(self.sequences),
        }
        return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()
