"""Fixture: the global numpy RNG is legal off the critical path."""

import numpy as np


def scratch_noise(n):
    return np.random.rand(n, n)
