"""Fixture: wall clocks are legal off the bit-exactness-critical path."""

import time


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
