"""Resource-lifecycle checker: segments, executors, pools, handles."""


class TestLeaks:
    def test_every_leak_shape_is_found(self, analyse):
        report = analyse("parallel/segleak.py")
        assert {f.rule for f in report.findings} == {
            "sharedmem-unlink", "executor-shutdown", "open-context"
        }
        assert len(report.findings) == 3

    def test_messages_name_the_consequence(self, analyse):
        report = analyse("parallel/segleak.py")
        by_rule = {f.rule: f for f in report.findings}
        assert "/dev/shm" in by_rule["sharedmem-unlink"].message
        assert "workers cannot outlive the owner" in by_rule["executor-shutdown"].message
        assert "handle leaks" in by_rule["open-context"].message

    def test_owned_resources_pass(self, analyse):
        report = analyse("parallel/seggood.py")
        assert report.findings == []
        assert report.ok()


class TestPoolDiscard:
    def test_discard_behind_except_exception_is_flagged(self, analyse):
        report = analyse("parallel/poolbad.py")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == "pool-baseexception"
        assert finding.symbol == "FlakyPool.run"
        assert "KeyboardInterrupt" in finding.message

    def test_baseexception_discard_and_narrow_handlers_pass(self, analyse):
        report = analyse("parallel/poolgood.py")
        assert report.findings == []
        assert report.ok()
