"""The repo itself passes the gate with nothing swept under the rug.

ISSUE 6's acceptance bar: zero active findings, zero inline
suppressions and an empty baseline across ``src/repro`` and ``tools``.
A new violation anywhere fails this test before it fails CI.
"""

from tools.analysis.baseline import Baseline
from tools.analysis.runner import run_analysis


def test_repo_is_clean_with_no_suppressions_and_empty_baseline():
    report = run_analysis(baseline=Baseline())
    assert report.parse_errors == []
    assert report.findings == []
    assert report.suppressed == []
    assert report.baselined == []
    assert report.files_scanned > 100


def test_shipped_baseline_file_is_empty():
    baseline = Baseline.load()
    assert len(baseline) == 0
