"""Atomic-write checker: durable artifacts must land via temp + replace."""


class TestDirectWrites:
    def test_every_direct_write_shape_is_found(self, analyse):
        report = analyse("service/diskbad.py")
        assert len(report.findings) == 3
        assert {f.rule for f in report.findings} == {"atomic-write"}
        messages = "\n".join(f.message for f in report.findings)
        assert "open(path, mode=...w...)" in messages
        assert "savez_compressed" in messages
        assert ".write_text()" in messages
        for f in report.findings:
            assert "repro.utils.fileio.atomic_write" in f.message

    def test_atomic_callback_and_manual_replace_pass(self, analyse):
        report = analyse("service/diskgood.py")
        assert report.findings == []
        assert report.ok()

    def test_non_durable_modules_are_exempt(self, analyse):
        # segleak.py opens a file for writing, but repro.parallel.* is
        # not a durable-artifact module: only the lifecycle rule fires.
        report = analyse("parallel/segleak.py")
        assert not any(f.rule == "atomic-write" for f in report.findings)
