"""Fingerprint-completeness checker: per-file keys and cross-file tokens."""

from tools.analysis.checkers.fingerprint import FingerprintChecker


class TestPerFile:
    def test_unconsumed_field_is_flagged(self, analyse):
        report = analyse("service/keysbad.py")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == "fingerprint-completeness"
        assert "field 'backend' of RequestPolicy" in finding.message
        assert "RequestPolicy.fingerprint()" in finding.message
        assert finding.symbol == "RequestPolicy.fingerprint"

    def test_exempt_marker_documents_the_omission(self, analyse):
        report = analyse("service/keysbad.py")
        assert not any("'frame'" in f.message for f in report.findings)

    def test_dataclass_fields_iteration_is_complete_by_construction(self, analyse):
        report = analyse("service/keysbad.py")
        assert not any("CompleteByConstruction" in f.message for f in report.findings)


class TestClusterManifests:
    """The rule covers the cluster tier's digest-bearing dataclasses."""

    def test_manifest_digest_missing_a_field_is_flagged(self, analyse):
        report = analyse("cluster/manifestbad.py")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == "fingerprint-completeness"
        assert "field 'sequences' of BadManifest" in finding.message
        assert finding.symbol == "BadManifest.digest"

    def test_complete_manifest_digest_is_clean(self, analyse):
        report = analyse("cluster/manifestbad.py")
        assert not any("GoodManifest" in f.message for f in report.findings)


class TestCrossFile:
    CROSS_REFS = (
        ("repro.service.tokenmod", "policy_token", "policy",
         "repro.advection.policymod", "FadePolicy"),
    )

    def test_token_missing_a_field_is_flagged(self, analyse):
        checker = FingerprintChecker(cross_refs=self.CROSS_REFS)
        report = analyse(checkers=[checker])
        token_findings = [f for f in report.findings if f.symbol == "policy_token"]
        assert len(token_findings) == 1
        assert "does not reference field 'fade'" in token_findings[0].message
        assert "repro.advection.policymod.FadePolicy" in token_findings[0].message

    def test_covered_fields_are_not_flagged(self, analyse):
        checker = FingerprintChecker(cross_refs=self.CROSS_REFS)
        report = analyse(checkers=[checker])
        messages = [f.message for f in report.findings if f.symbol == "policy_token"]
        assert not any("'mode'" in m or "'lifetime'" in m for m in messages)

    def test_registered_refs_absent_from_corpus_are_skipped(self, analyse):
        # The default registry's CROSS_REFS point at real repo modules
        # that are not in the fixture corpus — the rule must skip them,
        # not crash or emit phantom findings.
        report = analyse()
        assert not any(f.symbol == "policy_token" for f in report.findings)
