"""Framework behaviour: suppressions, baseline, rule filtering, output."""

import dataclasses
import json

import pytest

from tools.analysis.baseline import Baseline
from tools.analysis.report import render
from tools.analysis.runner import run_analysis

#: Active findings the full fixture tree produces (asserted exactly so a
#: checker that silently stops firing shows up here, not in production).
EXPECTED_FINDINGS = 24
EXPECTED_SUPPRESSED = 2


class TestSuppressions:
    def test_inline_disable_moves_finding_to_suppressed(self, analyse):
        report = analyse("spots/suppressed.py")
        assert report.findings == []
        assert len(report.suppressed) == EXPECTED_SUPPRESSED
        assert report.ok()

    def test_disable_by_rule_name_and_disable_all(self, analyse):
        report = analyse("spots/suppressed.py")
        by_line = {f.line: f for f in report.suppressed}
        lines = sorted(by_line)
        assert "time.perf_counter()" in by_line[lines[0]].message
        assert "numpy.random.rand()" in by_line[lines[1]].message

    def test_suppressed_findings_stay_visible_in_output(self, analyse):
        report = analyse("spots/suppressed.py")
        text = render(report, "human")
        assert "(suppressed inline)" in text


class TestBaseline:
    def test_write_then_load_grandfathers_everything(self, analyse, tmp_path):
        report = analyse()
        assert len(report.findings) == EXPECTED_FINDINGS
        path = str(tmp_path / "baseline.json")
        assert Baseline.write(path, report.findings) == EXPECTED_FINDINGS
        rerun = analyse(baseline=Baseline.load(path))
        assert rerun.findings == []
        assert len(rerun.baselined) == EXPECTED_FINDINGS
        assert rerun.ok()

    def test_matching_ignores_line_numbers(self, analyse, tmp_path):
        report = analyse()
        path = str(tmp_path / "baseline.json")
        Baseline.write(path, report.findings)
        baseline = Baseline.load(path)
        shifted = dataclasses.replace(report.findings[0], line=report.findings[0].line + 40)
        assert baseline.matches(shifted)

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert len(Baseline.load(str(tmp_path / "absent.json"))) == 0

    def test_unsupported_format_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format_version": 99, "entries": []}))
        with pytest.raises(ValueError, match="unsupported baseline format"):
            Baseline.load(str(path))


class TestRuleFiltering:
    def test_checker_name_selects_whole_family(self, analyse):
        report = analyse(rules=["lock-discipline"])
        rules = {f.rule for f in report.findings}
        assert rules == {"guarded-by", "admission-backlog"}

    def test_rule_id_selects_single_rule(self, analyse):
        report = analyse(rules=["admission-backlog"])
        assert {f.rule for f in report.findings} == {"admission-backlog"}
        assert len(report.findings) == 1


class TestParseErrors:
    def test_syntax_error_fails_the_gate(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        report = run_analysis(baseline=Baseline(), root=str(tmp_path))
        assert len(report.parse_errors) == 1
        assert not report.ok()


class TestOutput:
    def test_json_round_trips_with_stable_counts(self, analyse):
        report = analyse()
        payload = json.loads(render(report, "json"))
        assert payload["ok"] is False
        assert payload["counts"]["findings"] == EXPECTED_FINDINGS
        assert payload["counts"]["suppressed"] == EXPECTED_SUPPRESSED
        assert payload["counts"]["parse_errors"] == 0
        assert len(payload["findings"]) == EXPECTED_FINDINGS
        first = payload["findings"][0]
        assert set(first) == {"rule", "path", "line", "severity", "symbol", "message"}

    def test_human_output_has_location_lines_and_summary(self, analyse):
        report = analyse()
        text = render(report, "human")
        assert f"{EXPECTED_FINDINGS} finding(s)" in text
        assert "files scanned" in text
        assert any(line.count(":") >= 3 for line in text.splitlines())
