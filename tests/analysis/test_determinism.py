"""Determinism checker: clocks, global RNGs and set-order dependence."""


class TestCriticalModules:
    def test_every_seeded_violation_is_found(self, analyse):
        report = analyse("raster/hotloop.py")
        assert len(report.findings) == 6
        assert {f.rule for f in report.findings} == {"determinism"}
        messages = "\n".join(f.message for f in report.findings)
        assert "wall-clock call time.perf_counter()" in messages
        assert "global stdlib RNG random.random()" in messages
        assert "global numpy RNG numpy.random.rand()" in messages
        assert "for-loop over a set iterates in hash order" in messages
        assert "list() over a set materialises hash order" in messages
        assert "comprehension over a set iterates in hash order" in messages

    def test_findings_carry_enclosing_symbol(self, analyse):
        report = analyse("raster/hotloop.py")
        wall = next(f for f in report.findings if "wall-clock" in f.message)
        assert wall.symbol == "timed_render"

    def test_seeded_generator_idioms_pass(self, analyse):
        report = analyse("raster/seeded_ok.py")
        assert report.findings == []
        assert report.ok()


class TestModuleTargeting:
    def test_wall_clock_is_legal_off_the_critical_path(self, analyse):
        assert analyse("machine/wallclock_ok.py").findings == []

    def test_global_rng_is_legal_off_the_critical_path(self, analyse):
        assert analyse("machine/scratch_ok.py").findings == []
