"""CLI surfaces: ``python -m tools.analysis`` and ``repro.cli lint``."""

import json
import os

from tools.analysis.__main__ import main as analysis_main

from repro.cli import main as cli_main

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
FIXTURE_SRC = os.path.join(FIXTURES, "src", "repro")

HOTLOOP = os.path.join(FIXTURE_SRC, "raster", "hotloop.py")
LOCKSBAD = os.path.join(FIXTURE_SRC, "service", "locksbad.py")


def _fixture_args(*extra):
    return [FIXTURE_SRC, "--root", FIXTURES, "--no-baseline", *extra]


class TestAnalysisMain:
    def test_repo_gate_passes(self, capsys):
        assert analysis_main([]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_fixture_tree_fails_with_findings(self, capsys):
        assert analysis_main(_fixture_args()) == 1
        out = capsys.readouterr().out
        assert "determinism" in out
        assert "guarded-by" in out

    def test_json_format(self, capsys):
        assert analysis_main(_fixture_args("--format", "json")) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts"]["findings"] == 24
        assert payload["counts"]["suppressed"] == 2

    def test_rule_filter_scopes_the_gate(self, capsys):
        assert analysis_main(
            [LOCKSBAD, "--root", FIXTURES, "--no-baseline", "--rule", "determinism"]
        ) == 0
        assert analysis_main(
            [HOTLOOP, "--root", FIXTURES, "--no-baseline", "--rule", "determinism"]
        ) == 1

    def test_write_baseline_then_pass(self, capsys, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        args = [FIXTURE_SRC, "--root", FIXTURES, "--baseline", baseline]
        assert analysis_main([*args, "--write-baseline"]) == 0
        assert os.path.exists(baseline)
        assert "wrote 24 baseline entries" in capsys.readouterr().out
        # Grandfathered: the same tree now passes...
        assert analysis_main(args) == 0
        assert "24 baselined" in capsys.readouterr().out
        # ...unless the baseline is ignored.
        assert analysis_main([*args, "--no-baseline"]) == 1

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("determinism", "lock-discipline", "fingerprint-completeness",
                     "pool-baseexception", "atomic-write"):
            assert rule in out


class TestReproCliLint:
    def test_lint_subcommand_forwards_flags(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        assert "determinism" in capsys.readouterr().out

    def test_lint_subcommand_propagates_gate_failure(self, capsys):
        code = cli_main(["lint", *_fixture_args("--format", "json")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["findings"] == 24

    def test_lint_subcommand_passes_on_repo(self, capsys):
        assert cli_main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_listed_in_help(self):
        from repro.cli import build_parser

        assert "lint" in build_parser().format_help()
