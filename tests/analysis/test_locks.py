"""Lock-discipline checker: guarded-by annotations + admission backlog."""


def _guarded(report):
    return [f for f in report.findings if f.rule == "guarded-by"]


class TestGuardedBy:
    def test_unlocked_accesses_are_flagged(self, analyse):
        report = analyse("service/locksbad.py")
        findings = _guarded(report)
        assert len(findings) == 4
        assert {f.symbol for f in findings} == {
            "BadScheduler.submit",      # len(self._inflight) outside the lock
            "BadScheduler.snapshot",    # plain unlocked read
            "BadScheduler.deferred",    # closure created under the lock
            "ChildScheduler.peek",      # guard inherited from the base class
        }
        for f in findings:
            assert "_inflight" in f.message
            assert "guarded-by _lock" in f.message

    def test_closure_created_under_lock_resets_held_set(self, analyse):
        findings = _guarded(analyse("service/locksbad.py"))
        assert any(f.symbol == "BadScheduler.deferred" for f in findings)

    def test_same_module_subclass_inherits_guards(self, analyse):
        findings = _guarded(analyse("service/locksbad.py"))
        assert any(f.symbol == "ChildScheduler.peek" for f in findings)

    def test_locked_suffix_methods_are_exempt(self, analyse):
        findings = _guarded(analyse("service/locksbad.py"))
        assert not any("drain_locked" in f.symbol for f in findings)

    def test_disciplined_class_passes(self, analyse):
        report = analyse("service/locksgood.py")
        assert report.findings == []
        assert report.ok()


class TestAdmissionBacklog:
    def test_raw_len_backlog_is_flagged(self, analyse):
        report = analyse("service/locksbad.py")
        findings = [f for f in report.findings if f.rule == "admission-backlog"]
        assert len(findings) == 1
        assert findings[0].symbol == "BadScheduler.submit"
        assert "raw len(self._inflight)" in findings[0].message

    def test_queued_backlog_passes(self, analyse):
        report = analyse("service/locksgood.py")
        assert not any(f.rule == "admission-backlog" for f in report.findings)
