"""The shipped bugs this pass exists for must stay dead.

Each test copies a real source file into a scratch repo layout,
re-introduces a bug a previous PR fixed via exact string replacement,
and asserts the gate catches the mutation.  The replacement asserts the
fixed pattern still exists in the shipped file, so a refactor that
rewrites the code invalidates the test loudly instead of silently.
"""

import os

from tools.analysis.baseline import Baseline
from tools.analysis.runner import repo_root, run_analysis

REPO = repo_root()

BACKENDS = os.path.join("src", "repro", "parallel", "backends.py")
SCHEDULER = os.path.join("src", "repro", "service", "scheduler.py")


def _scratch_tree(tmp_path, rel, old=None, new=None):
    """Copy ``REPO/rel`` into ``tmp_path/rel``, optionally mutated."""
    with open(os.path.join(REPO, rel), encoding="utf-8") as fh:
        source = fh.read()
    if old is not None:
        assert old in source, (
            f"pattern {old!r} gone from {rel}; update this regression test"
        )
        source = source.replace(old, new)
    dest = tmp_path / rel
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text(source, encoding="utf-8")
    return str(tmp_path)


def _run(root):
    return run_analysis(baseline=Baseline(), root=root)


class TestShippedBugsStayDead:
    def test_pool_discard_narrowed_to_exception_is_caught(self, tmp_path):
        # PR 5 fixed ProcessBackend.run discarding its pool under
        # `except Exception`, which a KeyboardInterrupt skips.
        root = _scratch_tree(
            tmp_path, BACKENDS,
            old="except BaseException as exc:",
            new="except Exception as exc:",
        )
        report = _run(root)
        assert any(f.rule == "pool-baseexception" for f in report.findings)

    def test_admission_fed_raw_inflight_len_is_caught(self, tmp_path):
        # PR 5 fixed the scheduler handing admission the raw in-flight
        # count (including already-executing renders), which over-shed.
        # The async-spine scheduler keeps the same invariant with
        # loop-confined state: backlog = flights minus executing.
        root = _scratch_tree(
            tmp_path, SCHEDULER,
            old="self._admit(len(self._flights) - self._executor.active)",
            new="self._admit(len(self._flights))",
        )
        report = _run(root)
        assert any(f.rule == "admission-backlog" for f in report.findings)

    def test_unmutated_copies_pass(self, tmp_path):
        _scratch_tree(tmp_path, BACKENDS)
        root = _scratch_tree(tmp_path, SCHEDULER)
        report = _run(root)
        assert report.findings == []
        assert report.parse_errors == []
