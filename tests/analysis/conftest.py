"""Shared harness for the static-analysis suite.

The fixture tree under ``fixtures/`` mirrors the repo layout
(``src/repro/...``) so that module names derived by the runner match
the checkers' ``repro.*`` targeting patterns; ``analyse`` runs the pass
rooted there with an empty baseline unless a test says otherwise.
"""

import os

import pytest

from tools.analysis.baseline import Baseline
from tools.analysis.runner import run_analysis

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
FIXTURE_SRC = os.path.join(FIXTURES, "src", "repro")


@pytest.fixture
def analyse():
    def run(relpath=None, rules=None, baseline=None, checkers=None):
        paths = [os.path.join(FIXTURE_SRC, relpath)] if relpath else None
        return run_analysis(
            paths=paths,
            rules=rules,
            baseline=Baseline() if baseline is None else baseline,
            root=FIXTURES,
            checkers=checkers,
        )

    return run
