"""Async-discipline checker: no blocking primitives on the event loop."""

from tools.analysis.baseline import Baseline
from tools.analysis.runner import run_analysis


def _blocking(report):
    return [f for f in report.findings if f.rule == "async-blocking"]


class TestBlockingShapes:
    def test_every_blocking_shape_is_found(self, analyse):
        findings = _blocking(analyse("runtime/loopbad.py"))
        assert {f.symbol for f in findings} == {
            "BadPump.throttle",  # time.sleep on the loop
            "BadPump.dial",      # socket.create_connection in async code
            "BadPump.pump",      # Event.wait and sock.recv, never awaited
        }
        assert len(findings) == 4

    def test_messages_name_the_remedy(self, analyse):
        by_symbol = {}
        for f in _blocking(analyse("runtime/loopbad.py")):
            by_symbol.setdefault(f.symbol, []).append(f)
        assert "await asyncio.sleep" in by_symbol["BadPump.throttle"][0].message
        assert "asyncio streams" in by_symbol["BadPump.dial"][0].message
        for f in by_symbol["BadPump.pump"]:
            assert "blocks the event loop" in f.message

    def test_off_loop_sync_closure_is_exempt(self, analyse):
        findings = _blocking(analyse("runtime/loopbad.py"))
        assert not any(f.symbol.endswith("offload") for f in findings)
        assert not any(f.symbol.endswith("thunk") for f in findings)


class TestDisciplinedCode:
    def test_awaited_twins_and_offloads_pass(self, analyse):
        report = analyse("runtime/loopgood.py")
        assert report.findings == []
        assert report.ok()

    def test_call_fed_to_an_await_combinator_counts_as_awaited(self, analyse):
        # loopgood awaits asyncio.wait_for(flight.wait(), 1.0): the inner
        # .wait() call sits under the await and must not be flagged.
        assert _blocking(analyse("runtime/loopgood.py")) == []

    def test_sync_methods_outside_async_defs_are_ignored(self, analyse):
        findings = _blocking(analyse("runtime/loopgood.py"))
        assert not any("blocking_shim" in f.symbol for f in findings)


class TestScoping:
    def test_modules_off_the_spine_are_not_scanned(self, analyse):
        # The same blocking shapes in a non-runtime/cluster module are
        # out of scope: blocking is legal off the loop.
        report = analyse("service/locksbad.py")
        assert not _blocking(report)


def test_runtime_and_cluster_tiers_are_clean():
    """The shipped spine obeys its own discipline (S4 acceptance bar)."""
    report = run_analysis(rules=["async-discipline"], baseline=Baseline())
    assert report.parse_errors == []
    assert _blocking(report) == []
    assert report.findings == []
