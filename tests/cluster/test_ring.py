"""Property-style tests of the consistent-hash ring.

The cluster's correctness rests on three ring properties: ownership is
*stable* (same node set → same owner, in any process, forever),
*balanced* (no node owns a wildly outsized share of the key space), and
*minimally disturbed* by membership changes (only the joining/leaving
node's keys move).  Each is asserted over hundreds of sha256-style keys
rather than hand-picked examples.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.errors import ServiceError
from repro.service.keys import ring_hash

NODES = ["alpha", "beta", "gamma", "delta"]


def _keys(n: int, salt: str = "") -> "list[str]":
    return [hashlib.sha256(f"{salt}{i}".encode()).hexdigest() for i in range(n)]


def test_spread_is_roughly_uniform():
    ring = HashRing(NODES)
    keys = _keys(2000)
    counts = ring.spread(keys)
    assert sum(counts.values()) == len(keys)
    fair = len(keys) / len(NODES)
    for node, count in counts.items():
        # 64 virtual points per node keeps every share within a factor
        # of ~2 of fair on thousands of keys; a broken hash (or one
        # virtual point per node) blows far past this.
        assert 0.5 * fair <= count <= 2.0 * fair, (
            f"{node} owns {count}/{len(keys)} keys (fair share {fair:.0f})"
        )


def test_removal_remaps_only_the_departed_nodes_keys():
    ring = HashRing(NODES)
    keys = _keys(600)
    before = {k: ring.owner(k) for k in keys}
    assert ring.discard("gamma")
    after = {k: ring.owner(k) for k in keys}
    for key in keys:
        if before[key] == "gamma":
            assert after[key] != "gamma"
        else:
            assert after[key] == before[key], (
                "a key not owned by the departed node changed owner"
            )


def test_join_steals_only_what_it_now_owns():
    ring = HashRing(NODES)
    keys = _keys(600)
    before = {k: ring.owner(k) for k in keys}
    assert ring.add("epsilon")
    after = {k: ring.owner(k) for k in keys}
    moved = [k for k in keys if after[k] != before[k]]
    assert moved, "a new node must take over some keys"
    assert all(after[k] == "epsilon" for k in moved)
    # ~1/(N+1) of the key space moves, not a reshuffle.
    assert len(moved) <= 0.5 * len(keys)


def test_ownership_is_stable_across_processes():
    keys = _keys(50, salt="xproc")
    ring = HashRing(NODES)
    local = {k: ring.owner(k) for k in keys}
    script = (
        "import json, sys\n"
        "from repro.cluster.ring import HashRing\n"
        "nodes, keys = json.load(sys.stdin)\n"
        "ring = HashRing(nodes)\n"
        "print(json.dumps({k: ring.owner(k) for k in keys}))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    # A salted built-in hash() would differ between interpreter runs;
    # sha256-derived positions must not.
    env["PYTHONHASHSEED"] = "random"
    proc = subprocess.run(
        [sys.executable, "-c", script],
        input=json.dumps([NODES, keys]),
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert json.loads(proc.stdout) == local


def test_owner_is_deterministic_within_a_process():
    ring_a = HashRing(NODES)
    ring_b = HashRing(list(reversed(NODES)))  # insertion order is irrelevant
    for key in _keys(200):
        assert ring_a.owner(key) == ring_b.owner(key)


def test_ring_hash_is_sha256_derived():
    token = "node-0#17"
    expected = int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )
    assert ring_hash(token) == expected


def test_membership_bookkeeping():
    ring = HashRing()
    assert len(ring) == 0
    assert ring.add("a")
    assert not ring.add("a")  # idempotent
    assert "a" in ring
    assert ring.nodes() == {"a"}
    assert ring.discard("a")
    assert not ring.discard("a")
    assert len(ring) == 0


def test_empty_ring_and_bad_arguments_raise():
    ring = HashRing()
    with pytest.raises(ServiceError, match="empty"):
        ring.owner("deadbeef")
    with pytest.raises(ServiceError, match="non-empty"):
        ring.add("")
    with pytest.raises(ServiceError, match="replicas"):
        HashRing(replicas=0)


def test_replicas_trade_off_is_live():
    # More virtual points, tighter spread — the knob actually does
    # something (coarse sanity, not a statistics exam).
    keys = _keys(2000)

    def imbalance(replicas: int) -> float:
        counts = HashRing(NODES, replicas=replicas).spread(keys)
        fair = len(keys) / len(NODES)
        return max(abs(c - fair) for c in counts.values()) / fair

    assert imbalance(DEFAULT_REPLICAS) <= imbalance(1)
