"""Manifest publish → digest-sync round trips, against real delta chunks.

A node publishes what its blob store holds; an empty peer syncs by
digest and must end up byte-identical — including chunk-level dedup
against what it already has, re-hash verification of every fetched
payload, and refusal to store anything a corrupting source hands it.
The chunks used are the real thing: delta-transport output from
:mod:`repro.anim.delta`, whose store keys are *not* hashes of the
shipped payload (stored-form digest vs compressed bytes) — exactly the
asymmetry ``payload_sha256`` exists for.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.anim.delta import DeltaDecoder, DeltaEncoder
from repro.cluster.manifest import (
    MANIFEST_VERSION,
    ChunkEntry,
    ClusterManifest,
    publish_store,
    sync_manifest,
)
from repro.errors import ServiceError
from repro.service.cache import MemoryBlobStore


def _delta_store(n_frames: int = 5, size: int = 16, seed: int = 0):
    """A blob store populated by the real delta encoder, plus its manifest."""
    rng = np.random.default_rng(seed)
    store = MemoryBlobStore()
    encoder = DeltaEncoder(store, "seq-test", keyframe_every=3)
    base = rng.standard_normal((size, size))
    textures = {}
    for t in range(n_frames):
        # Temporally coherent frames, the delta transport's habitat.
        texture = base + 0.01 * t + 0.001 * rng.standard_normal((size, size))
        textures[t] = np.ascontiguousarray(texture, dtype=np.float64)
        encoder.add_frame(t, textures[t], frame_digest=f"fd-{t}")
    return store, encoder, textures


def test_publish_covers_every_stored_blob():
    store, encoder, _ = _delta_store()
    manifest = publish_store(store, "node-a")
    assert manifest.node_id == "node-a"
    assert {e.digest for e in manifest.chunks} == set(store.iter_blob_digests())
    for entry in manifest.chunks:
        payload = store.get_bytes(entry.digest)
        assert entry.nbytes == len(payload)
        assert entry.payload_sha256 == hashlib.sha256(payload).hexdigest()


def test_sync_into_empty_peer_reproduces_every_frame():
    store, encoder, textures = _delta_store()
    manifest = publish_store(store, "node-a")
    peer_store = MemoryBlobStore()
    report = sync_manifest(manifest, store.get_bytes, peer_store)
    assert report.complete
    assert report.fetched == len(manifest.chunks)
    assert report.deduped == report.corrupt == report.missing == 0
    # The synced store decodes every frame bit-identically.
    decoder = DeltaDecoder(peer_store, encoder.manifest())
    for t, reference in textures.items():
        decoded = decoder.decode(t)
        assert decoded is not None
        assert decoded.tobytes() == reference.tobytes()


def test_second_sync_dedups_at_chunk_level():
    store, _, _ = _delta_store()
    manifest = publish_store(store, "node-a")
    peer_store = MemoryBlobStore()
    fetches = []

    def counting_fetch(digest):
        fetches.append(digest)
        return store.get_bytes(digest)

    first = sync_manifest(manifest, counting_fetch, peer_store)
    second = sync_manifest(manifest, counting_fetch, peer_store)
    assert first.fetched == len(manifest.chunks)
    assert second.fetched == 0
    assert second.deduped == len(manifest.chunks)
    assert second.bytes_fetched == 0
    assert len(fetches) == len(manifest.chunks)  # nothing shipped twice


def test_partial_overlap_fetches_only_the_gap():
    store, _, _ = _delta_store()
    manifest = publish_store(store, "node-a")
    peer_store = MemoryBlobStore()
    have = [e.digest for e in manifest.chunks[: len(manifest.chunks) // 2]]
    for digest in have:
        peer_store.put_bytes(digest, store.get_bytes(digest))
    report = sync_manifest(manifest, store.get_bytes, peer_store)
    assert report.complete
    assert report.deduped == len(have)
    assert report.fetched == len(manifest.chunks) - len(have)


def test_corrupt_payload_is_rejected_and_never_stored():
    store, _, _ = _delta_store()
    manifest = publish_store(store, "node-a")
    peer_store = MemoryBlobStore()
    victim = manifest.chunks[0].digest

    def corrupting_fetch(digest):
        payload = store.get_bytes(digest)
        if digest == victim:
            return payload[:-1] + bytes([payload[-1] ^ 0xFF])
        return payload

    report = sync_manifest(manifest, corrupting_fetch, peer_store)
    assert report.corrupt == 1
    assert not report.complete
    # The poison never touched the store; everything else arrived.
    assert not peer_store.contains_bytes(victim)
    assert report.fetched == len(manifest.chunks) - 1


def test_missing_chunks_are_counted_not_fabricated():
    store, _, _ = _delta_store()
    manifest = publish_store(store, "node-a")
    peer_store = MemoryBlobStore()
    report = sync_manifest(manifest, lambda _d: None, peer_store)
    assert report.missing == len(manifest.chunks)
    assert report.fetched == 0
    assert len(peer_store) == 0


def test_manifest_dict_round_trip_preserves_digest():
    store, encoder, _ = _delta_store()
    sequences = (encoder.manifest().to_dict(),)
    manifest = publish_store(store, "node-a", sequences=sequences)
    clone = ClusterManifest.from_dict(manifest.to_dict())
    assert clone == manifest
    assert clone.digest == manifest.digest
    assert clone.sequences == sequences


def test_manifest_digest_covers_every_field():
    base = ClusterManifest(
        node_id="n", chunks=(ChunkEntry("d", "p", 3),), sequences=({"a": 1},)
    )
    variants = [
        ClusterManifest(node_id="m", chunks=base.chunks, sequences=base.sequences),
        ClusterManifest(node_id="n", chunks=(), sequences=base.sequences),
        ClusterManifest(node_id="n", chunks=base.chunks, sequences=()),
        ClusterManifest(
            node_id="n", chunks=(ChunkEntry("d", "p", 4),), sequences=base.sequences
        ),
    ]
    digests = {base.digest} | {v.digest for v in variants}
    assert len(digests) == 1 + len(variants)


def test_foreign_and_future_payloads_rejected():
    with pytest.raises(ServiceError, match="kind"):
        ClusterManifest.from_dict({"kind": "something-else"})
    good = ClusterManifest(node_id="n", chunks=()).to_dict()
    good["version"] = MANIFEST_VERSION + 1
    with pytest.raises(ServiceError, match="version"):
        ClusterManifest.from_dict(good)
    with pytest.raises(ServiceError, match="chunk entry"):
        ChunkEntry.from_dict({"digest": "d"})


def test_publish_skips_blobs_evicted_mid_snapshot():
    store, _, _ = _delta_store()
    digests = list(store.iter_blob_digests())

    class RacingStore:
        """First blob vanishes between listing and read."""

        def iter_blob_digests(self):
            return iter(digests)

        def get_bytes(self, digest):
            if digest == digests[0]:
                return None
            return store.get_bytes(digest)

    manifest = publish_store(RacingStore(), "node-a")
    assert {e.digest for e in manifest.chunks} == set(digests[1:])
