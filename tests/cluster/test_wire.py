"""The wire protocol's contract: corrupt frames fail loudly, never decode.

Every frame carries a SHA-256 over header and body; these tests flip
bytes at every interesting offset, truncate mid-frame, announce absurd
lengths and close sockets at both clean and dirty boundaries, asserting
the receiver always raises :class:`WireError`/:class:`WireClosed` and
never hands back wrong bytes.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.cluster import wire


def _pair():
    return socket.socketpair()


def _roundtrip(kind, header, body=b""):
    a, b = _pair()
    try:
        wire.send_message(a, kind, header, body)
        return wire.recv_message(b)
    finally:
        a.close()
        b.close()


def test_round_trip_all_kinds():
    for kind in wire.KIND_NAMES:
        got_kind, header, body = _roundtrip(
            kind, {"n": kind, "s": "x"}, bytes([kind]) * 7
        )
        assert got_kind == kind
        assert header == {"n": kind, "s": "x"}
        assert body == bytes([kind]) * 7


def test_empty_header_and_body():
    kind, header, body = _roundtrip(wire.PING, {})
    assert (kind, header, body) == (wire.PING, {}, b"")


@pytest.mark.parametrize(
    "mutate, match",
    [
        (lambda f: b"XXXX" + f[4:], "magic"),
        (lambda f: f[:4] + bytes([99]) + f[5:], "kind"),
        # A flipped byte inside the JSON header or the body leaves the
        # framing intact but breaks the checksum.
        (lambda f: f[:18] + bytes([f[18] ^ 0xFF]) + f[19:], "checksum"),
        (lambda f: f[:-40] + bytes([f[-40] ^ 0x01]) + f[-39:], "checksum"),
        # A corrupted digest trailer is indistinguishable from corrupted
        # content — same rejection.
        (lambda f: f[:-1] + bytes([f[-1] ^ 0x80]), "checksum"),
    ],
)
def test_corrupted_frames_raise_wire_error(mutate, match):
    frame = wire.encode_frame(wire.TEXTURE_RESPONSE, {"k": 1}, b"payload-bytes")
    a, b = _pair()
    try:
        a.sendall(mutate(frame))
        a.close()
        with pytest.raises(wire.WireError, match=match):
            wire.recv_message(b)
    finally:
        b.close()


@pytest.mark.parametrize("cut", [1, 10, 30, -5])
def test_truncated_frames_raise_mid_frame_not_closed(cut):
    frame = wire.encode_frame(wire.CHUNK_RESPONSE, {"found": True}, b"x" * 64)
    a, b = _pair()
    try:
        a.sendall(frame[:cut] if cut > 0 else frame[:cut])
        a.close()
        with pytest.raises(wire.WireError) as excinfo:
            wire.recv_message(b)
        assert not isinstance(excinfo.value, wire.WireClosed)
    finally:
        b.close()


def test_clean_close_raises_wire_closed():
    a, b = _pair()
    a.close()
    try:
        with pytest.raises(wire.WireClosed):
            wire.recv_message(b)
    finally:
        b.close()


def test_oversize_announcements_rejected_before_allocation():
    good = wire.encode_frame(wire.PING, {})
    prefix = wire._PREFIX
    for header_len, body_len in (
        (wire.MAX_HEADER_BYTES + 1, 0),
        (0, wire.MAX_BODY_BYTES + 1),
    ):
        evil = prefix.pack(wire.MAGIC, wire.PING, header_len, body_len) + good[prefix.size:]
        a, b = _pair()
        try:
            a.sendall(evil)
            a.close()
            with pytest.raises(wire.WireError, match="cap"):
                wire.recv_message(b)
        finally:
            b.close()


def test_encode_rejects_unknown_kind():
    with pytest.raises(wire.WireError, match="kind"):
        wire.encode_frame(42, {})


def test_malformed_json_header_rejected():
    import hashlib
    import struct

    header_bytes = b"not json at all"
    digest = hashlib.sha256(header_bytes).digest()
    frame = (
        struct.pack("!4sBIQ", wire.MAGIC, wire.PING, len(header_bytes), 0)
        + header_bytes
        + digest
    )
    a, b = _pair()
    try:
        a.sendall(frame)
        a.close()
        with pytest.raises(wire.WireError, match="malformed"):
            wire.recv_message(b)
    finally:
        b.close()


# -- texture payloads ---------------------------------------------------------
def test_texture_round_trip_is_bit_identical():
    rng = np.random.default_rng(0)
    texture = rng.standard_normal((33, 17))
    header, body = wire.encode_texture(texture)
    decoded = wire.decode_texture(header, body)
    assert decoded.dtype == texture.dtype
    assert np.array_equal(decoded, texture)
    assert decoded.tobytes() == np.ascontiguousarray(texture).tobytes()


def test_texture_survives_a_full_wire_round_trip():
    texture = np.linspace(0.0, 1.0, 64).reshape(8, 8)
    header, body = wire.encode_texture(texture)
    kind, got_header, got_body = _roundtrip(wire.TEXTURE_RESPONSE, header, body)
    assert np.array_equal(wire.decode_texture(got_header, got_body), texture)


def test_texture_size_mismatch_rejected():
    header, body = wire.encode_texture(np.zeros((4, 4)))
    with pytest.raises(wire.WireError, match="announces"):
        wire.decode_texture(header, body[:-8])
    with pytest.raises(wire.WireError, match="announces"):
        wire.decode_texture({**header, "shape": [8, 8]}, body)


def test_texture_malformed_header_rejected():
    _, body = wire.encode_texture(np.zeros((4, 4)))
    with pytest.raises(wire.WireError, match="malformed"):
        wire.decode_texture({"shape": [4, 4]}, body)  # no dtype
    with pytest.raises(wire.WireError, match="malformed"):
        wire.decode_texture({"shape": ["x"], "dtype": "<f8"}, body)
