"""Fault injection: dead peers, flaky sockets, corrupting proxies.

The cluster's availability contract is *degrade to extra renders, never
to errors or wrong bytes*: killing a node mid-scrub re-routes its key
space to survivors (bounded-backoff retry at the new owner), a restart
rejoins with its disk cache intact, and a peer that drops or corrupts
frames costs retries — the retries are visible, the corruption never
is.
"""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.cluster import wire
from repro.cluster.peer import PeerClient, PeerUnavailable
from repro.errors import ServiceError
from repro.service import scrubbing_trace


def test_kill_mid_scrub_rebalances_to_survivors(make_fleet, make_single_node):
    fleet = make_fleet(3)
    trace = scrubbing_trace(40, 8, seed=11)
    split = len(trace) // 2
    for i, frame in enumerate(trace[:split]):
        fleet.request(i % 3, frame)
    fleet.kill(1)
    survivors = fleet.live_indices()
    responses = [
        (frame, fleet.request(survivors[i % len(survivors)], frame))
        for i, frame in enumerate(trace[split:])
    ]
    single = make_single_node()
    for frame, texture in responses:
        assert np.array_equal(single.request(frame).texture, texture)
    # Survivors agree the dead node is gone.
    for i in survivors:
        assert "node-1" not in fleet.nodes[i].ring.nodes()
    # Reconvergence cost is bounded: at worst the dead node's share of
    # the distinct frames renders again, never the whole trace.
    assert fleet.total_renders() <= 2 * len(set(trace))


def test_restart_rejoins_with_disk_cache_intact(make_fleet):
    fleet = make_fleet(3)
    frames = list(range(6))
    for frame in frames:
        fleet.request(frame % 3, frame)
    fleet.kill(2)
    for frame in frames:  # survivors re-own node-2's keys
        fleet.request(frame % 2, frame)
    renders_before_restart = fleet.total_renders()
    fleet.restart(2)
    # The mesh re-learned the member...
    for i in fleet.live_indices():
        assert set(fleet.nodes[i].ring.nodes()) == {"node-0", "node-1", "node-2"}
    # ...and traffic through it is served without a single fresh render:
    # every key is in someone's cache (node-2's own disk survived the
    # restart; the rest live on the survivors).
    for frame in frames:
        fleet.request(2, frame)
    assert fleet.total_renders() == renders_before_restart


def test_requests_on_a_killed_nodes_client_fail_loudly(make_fleet):
    fleet = make_fleet(2)
    fleet.request(0, 0)
    fleet.kill(0)
    with pytest.raises(ServiceError):
        fleet.request(0, 0)  # the driver client for a dead node
    # ...but the surviving node still serves the whole key space.
    assert np.asarray(fleet.request(1, 0)).shape == (32, 32)


# -- hostile peers: drop and corrupt at the socket level ----------------------
class _FaultyServer:
    """A fake node whose first *n_faults* responses are sabotaged."""

    def __init__(self, n_faults: int, mode: str):
        self.n_faults = n_faults
        self.mode = mode
        self.requests_seen = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self._listener.settimeout(5.0)
        self.address = self._listener.getsockname()
        self._closed = False
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except (socket.timeout, OSError):
                continue
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn):
        try:
            while True:
                try:
                    kind, header, body = wire.recv_message(conn)
                except (wire.WireError, OSError):
                    return
                self.requests_seen += 1
                faulty = self.requests_seen <= self.n_faults
                if faulty and self.mode == "drop":
                    return  # vanish mid-request: connection reset/EOF
                frame = wire.encode_frame(wire.PONG, {"node": "faulty"})
                if faulty and self.mode == "corrupt":
                    # Flip a byte inside the header region: framing
                    # survives, the checksum does not.
                    i = wire._PREFIX.size + 2
                    frame = frame[:i] + bytes([frame[i] ^ 0xFF]) + frame[i + 1:]
                try:
                    conn.sendall(frame)
                except OSError:
                    return
        finally:
            conn.close()

    def close(self):
        self._closed = True
        self._listener.close()


@pytest.mark.parametrize("mode", ["drop", "corrupt"])
def test_client_retries_through_transient_faults(mode):
    server = _FaultyServer(n_faults=2, mode=mode)
    try:
        client = PeerClient(
            server.address, timeout=5.0, attempts=3, backoff_s=0.0,
            sleep=lambda _s: None,
        )
        try:
            # Two sabotaged responses burn two attempts; the third
            # succeeds.  The fault was retried, not surfaced — and a
            # corrupt frame was *rejected*, not decoded.
            header = client.ping()
            assert header["node"] == "faulty"
            assert server.requests_seen == 3
        finally:
            client.close()
    finally:
        server.close()


@pytest.mark.parametrize("mode", ["drop", "corrupt"])
def test_persistent_faults_surface_as_peer_unavailable(mode):
    server = _FaultyServer(n_faults=10**9, mode=mode)
    try:
        client = PeerClient(
            server.address, timeout=5.0, attempts=3, backoff_s=0.0,
            sleep=lambda _s: None,
        )
        try:
            with pytest.raises(PeerUnavailable):
                client.ping()
            assert server.requests_seen == 3  # bounded retry budget
        finally:
            client.close()
    finally:
        server.close()


def test_backoff_schedule_is_exponential_and_bounded():
    sleeps = []
    client = PeerClient(
        ("127.0.0.1", 1),  # nothing listens on port 1
        timeout=0.2,
        attempts=4,
        backoff_s=0.05,
        sleep=sleeps.append,
    )
    try:
        with pytest.raises(PeerUnavailable):
            client.ping()
    finally:
        client.close()
    assert sleeps == [0.05, 0.1, 0.2]  # attempts-1 waits, doubling


def test_unreachable_peer_is_marked_dead_and_keys_reroute(make_fleet):
    fleet = make_fleet(3)
    # Sever node 0's view of node 2 by feeding it a dead address, then
    # drive traffic through node 0 for keys node 2 owns: the proxy must
    # fail over (mark node 2 dead, re-route) and still answer.
    node0 = fleet.nodes[0]
    node0.mark_dead("node-2")
    node0.add_peer(
        "node-2", ("127.0.0.1", 1), timeout=0.2, attempts=2,
        backoff_s=0.0, sleep=lambda _s: None,
    )
    for frame in range(8):
        texture = fleet.request(0, frame)
        assert np.asarray(texture).shape == (32, 32)
    assert "node-2" not in node0.ring.nodes()
