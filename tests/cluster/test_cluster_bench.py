"""The `cluster-bench` / `serve-node` CLI entry points.

`cluster-bench` is the CI smoke guard for the sharded tier: a small
fleet replaying the default scrub trace must beat the no-share baseline
(every node caching alone) on total renders, floor-guarded for traces
already at the exactly-once floor.  `serve-node` is proven end-to-end:
a real subprocess, a real socket, bytes compared against a fresh
in-process render.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cli import main
from repro.cluster import analytic_source
from repro.cluster.peer import PeerClient
from repro.core.config import SpotNoiseConfig
from repro.service import FrameRenderer

SMALL = [
    "--requests", "60", "--frames", "12",
    "--spots", "60", "--size", "32", "--grid", "21",
]


def test_two_node_fleet_beats_no_share_baseline(capsys):
    rc = main(["cluster-bench", "--nodes", "2", *SMALL])
    out = capsys.readouterr().out
    assert rc == 0
    assert "renders saved vs no-share" in out
    assert "FAIL" not in out
    assert "bit-identical to fresh renders (3 sampled): yes" in out


def test_single_node_fleet_hits_the_floor_guard(capsys):
    # With one node the no-share baseline *is* the exactly-once floor;
    # the guard must recognise there is nothing to beat, not fail.
    rc = main(["cluster-bench", "--nodes", "1", *SMALL])
    out = capsys.readouterr().out
    assert rc == 0
    assert "nothing to beat (guard passes)" in out


def test_bench_counts_match_the_trace_arithmetic(capsys):
    rc = main(["cluster-bench", "--nodes", "3", *SMALL])
    out = capsys.readouterr().out
    assert rc == 0
    # Exactly-once fleet-wide: fleet renders == distinct frames.
    for line in out.splitlines():
        if line.startswith("fleet renders:"):
            fleet_renders = int(line.split()[2])
        elif line.startswith("distinct frames:"):
            distinct = int(line.split()[2])
    assert fleet_renders == distinct


@pytest.mark.parametrize("argv", [
    ["serve-node", "--peer", "garbage", "--duration", "0.1"],
    ["serve-node", "--peer", "id-but-no-address=", "--duration", "0.1"],
])
def test_serve_node_rejects_malformed_peer_specs(argv, capsys):
    assert main(argv) == 2
    assert "bad --peer" in capsys.readouterr().err


def test_serve_node_serves_real_sockets(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve-node",
            "--node-id", "solo", "--duration", "60",
            "--spots", "60", "--size", "32", "--grid", "21",
            "--disk", str(tmp_path / "cache"),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        assert "listening on" in line, line
        host, port = line.split("listening on ")[1].split()[0].split(":")
        client = PeerClient((host, int(port)), timeout=30.0)
        try:
            assert client.ping()["node"] == "solo"
            texture, header = client.request_texture(2)
            # Repeat traffic is a cache hit, not a re-render.
            again, _ = client.request_texture(2)
        finally:
            client.close()
        # Bit-identical to a fresh one-shot render of the same frame
        # under the CLI's default config.
        config = SpotNoiseConfig(
            n_spots=60, texture_size=32, spot_mode="standard",
            seed=0, backend="serial",
        )
        source = analytic_source(seed=0, grid=21)
        renderer = FrameRenderer(config)
        try:
            fresh = renderer.render(source(2))
        finally:
            renderer.close()
        assert np.array_equal(texture, fresh)
        assert np.array_equal(again, fresh)
    finally:
        proc.terminate()
        proc.wait(timeout=30)
