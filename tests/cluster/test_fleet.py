"""The headline guarantee: a fleet renders each distinct frame once.

A Zipf trace fanned across every node of a 3-node fleet must (a) reach
exactly ``len(distinct frames)`` renders fleet-wide — duplicates either
hit the owner's cache or coalesce into its in-flight render — and
(b) return bytes identical to a single-node :class:`TextureService`
serving the same source and config, no matter which node the request
landed on or whether it was proxied.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.service import zipf_trace


def test_zipf_trace_renders_each_distinct_frame_exactly_once(make_fleet):
    fleet = make_fleet(3)
    trace = zipf_trace(60, 10, seed=5)
    for i, frame in enumerate(trace):
        fleet.request(i % len(fleet), frame)
    assert fleet.total_renders() == len(set(trace))
    # The work actually spread: with 10 distinct frames on a 3-node
    # ring, no single node owns everything.
    per_node = fleet.node_renders()
    assert sum(1 for n in per_node if n > 0) >= 2
    # And requests that landed off-owner really were proxied.
    assert fleet.total_forwards() > 0


def test_every_response_bit_identical_to_single_node_service(
    make_fleet, make_single_node
):
    fleet = make_fleet(3)
    trace = zipf_trace(40, 8, seed=9)
    responses = [
        (frame, fleet.request(i % len(fleet), frame))
        for i, frame in enumerate(trace)
    ]
    single = make_single_node()
    for frame, texture in responses:
        reference = single.request(frame).texture
        assert np.asarray(texture).dtype == np.float64
        assert np.array_equal(reference, texture), (
            f"frame {frame} served by the fleet differs from single-node"
        )


def test_concurrent_duplicates_across_nodes_coalesce_globally(make_fleet):
    fleet = make_fleet(3)
    # The same frame lands on every node at once, repeatedly: global
    # single-flight must collapse all of it onto one render.
    with ThreadPoolExecutor(max_workers=6) as pool:
        futures = [
            pool.submit(fleet.request, i % len(fleet), 4) for i in range(12)
        ]
        textures = [f.result() for f in futures]
    assert fleet.total_renders() == 1
    for texture in textures[1:]:
        assert np.array_equal(textures[0], texture)


def test_repeat_traffic_is_all_cache_after_first_pass(make_fleet):
    fleet = make_fleet(2)
    frames = [0, 1, 2, 3]
    for frame in frames:
        fleet.request(frame % 2, frame)
    first_pass = fleet.total_renders()
    for _ in range(3):
        for frame in frames:
            fleet.request(frame % 2, frame)
    assert fleet.total_renders() == first_pass == len(frames)


def test_all_nodes_agree_on_ownership(make_fleet):
    fleet = make_fleet(3)
    digests = [fleet.nodes[0].service.render_digest(f) for f in range(12)]
    for digest in digests:
        owners = {node.ring.owner(digest) for node in fleet.nodes}
        assert len(owners) == 1


def test_single_node_fleet_serves_everything_locally(make_fleet):
    fleet = make_fleet(1)
    for frame in [0, 1, 0, 1]:
        fleet.request(0, frame)
    assert fleet.total_renders() == 2
    assert fleet.total_forwards() == 0


def test_fleet_rejects_auto_backend_config(tmp_path, field_source, fleet_config):
    from repro.cluster import LocalFleet

    auto = fleet_config.with_overrides(backend="auto")
    with pytest.raises(ServiceError, match="explicit backend"):
        LocalFleet(
            2, auto, field_source=field_source, base_dir=str(tmp_path / "auto")
        )
