"""Fixtures for the cluster tier: real in-process fleets on localhost.

Every fleet here is the genuine article — N :class:`ClusterNode`\\ s on
ephemeral ports speaking the framed wire protocol, each over its own
:class:`TextureService` with a private cache directory under pytest's
``tmp_path``.  The config is small (32 px, 60 spots, serial backend) so
a render costs milliseconds and whole fault suites stay fast; client
backoff sleeps are injected as no-ops for the same reason.
"""

from __future__ import annotations

import pytest

from repro.cluster import LocalFleet
from repro.cluster.fleet import analytic_source
from repro.core.config import SpotNoiseConfig
from repro.service.server import TextureService

#: Shared fleet config.  Explicit backend: "auto" would plan per node
#: and divergent fingerprints would break digest routing (the fleet
#: constructor rejects it; tests cover that too).
FLEET_CONFIG = SpotNoiseConfig(texture_size=32, n_spots=60, seed=7, backend="serial")

SOURCE_SEED = 3
SOURCE_GRID = 21


def _no_sleep(_s: float) -> None:
    return None


@pytest.fixture
def fleet_config() -> SpotNoiseConfig:
    return FLEET_CONFIG


@pytest.fixture
def field_source():
    return analytic_source(seed=SOURCE_SEED, grid=SOURCE_GRID)


@pytest.fixture
def make_single_node(tmp_path, field_source):
    """Factory for the single-node reference service (bit-identity oracle).

    Each call gets a *fresh* field source over the same seed/grid and a
    private cache directory, so the oracle shares nothing with the
    fleet under test but the deterministic inputs.
    """
    services = []

    def _make() -> TextureService:
        service = TextureService(
            analytic_source(seed=SOURCE_SEED, grid=SOURCE_GRID),
            FLEET_CONFIG,
            disk_dir=str(tmp_path / f"single-{len(services)}"),
            memoize_digests=True,
        )
        services.append(service)
        return service

    yield _make
    for service in services:
        service.close()


@pytest.fixture
def make_fleet(tmp_path, field_source):
    """Factory building fleets that are torn down even on test failure."""
    fleets = []

    def _make(n_nodes: int = 3, **kwargs) -> LocalFleet:
        kwargs.setdefault("field_source", field_source)
        kwargs.setdefault("base_dir", str(tmp_path / f"fleet-{len(fleets)}"))
        kwargs.setdefault("timeout", 30.0)
        kwargs.setdefault("backoff_s", 0.0)
        kwargs.setdefault("sleep", _no_sleep)
        fleet = LocalFleet(n_nodes, FLEET_CONFIG, **kwargs)
        fleets.append(fleet)
        return fleet

    yield _make
    for fleet in fleets:
        fleet.close()
