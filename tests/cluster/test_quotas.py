"""Per-tenant quotas: deterministic buckets, entry-node-only charging.

All clock-dependent behaviour runs on an injected fake clock — no
sleeps, no flakes.  The fleet-level tests pin the one subtle rule:
quota is charged where a request *enters* the fleet, and proxied hops
(``direct``) are never re-charged, so a tenant's effective rate does
not depend on how the ring happened to place its keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.quotas import TenantQuotas
from repro.errors import AdmissionError, ServiceError
from repro.service.admission import TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# -- the bucket itself --------------------------------------------------------
def test_bucket_burst_then_starve_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    assert [bucket.try_acquire() for _ in range(3)] == [True] * 3
    assert not bucket.try_acquire()  # burst spent, no time has passed
    clock.advance(0.5)  # refills 1 token
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_bucket_never_exceeds_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
    clock.advance(3600.0)
    assert bucket.tokens == pytest.approx(2.0)


def test_bucket_validates_parameters():
    with pytest.raises(ServiceError, match="rate"):
        TokenBucket(rate=0.0, burst=2.0)
    with pytest.raises(ServiceError, match="burst"):
        TokenBucket(rate=1.0, burst=0.5)


# -- the per-tenant layer -----------------------------------------------------
def test_tenants_draw_from_independent_buckets():
    clock = FakeClock()
    quotas = TenantQuotas(rate=1.0, burst=2.0, clock=clock)
    quotas.charge("alice")
    quotas.charge("alice")
    with pytest.raises(AdmissionError, match="alice"):
        quotas.charge("alice")
    # Alice's exhaustion costs Bob nothing.
    quotas.charge("bob")
    assert quotas.shed == 1
    assert quotas.tokens("bob") == pytest.approx(1.0)
    assert quotas.tokens("alice") == pytest.approx(0.0)


def test_quota_refills_over_time():
    clock = FakeClock()
    quotas = TenantQuotas(rate=2.0, burst=2.0, clock=clock)
    quotas.charge("t")
    quotas.charge("t")
    with pytest.raises(AdmissionError):
        quotas.charge("t")
    clock.advance(1.0)
    quotas.charge("t")  # refilled


def test_quota_validation_and_snapshot():
    with pytest.raises(ServiceError, match="rate"):
        TenantQuotas(rate=-1.0, burst=2.0)
    with pytest.raises(ServiceError, match="burst"):
        TenantQuotas(rate=1.0, burst=0.0)
    quotas = TenantQuotas(rate=1.0, burst=3.0, clock=FakeClock())
    with pytest.raises(ServiceError, match="tenant"):
        quotas.charge("")
    quotas.charge("a")
    snap = quotas.snapshot()
    assert snap["a"] == pytest.approx(2.0)


# -- quotas in a fleet --------------------------------------------------------
def test_fleet_sheds_over_quota_tenant_but_not_others(make_fleet):
    clock = FakeClock()
    fleet = make_fleet(
        2, quotas_factory=lambda: TenantQuotas(rate=0.001, burst=3.0, clock=clock)
    )
    for i in range(3):
        fleet.request(0, i, tenant="greedy")
    with pytest.raises(AdmissionError, match="greedy"):
        fleet.request(0, 3, tenant="greedy")
    # A different tenant, and the same tenant on the other entry node
    # (quota is per entry node), still get through.
    assert np.asarray(fleet.request(0, 3, tenant="modest")).shape == (32, 32)
    assert np.asarray(fleet.request(1, 3, tenant="greedy")).shape == (32, 32)


def test_proxied_hops_are_not_recharged(make_fleet):
    clock = FakeClock()
    fleet = make_fleet(
        3, quotas_factory=lambda: TenantQuotas(rate=0.001, burst=100.0, clock=clock)
    )
    # Land every request on node 0; most frames are owned elsewhere and
    # get proxied with direct=True.
    n_requests = 9
    for frame in range(n_requests):
        fleet.request(0, frame, tenant="t")
    assert fleet.total_forwards() > 0
    entry_quota = fleet.nodes[0].quotas
    owner_quotas = [fleet.nodes[i].quotas for i in (1, 2)]
    # The entry node charged once per request...
    assert entry_quota.tokens("t") == pytest.approx(100.0 - n_requests)
    # ...and the owners that actually served proxied work charged nothing.
    for quotas in owner_quotas:
        assert quotas.snapshot() == {}


def test_fleet_admission_error_over_the_wire_without_retry_storm(make_fleet):
    calls = []

    class CountingQuotas(TenantQuotas):
        def charge(self, tenant):
            calls.append(tenant)
            super().charge(tenant)

    clock = FakeClock()
    fleet = make_fleet(
        2, quotas_factory=lambda: CountingQuotas(rate=0.001, burst=1.0, clock=clock)
    )
    fleet.request(0, 0, tenant="t")
    calls.clear()
    with pytest.raises(AdmissionError, match="quota"):
        fleet.request(0, 1, tenant="t")
    # The shed came back as AdmissionError after exactly ONE charge:
    # the peer said no, and the client did not retry a definitive
    # rejection — hammering it again is exactly what quotas prevent.
    assert calls == ["t"]
    assert fleet.nodes[0].quotas.shed == 1
    # The connection survived the error frame: the next request (a
    # tenant with budget) reuses it.
    assert np.asarray(fleet.request(0, 1, tenant="u")).shape == (32, 32)
