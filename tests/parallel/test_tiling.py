"""Tests for repro.parallel.tiling and compose."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.parallel.compose import blend_cost_pixels, compose_add, compose_tiles
from repro.parallel.tiling import TileLayout

WIN = (0.0, 1.0, 0.0, 1.0)


class TestTileLayout:
    def test_factorisation_for_groups(self):
        assert TileLayout.for_groups(64, 1, WIN).n_tiles == 1
        layout2 = TileLayout.for_groups(64, 2, WIN)
        assert {layout2.tiles_x, layout2.tiles_y} == {1, 2}
        layout4 = TileLayout.for_groups(64, 4, WIN)
        assert (layout4.tiles_x, layout4.tiles_y) == (2, 2)
        layout6 = TileLayout.for_groups(64, 6, WIN)
        assert layout6.tiles_x * layout6.tiles_y == 6

    @settings(max_examples=25, deadline=None)
    @given(size=st.integers(8, 128), tx=st.integers(1, 4), ty=st.integers(1, 4))
    def test_tiles_partition_pixels(self, size, tx, ty):
        layout = TileLayout(size, tx, ty, WIN, guard_px=2)
        seen = np.zeros((size, size), dtype=int)
        for tile in layout.tiles():
            ix0, ix1, iy0, iy1 = tile.pixel_rect
            seen[iy0:iy1, ix0:ix1] += 1
        assert (seen == 1).all()

    def test_tile_buffer_alignment(self):
        layout = TileLayout(64, 2, 2, WIN, guard_px=4)
        tile = layout.tiles()[3]  # top-right
        fb = layout.make_tile_framebuffer(tile)
        assert (fb.width, fb.height) == tile.buffer_shape()[::-1]
        # Pixel lattice alignment: the tile buffer's pixel (guard, guard)
        # must be the final texture's pixel (ix0, iy0).
        x0, x1, y0, y1 = WIN
        sx = (x1 - x0) / 64
        ix0 = tile.pixel_rect[0]
        world_x = fb.window[0] + (tile.guard_px + 0.5) * sx
        expected = x0 + (ix0 + 0.5) * sx
        assert world_x == pytest.approx(expected)

    def test_guard_margin_world(self):
        layout = TileLayout(64, 2, 2, (0.0, 2.0, 0.0, 1.0), guard_px=8)
        assert layout.guard_margin_world() == pytest.approx(8 * 2.0 / 64)

    def test_validation(self):
        with pytest.raises(PartitionError):
            TileLayout(0, 1, 1, WIN)
        with pytest.raises(PartitionError):
            TileLayout(64, 0, 1, WIN)
        with pytest.raises(PartitionError):
            TileLayout(4, 8, 1, WIN)
        with pytest.raises(PartitionError):
            TileLayout(64, 1, 1, WIN, guard_px=-1)
        with pytest.raises(PartitionError):
            TileLayout.for_groups(64, 0, WIN)


class TestComposeAdd:
    def test_sums(self):
        a = np.ones((4, 4))
        b = 2 * np.ones((4, 4))
        np.testing.assert_array_equal(compose_add([a, b]), 3 * np.ones((4, 4)))

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            compose_add([])

    def test_shape_mismatch(self):
        with pytest.raises(PartitionError):
            compose_add([np.ones((4, 4)), np.ones((4, 5))])

    def test_order_independent(self):
        rng = np.random.default_rng(0)
        parts = [rng.normal(size=(8, 8)) for _ in range(4)]
        out1 = compose_add(parts)
        out2 = compose_add(parts[::-1])
        np.testing.assert_allclose(out1, out2, atol=1e-12)


class TestComposeTiles:
    def _make(self, size=16, tx=2, ty=2, guard=3):
        layout = TileLayout(size, tx, ty, WIN, guard_px=guard)
        tiles = layout.tiles()
        partials = []
        for t in tiles:
            buf = np.full(t.buffer_shape(), float(t.index + 1))
            partials.append(buf)
        return layout, tiles, partials

    def test_each_tile_lands_in_its_rect(self):
        layout, tiles, partials = self._make()
        out = compose_tiles(partials, tiles, 16)
        for t in tiles:
            ix0, ix1, iy0, iy1 = t.pixel_rect
            np.testing.assert_array_equal(out[iy0:iy1, ix0:ix1], t.index + 1)

    def test_guard_band_cropped(self):
        layout, tiles, partials = self._make(guard=5)
        partials[0][0, 0] = 999.0  # guard pixel must not leak
        out = compose_tiles(partials, tiles, 16)
        assert 999.0 not in out

    def test_wrong_buffer_shape(self):
        layout, tiles, partials = self._make()
        partials[0] = np.zeros((3, 3))
        with pytest.raises(PartitionError):
            compose_tiles(partials, tiles, 16)

    def test_count_mismatch(self):
        layout, tiles, partials = self._make()
        with pytest.raises(PartitionError):
            compose_tiles(partials[:-1], tiles, 16)

    def test_incomplete_cover_detected(self):
        layout, tiles, partials = self._make()
        with pytest.raises(PartitionError):
            compose_tiles(partials[:1], tiles[:1], 16)

    def test_blend_cost_pixels(self):
        layout, tiles, _ = self._make(size=16, tx=2, ty=2)
        assert blend_cost_pixels(tiles) == 16 * 16
