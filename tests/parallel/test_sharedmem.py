"""Shared-memory backend: zero-copy equivalence, epochs, lifecycle.

The backend's contract is threefold: bit-identical output to the serial
reference for every partition/group-count (the zoo), worker-resident
state invalidated by epoch tags (``read_data``/config changes), and a
pool that survives task failures but not infrastructure ones.
"""

import numpy as np
import pytest

from repro.advection.particles import ParticleSet
from repro.core.config import SpotNoiseConfig
from repro.errors import BackendError
from repro.fields.analytic import random_smooth_field, vortex_field
from repro.parallel.groups import FrameWork, GroupSpec, GroupTask
from repro.parallel.runtime import DivideAndConquerRuntime
from repro.parallel.sharedmem import SharedMemoryBackend

FIELD = vortex_field(n=33)
BASE = SpotNoiseConfig(
    n_spots=120, texture_size=64, spot_mode="standard", render_mode="exact", seed=7
)


def make_particles(n=120, seed=7):
    return ParticleSet.uniform_random(n, FIELD.grid.bounds, seed=seed)


def synthesize(config, particles, field=FIELD, backend=None):
    with DivideAndConquerRuntime(config, backend=backend) as rt:
        texture, report = rt.synthesize(field, particles)
    return texture, report


class TestEquivalenceZoo:
    """Bit-identical to SerialBackend across the partition matrix."""

    @pytest.mark.parametrize(
        "partition,n_groups",
        [("round_robin", 2), ("round_robin", 5), ("block", 3), ("spatial", 4)],
    )
    def test_bitwise_identical_to_serial(self, partition, n_groups):
        ps = make_particles()
        overrides = dict(partition=partition, n_groups=n_groups, guard_px=16)
        ref, _ = synthesize(BASE.with_overrides(**overrides), ps.copy())
        out, rep = synthesize(
            BASE.with_overrides(backend="sharedmem", **overrides), ps.copy()
        )
        np.testing.assert_array_equal(out, ref)
        assert rep.backend == "sharedmem"

    def test_bent_spots_bitwise_identical(self):
        bent = SpotNoiseConfig(
            n_spots=40,
            texture_size=64,
            spot_mode="bent",
            render_mode="exact",
            seed=13,
            n_groups=3,
        ).with_overrides(
            bent=SpotNoiseConfig().bent.__class__(
                n_along=6, n_across=3, length_cells=2.0, width_cells=0.8
            )
        )
        ps = ParticleSet.uniform_random(40, FIELD.grid.bounds, seed=13)
        ref, _ = synthesize(bent, ps.copy())
        out, _ = synthesize(bent.with_overrides(backend="sharedmem"), ps.copy())
        np.testing.assert_array_equal(out, ref)

    def test_sampled_render_mode_identical(self):
        cfg = BASE.with_overrides(render_mode="sampled", n_groups=2)
        ps = make_particles()
        ref, _ = synthesize(cfg, ps.copy())
        out, _ = synthesize(cfg.with_overrides(backend="sharedmem"), ps.copy())
        np.testing.assert_array_equal(out, ref)

    def test_repeated_frames_identical(self):
        # The worker-resident caches must not change a single bit across
        # repeated frames of one animation.
        cfg = BASE.with_overrides(backend="sharedmem", n_groups=2)
        ps = make_particles()
        with DivideAndConquerRuntime(cfg) as rt:
            first, _ = rt.synthesize(FIELD, ps.copy())
            second, _ = rt.synthesize(FIELD, ps.copy())
        np.testing.assert_array_equal(first, second)


class TestEpochs:
    def test_field_epoch_stable_for_same_object(self):
        be = SharedMemoryBackend(max_workers=2)
        cfg = BASE.with_overrides(n_groups=2)
        ps = make_particles()
        try:
            frame = _frame(cfg, ps)
            be.run_frame(frame)
            epoch = be._field_epoch
            frames = be._frame_epoch
            be.run_frame(frame)
            assert be._field_epoch == epoch  # same field object: no re-publish
            assert be._frame_epoch == frames + 1  # but a new frame epoch
        finally:
            be.close()

    def test_field_epoch_bumps_on_new_field_object(self):
        # read_data swaps the field object; the resident copy must be
        # invalidated or workers would render stale data.
        be = SharedMemoryBackend(max_workers=2)
        try:
            cfg = BASE.with_overrides(n_groups=2)
            ps = make_particles()
            be.run_frame(_frame(cfg, ps))
            epoch = be._field_epoch
            other = random_smooth_field(seed=5, n=33)
            out = be.run_frame(_frame(cfg, ps, field=other))
            assert be._field_epoch == epoch + 1
            ref, _ = synthesize(cfg, ps.copy(), field=other)
            np.testing.assert_array_equal(_compose(out), ref)
        finally:
            be.close()

    def test_config_epoch_bumps_on_config_change(self):
        be = SharedMemoryBackend(max_workers=2)
        try:
            ps = make_particles()
            be.run_frame(_frame(BASE.with_overrides(n_groups=2), ps))
            epoch = be._config_epoch
            changed = BASE.with_overrides(n_groups=2, intensity=2.0)
            out = be.run_frame(_frame(changed, ps))
            assert be._config_epoch == epoch + 1
            ref, _ = synthesize(changed, ps.copy())
            np.testing.assert_array_equal(_compose(out), ref)
        finally:
            be.close()


class TestLifecycle:
    def test_pool_persists_across_frames(self):
        be = SharedMemoryBackend(max_workers=2)
        try:
            cfg = BASE.with_overrides(n_groups=2)
            ps = make_particles()
            be.run_frame(_frame(cfg, ps))
            workers = list(be._workers)
            be.run_frame(_frame(cfg, ps))
            assert be._workers == workers
        finally:
            be.close()

    def test_pool_grows_to_high_water(self):
        be = SharedMemoryBackend()
        try:
            ps = make_particles()
            be.run_frame(_frame(BASE.with_overrides(n_groups=2), ps))
            assert be.pool_size == 2
            be.run_frame(_frame(BASE.with_overrides(n_groups=4), ps))
            assert be.pool_size == 4
            be.run_frame(_frame(BASE.with_overrides(n_groups=2), ps))
            assert be.pool_size == 4  # high-water, never shrinks mid-life
        finally:
            be.close()

    def test_task_error_keeps_pool_warm(self):
        # Unlike the classic process pool, a failing task is caught in
        # the worker: the pool must survive and the next frame succeed.
        be = SharedMemoryBackend(max_workers=2)
        try:
            ps = make_particles()
            be.run_frame(_frame(BASE.with_overrides(n_groups=2), ps))
            workers = list(be._workers)
            bad = BASE.with_overrides(n_groups=2, profile="no-such-profile")
            with pytest.raises(BackendError, match="no-such-profile"):
                be.run_frame(_frame(bad, ps))
            assert be._workers == workers  # same processes, still warm
            out = be.run_frame(_frame(BASE.with_overrides(n_groups=2), ps))
            assert len(out) == 2
        finally:
            be.close()

    def test_run_after_close_raises(self):
        be = SharedMemoryBackend(max_workers=1)
        ps = make_particles()
        be.run_frame(_frame(BASE.with_overrides(n_groups=1), ps))
        be.close()
        with pytest.raises(BackendError, match="closed"):
            be.run_frame(_frame(BASE.with_overrides(n_groups=1), ps))

    def test_close_idempotent_and_before_first_run(self):
        be = SharedMemoryBackend()
        be.close()
        be.close()

    def test_run_accepts_heterogeneous_tasks(self):
        # Direct run() with tasks on different fields falls back to
        # per-task frames but still returns correct results in order.
        be = SharedMemoryBackend(max_workers=2)
        try:
            other = random_smooth_field(seed=9, n=33)
            t0 = _task(0, FIELD)
            t1 = _task(1, other)
            results = be.run([t0, t1])
            assert [r.group_index for r in results] == [0, 1]
            from repro.parallel.groups import render_group

            np.testing.assert_array_equal(results[0].texture, render_group(t0).texture)
            np.testing.assert_array_equal(results[1].texture, render_group(t1).texture)
        finally:
            be.close()


def _frame(config, particles, field=FIELD):
    from repro.parallel.partition import round_robin_partition

    parts = round_robin_partition(len(particles), config.n_groups)
    size = (config.texture_size, config.texture_size)
    return FrameWork(
        field=field,
        config=config,
        positions=particles.positions,
        intensities=particles.intensities,
        groups=[
            GroupSpec(
                group_index=g,
                indices=idx,
                fb_size=size,
                fb_window=field.grid.bounds,
            )
            for g, idx in enumerate(parts)
        ],
    )


def _task(group_index, field, n=6):
    rng = np.random.default_rng(group_index + 1)
    x0, x1, y0, y1 = field.grid.bounds
    return GroupTask(
        group_index=group_index,
        positions=rng.uniform((x0, y0), (x1, y1), (n, 2)),
        intensities=np.where(rng.random(n) < 0.5, -1.0, 1.0),
        field=field,
        config=BASE,
        fb_size=(BASE.texture_size, BASE.texture_size),
        fb_window=field.grid.bounds,
    )


def _compose(results):
    out = np.zeros_like(results[0].texture)
    for r in results:
        out += r.texture
    return out
