"""Backend lifecycle: pooled workers across frames, recovery after errors.

The runtime promises that worker pools "persist across animation frames"
and that one bad frame does not poison the next.  These tests pin both
promises for the thread and process backends, plus the degenerate
workloads (empty task lists, zero-spot groups) through every backend.
"""

import numpy as np
import pytest

from repro.advection.particles import ParticleSet
from repro.core.config import SpotNoiseConfig
from repro.errors import BackendError
from repro.fields.analytic import vortex_field
from repro.parallel.backends import ProcessBackend, ThreadBackend, get_backend
from repro.parallel.runtime import DivideAndConquerRuntime
from repro.parallel.groups import GroupTask

FIELD = vortex_field(n=33)
BASE = SpotNoiseConfig(
    n_spots=12, texture_size=32, spot_mode="standard", render_mode="exact", seed=3
)


def make_task(group_index=0, n=4, config=BASE):
    rng = np.random.default_rng(group_index + 1)
    x0, x1, y0, y1 = FIELD.grid.bounds
    positions = rng.uniform((x0, y0), (x1, y1), (n, 2))
    return GroupTask(
        group_index=group_index,
        positions=positions,
        intensities=np.where(rng.random(n) < 0.5, -1.0, 1.0),
        field=FIELD,
        config=config,
        fb_size=(config.texture_size, config.texture_size),
        fb_window=FIELD.grid.bounds,
    )


def empty_task(group_index, config=BASE):
    return GroupTask(
        group_index=group_index,
        positions=np.zeros((0, 2)),
        intensities=np.zeros(0),
        field=FIELD,
        config=config,
        fb_size=(config.texture_size, config.texture_size),
        fb_window=FIELD.grid.bounds,
    )


class TestEmptyWork:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process", "sharedmem"])
    def test_no_tasks(self, backend):
        with get_backend(backend) as be:
            assert be.run([]) == []

    @pytest.mark.parametrize("backend", ["serial", "thread", "process", "sharedmem"])
    def test_all_groups_empty(self, backend):
        tasks = [empty_task(g) for g in range(3)]
        with get_backend(backend) as be:
            results = be.run(tasks)
        assert [r.group_index for r in results] == [0, 1, 2]
        for r in results:
            assert r.n_spots == 0
            assert float(np.abs(r.texture).sum()) == 0.0

    @pytest.mark.parametrize("backend", ["serial", "thread", "process", "sharedmem"])
    @pytest.mark.parametrize("partition", ["round_robin", "block", "spatial"])
    def test_more_groups_than_spots(self, backend, partition):
        # 2 spots over 4 groups: at least two groups receive zero spots.
        cfg = BASE.with_overrides(
            n_spots=2, n_groups=4, backend=backend, partition=partition, guard_px=12
        )
        ps = ParticleSet.uniform_random(2, FIELD.grid.bounds, seed=5)
        ref_cfg = BASE.with_overrides(n_spots=2)
        with DivideAndConquerRuntime(ref_cfg) as rt:
            ref, _ = rt.synthesize(FIELD, ps.copy())
        with DivideAndConquerRuntime(cfg) as rt:
            out, rep = rt.synthesize(FIELD, ps.copy())
        assert 0 in rep.spots_per_group
        np.testing.assert_allclose(out, ref, atol=1e-9)


class TestThreadBackendPersistence:
    def test_executor_persists_across_frames(self):
        with ThreadBackend(max_workers=2) as be:
            be.run([make_task(0), make_task(1)])
            pool_first = be._pool
            assert pool_first is not None
            be.run([make_task(0), make_task(1)])
            assert be._pool is pool_first

    def test_executor_grows_in_place_when_needed(self):
        # Regression: growth used to shutdown(wait=True) + recreate,
        # stalling the frame and discarding warm threads whenever the
        # group count varied.  The executor must grow to the high-water
        # size without being torn down.
        with ThreadBackend() as be:
            be.run([make_task(0)])
            small = be._pool
            warm_threads = set(small._threads)
            be.run([make_task(g) for g in range(3)])
            assert be._pool is small  # same executor, grown in place
            assert be._pool_size == 3
            assert warm_threads <= set(small._threads)  # warm threads kept
            # Shrinking frames never shrink the pool, and still work.
            results = be.run([make_task(0)])
            assert be._pool is small and be._pool_size == 3
            assert results[0].n_spots == 4

    def test_task_error_leaves_executor_usable(self):
        bad = make_task(0, config=BASE.with_overrides(profile="no-such-profile"))
        with ThreadBackend(max_workers=2) as be:
            be.run([make_task(0)])
            pool = be._pool
            with pytest.raises(Exception):
                be.run([bad])
            assert be._pool is pool
            results = be.run([make_task(0)])
            assert results[0].n_spots == 4

    def test_close_releases_pool(self):
        be = ThreadBackend(max_workers=1)
        be.run([make_task(0)])
        be.close()
        assert be._pool is None


class TestProcessBackendRecovery:
    def test_pool_reset_after_worker_failure(self):
        bad = make_task(0, config=BASE.with_overrides(profile="no-such-profile"))
        with ProcessBackend(max_workers=2) as be:
            be.run([make_task(0), make_task(1)])
            assert be._pool is not None
            with pytest.raises(BackendError):
                be.run([bad])
            # The possibly-broken pool must be gone...
            assert be._pool is None
            # ...and the very next frame must succeed on a fresh pool.
            results = be.run([make_task(0), make_task(1)])
            assert [r.group_index for r in results] == [0, 1]

    def test_pool_persists_across_good_frames(self):
        with ProcessBackend(max_workers=2) as be:
            be.run([make_task(0)])
            pool = be._pool
            be.run([make_task(1)])
            assert be._pool is pool

    @pytest.mark.parametrize("interrupt", [KeyboardInterrupt, SystemExit])
    def test_pool_discarded_after_interrupt(self, interrupt, monkeypatch):
        # Regression: run() caught only Exception, so an interrupt
        # mid-map skipped the discard path and every later frame reused
        # the corrupt pool.  BaseException must discard and re-raise
        # unwrapped.
        with ProcessBackend(max_workers=2) as be:
            be.run([make_task(0)])
            assert be._pool is not None
            monkeypatch.setattr(
                be._pool, "map", lambda *a, **k: (_ for _ in ()).throw(interrupt())
            )
            with pytest.raises(interrupt):
                be.run([make_task(0)])
            # The possibly-corrupt pool must be gone...
            assert be._pool is None
            # ...and the next frame must succeed on a fresh one.
            results = be.run([make_task(0)])
            assert results[0].n_spots == 4
