"""Tests for the divide-and-conquer runtime: the core correctness claims.

The paper's decomposition is valid because spots are independent and the
blend is an associative, commutative sum (section 3).  These tests pin
that down: every group count, partition strategy and backend must produce
the same texture as the sequential reference.
"""

import numpy as np
import pytest

from repro.advection.particles import ParticleSet
from repro.core.config import SpotNoiseConfig
from repro.errors import PartitionError
from repro.fields.analytic import random_smooth_field, vortex_field
from repro.parallel.backends import get_backend
from repro.parallel.runtime import DivideAndConquerRuntime, spot_reach_world


FIELD = vortex_field(n=33)


def make_particles(n=300, seed=3):
    return ParticleSet.uniform_random(n, FIELD.grid.bounds, seed=seed)


def synthesize(config, particles=None, field=FIELD):
    particles = particles or make_particles()
    with DivideAndConquerRuntime(config) as rt:
        texture, report = rt.synthesize(field, particles)
    return texture, report


BASE = SpotNoiseConfig(
    n_spots=300, texture_size=64, spot_mode="standard", render_mode="sampled", seed=3
)


class TestSequentialEquivalence:
    """D&C output == single-group output, the central invariant."""

    @pytest.mark.parametrize("n_groups", [2, 3, 4, 7])
    @pytest.mark.parametrize("partition", ["round_robin", "block"])
    def test_nonspatial_groups_exact(self, n_groups, partition):
        ps = make_particles()
        ref, _ = synthesize(BASE, ps.copy())
        out, rep = synthesize(
            BASE.with_overrides(n_groups=n_groups, partition=partition), ps.copy()
        )
        np.testing.assert_allclose(out, ref, atol=1e-9)
        assert rep.duplication == pytest.approx(1.0)

    @pytest.mark.parametrize("n_groups", [2, 4])
    def test_spatial_tiling_exact(self, n_groups):
        ps = make_particles()
        ref, _ = synthesize(BASE, ps.copy())
        out, rep = synthesize(
            BASE.with_overrides(n_groups=n_groups, partition="spatial", guard_px=16),
            ps.copy(),
        )
        np.testing.assert_allclose(out, ref, atol=1e-9)
        assert rep.duplication >= 1.0

    def test_bent_spots_spatial_tiling_exact(self):
        cfg = SpotNoiseConfig(
            n_spots=60,
            texture_size=64,
            spot_mode="bent",
            seed=5,
        ).with_overrides(
            bent=SpotNoiseConfig().bent.__class__(
                n_along=6, n_across=3, length_cells=2.0, width_cells=0.8
            )
        )
        ps = ParticleSet.uniform_random(60, FIELD.grid.bounds, seed=5)
        ref, _ = synthesize(cfg, ps.copy())
        out, _ = synthesize(
            cfg.with_overrides(n_groups=4, partition="spatial", guard_px=24), ps.copy()
        )
        np.testing.assert_allclose(out, ref, atol=1e-9)

    def test_exact_render_mode_equivalence(self):
        cfg = BASE.with_overrides(render_mode="exact")
        ps = make_particles(150)
        ref, _ = synthesize(cfg, ps.copy())
        out, _ = synthesize(cfg.with_overrides(n_groups=3), ps.copy())
        np.testing.assert_allclose(out, ref, atol=1e-9)


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process", "sharedmem"])
    def test_backends_identical(self, backend):
        ps = make_particles()
        ref, _ = synthesize(BASE.with_overrides(n_groups=2), ps.copy())
        out, _ = synthesize(
            BASE.with_overrides(n_groups=2, backend=backend), ps.copy()
        )
        np.testing.assert_array_equal(out, ref)

    def test_unknown_backend(self):
        from repro.errors import BackendError

        with pytest.raises(BackendError):
            get_backend("gpu")

    def test_thread_backend_worker_bound(self):
        from repro.errors import BackendError

        with pytest.raises(BackendError):
            get_backend("thread", max_workers=0)


class TestRasterBackendEquivalence:
    """exact-vs-batched scanline backends must agree bit for bit,
    whatever the partition strategy or execution backend."""

    EXACT = BASE.with_overrides(n_spots=120, render_mode="exact", raster_backend="exact")
    BATCHED = BASE.with_overrides(n_spots=120, render_mode="exact", raster_backend="batched")

    @pytest.mark.parametrize("backend", ["serial", "thread", "process", "sharedmem"])
    @pytest.mark.parametrize(
        "partition,n_groups", [("round_robin", 3), ("block", 3), ("spatial", 4)]
    )
    def test_bitwise_identical_across_matrix(self, partition, n_groups, backend):
        ps = make_particles(120, seed=11)
        overrides = dict(
            partition=partition, n_groups=n_groups, backend=backend, guard_px=16
        )
        ref, _ = synthesize(self.EXACT.with_overrides(**overrides), ps.copy())
        out, _ = synthesize(self.BATCHED.with_overrides(**overrides), ps.copy())
        np.testing.assert_array_equal(out, ref)

    def test_bent_spots_bitwise_identical(self):
        bent = SpotNoiseConfig(
            n_spots=50,
            texture_size=64,
            spot_mode="bent",
            render_mode="exact",
            seed=13,
        ).with_overrides(
            bent=SpotNoiseConfig().bent.__class__(
                n_along=6, n_across=3, length_cells=2.0, width_cells=0.8
            )
        )
        ps = ParticleSet.uniform_random(50, FIELD.grid.bounds, seed=13)
        ref, _ = synthesize(bent.with_overrides(raster_backend="exact"), ps.copy())
        out, _ = synthesize(bent.with_overrides(raster_backend="batched"), ps.copy())
        np.testing.assert_array_equal(out, ref)


class TestGuardValidation:
    def test_insufficient_guard_rejected(self):
        # Huge spots cannot fit a tiny guard band.
        cfg = BASE.with_overrides(
            n_groups=4, partition="spatial", guard_px=1, spot_radius_cells=4.0
        )
        with pytest.raises(PartitionError):
            synthesize(cfg)

    def test_spot_reach_standard_grows_with_anisotropy(self):
        lo = spot_reach_world(BASE.with_overrides(anisotropy=0.0), 0.1)
        hi = spot_reach_world(BASE.with_overrides(anisotropy=2.0), 0.1)
        assert hi > lo

    def test_spot_reach_bent_scales_with_length(self):
        cfg_short = SpotNoiseConfig(spot_mode="bent").with_overrides(
            bent=SpotNoiseConfig().bent.__class__(length_cells=2.0)
        )
        cfg_long = SpotNoiseConfig(spot_mode="bent").with_overrides(
            bent=SpotNoiseConfig().bent.__class__(length_cells=8.0)
        )
        assert spot_reach_world(cfg_long, 0.1) > spot_reach_world(cfg_short, 0.1)


class TestReport:
    def test_counters_accumulate_over_groups(self):
        _, rep = synthesize(BASE.with_overrides(n_groups=3))
        assert rep.counters.quads_drawn == 300
        assert rep.counters.vertices_in == 1200
        assert sum(rep.spots_per_group) == 300

    def test_summary_readable(self):
        _, rep = synthesize(BASE.with_overrides(n_groups=2))
        text = rep.summary()
        assert "2 groups" in text and "300 spots" in text

    def test_empty_group_tolerated(self):
        # More groups than spots: some groups receive zero spots.
        cfg = BASE.with_overrides(n_groups=4, n_spots=2)
        ps = make_particles(2)
        out, rep = synthesize(cfg, ps)
        assert out.shape == (64, 64)
        assert sorted(rep.spots_per_group) == [0, 0, 1, 1]


class TestDeterminism:
    def test_same_seed_same_texture(self):
        a, _ = synthesize(BASE, make_particles(seed=9))
        b, _ = synthesize(BASE, make_particles(seed=9))
        np.testing.assert_array_equal(a, b)

    def test_different_field_different_texture(self):
        ps = make_particles()
        a, _ = synthesize(BASE, ps.copy())
        other = random_smooth_field(seed=1, n=33)
        b, _ = synthesize(BASE, ps.copy(), field=other)
        assert not np.allclose(a, b)
