"""Decomposition planner: pricing properties, determinism, auto wiring.

The planner's value is in its *shape*, not its absolute numbers: tiny
workloads must stay serial (overheads dominate), big workloads must fan
out (eq 3.2's balance tips), host calibration must move the balance, and
for a fixed calibration the plan must be a pure function.
"""

import numpy as np
import pytest

from repro.advection.particles import ParticleSet
from repro.core.config import SpotNoiseConfig
from repro.errors import BackendError, MachineError
from repro.fields.analytic import vortex_field
from repro.machine.workload import SpotWorkload, workload_from_config
from repro.parallel.planner import (
    PLANNABLE_BACKENDS,
    DecompositionPlanner,
    DecompositionPlan,
)
from repro.parallel.runtime import DivideAndConquerRuntime

TINY = SpotWorkload.standard_spots(50, texture_size=64)
HUGE = SpotWorkload.turbulence()


class TestPlanProperties:
    def test_tiny_workload_plans_serial(self):
        plan = DecompositionPlanner(host_workers=8).plan(TINY)
        assert plan.triple == ("serial", 1, "round_robin")

    def test_huge_workload_plans_parallel(self):
        plan = DecompositionPlanner(host_workers=8).plan(HUGE)
        assert plan.backend != "serial"
        assert plan.n_groups > 1

    def test_single_core_host_plans_serial(self):
        # min(n_groups, 1) slot: every parallel candidate is pure
        # overhead, whatever the workload size.
        plan = DecompositionPlanner(host_workers=1).plan(HUGE)
        assert plan.backend == "serial"

    def test_sharedmem_prices_below_pickling_process(self):
        p = DecompositionPlanner(host_workers=8)
        for n_groups in (2, 4, 8):
            assert p.price(HUGE, "sharedmem", n_groups) < p.price(
                HUGE, "process", n_groups
            )

    def test_calibration_scale_moves_the_balance(self):
        # A slow host (large scale) amortises parallel overhead; a fast
        # host tips the same workload back to serial.
        p = DecompositionPlanner(host_workers=8)
        mid = SpotWorkload.standard_spots(4000)
        slow = p.plan(mid, scale=50.0)
        fast = p.plan(mid, scale=1e-4)
        assert slow.n_groups > 1
        assert fast.triple == ("serial", 1, "round_robin")

    def test_plan_deterministic_for_fixed_calibration(self):
        p = DecompositionPlanner(host_workers=8)
        a = p.plan(HUGE, scale=2.5)
        b = p.plan(HUGE, scale=2.5)
        assert a == b
        assert isinstance(a, DecompositionPlan)

    def test_candidates_sorted_and_complete(self):
        plan = DecompositionPlanner(host_workers=4, max_groups=4).plan(HUGE)
        prices = [c.predicted_s for c in plan.candidates]
        assert prices == sorted(prices)
        assert plan.candidates[0].predicted_s == plan.predicted_s
        backends = {c.backend for c in plan.candidates}
        assert backends == set(PLANNABLE_BACKENDS)

    def test_spatial_ok_gates_spatial_candidates(self):
        plan = DecompositionPlanner(host_workers=8).plan(
            HUGE, spatial_ok=lambda n: False
        )
        assert all(c.partition != "spatial" for c in plan.candidates)

    def test_blend_term_penalises_more_groups(self):
        # Eq 3.2: the sequential blend grows with n_groups; for a fixed
        # backend the price must eventually rise again past the knee.
        p = DecompositionPlanner(host_workers=4, max_groups=64)
        prices = [p.price(HUGE, "sharedmem", n) for n in (4, 8, 16, 32, 64)]
        assert prices[-1] > prices[0]

    def test_apply_produces_valid_config(self):
        plan = DecompositionPlanner(host_workers=8).plan(HUGE)
        cfg = plan.apply(SpotNoiseConfig(backend="auto", seed=0))
        assert cfg.backend == plan.backend
        assert cfg.n_groups == plan.n_groups
        assert cfg.partition == plan.partition

    def test_summary_marks_winner(self):
        plan = DecompositionPlanner(host_workers=8).plan(TINY)
        text = plan.summary()
        assert "->" in text and "serial" in text


class TestValidation:
    def test_unplannable_backend_rejected(self):
        with pytest.raises(BackendError):
            DecompositionPlanner(backends=("gpu",))
        with pytest.raises(BackendError):
            DecompositionPlanner().price(TINY, "gpu", 2)

    def test_bad_parameters_rejected(self):
        with pytest.raises(MachineError):
            DecompositionPlanner(max_groups=0)
        with pytest.raises(MachineError):
            DecompositionPlanner(thread_efficiency=0.0)
        with pytest.raises(MachineError):
            DecompositionPlanner().price(TINY, "serial", 0)
        with pytest.raises(MachineError):
            DecompositionPlanner().price(TINY, "serial", 1, scale=0.0)


class TestAutoRuntime:
    FIELD = vortex_field(n=33)

    def test_auto_resolves_and_matches_resolved_config_exactly(self):
        cfg = SpotNoiseConfig(
            n_spots=150, texture_size=64, seed=3, backend="auto"
        )
        ps = ParticleSet.uniform_random(150, self.FIELD.grid.bounds, seed=3)
        with DivideAndConquerRuntime(cfg) as rt:
            out, rep = rt.synthesize(self.FIELD, ps.copy())
            resolved = rt.resolved_config
            plan = rt.plan
        assert plan is not None
        assert resolved.backend in PLANNABLE_BACKENDS
        assert rep.backend == resolved.backend
        # The auto texture must equal a direct render under the resolved
        # config, bit for bit — auto is a planner, not a new renderer.
        with DivideAndConquerRuntime(resolved) as rt:
            ref, _ = rt.synthesize(self.FIELD, ps.copy())
        np.testing.assert_array_equal(out, ref)

    def test_auto_plan_is_stable_across_frames(self):
        cfg = SpotNoiseConfig(n_spots=100, texture_size=64, seed=1, backend="auto")
        ps = ParticleSet.uniform_random(100, self.FIELD.grid.bounds, seed=1)
        with DivideAndConquerRuntime(cfg) as rt:
            rt.synthesize(self.FIELD, ps.copy())
            first = rt.plan
            rt.synthesize(self.FIELD, ps.copy())
            assert rt.plan is first  # resolved once per runtime lifetime

    def test_injected_backend_settles_auto(self):
        from repro.parallel.backends import SerialBackend

        cfg = SpotNoiseConfig(n_spots=50, texture_size=32, seed=0, backend="auto")
        be = SerialBackend()
        with DivideAndConquerRuntime(cfg, backend=be) as rt:
            assert rt.resolved_config.backend == "serial"

    def test_planner_workload_round_trip(self):
        cfg = SpotNoiseConfig(n_spots=500, texture_size=128, seed=0)
        w = workload_from_config(cfg, self.FIELD)
        assert w.grid_shape == tuple(self.FIELD.grid.shape)
        assert w.field_bytes == self.FIELD.nbytes()
