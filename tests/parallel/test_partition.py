"""Tests for repro.parallel.partition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.parallel.partition import (
    block_partition,
    duplication_factor,
    partition_is_disjoint_cover,
    round_robin_partition,
    spatial_partition,
)


class TestRoundRobin:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(0, 300), k=st.integers(1, 8))
    def test_disjoint_cover_property(self, n, k):
        parts = round_robin_partition(n, k)
        assert partition_is_disjoint_cover(parts, n)

    def test_balanced_sizes(self):
        parts = round_robin_partition(10, 3)
        sizes = sorted(p.size for p in parts)
        assert sizes == [3, 3, 4]

    def test_validation(self):
        with pytest.raises(PartitionError):
            round_robin_partition(5, 0)
        with pytest.raises(PartitionError):
            round_robin_partition(-1, 2)


class TestBlock:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(0, 300), k=st.integers(1, 8))
    def test_disjoint_cover_property(self, n, k):
        parts = block_partition(n, k)
        assert partition_is_disjoint_cover(parts, n)

    def test_blocks_contiguous(self):
        parts = block_partition(9, 2)
        assert parts[0].tolist() == [0, 1, 2, 3, 4]
        assert parts[1].tolist() == [5, 6, 7, 8]


class TestSpatial:
    RECTS = [(0.0, 0.5, 0.0, 1.0), (0.5, 1.0, 0.0, 1.0)]

    def test_interior_spots_assigned_once(self):
        pos = np.array([[0.25, 0.5], [0.75, 0.5]])
        parts = spatial_partition(pos, self.RECTS, margin=0.1)
        assert parts[0].tolist() == [0]
        assert parts[1].tolist() == [1]

    def test_border_spot_duplicated(self):
        pos = np.array([[0.5, 0.5]])
        parts = spatial_partition(pos, self.RECTS, margin=0.05)
        assert parts[0].tolist() == [0]
        assert parts[1].tolist() == [0]
        assert duplication_factor(parts, 1) == 2.0

    def test_every_spot_covered(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 1, (200, 2))
        parts = spatial_partition(pos, self.RECTS, margin=0.02)
        covered = np.unique(np.concatenate(parts))
        assert covered.size == 200

    def test_zero_margin_disjoint_for_interior(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0.01, 0.99, (100, 2))
        # With zero margin, only spots exactly on the shared edge would be
        # duplicated — measure-zero for random draws.
        parts = spatial_partition(pos, self.RECTS, margin=0.0)
        assert duplication_factor(parts, 100) == pytest.approx(1.0)

    def test_duplication_grows_with_margin(self):
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 1, (500, 2))
        small = duplication_factor(spatial_partition(pos, self.RECTS, 0.01), 500)
        big = duplication_factor(spatial_partition(pos, self.RECTS, 0.2), 500)
        assert big > small

    def test_validation(self):
        with pytest.raises(PartitionError):
            spatial_partition(np.zeros((1, 2)), [], 0.1)
        with pytest.raises(PartitionError):
            spatial_partition(np.zeros((1, 2)), self.RECTS, -0.1)
        with pytest.raises(PartitionError):
            spatial_partition(np.zeros((1, 3)), self.RECTS, 0.1)


class TestHelpers:
    def test_disjoint_cover_detects_missing(self):
        assert not partition_is_disjoint_cover([np.array([0, 1])], 3)

    def test_disjoint_cover_detects_duplicates(self):
        assert not partition_is_disjoint_cover([np.array([0, 1]), np.array([1, 2])], 3)

    def test_duplication_factor_empty(self):
        assert duplication_factor([], 0) == 1.0
