"""Tests for repro.core.config."""

import pytest

from repro.core.config import BentConfig, SpotNoiseConfig
from repro.errors import PipelineError


class TestBentConfig:
    def test_resolve_scales_by_cell(self):
        b = BentConfig(length_cells=4.0, width_cells=1.2)
        cfg = b.resolve(cell_size=0.5)
        assert cfg.length == pytest.approx(2.0)
        assert cfg.width == pytest.approx(0.6)

    def test_resolve_bad_cell(self):
        with pytest.raises(PipelineError):
            BentConfig().resolve(0.0)


class TestSpotNoiseConfig:
    def test_defaults_valid(self):
        SpotNoiseConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_spots=0),
            dict(texture_size=4),
            dict(spot_mode="square"),
            dict(spot_radius_cells=0.0),
            dict(anisotropy=-1.0),
            dict(render_mode="fast"),
            dict(samples_per_edge=0),
            dict(n_groups=0),
            dict(processors_per_group=0),
            dict(partition="random"),
            dict(guard_px=-1),
            dict(intensity=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(PipelineError):
            SpotNoiseConfig(**kwargs)

    def test_atmospheric_factory(self):
        c = SpotNoiseConfig.atmospheric()
        assert c.n_spots == 2500
        assert c.spot_mode == "bent"
        assert c.bent.n_along == 32 and c.bent.n_across == 17
        assert c.vertices_per_spot() == 544
        assert c.quads_per_spot() == 496

    def test_turbulence_factory(self):
        c = SpotNoiseConfig.turbulence()
        assert c.n_spots == 40_000
        assert c.vertices_per_spot() == 48

    def test_factory_overrides(self):
        c = SpotNoiseConfig.atmospheric(n_spots=100, n_groups=4)
        assert c.n_spots == 100 and c.n_groups == 4
        assert c.bent.n_along == 32

    def test_standard_vertices(self):
        assert SpotNoiseConfig(spot_mode="standard").vertices_per_spot() == 4

    def test_with_overrides_returns_new(self):
        a = SpotNoiseConfig()
        b = a.with_overrides(n_spots=5)
        assert a.n_spots != b.n_spots

    def test_frozen(self):
        with pytest.raises(Exception):
            SpotNoiseConfig().n_spots = 7


class TestFingerprint:
    """The config fingerprint keys the serving cache: every field must
    participate, and equal configs must fingerprint equal."""

    # One valid alternate value per field (kept distinct from the defaults).
    ALTERNATES = {
        "n_spots": 7,
        "texture_size": 64,
        "spot_mode": "bent",
        "spot_radius_cells": 2.5,
        "anisotropy": 0.25,
        "profile": "disk",
        "profile_resolution": 16,
        "bent": BentConfig(n_along=8, n_across=5),
        "intensity": 2.0,
        "render_mode": "exact",
        "raster_backend": "exact",
        "samples_per_edge": 3,
        "n_groups": 2,
        "processors_per_group": 2,
        "partition": "block",
        "guard_px": 12,
        "backend": "thread",
        "seed": 123,
        "post_filter": "highpass",
        "seeding": "jittered",
    }

    def test_every_field_has_an_alternate(self):
        assert set(self.ALTERNATES) == set(SpotNoiseConfig.__dataclass_fields__)

    def test_stable_and_equal_for_equal_configs(self):
        a = SpotNoiseConfig()
        b = SpotNoiseConfig()
        assert a.fingerprint() == b.fingerprint()
        assert len(a.fingerprint()) == 64

    def test_changing_any_single_field_changes_the_fingerprint(self):
        base = SpotNoiseConfig()
        baseline = base.fingerprint()
        for name, alternate in self.ALTERNATES.items():
            assert getattr(base, name) != alternate, name
            changed = base.with_overrides(**{name: alternate})
            assert changed.fingerprint() != baseline, (
                f"field {name!r} does not affect the fingerprint"
            )

    def test_bent_subfields_participate(self):
        base = SpotNoiseConfig(spot_mode="bent")
        changed = base.with_overrides(
            bent=BentConfig(n_along=base.bent.n_along + 1)
        )
        assert changed.fingerprint() != base.fingerprint()
