"""Pipeline reuse rules of the synthesizer facade.

A cached pipeline may only be reused for a field with the *same grid
geometry* (bounds and shape) and the *same life-cycle policy*; anything
else silently reusing state was the bug class this pins down: a
same-bounds field at a different resolution reused spot sizes computed
for the old grid, and an explicit policy change was ignored entirely.
Mid-animation geometry changes must fail loudly instead of resetting the
particle population behind the caller's back.
"""

import pytest

from repro.advection.lifecycle import LifeCyclePolicy
from repro.core.config import SpotNoiseConfig
from repro.core.synthesizer import (
    DEFAULT_WORKLOAD_GRID_SHAPE,
    SpotNoiseSynthesizer,
    workload_from_config,
)
from repro.errors import PipelineError
from repro.fields.analytic import vortex_field

CFG = SpotNoiseConfig(n_spots=60, texture_size=32, spot_mode="standard", seed=1)


class TestPipelineReuse:
    def test_same_field_reuses_pipeline(self):
        with SpotNoiseSynthesizer(CFG) as synth:
            field = vortex_field(n=17)
            synth.synthesize(field)
            pipe = synth._pipeline
            synth.synthesize(field)
            assert synth._pipeline is pipe

    def test_grid_shape_change_rebuilds(self):
        with SpotNoiseSynthesizer(CFG) as synth:
            synth.synthesize(vortex_field(n=17))
            pipe = synth._pipeline
            # Same bounds, doubled resolution: the old pipeline's
            # cell-size-derived spot geometry would be wrong.
            synth.synthesize(vortex_field(n=33))
            assert synth._pipeline is not pipe

    def test_policy_change_rebuilds(self):
        with SpotNoiseSynthesizer(CFG) as synth:
            field = vortex_field(n=17)
            synth.synthesize(field, policy=LifeCyclePolicy(position_mode="advect"))
            pipe = synth._pipeline
            synth.synthesize(field, policy=LifeCyclePolicy(position_mode="static"))
            assert synth._pipeline is not pipe

    def test_equal_policy_reuses(self):
        with SpotNoiseSynthesizer(CFG) as synth:
            field = vortex_field(n=17)
            synth.synthesize(field, policy=LifeCyclePolicy(lifetime=5))
            pipe = synth._pipeline
            synth.synthesize(field, policy=LifeCyclePolicy(lifetime=5))
            assert synth._pipeline is pipe

    def test_none_policy_keeps_current(self):
        with SpotNoiseSynthesizer(CFG) as synth:
            field = vortex_field(n=17)
            synth.synthesize(field, policy=LifeCyclePolicy(lifetime=5))
            pipe = synth._pipeline
            synth.synthesize(field)  # no preference -> reuse
            assert synth._pipeline is pipe

    def test_geometry_rebuild_carries_policy_forward(self):
        # A rebuild forced by new grid geometry must not silently swap a
        # custom policy for the default when the caller expressed no
        # new preference.
        custom = LifeCyclePolicy(position_mode="static", lifetime=7)
        with SpotNoiseSynthesizer(CFG) as synth:
            synth.synthesize(vortex_field(n=17), policy=custom)
            synth.synthesize(vortex_field(n=33))  # geometry change, no policy
            assert synth._pipeline.policy == custom


class TestAnimateGeometryValidation:
    def test_mid_animation_shape_change_raises(self):
        fields = [vortex_field(n=17), vortex_field(n=17), vortex_field(n=33)]
        with SpotNoiseSynthesizer(CFG) as synth:
            frames = synth.animate(iter(fields), n_frames=3)
            next(frames)
            next(frames)
            with pytest.raises(PipelineError, match="geometry changed mid-animation"):
                next(frames)

    def test_same_geometry_animation_runs(self):
        fields = [vortex_field(n=17) for _ in range(3)]
        with SpotNoiseSynthesizer(CFG) as synth:
            frames = list(synth.animate(iter(fields), n_frames=3))
        assert [f.frame_index for f in frames] == [0, 1, 2]

    def test_pipeline_read_data_rejects_shape_change(self):
        from repro.core.pipeline import SpotNoisePipeline

        with SpotNoisePipeline(CFG, vortex_field(n=17)) as pipe:
            with pytest.raises(PipelineError, match="grid shape"):
                pipe.read_data(vortex_field(n=33))


class TestWorkloadFromConfig:
    def test_fieldless_workload_uses_documented_default(self):
        for cfg in (CFG, SpotNoiseConfig.atmospheric(n_spots=100)):
            w = workload_from_config(cfg)
            assert tuple(w.grid_shape) == DEFAULT_WORKLOAD_GRID_SHAPE

    def test_fieldless_matches_field_of_default_shape(self):
        # A real field with the default shape must give the same workload
        # as no field at all — the fallback is consistent, not (0, 0).
        n = DEFAULT_WORKLOAD_GRID_SHAPE[1]
        field = vortex_field(n=n)
        for cfg in (CFG, SpotNoiseConfig.atmospheric(n_spots=100)):
            w_none = workload_from_config(cfg)
            w_field = workload_from_config(cfg, field)
            assert tuple(w_field.grid_shape) == tuple(w_none.grid_shape)
            assert w_field.pixels_per_spot == pytest.approx(w_none.pixels_per_spot)

    def test_field_shape_wins(self):
        field = vortex_field(n=33)
        w = workload_from_config(CFG, field)
        assert tuple(w.grid_shape) == (33, 33)
