"""Tests for repro.core.animation and steering."""

import os

import pytest

from repro.core.animation import AnimationLoop
from repro.core.config import SpotNoiseConfig
from repro.core.pipeline import SpotNoisePipeline
from repro.core.steering import Parameter, SteeringSession
from repro.errors import PipelineError, SteeringError
from repro.fields.analytic import vortex_field
from repro.fields.scalarfield import ScalarField2D
from repro.viz.colormap import rainbow

CFG = SpotNoiseConfig(n_spots=100, texture_size=32, spot_mode="standard", seed=2)
FIELD = vortex_field(n=17)


class TestAnimationLoop:
    def test_run_collects_frames(self):
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            loop = AnimationLoop(pipe, lambda t: FIELD)
            stats = loop.run(3)
        assert stats.n_frames == 3
        assert len(loop.frames) == 3
        assert stats.textures_per_second > 0

    def test_source_with_scalar(self):
        scalar = ScalarField2D.from_function(FIELD.grid, lambda X, Y: X**2)
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            loop = AnimationLoop(pipe, lambda t: (FIELD, scalar), colormap=rainbow())
            loop.run(2)
        assert loop.frames[0].image is not None

    def test_bad_frame_count(self):
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            loop = AnimationLoop(pipe, lambda t: FIELD)
            with pytest.raises(PipelineError):
                loop.run(0)

    def test_write_sequence_pgm(self, tmp_path):
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            loop = AnimationLoop(pipe, lambda t: FIELD)
            loop.run(2)
            paths = loop.write_sequence(tmp_path, prefix="t")
        assert len(paths) == 2
        assert all(os.path.exists(p) and p.endswith(".pgm") for p in paths)

    def test_write_sequence_ppm_with_overlay(self, tmp_path):
        scalar = ScalarField2D.from_function(FIELD.grid, lambda X, Y: X)
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            loop = AnimationLoop(pipe, lambda t: (FIELD, scalar), colormap=rainbow())
            loop.run(1)
            paths = loop.write_sequence(tmp_path)
        assert paths[0].endswith(".ppm")

    def test_keep_frames_false(self):
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            loop = AnimationLoop(pipe, lambda t: FIELD)
            loop.run(2, keep_frames=False)
        assert loop.frames == []


class TestParameter:
    def test_set_in_range(self):
        p = Parameter("x", 1.0, 0.0, 2.0)
        p.set(1.5)
        assert p.value == 1.5

    def test_out_of_range(self):
        p = Parameter("x", 1.0, 0.0, 2.0)
        with pytest.raises(SteeringError):
            p.set(3.0)

    def test_bad_initial(self):
        with pytest.raises(SteeringError):
            Parameter("x", 5.0, 0.0, 2.0)

    def test_bad_bounds(self):
        with pytest.raises(SteeringError):
            Parameter("x", 0.0, 1.0, 0.0)


class TestSteeringSession:
    def test_register_get_set(self):
        s = SteeringSession()
        s.register("wind", 1.0, 0.0, 5.0)
        assert s.get("wind") == 1.0
        s.set("wind", 2.0)
        assert s.get("wind") == 2.0

    def test_duplicate_register(self):
        s = SteeringSession()
        s.register("a", 0, 0, 1)
        with pytest.raises(SteeringError):
            s.register("a", 0, 0, 1)

    def test_unknown_parameter(self):
        s = SteeringSession()
        with pytest.raises(SteeringError):
            s.get("ghost")
        with pytest.raises(SteeringError):
            s.set("ghost", 1.0)

    def test_journal_records_frames(self):
        s = SteeringSession()
        s.register("a", 0.0, 0.0, 10.0)
        s.set("a", 1.0)
        s.tick()
        s.tick()
        s.set("a", 2.0)
        assert s.journal == [(0, "a", 1.0), (2, "a", 2.0)]

    def test_listeners_notified(self):
        s = SteeringSession()
        s.register("a", 0.0, 0.0, 10.0)
        seen = []
        s.on_change(lambda name, value: seen.append((name, value)))
        s.set("a", 3.0)
        assert seen == [("a", 3.0)]

    def test_replay_into(self):
        src = SteeringSession()
        src.register("a", 0.0, 0.0, 10.0)
        src.set("a", 4.0)
        src.set("a", 6.0)
        dst = SteeringSession()
        dst.register("a", 0.0, 0.0, 10.0)
        src.replay_into(dst)
        assert dst.get("a") == 6.0

    def test_describe_lists_params(self):
        s = SteeringSession()
        s.register("beta", 0.5, 0.0, 1.0, "mixing")
        text = s.describe()
        assert "beta" in text and "mixing" in text

    def test_names_sorted(self):
        s = SteeringSession()
        s.register("z", 0, 0, 1)
        s.register("a", 0, 0, 1)
        assert s.names() == ["a", "z"]
