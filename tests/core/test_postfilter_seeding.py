"""Tests for the post-filter and seeding options threaded through the pipeline."""

import numpy as np
import pytest

from repro.core.config import SpotNoiseConfig
from repro.core.pipeline import SpotNoisePipeline
from repro.errors import PipelineError
from repro.fields.analytic import constant_field
from repro.fields.grid import RectilinearGrid
from repro.fields.vectorfield import VectorField2D

FIELD = constant_field(1.0, 0.0, n=17)


class TestPostFilter:
    def _display(self, post_filter):
        cfg = SpotNoiseConfig(
            n_spots=400, texture_size=64, spot_mode="standard", seed=4,
            post_filter=post_filter,
        )
        with SpotNoisePipeline(cfg, FIELD) as pipe:
            return pipe.step().display

    def test_all_filters_produce_unit_range(self):
        for pf in ("none", "highpass", "equalize"):
            d = self._display(pf)
            assert d.min() >= 0.0 and d.max() <= 1.0

    def test_equalize_flattens(self):
        d = self._display("equalize")
        hist, _ = np.histogram(d, bins=8, range=(0, 1))
        assert hist.max() < 2.0 * max(hist.min(), 1)

    def test_filters_differ_from_plain(self):
        plain = self._display("none")
        for pf in ("highpass", "equalize"):
            assert not np.allclose(self._display(pf), plain)

    def test_unknown_filter_rejected(self):
        with pytest.raises(PipelineError):
            SpotNoiseConfig(post_filter="sharpen")


class TestSeedingThroughPipeline:
    def test_jittered_seeding(self):
        cfg = SpotNoiseConfig(
            n_spots=300, texture_size=48, spot_mode="standard", seed=5,
            seeding="jittered",
        )
        with SpotNoisePipeline(cfg, FIELD) as pipe:
            assert len(pipe.particles) == 300
            assert FIELD.grid.contains(pipe.particles.positions).all()
            frame = pipe.step()
        assert frame.texture.shape == (48, 48)

    def test_cell_area_seeding_on_stretched_grid(self):
        grid = RectilinearGrid.stretched(
            65, 33, (0.0, 1.0, 0.0, 1.0), focus=(0.3, 0.5), strength=6.0
        )
        field = VectorField2D.from_function(grid, lambda X, Y: (np.ones_like(X), np.zeros_like(Y)))
        cfg = SpotNoiseConfig(
            n_spots=2000, texture_size=48, spot_mode="standard", seed=6,
            seeding="cell_area",
        )
        with SpotNoisePipeline(cfg, field) as pipe:
            near = (np.abs(pipe.particles.positions[:, 0] - 0.3) < 0.1).mean()
        # Far more than the ~20% a uniform draw would give.
        assert near > 0.36

    def test_intensities_still_zero_mean_family(self):
        cfg = SpotNoiseConfig(
            n_spots=500, texture_size=48, spot_mode="standard", seed=7,
            seeding="jittered", intensity=2.0,
        )
        with SpotNoisePipeline(cfg, FIELD) as pipe:
            assert set(np.unique(pipe.particles.intensities)) == {-2.0, 2.0}

    def test_unknown_seeding_rejected(self):
        with pytest.raises(PipelineError):
            SpotNoiseConfig(seeding="poisson")
