"""Tests for the command-line interface (repro.cli)."""

import os

import pytest

from repro.cli import build_parser, main


class TestTables:
    def test_prints_both_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "nP\\nG" in out


class TestPredict:
    def test_default_full_machine(self, capsys):
        assert main(["predict"]) == 0
        out = capsys.readouterr().out
        assert "8 processors, 4 graphics pipes" in out
        assert "textures/s" in out
        assert "meets the 5 Hz steering budget" in out

    def test_single_cpu_misses_budget(self, capsys):
        assert main(["predict", "-p", "1", "-g", "1", "-w", "turbulence"]) == 0
        out = capsys.readouterr().out
        assert "MISSES" in out

    def test_spot_override(self, capsys):
        assert main(["predict", "--spots", "1000", "-w", "turbulence"]) == 0
        out = capsys.readouterr().out
        assert "1000 spots" in out

    def test_tiled_flag_accepted(self, capsys):
        assert main(["predict", "--tiled"]) == 0

    def test_infeasible_machine_raises(self):
        from repro.errors import MachineError

        with pytest.raises(MachineError):
            main(["predict", "-p", "1", "-g", "4"])


class TestRender:
    def test_writes_pgm(self, tmp_path, capsys):
        out_path = str(tmp_path / "tex.pgm")
        code = main([
            "render", "--field", "shear", "--size", "64", "--spots", "500",
            "--output", out_path,
        ])
        assert code == 0
        assert os.path.exists(out_path)
        from repro.viz.image import read_pgm

        img = read_pgm(out_path)
        assert img.shape == (64, 64)

    def test_post_filter_option(self, tmp_path):
        out_path = str(tmp_path / "hp.pgm")
        assert main([
            "render", "--size", "64", "--spots", "300",
            "--post-filter", "highpass", "--output", out_path,
        ]) == 0
        assert os.path.exists(out_path)

    def test_unknown_field_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "--field", "tornado"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestAnimBench:
    def test_small_scrub_bench_runs_and_reports(self, capsys):
        code = main([
            "anim-bench", "--trace", "scrub", "--requests", "24", "--frames", "8",
            "--spots", "120", "--size", "32", "--grid", "16", "--clients", "2",
            "--baseline-requests", "4", "--verify-sample", "1",
            "--checkpoint-every", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "streamed path:" in out
        assert "per-frame path:" in out
        assert "speedup:" in out
        assert "bit-identical to one-shot renders: yes" in out

    def test_replay_trace_renders_each_frame_once(self, capsys):
        code = main([
            "anim-bench", "--trace", "replay", "--requests", "16", "--frames", "8",
            "--spots", "120", "--size", "32", "--grid", "16", "--clients", "1",
            "--baseline-requests", "2", "--verify-sample", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "8 incremental renders for 8 distinct frames" in out

    def test_rejects_unknown_trace(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["anim-bench", "--trace", "bogus"])


class TestServeBench:
    def test_small_zipf_bench_runs_and_reports(self, capsys):
        code = main([
            "serve-bench", "--trace", "zipf", "--requests", "24",
            "--frames", "4", "--clients", "2", "--workers", "1",
            "--spots", "60", "--size", "32", "--grid", "17",
            "--baseline-requests", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hit" in out and "coalesce" in out
        assert "bit-identical to fresh renders: yes" in out
        assert "speedup" in out
        assert "renders for 4 distinct frames" in out or "distinct frames" in out

    def test_disk_tier_and_scrub_trace(self, tmp_path, capsys):
        code = main([
            "serve-bench", "--trace", "scrub", "--requests", "12",
            "--frames", "3", "--clients", "1", "--workers", "1",
            "--spots", "60", "--size", "32", "--grid", "17",
            "--baseline-requests", "4", "--disk", str(tmp_path / "cache"),
            "--no-verify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical" not in out
        # The disk tier is content-addressed npz files.
        cached = [p for p in (tmp_path / "cache").iterdir() if p.suffix == ".npz"]
        assert cached
