"""Tests for the command-line interface (repro.cli)."""

import os

import pytest

from repro.cli import build_parser, main


class TestTables:
    def test_prints_both_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "nP\\nG" in out


class TestPredict:
    def test_default_full_machine(self, capsys):
        assert main(["predict"]) == 0
        out = capsys.readouterr().out
        assert "8 processors, 4 graphics pipes" in out
        assert "textures/s" in out
        assert "meets the 5 Hz steering budget" in out

    def test_single_cpu_misses_budget(self, capsys):
        assert main(["predict", "-p", "1", "-g", "1", "-w", "turbulence"]) == 0
        out = capsys.readouterr().out
        assert "MISSES" in out

    def test_spot_override(self, capsys):
        assert main(["predict", "--spots", "1000", "-w", "turbulence"]) == 0
        out = capsys.readouterr().out
        assert "1000 spots" in out

    def test_tiled_flag_accepted(self, capsys):
        assert main(["predict", "--tiled"]) == 0

    def test_infeasible_machine_raises(self):
        from repro.errors import MachineError

        with pytest.raises(MachineError):
            main(["predict", "-p", "1", "-g", "4"])


class TestRender:
    def test_writes_pgm(self, tmp_path, capsys):
        out_path = str(tmp_path / "tex.pgm")
        code = main([
            "render", "--field", "shear", "--size", "64", "--spots", "500",
            "--output", out_path,
        ])
        assert code == 0
        assert os.path.exists(out_path)
        from repro.viz.image import read_pgm

        img = read_pgm(out_path)
        assert img.shape == (64, 64)

    def test_post_filter_option(self, tmp_path):
        out_path = str(tmp_path / "hp.pgm")
        assert main([
            "render", "--size", "64", "--spots", "300",
            "--post-filter", "highpass", "--output", out_path,
        ]) == 0
        assert os.path.exists(out_path)

    def test_unknown_field_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "--field", "tornado"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
