"""Tests for repro.core.pipeline and synthesizer."""

import numpy as np
import pytest

from repro.advection.lifecycle import LifeCyclePolicy
from repro.core.config import SpotNoiseConfig
from repro.core.pipeline import SpotNoisePipeline
from repro.core.synthesizer import SpotNoiseSynthesizer, workload_from_config
from repro.errors import PipelineError
from repro.fields.analytic import constant_field, vortex_field
from repro.fields.scalarfield import ScalarField2D

CFG = SpotNoiseConfig(n_spots=200, texture_size=48, spot_mode="standard", seed=1)
FIELD = vortex_field(n=17)


class TestPipelineStages:
    def test_step_produces_frame(self):
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            frame = pipe.step()
        assert frame.texture.shape == (48, 48)
        assert frame.display.min() >= 0.0 and frame.display.max() <= 1.0
        assert frame.image is None
        assert frame.frame_index == 0

    def test_frame_index_increments(self):
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            pipe.step()
            frame = pipe.step()
        assert frame.frame_index == 1

    def test_read_data_swaps_field(self):
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            other = vortex_field(omega=-1.0, n=17)
            pipe.read_data(other)
            assert pipe.field is other
            assert pipe.advector.field is other

    def test_read_data_rejects_different_domain(self):
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            bad = constant_field(n=17, bounds=(0, 2, 0, 2))
            with pytest.raises(PipelineError):
                pipe.read_data(bad)

    def test_advect_moves_particles(self):
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            before = pipe.particles.positions.copy()
            pipe.advect()
            assert not np.allclose(pipe.particles.positions, before)

    def test_static_policy_keeps_positions(self):
        with SpotNoisePipeline(
            CFG, FIELD, policy=LifeCyclePolicy.default_spot_noise()
        ) as pipe:
            before = pipe.particles.positions.copy()
            pipe.advect()
            np.testing.assert_array_equal(pipe.particles.positions, before)

    def test_render_with_scalar_overlay(self):
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            scalar = ScalarField2D.from_function(FIELD.grid, lambda X, Y: X + 1.0)
            frame = pipe.step(scalar=scalar)
        assert frame.image is not None
        assert frame.image.shape == (48, 48, 3)

    def test_render_with_mask(self):
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            mask = np.zeros((48, 48), dtype=bool)
            mask[:10, :10] = True
            frame = pipe.step(mask=mask)
        assert frame.image is not None

    def test_fading_changes_texture(self):
        policy = LifeCyclePolicy.advected(lifetime=10, fade_frames=5)
        a = SpotNoisePipeline(CFG, FIELD, policy=policy)
        tex_fade, _ = (a.step().texture, a.close())
        b = SpotNoisePipeline(CFG, FIELD, policy=LifeCyclePolicy.advected(10, 0))
        tex_plain, _ = (b.step().texture, b.close())
        assert not np.allclose(tex_fade, tex_plain)

    def test_textures_per_second_positive(self):
        with SpotNoisePipeline(CFG, FIELD) as pipe:
            pipe.step()
            assert pipe.textures_per_second() > 0


class TestSynthesizer:
    def test_one_call_synthesis(self):
        with SpotNoiseSynthesizer(CFG) as s:
            frame = s.synthesize(FIELD)
        assert frame.display.shape == (48, 48)

    def test_animate_yields_n_frames(self):
        with SpotNoiseSynthesizer(CFG) as s:
            frames = list(s.animate(FIELD, 3))
        assert len(frames) == 3
        assert [f.frame_index for f in frames] == [0, 1, 2]

    def test_animate_with_field_sequence(self):
        fields = [vortex_field(omega=w, n=17) for w in (1.0, 2.0)]
        with SpotNoiseSynthesizer(CFG) as s:
            frames = list(s.animate(iter(fields), 5))
        assert len(frames) == 2  # stops when the source is exhausted

    def test_animate_negative(self):
        with SpotNoiseSynthesizer(CFG) as s:
            with pytest.raises(ValueError):
                list(s.animate(FIELD, -1))

    def test_pipeline_rebuilt_on_domain_change(self):
        with SpotNoiseSynthesizer(CFG) as s:
            s.synthesize(FIELD)
            first = s._pipeline
            s.synthesize(constant_field(n=17, bounds=(0, 2, 0, 2)))
            assert s._pipeline is not first

    def test_predict_timing(self):
        with SpotNoiseSynthesizer(SpotNoiseConfig.atmospheric()) as s:
            res = s.predict_timing(FIELD, 8, 4)
        assert res.textures_per_second > 1.0

    def test_sweep_timing_layout(self):
        with SpotNoiseSynthesizer(SpotNoiseConfig.atmospheric()) as s:
            table = s.sweep_timing(FIELD, (1, 2), (1, 2))
        assert set(table) == {(1, 1), (2, 1), (2, 2)}


class TestWorkloadFromConfig:
    def test_bent_config_workload(self):
        w = workload_from_config(SpotNoiseConfig.atmospheric())
        assert w.n_spots == 2500
        assert w.vertices_per_spot == 544

    def test_standard_config_workload(self):
        w = workload_from_config(SpotNoiseConfig(spot_mode="standard", n_spots=10))
        assert w.vertices_per_spot == 4
        assert w.pixels_per_spot > 0

    def test_field_sets_grid_shape(self):
        w = workload_from_config(CFG, FIELD)
        assert w.grid_shape == FIELD.grid.shape
