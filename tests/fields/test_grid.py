"""Tests for repro.fields.grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GridError
from repro.fields.grid import RectilinearGrid, RegularGrid


class TestRegularGridConstruction:
    def test_basic_properties(self):
        g = RegularGrid(11, 6, (0.0, 10.0, 0.0, 5.0))
        assert g.shape == (6, 11)
        assert g.dx == pytest.approx(1.0)
        assert g.dy == pytest.approx(1.0)
        assert g.extent == (10.0, 5.0)
        assert g.n_cells == 50

    @pytest.mark.parametrize("nx,ny", [(1, 5), (5, 1), (0, 0)])
    def test_too_few_nodes(self, nx, ny):
        with pytest.raises(GridError):
            RegularGrid(nx, ny)

    @pytest.mark.parametrize("bounds", [(1, 1, 0, 1), (0, 1, 2, 2), (1, 0, 0, 1)])
    def test_degenerate_bounds(self, bounds):
        with pytest.raises(GridError):
            RegularGrid(4, 4, bounds)

    def test_equality_and_hash(self):
        a = RegularGrid(4, 4, (0, 1, 0, 1))
        b = RegularGrid(4, 4, (0, 1, 0, 1))
        c = RegularGrid(4, 5, (0, 1, 0, 1))
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestRegularGridMapping:
    def test_corners_map_to_index_extremes(self):
        g = RegularGrid(5, 3, (0.0, 4.0, 0.0, 2.0))
        fx, fy = g.world_to_fractional(np.array([[0.0, 0.0], [4.0, 2.0]]))
        assert fx.tolist() == [0.0, 4.0]
        assert fy.tolist() == [0.0, 2.0]

    def test_roundtrip(self):
        g = RegularGrid(9, 7, (-2.0, 3.0, 1.0, 4.0))
        pts = np.array([[0.3, 2.2], [-1.9, 3.9], [2.5, 1.1]])
        fx, fy = g.world_to_fractional(pts)
        back = g.fractional_to_world(fx, fy)
        np.testing.assert_allclose(back, pts, atol=1e-12)

    def test_single_point_accepted(self):
        g = RegularGrid(4, 4)
        fx, fy = g.world_to_fractional(np.array([0.5, 0.5]))
        assert fx.shape == (1,)

    def test_bad_point_shape(self):
        g = RegularGrid(4, 4)
        with pytest.raises(GridError):
            g.world_to_fractional(np.zeros((3, 3)))

    def test_contains(self):
        g = RegularGrid(4, 4, (0, 1, 0, 1))
        mask = g.contains(np.array([[0.5, 0.5], [1.5, 0.5], [0.0, 1.0]]))
        assert mask.tolist() == [True, False, True]

    def test_clamp(self):
        g = RegularGrid(4, 4, (0, 1, 0, 1))
        out = g.clamp(np.array([[-1.0, 2.0]]))
        assert out.tolist() == [[0.0, 1.0]]

    def test_wrap(self):
        g = RegularGrid(4, 4, (0, 1, 0, 1))
        out = g.wrap(np.array([[1.25, -0.25]]))
        np.testing.assert_allclose(out, [[0.25, 0.75]])

    def test_mesh_shapes(self):
        g = RegularGrid(5, 3)
        X, Y = g.mesh()
        assert X.shape == g.shape == (3, 5)

    def test_min_spacing(self):
        g = RegularGrid(11, 6, (0.0, 1.0, 0.0, 1.0))
        assert g.min_spacing() == pytest.approx(0.1)


class TestRectilinearGrid:
    def test_strictly_increasing_required(self):
        with pytest.raises(GridError):
            RectilinearGrid(np.array([0.0, 0.0, 1.0]), np.array([0.0, 1.0]))

    def test_1d_required(self):
        with pytest.raises(GridError):
            RectilinearGrid(np.zeros((2, 2)), np.array([0.0, 1.0]))

    def test_fractional_on_nonuniform_axis(self):
        g = RectilinearGrid(np.array([0.0, 1.0, 4.0]), np.array([0.0, 1.0]))
        fx, fy = g.world_to_fractional(np.array([[2.5, 0.5]]))
        # 2.5 is halfway between nodes 1 (x=1) and 2 (x=4).
        assert fx[0] == pytest.approx(1.5)

    def test_roundtrip_nonuniform(self):
        g = RectilinearGrid(np.array([0.0, 0.5, 2.0, 7.0]), np.array([0.0, 3.0, 4.0]))
        pts = np.array([[0.25, 3.5], [5.0, 0.1], [6.9, 3.9]])
        fx, fy = g.world_to_fractional(pts)
        np.testing.assert_allclose(g.fractional_to_world(fx, fy), pts, atol=1e-12)

    def test_stretched_factory_monotone(self):
        g = RectilinearGrid.stretched(32, 24, (0.0, 4.0, 0.0, 3.0), focus=(0.25, 0.5))
        assert np.all(np.diff(g.x) > 0)
        assert np.all(np.diff(g.y) > 0)
        assert g.bounds == pytest.approx((0.0, 4.0, 0.0, 3.0))

    def test_stretched_focus_refines(self):
        g = RectilinearGrid.stretched(64, 8, (0.0, 1.0, 0.0, 1.0), focus=(0.3, 0.5), strength=2.5)
        dx = np.diff(g.x)
        # Spacing near the focus fraction must be below the mean spacing.
        focus_idx = np.searchsorted(g.x, 0.3)
        assert dx[max(focus_idx - 1, 0)] < dx.mean()

    def test_min_spacing_positive(self):
        g = RectilinearGrid.stretched(32, 32, (0.0, 1.0, 0.0, 1.0))
        assert g.min_spacing() > 0

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.01, 0.99), st.floats(0.01, 0.99))
    def test_contains_matches_bounds(self, px, py):
        g = RectilinearGrid(np.array([0.0, 0.3, 1.0]), np.array([0.0, 0.7, 1.0]))
        assert g.contains(np.array([[px, py]]))[0]
