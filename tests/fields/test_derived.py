"""Tests for repro.fields.derived."""

import numpy as np

from repro.fields.analytic import constant_field, shear_field, vortex_field
from repro.fields.derived import (
    divergence_field,
    magnitude_field,
    okubo_weiss_field,
    vorticity_field,
)
from repro.fields.grid import RectilinearGrid
from repro.fields.vectorfield import VectorField2D


class TestMagnitude:
    def test_constant(self):
        m = magnitude_field(constant_field(3.0, 4.0, n=9))
        np.testing.assert_allclose(m.data, 5.0)


class TestVorticity:
    def test_solid_body_rotation(self):
        # omega * (-y, x) has vorticity 2*omega everywhere.
        f = vortex_field(omega=1.5, n=33)
        w = vorticity_field(f)
        np.testing.assert_allclose(w.data, 3.0, atol=1e-8)

    def test_shear(self):
        # u = rate*y -> vorticity = -rate.
        w = vorticity_field(shear_field(rate=2.0, n=17))
        np.testing.assert_allclose(w.data, -2.0, atol=1e-8)

    def test_constant_flow_zero(self):
        w = vorticity_field(constant_field(1.0, 1.0, n=9))
        np.testing.assert_allclose(w.data, 0.0, atol=1e-12)


class TestDivergence:
    def test_radial_field(self):
        # (x, y) has divergence 2.
        from repro.fields.grid import RegularGrid

        g = RegularGrid(17, 17, (-1, 1, -1, 1))
        f = VectorField2D.from_function(g, lambda X, Y: (X, Y))
        d = divergence_field(f)
        np.testing.assert_allclose(d.data, 2.0, atol=1e-8)

    def test_on_rectilinear_grid(self):
        x = np.array([0.0, 0.5, 1.5, 3.0, 5.0])
        y = np.array([0.0, 1.0, 2.5, 4.0])
        g = RectilinearGrid(x, y)
        f = VectorField2D.from_function(g, lambda X, Y: (X, -Y))
        d = divergence_field(f)
        np.testing.assert_allclose(d.data, 0.0, atol=1e-8)


class TestOkuboWeiss:
    def test_negative_in_vortex_core(self):
        ow = okubo_weiss_field(vortex_field(n=33))
        assert ow.data.mean() < 0  # rotation dominated

    def test_positive_in_pure_strain(self):
        from repro.fields.analytic import saddle_field

        ow = okubo_weiss_field(saddle_field(n=33))
        assert ow.data.mean() > 0  # strain dominated

    def test_zero_for_uniform_flow(self):
        ow = okubo_weiss_field(constant_field(2.0, 0.0, n=17))
        np.testing.assert_allclose(ow.data, 0.0, atol=1e-12)
