"""Tests for repro.fields.analytic."""

import numpy as np
import pytest

from repro.fields.analytic import (
    constant_field,
    double_gyre_field,
    random_smooth_field,
    saddle_field,
    separation_field,
    shear_field,
    taylor_green_field,
    vortex_field,
)
from repro.fields.derived import divergence_field, vorticity_field


class TestConstantField:
    def test_uniform_everywhere(self):
        f = constant_field(2.0, -1.0, n=16)
        pts = np.random.default_rng(0).uniform(-1, 1, (20, 2))
        out = f.sample(pts)
        np.testing.assert_allclose(out, np.tile([2.0, -1.0], (20, 1)))


class TestShearField:
    def test_u_proportional_to_y(self):
        f = shear_field(rate=3.0, n=16)
        out = f.sample(np.array([[0.0, 0.5], [0.0, -0.5]]))
        np.testing.assert_allclose(out[:, 0], [1.5, -1.5], atol=1e-12)
        np.testing.assert_allclose(out[:, 1], 0.0, atol=1e-12)


class TestVortexField:
    def test_velocity_perpendicular_to_radius(self):
        f = vortex_field(n=33)
        pts = np.array([[0.5, 0.0], [0.0, 0.5], [0.3, 0.3]])
        vel = f.sample(pts)
        dots = (pts * vel).sum(axis=1)
        np.testing.assert_allclose(dots, 0.0, atol=1e-10)

    def test_speed_proportional_to_radius(self):
        f = vortex_field(omega=2.0, n=33)
        v = f.sample(np.array([[0.5, 0.0]]))
        assert np.hypot(*v[0]) == pytest.approx(1.0, rel=1e-6)


class TestSaddleField:
    def test_stagnation_at_origin(self):
        f = saddle_field(n=17)
        v = f.sample(np.array([[0.0, 0.0]]))
        np.testing.assert_allclose(v, [[0.0, 0.0]], atol=1e-12)

    def test_divergence_free(self):
        f = saddle_field(rate=2.0, n=33)
        div = divergence_field(f)
        assert abs(div.data).max() < 1e-8


class TestSeparationField:
    def test_flow_converges_onto_line(self):
        f = separation_field(line_y=0.0, n=33)
        above = f.sample(np.array([[0.0, 0.5]]))
        below = f.sample(np.array([[0.0, -0.5]]))
        assert above[0, 1] < 0  # moving down toward the line
        assert below[0, 1] > 0  # moving up toward the line

    def test_along_line_component_nonzero(self):
        f = separation_field(along=0.8, strength=2.0, n=17)
        on_line = f.sample(np.array([[0.0, 0.0]]))
        assert on_line[0, 0] == pytest.approx(1.6)
        assert on_line[0, 1] == pytest.approx(0.0, abs=1e-12)


class TestDoubleGyre:
    def test_domain_and_boundaries(self):
        f = double_gyre_field(t=0.0, n=32)
        assert f.grid.bounds == (0.0, 2.0, 0.0, 1.0)
        # No flow through the top/bottom walls.
        pts = np.array([[0.5, 0.0], [1.5, 1.0]])
        v = f.sample(pts)
        np.testing.assert_allclose(v[:, 1], 0.0, atol=1e-10)

    def test_time_dependence(self):
        a = double_gyre_field(t=0.0, n=24)
        b = double_gyre_field(t=2.5, n=24)
        assert not np.allclose(a.data, b.data)


class TestTaylorGreen:
    def test_divergence_free(self):
        f = taylor_green_field(k=2, n=64)
        div = divergence_field(f)
        # FD divergence of the analytic field: second-order small, not zero.
        assert abs(div.data).max() < 0.1 * abs(vorticity_field(f).data).max()

    def test_periodic_boundary_mode(self):
        f = taylor_green_field()
        assert f.boundary == "wrap"


class TestRandomSmoothField:
    def test_deterministic_for_seed(self):
        a = random_smooth_field(seed=5, n=32)
        b = random_smooth_field(seed=5, n=32)
        np.testing.assert_array_equal(a.data, b.data)

    def test_seed_changes_field(self):
        a = random_smooth_field(seed=5, n=32)
        b = random_smooth_field(seed=6, n=32)
        assert not np.allclose(a.data, b.data)

    def test_amplitude_bound(self):
        f = random_smooth_field(seed=1, n=32, amplitude=2.0)
        assert abs(f.u).max() <= 2.0 + 1e-9

    def test_smoothness_reduces_gradients(self):
        rough = random_smooth_field(seed=2, n=64, smoothness=2.0)
        smooth = random_smooth_field(seed=2, n=64, smoothness=16.0)
        g_rough = np.abs(np.gradient(rough.u)).mean()
        g_smooth = np.abs(np.gradient(smooth.u)).mean()
        assert g_smooth < g_rough
