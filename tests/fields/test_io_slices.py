"""Tests for repro.fields.io and repro.fields.slices."""

import os

import numpy as np
import pytest

from repro.errors import FieldError
from repro.fields.analytic import vortex_field
from repro.fields.grid import RectilinearGrid, RegularGrid
from repro.fields.io import field_digest, load_field, save_field
from repro.fields.scalarfield import ScalarField2D
from repro.fields.slices import Dataset3D, SliceSpec
from repro.fields.vectorfield import VectorField2D


class TestFieldIO:
    def test_vector_roundtrip_regular(self, tmp_path):
        f = vortex_field(n=16)
        path = tmp_path / "field.npz"
        save_field(path, f)
        g = load_field(path)
        assert isinstance(g, VectorField2D)
        np.testing.assert_array_equal(g.data, f.data)
        assert g.grid.bounds == f.grid.bounds
        assert g.boundary == f.boundary

    def test_scalar_roundtrip(self, tmp_path):
        grid = RegularGrid(8, 6)
        s = ScalarField2D.from_function(grid, lambda X, Y: X * Y)
        path = tmp_path / "scalar.npz"
        save_field(path, s)
        t = load_field(path)
        assert isinstance(t, ScalarField2D)
        np.testing.assert_array_equal(t.data, s.data)

    def test_rectilinear_roundtrip(self, tmp_path):
        g = RectilinearGrid(np.array([0.0, 1.0, 3.0]), np.array([0.0, 2.0, 5.0, 9.0]))
        f = VectorField2D.from_function(g, lambda X, Y: (X, Y))
        path = tmp_path / "rect.npz"
        save_field(path, f)
        h = load_field(path)
        np.testing.assert_array_equal(h.grid.x_coords(), g.x)
        np.testing.assert_array_equal(h.data, f.data)

    def test_not_a_field_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, whatever=np.zeros(3))
        with pytest.raises(FieldError):
            load_field(path)

    def test_failed_save_leaves_existing_file_intact(self, tmp_path, monkeypatch):
        # Regression: save_field used to hand the *path* to
        # np.savez_compressed, which truncates in place — a crash
        # mid-save destroyed the previous good file.  The atomic write
        # must leave it untouched and clean up its temp file.
        import repro.fields.io as io_mod

        f = vortex_field(n=8)
        path = tmp_path / "field.npz"
        save_field(path, f)

        def exploding_savez(fh, **arrays):
            fh.write(b"partial garbage")
            raise RuntimeError("disk full")

        monkeypatch.setattr(io_mod.np, "savez_compressed", exploding_savez)
        with pytest.raises(RuntimeError, match="disk full"):
            save_field(path, f)
        monkeypatch.undo()
        g = load_field(path)
        np.testing.assert_array_equal(g.data, f.data)
        assert os.listdir(tmp_path) == ["field.npz"]  # no temp litter

    def test_bare_path_save_appends_npz(self, tmp_path):
        # np.savez appends ".npz" to bare path names; the atomic-write
        # rework must preserve that contract (handles get no suffix).
        f = vortex_field(n=8)
        save_field(tmp_path / "field", f)
        assert not (tmp_path / "field").exists()
        g = load_field(tmp_path / "field.npz")
        np.testing.assert_array_equal(g.data, f.data)

    def test_newer_format_version_is_rejected(self, tmp_path):
        f = vortex_field(n=8)
        path = tmp_path / "future.npz"
        save_field(path, f)
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["format_version"] = np.asarray(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(FieldError, match="newer"):
            load_field(path)

    def test_invalid_format_version_is_rejected(self, tmp_path):
        f = vortex_field(n=8)
        path = tmp_path / "zero.npz"
        save_field(path, f)
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["format_version"] = np.asarray(0)
        np.savez_compressed(path, **payload)
        with pytest.raises(FieldError, match="version"):
            load_field(path)


class TestFieldDigest:
    def test_digest_is_stable(self):
        f = vortex_field(n=12)
        assert field_digest(f) == field_digest(f)
        # And across save/load (the round trip is the identity).
        assert len(field_digest(f)) == 64

    def test_roundtrip_preserves_digest(self, tmp_path):
        f = vortex_field(n=12)
        path = tmp_path / "f.npz"
        save_field(path, f)
        assert field_digest(load_field(path)) == field_digest(f)

    def test_data_change_changes_digest(self):
        f = vortex_field(n=12)
        g = VectorField2D(f.grid, f.data + 1e-15, f.boundary)
        assert field_digest(f) != field_digest(g)

    def test_grid_geometry_changes_digest(self):
        f = vortex_field(n=12)
        grid2 = RegularGrid(f.grid.nx, f.grid.ny, (0.0, 2.0, 0.0, 2.0))
        g = VectorField2D(grid2, f.data, f.boundary)
        assert field_digest(f) != field_digest(g)

    def test_boundary_mode_changes_digest(self):
        f = vortex_field(n=12)
        g = VectorField2D(f.grid, f.data, "wrap")
        assert field_digest(f) != field_digest(g)

    def test_scalar_and_vector_digests_are_distinct_kinds(self):
        grid = RegularGrid(6, 5)
        s = ScalarField2D.from_function(grid, lambda X, Y: X)
        assert len(field_digest(s)) == 64

    def test_digest_ignores_memory_layout(self):
        f = vortex_field(n=12)
        fortran = VectorField2D(
            f.grid, np.asfortranarray(f.data), f.boundary
        )
        assert field_digest(f) == field_digest(fortran)


class TestDataset3D:
    @pytest.fixture
    def volume(self):
        return Dataset3D.from_function(
            lambda X, Y, Z: (X, Y, Z),
            shape=(4, 5, 6),
            bounds=(0.0, 6.0, 0.0, 5.0, 0.0, 4.0),
        )

    def test_shape_validation(self):
        with pytest.raises(FieldError):
            Dataset3D(np.zeros((4, 5, 6, 2)))

    def test_needs_two_nodes_per_axis(self):
        with pytest.raises(FieldError):
            Dataset3D(np.zeros((1, 5, 6, 3)))

    def test_z_slice_in_plane_components(self, volume):
        f = volume.slice(SliceSpec("z", 2))
        assert f.grid.shape == (5, 6)
        # In-plane components of (u,v,w)=(X,Y,Z) are (X,Y).
        assert f.u[0, -1] == pytest.approx(6.0)
        assert f.v[-1, 0] == pytest.approx(5.0)

    def test_y_slice_plane_axes(self, volume):
        f = volume.slice(SliceSpec("y", 1))
        assert f.grid.shape == (4, 6)  # (nz, nx)
        # Components (u, w) = (X, Z).
        assert f.v[-1, 0] == pytest.approx(4.0)

    def test_x_slice(self, volume):
        f = volume.slice(SliceSpec("x", 0))
        assert f.grid.shape == (4, 5)  # (nz, ny)

    def test_out_of_range_index(self, volume):
        with pytest.raises(FieldError):
            volume.slice(SliceSpec("z", 99))

    def test_bad_axis(self):
        with pytest.raises(FieldError):
            SliceSpec("w", 0)

    def test_negative_index(self):
        with pytest.raises(FieldError):
            SliceSpec("z", -1)

    def test_nbytes(self, volume):
        assert volume.nbytes() == 4 * 5 * 6 * 3 * 8
