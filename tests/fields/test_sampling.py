"""Tests for repro.fields.sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.fields.sampling import bilinear_sample, nearest_sample


def ramp(ny=5, nx=7):
    """data[iy, ix] = ix + 10*iy — bilinear interpolation is exact on it."""
    return np.arange(nx)[None, :] + 10.0 * np.arange(ny)[:, None]


class TestBilinearSample:
    def test_exact_at_nodes(self):
        data = ramp()
        fx = np.array([0.0, 3.0, 6.0])
        fy = np.array([0.0, 2.0, 4.0])
        np.testing.assert_allclose(bilinear_sample(data, fx, fy), [0.0, 23.0, 46.0])

    def test_linear_in_between(self):
        data = ramp()
        out = bilinear_sample(data, np.array([1.5]), np.array([2.5]))
        assert out[0] == pytest.approx(1.5 + 25.0)

    def test_vector_data(self):
        data = np.stack([ramp(), -ramp()], axis=-1)
        out = bilinear_sample(data, np.array([2.0]), np.array([1.0]))
        np.testing.assert_allclose(out, [[12.0, -12.0]])

    def test_clamp_mode(self):
        data = ramp()
        out = bilinear_sample(data, np.array([-5.0, 100.0]), np.array([0.0, 0.0]), "clamp")
        np.testing.assert_allclose(out, [0.0, 6.0])

    def test_zero_mode(self):
        data = ramp()
        out = bilinear_sample(data, np.array([-1.0, 3.0]), np.array([0.0, -0.5]), "zero")
        np.testing.assert_allclose(out, [0.0, 0.0])

    def test_zero_mode_vector_data(self):
        data = np.stack([ramp(), ramp()], axis=-1)
        out = bilinear_sample(data, np.array([-1.0]), np.array([0.0]), "zero")
        np.testing.assert_allclose(out, [[0.0, 0.0]])

    def test_wrap_mode_periodicity(self):
        data = ramp()
        inside = bilinear_sample(data, np.array([1.0]), np.array([1.0]), "wrap")
        wrapped = bilinear_sample(data, np.array([1.0 + 6.0]), np.array([1.0 + 4.0]), "wrap")
        np.testing.assert_allclose(wrapped, inside)

    def test_unknown_mode(self):
        with pytest.raises(FieldError):
            bilinear_sample(ramp(), np.array([0.0]), np.array([0.0]), "bogus")

    def test_shape_mismatch(self):
        with pytest.raises(FieldError):
            bilinear_sample(ramp(), np.array([0.0, 1.0]), np.array([0.0]))

    def test_too_small_data(self):
        with pytest.raises(FieldError):
            bilinear_sample(np.zeros((1, 5)), np.array([0.0]), np.array([0.0]))

    def test_bad_rank(self):
        with pytest.raises(FieldError):
            bilinear_sample(np.zeros(5), np.array([0.0]), np.array([0.0]))

    @settings(max_examples=30, deadline=None)
    @given(
        fx=st.floats(0.0, 6.0),
        fy=st.floats(0.0, 4.0),
    )
    def test_within_convex_hull_of_neighbours(self, fx, fy):
        rng = np.random.default_rng(0)
        data = rng.uniform(-1, 1, (5, 7))
        out = float(bilinear_sample(data, np.array([fx]), np.array([fy]))[0])
        assert data.min() - 1e-12 <= out <= data.max() + 1e-12

    def test_interpolation_is_exact_on_affine_data(self):
        # property: bilinear reproduces any affine function exactly
        data = 3.0 + 2.0 * np.arange(7)[None, :] - 1.5 * np.arange(5)[:, None]
        rng = np.random.default_rng(1)
        fx = rng.uniform(0, 6, 50)
        fy = rng.uniform(0, 4, 50)
        expected = 3.0 + 2.0 * fx - 1.5 * fy
        np.testing.assert_allclose(bilinear_sample(data, fx, fy), expected, atol=1e-12)


class TestNearestSample:
    def test_picks_nearest_node(self):
        data = ramp()
        out = nearest_sample(data, np.array([1.4, 1.6]), np.array([0.4, 0.6]))
        np.testing.assert_allclose(out, [1.0, 12.0])

    def test_zero_outside(self):
        out = nearest_sample(ramp(), np.array([-2.0]), np.array([0.0]), "zero")
        assert out[0] == 0.0

    def test_bad_mode(self):
        with pytest.raises(FieldError):
            nearest_sample(ramp(), np.array([0.0]), np.array([0.0]), "nope")
