"""Tests for repro.fields.vectorfield and scalarfield."""

import numpy as np
import pytest

from repro.errors import FieldError
from repro.fields.grid import RegularGrid
from repro.fields.scalarfield import ScalarField2D
from repro.fields.vectorfield import VectorField2D


@pytest.fixture
def grid():
    return RegularGrid(9, 7, (0.0, 2.0, 0.0, 1.0))


class TestVectorFieldConstruction:
    def test_shape_enforced(self, grid):
        with pytest.raises(FieldError):
            VectorField2D(grid, np.zeros((7, 9)))

    def test_nonfinite_rejected(self, grid):
        data = np.zeros((*grid.shape, 2))
        data[0, 0, 0] = np.nan
        with pytest.raises(FieldError):
            VectorField2D(grid, data)

    def test_from_function(self, grid):
        f = VectorField2D.from_function(grid, lambda X, Y: (X, -Y))
        assert f.u[0, -1] == pytest.approx(2.0)
        assert f.v[-1, 0] == pytest.approx(-1.0)

    def test_from_components_shape_check(self, grid):
        with pytest.raises(FieldError):
            VectorField2D.from_components(grid, np.zeros(grid.shape), np.zeros((2, 2)))

    def test_uv_are_views(self, grid):
        f = VectorField2D(grid, np.zeros((*grid.shape, 2)))
        f.u[0, 0] = 5.0
        assert f.data[0, 0, 0] == 5.0


class TestVectorFieldSampling:
    def test_sample_linear_field_exact(self, grid):
        f = VectorField2D.from_function(grid, lambda X, Y: (2 * X + Y, X - Y))
        pts = np.array([[0.3, 0.7], [1.9, 0.05]])
        out = f.sample(pts)
        np.testing.assert_allclose(out[:, 0], 2 * pts[:, 0] + pts[:, 1], atol=1e-12)
        np.testing.assert_allclose(out[:, 1], pts[:, 0] - pts[:, 1], atol=1e-12)

    def test_magnitude_and_direction(self, grid):
        f = VectorField2D.from_function(grid, lambda X, Y: (np.ones_like(X), np.ones_like(Y)))
        pts = np.array([[1.0, 0.5]])
        assert f.magnitude_at(pts)[0] == pytest.approx(np.sqrt(2))
        assert f.direction_at(pts)[0] == pytest.approx(np.pi / 4)

    def test_max_and_mean_magnitude(self, grid):
        f = VectorField2D.from_function(grid, lambda X, Y: (X, np.zeros_like(Y)))
        assert f.max_magnitude() == pytest.approx(2.0)
        assert 0 < f.mean_magnitude() < 2.0


class TestVectorFieldAlgebra:
    def test_scaled(self, grid):
        f = VectorField2D.from_function(grid, lambda X, Y: (X, Y))
        g = f.scaled(3.0)
        np.testing.assert_allclose(g.data, 3.0 * f.data)

    def test_plus(self, grid):
        f = VectorField2D.from_function(grid, lambda X, Y: (X, Y))
        h = f.plus(f.scaled(-1.0))
        assert h.max_magnitude() == 0.0

    def test_plus_grid_mismatch(self, grid):
        f = VectorField2D.from_function(grid, lambda X, Y: (X, Y))
        other_grid = RegularGrid(9, 7, (0.0, 1.0, 0.0, 1.0))
        g = VectorField2D.from_function(other_grid, lambda X, Y: (X, Y))
        with pytest.raises(FieldError):
            f.plus(g)

    def test_nbytes(self, grid):
        f = VectorField2D(grid, np.zeros((*grid.shape, 2)))
        assert f.nbytes() == 7 * 9 * 2 * 8


class TestScalarField:
    def test_shape_enforced(self, grid):
        with pytest.raises(FieldError):
            ScalarField2D(grid, np.zeros((3, 3)))

    def test_zeros_and_minmax(self, grid):
        s = ScalarField2D.zeros(grid)
        assert s.min() == s.max() == 0.0

    def test_normalized_range(self, grid):
        s = ScalarField2D.from_function(grid, lambda X, Y: X)
        n = s.normalized()
        assert n.min() == pytest.approx(0.0)
        assert n.max() == pytest.approx(1.0)

    def test_normalized_constant_maps_to_zero(self, grid):
        s = ScalarField2D.from_function(grid, lambda X, Y: np.full_like(X, 3.3))
        assert np.all(s.normalized().data == 0.0)

    def test_resampled_to_shape(self, grid):
        s = ScalarField2D.from_function(grid, lambda X, Y: X + Y)
        r = s.resampled_to((16, 32))
        assert r.shape == (16, 32)
        # Linear field resamples exactly.
        assert r[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert r[-1, -1] == pytest.approx(3.0, abs=1e-12)

    def test_resampled_bad_shape(self, grid):
        s = ScalarField2D.zeros(grid)
        with pytest.raises(FieldError):
            s.resampled_to((0, 8))

    def test_sample(self, grid):
        s = ScalarField2D.from_function(grid, lambda X, Y: 2 * X)
        assert s.sample(np.array([[0.5, 0.5]]))[0] == pytest.approx(1.0)
