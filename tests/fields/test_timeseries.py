"""Tests for time interpolation over stored frames (repro.fields.timeseries)."""

import numpy as np
import pytest

from repro.errors import FieldError
from repro.fields.grid import RegularGrid
from repro.fields.timeseries import TimeInterpolatedField
from repro.fields.vectorfield import VectorField2D

GRID = RegularGrid(8, 6, (0.0, 2.0, 0.0, 1.5))


def make_reader(values):
    """Frame i is a uniform field of magnitude values[i] along x."""

    def reader(i):
        data = np.zeros((*GRID.shape, 2))
        data[..., 0] = values[i]
        return VectorField2D(GRID, data)

    return reader


class TestConstruction:
    def test_needs_two_frames(self):
        with pytest.raises(FieldError):
            TimeInterpolatedField(make_reader([1.0]), [0.0])

    def test_times_strictly_increasing(self):
        with pytest.raises(FieldError):
            TimeInterpolatedField(make_reader([1.0, 2.0]), [0.0, 0.0])

    def test_range_properties(self):
        f = TimeInterpolatedField(make_reader([1.0, 2.0, 3.0]), [0.0, 1.0, 4.0])
        assert f.t_min == 0.0 and f.t_max == 4.0


class TestInterpolation:
    @pytest.fixture
    def series(self):
        return TimeInterpolatedField(make_reader([0.0, 2.0, 6.0]), [0.0, 1.0, 2.0])

    def test_exact_at_frame_times(self, series):
        assert series.field_at(1.0).u[0, 0] == pytest.approx(2.0)
        assert series.field_at(2.0).u[0, 0] == pytest.approx(6.0)

    def test_linear_between_frames(self, series):
        assert series.field_at(0.5).u[0, 0] == pytest.approx(1.0)
        assert series.field_at(1.25).u[0, 0] == pytest.approx(3.0)

    def test_clamped_outside_range(self, series):
        assert series.field_at(-5.0).u[0, 0] == pytest.approx(0.0)
        assert series.field_at(99.0).u[0, 0] == pytest.approx(6.0)

    def test_nonuniform_times(self):
        f = TimeInterpolatedField(make_reader([0.0, 10.0]), [0.0, 5.0])
        assert f.field_at(1.0).u[0, 0] == pytest.approx(2.0)

    def test_reader_called_lazily(self):
        calls = []

        def reader(i):
            calls.append(i)
            return make_reader([0.0, 1.0, 2.0])(i)

        f = TimeInterpolatedField(reader, [0.0, 1.0, 2.0])
        f.field_at(0.25)
        assert set(calls) == {0, 1}

    def test_cache_reused_for_sequential_playback(self):
        calls = []

        def reader(i):
            calls.append(i)
            return make_reader([0.0, 1.0, 2.0])(i)

        f = TimeInterpolatedField(reader, [0.0, 1.0, 2.0])
        for t in np.linspace(0.0, 1.0, 7):
            f.field_at(t)
        assert len(calls) <= 3  # each frame loaded about once


class TestUnsteadySampler:
    def test_pathline_through_stored_data(self):
        # Frames: u = 0 at t=0, u = 2 at t=1 -> u(t) = 2t; x(t) = t^2.
        from repro.advection.unsteady import pathline_bundle

        series = TimeInterpolatedField(make_reader([0.0, 2.0]), [0.0, 1.0])
        paths = pathline_bundle(series.sampler(), np.array([[0.0, 0.5]]), 0.0, 1.0 / 32, 32)
        assert paths[0, -1, 0] == pytest.approx(1.0, abs=1e-6)
        assert paths[0, -1, 1] == pytest.approx(0.5)

    def test_from_store(self, tmp_path):
        from repro.apps.dns.store import ChunkedFieldStore
        from repro.fields.grid import RectilinearGrid

        grid = RectilinearGrid(np.linspace(0, 2, 8), np.linspace(0, 1.5, 6))
        store = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=2)
        for i in range(4):
            data = np.full((*grid.shape, 2), float(i))
            store.append(VectorField2D(grid, data), time=float(i))
        store.flush()
        series = TimeInterpolatedField.from_store(store)
        assert series.field_at(1.5).u[0, 0] == pytest.approx(1.5)
