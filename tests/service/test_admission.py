"""Tests for repro.service.admission — prediction and shedding."""

import pytest

from repro.core.config import SpotNoiseConfig
from repro.errors import AdmissionError, ServiceError
from repro.fields.analytic import vortex_field
from repro.service.admission import AdmissionController, LatencyPredictor


class TestLatencyPredictor:
    def test_more_spots_predict_more_time(self):
        p = LatencyPredictor()
        small = p.predict(SpotNoiseConfig(n_spots=100, texture_size=64))
        big = p.predict(SpotNoiseConfig(n_spots=10_000, texture_size=64))
        assert big > small > 0.0

    def test_field_and_shape_paths_agree(self):
        p = LatencyPredictor()
        cfg = SpotNoiseConfig(n_spots=500, texture_size=64)
        f = vortex_field(n=33)
        assert p.predict(cfg, field=f) == pytest.approx(
            p.predict(cfg, grid_shape=tuple(f.grid.shape))
        )

    def test_observation_calibrates_scale(self):
        p = LatencyPredictor(alpha=1.0)
        cfg = SpotNoiseConfig(n_spots=500, texture_size=64)
        raw = p.predict(cfg)
        assert not p.calibrated
        # Tell the predictor renders actually take 10x its raw estimate.
        p.observe(cfg, actual_s=raw * 10.0)
        assert p.calibrated
        assert p.predict(cfg) == pytest.approx(raw * 10.0)

    def test_ewma_smooths_observations(self):
        p = LatencyPredictor(alpha=0.5)
        cfg = SpotNoiseConfig(n_spots=500, texture_size=64)
        raw = p.predict(cfg)
        p.observe(cfg, actual_s=raw)          # scale -> 1
        p.observe(cfg, actual_s=raw * 3.0)    # scale -> 2
        assert p.predict(cfg) == pytest.approx(raw * 2.0)

    def test_observe_reuses_predicted_grid_shape(self):
        """Regression: ``observe`` without an explicit grid shape used
        to silently re-price against the documented (64, 64) fallback
        while ``predict`` had used the real grid, folding a constant
        bias into the EWMA scale."""
        p = LatencyPredictor(alpha=1.0)
        cfg = SpotNoiseConfig(n_spots=2000, texture_size=512)
        real_grid = (208, 278)
        fallback_raw = LatencyPredictor().predict(cfg)  # (64, 64) pricing
        raw = p.predict(cfg, grid_shape=real_grid)
        assert raw != pytest.approx(fallback_raw)  # the bias being guarded
        # A render that took exactly the raw estimate means scale == 1:
        # the calibrated prediction must come back unchanged, not
        # multiplied by the real/fallback workload ratio.
        p.observe(cfg, actual_s=raw)  # no grid_shape: must reuse predict's
        assert p.scale == pytest.approx(1.0)
        assert p.predict(cfg, grid_shape=real_grid) == pytest.approx(raw)

    def test_scale_property_exposes_calibration(self):
        p = LatencyPredictor(alpha=1.0)
        cfg = SpotNoiseConfig(n_spots=500, texture_size=64)
        assert p.scale is None
        raw = p.predict(cfg)
        p.observe(cfg, actual_s=raw * 4.0)
        assert p.scale == pytest.approx(4.0)

    def test_nonpositive_observation_ignored(self):
        p = LatencyPredictor()
        cfg = SpotNoiseConfig(n_spots=500, texture_size=64)
        p.observe(cfg, actual_s=0.0)
        assert not p.calibrated

    def test_bad_alpha_rejected(self):
        with pytest.raises(ServiceError):
            LatencyPredictor(alpha=0.0)


class TestAdmissionController:
    def test_unbounded_controller_admits_everything(self):
        AdmissionController().admit(predicted_s=1e9, queue_depth=10**6)

    def test_queue_cap_sheds(self):
        ctrl = AdmissionController(max_queue=2)
        ctrl.admit(None, queue_depth=1)
        with pytest.raises(AdmissionError, match="queue full"):
            ctrl.admit(None, queue_depth=2)

    def test_latency_budget_counts_queued_work(self):
        ctrl = AdmissionController(latency_budget_s=0.1)
        ctrl.admit(predicted_s=0.04, queue_depth=1)  # 2 * 40ms = 80ms ok
        with pytest.raises(AdmissionError, match="budget"):
            ctrl.admit(predicted_s=0.04, queue_depth=2)  # 3 * 40ms = 120ms

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServiceError):
            AdmissionController(latency_budget_s=0.0)
        with pytest.raises(ServiceError):
            AdmissionController(max_queue=0)
