"""End-to-end tests for TextureService: correctness of the served bytes.

The serving layer's contract is that caching, coalescing and tiering are
*invisible* in the response bytes: whatever combination of tiers and
backends served a request, the texture equals a fresh render of the same
``(config, field)``.
"""

import numpy as np
import pytest

from repro.core.config import SpotNoiseConfig
from repro.errors import AdmissionError, ServiceError
from repro.fields.analytic import random_smooth_field
from repro.service import (
    AdmissionController,
    FrameRenderer,
    TextureService,
    TileSpec,
)
from repro.service.server import TextureResponse


@pytest.fixture
def fields():
    return {f: random_smooth_field(seed=50 + f, n=25) for f in range(6)}


@pytest.fixture
def config():
    return SpotNoiseConfig(n_spots=200, texture_size=48, seed=11)


def make_service(fields, config, **kwargs):
    return TextureService(lambda f: fields[f], config, **kwargs)


class TestServedBytes:
    def test_cached_equals_fresh(self, fields, config):
        with make_service(fields, config) as svc:
            first = svc.request(2)
            second = svc.request(2)
        assert first.source == "render"
        assert second.source == "memory"
        renderer = FrameRenderer(config)
        fresh = renderer.render(fields[2])
        renderer.close()
        np.testing.assert_array_equal(first.texture, fresh)
        np.testing.assert_array_equal(second.texture, fresh)

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("raster_backend", ["exact", "batched"])
    def test_bit_identical_across_backends(self, fields, backend, raster_backend):
        """The serve path must preserve the runtime's backend-equivalence
        guarantee: any backend, cached or fresh, same bytes."""
        cfg = SpotNoiseConfig(
            n_spots=150,
            texture_size=48,
            seed=11,
            render_mode="exact",
            raster_backend=raster_backend,
            backend=backend,
            n_groups=2,
        )
        with make_service(fields, cfg) as svc:
            served = svc.request(1).texture
            cached = svc.request(1).texture
        reference_cfg = cfg.with_overrides(backend="serial")
        renderer = FrameRenderer(reference_cfg)
        fresh = renderer.render(fields[1])
        renderer.close()
        np.testing.assert_array_equal(served, fresh)
        np.testing.assert_array_equal(cached, fresh)

    def test_disk_tier_round_trip(self, fields, config, tmp_path):
        with make_service(fields, config, disk_dir=str(tmp_path)) as svc:
            rendered = svc.request(0)
            # Wipe the memory tier: the disk tier must serve the bytes.
            svc.cache.memory.clear()
            from_disk = svc.request(0)
            assert from_disk.source == "disk"
            np.testing.assert_array_equal(from_disk.texture, rendered.texture)
            # And the disk hit re-promoted it into memory.
            assert svc.request(0).source == "memory"

    def test_disk_tier_survives_service_restart(self, fields, config, tmp_path):
        with make_service(fields, config, disk_dir=str(tmp_path)) as svc:
            rendered = svc.request(3)
        with make_service(fields, config, disk_dir=str(tmp_path)) as svc2:
            warm = svc2.request(3)
            assert warm.source == "disk"
            assert svc2.stats.renders == 0
            np.testing.assert_array_equal(warm.texture, rendered.texture)

    def test_tile_is_a_crop_of_the_full_texture(self, fields, config):
        with make_service(fields, config) as svc:
            full = svc.request(0).texture
            tile = svc.request(0, tile=TileSpec(8, 4, 16, 12))
        assert tile.texture.shape == (12, 16)
        np.testing.assert_array_equal(tile.texture, full[4:16, 8:24])
        # The tile was sliced from the cached full frame, not re-rendered.
        assert tile.source == "memory"

    def test_different_configs_do_not_share_entries(self, fields, config):
        other = config.with_overrides(n_spots=config.n_spots + 1)
        with make_service(fields, config) as a, make_service(fields, other) as b:
            ta = a.request(0).texture
            tb = b.request(0)
        assert tb.source == "render"  # no cross-config hit is possible
        assert not np.array_equal(ta, tb.texture)


class TestKeysAndSources:
    def test_identical_content_shares_one_render(self, config):
        # Two frame indices with byte-identical fields: content addressing
        # must collapse them onto one cache entry.
        f = random_smooth_field(seed=7, n=25)
        with TextureService(lambda _: f, config) as svc:
            first = svc.request(0)
            second = svc.request(1)
        assert first.source == "render"
        assert second.source == "memory"
        assert svc.stats.renders == 1

    def test_memoized_digest_skips_field_loads(self, fields, config):
        loads = [0]

        def counting_source(frame):
            loads[0] += 1
            return fields[frame]

        with TextureService(counting_source, config, memoize_digests=True) as svc:
            svc.request(0)
            loads_after_miss = loads[0]
            svc.request(0)
            assert loads[0] == loads_after_miss  # hit did not touch the source

    def test_mutable_source_without_memoization_rekeys(self, config):
        frames = {0: random_smooth_field(seed=1, n=25)}

        def source(frame):
            return frames[frame]

        with TextureService(source, config, memoize_digests=False) as svc:
            before = svc.request(0)
            frames[0] = random_smooth_field(seed=2, n=25)  # steering rewrote it
            after = svc.request(0)
        assert after.source == "render"
        assert not np.array_equal(before.texture, after.texture)

    def test_invalidate_frame_drops_the_memoized_digest(self, config):
        frames = {0: random_smooth_field(seed=1, n=25)}
        with TextureService(lambda f: frames[f], config, memoize_digests=True) as svc:
            svc.request(0)
            frames[0] = random_smooth_field(seed=2, n=25)
            svc.invalidate_frame(0)
            assert svc.request(0).source == "render"
            assert svc.stats.renders == 2


class TestAdmissionIntegration:
    def test_queue_cap_sheds_new_renders(self, fields, config):
        import concurrent.futures as cf
        import threading

        hold = threading.Event()
        started = threading.Event()
        svc = TextureService(
            lambda f: fields[f],
            config,
            n_workers=1,
            admission=AdmissionController(max_queue=1),
        )
        original_render = svc.renderer.render

        def slow_render(field):
            started.set()
            hold.wait(5.0)
            return original_render(field)

        svc.renderer.render = slow_render
        try:
            with cf.ThreadPoolExecutor(2) as pool:
                # One render executes at the held worker...
                futures = [pool.submit(svc.request, 0)]
                assert started.wait(5.0)
                assert svc.scheduler.backlog() == 0
                # ...which must NOT count against the queue cap: the cap
                # prices renders queued ahead, and an executing render is
                # nearly done (the over-shedding regression).
                futures.append(pool.submit(svc.request, 1))
                deadline = __import__("time").time() + 2.0
                while svc.scheduler.backlog() < 1 and __import__("time").time() < deadline:
                    __import__("time").sleep(0.005)
                assert svc.scheduler.queue_depth() == 2
                assert svc.scheduler.backlog() == 1
                # A third distinct render sees a full backlog and is shed,
                # while joining an in-flight render stays admitted.
                with pytest.raises(AdmissionError):
                    svc.request(2)
                assert svc.stats.sheds == 1
                hold.set()
                for fut in futures:
                    assert fut.result(timeout=10.0).source == "render"
        finally:
            hold.set()
            svc.close()

    def test_served_latency_and_prediction_are_recorded(self, fields, config):
        with make_service(fields, config) as svc:
            svc.request(0)
            svc.request(0)
        snap = svc.stats.snapshot()
        assert snap["renders"] == 1
        assert snap["by_source"]["memory"] == 1
        assert snap["actual_render_s"] > 0.0
        assert snap["predicted_render_s"] > 0.0
        assert svc.predictor.calibrated
        pct = svc.stats.latency_percentiles()
        assert pct["p95"] >= pct["p50"] >= 0.0


class TestLifecycle:
    def test_request_after_close_raises(self, fields, config):
        svc = make_service(fields, config)
        svc.close()
        with pytest.raises(ServiceError, match="closed"):
            svc.request(0)

    def test_source_error_is_counted_and_propagates(self, config):
        def broken(frame):
            raise KeyError(frame)

        with TextureService(broken, config) as svc:
            with pytest.raises(KeyError):
                svc.request(0)
        assert svc.stats.errors == 1

    def test_response_type(self, fields, config):
        with make_service(fields, config) as svc:
            response = svc.request(0)
        assert isinstance(response, TextureResponse)
        assert response.key.frame == 0
        assert response.latency_s > 0.0


class TestInRepoClients:
    def test_smog_steering_serves_history(self):
        from repro.apps.smog.steering import SteeredSmogApplication
        from repro.errors import SteeringError

        app = SteeredSmogApplication(nx=19, ny=17, n_sources=2, seed=5)
        for _ in range(3):
            app.advance()
        cfg = SpotNoiseConfig(n_spots=100, texture_size=32, seed=1)
        with app.texture_service(cfg) as svc:
            a = svc.request(1)
            b = svc.request(1)
            assert b.source == "memory"
            np.testing.assert_array_equal(a.texture, b.texture)
            with pytest.raises(SteeringError):
                svc.request(99)

    def test_dns_browser_serves_store(self, tmp_path):
        from repro.apps.dns.browser import DataBrowser
        from repro.apps.dns.store import ChunkedFieldStore
        from repro.fields.grid import RectilinearGrid
        from repro.fields.vectorfield import VectorField2D

        grid = RectilinearGrid(np.linspace(0, 1, 9), np.linspace(0, 1, 7))
        store = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=2)
        rng = np.random.default_rng(0)
        for t in range(4):
            store.append(
                VectorField2D(grid, rng.normal(size=(7, 9, 2))), time=float(t)
            )
        store.flush()
        browser = DataBrowser(store)
        cfg = SpotNoiseConfig(n_spots=100, texture_size=32, seed=1)
        with browser.texture_service(cfg) as svc:
            first = svc.request(2)
            again = svc.request(2)
            assert again.source == "memory"
            np.testing.assert_array_equal(first.texture, again.texture)
            assert svc.stats.renders == 1


class TestPrefetch:
    def test_prefetch_schedules_only_uncached_distinct_frames(self, fields, config):
        with make_service(fields, config) as svc:
            svc.request(0)  # already cached
            scheduled = svc.prefetch([0, 1, 2, 1])
            assert scheduled == 2
            # Wait for the background renders, then everything is a hit.
            deadline = __import__("time").time() + 10.0
            while svc.scheduler.queue_depth() and __import__("time").time() < deadline:
                __import__("time").sleep(0.01)
            for frame in (0, 1, 2):
                assert svc.request(frame).source == "memory"
        assert svc.stats.renders == 3


class TestDeterminismGuard:
    def test_unseeded_config_is_rejected(self, fields):
        unseeded = SpotNoiseConfig(n_spots=50, texture_size=32, seed=None)
        with pytest.raises(ServiceError, match="seed"):
            TextureService(lambda f: fields[f], unseeded)


class TestConcurrentStoreReads:
    def test_store_chunk_cache_is_thread_safe_under_service_load(self, tmp_path):
        """Worker threads reading different chunks concurrently must never
        pair one chunk's index with another chunk's data (each frame's
        texture must come from that frame's field)."""
        from repro.apps.dns.store import ChunkedFieldStore
        from repro.fields.grid import RectilinearGrid
        from repro.fields.io import field_digest
        from repro.fields.vectorfield import VectorField2D

        grid = RectilinearGrid(np.linspace(0, 1, 9), np.linspace(0, 1, 7))
        store = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=1)
        rng = np.random.default_rng(3)
        n = 8
        for t in range(n):
            store.append(VectorField2D(grid, rng.normal(size=(7, 9, 2))), time=float(t))
        store.flush()
        # Sequential read-back is the ground truth (the store quantises
        # to float32 on append, so digest the stored bytes, not the input).
        digests = [field_digest(store.read(t)) for t in range(n)]

        import concurrent.futures as cf

        for _ in range(5):  # several rounds to give a race a chance
            with cf.ThreadPoolExecutor(4) as pool:
                got = list(pool.map(lambda t: field_digest(store.read(t)), range(n)))
            assert got == digests


class TestSafeDefaults:
    def test_digest_memoization_is_off_by_default(self, config):
        """The default must be safe for mutable sources: rewriting a frame
        changes the key and triggers a fresh render."""
        frames = {0: random_smooth_field(seed=1, n=25)}
        with TextureService(lambda f: frames[f], config) as svc:
            before = svc.request(0)
            frames[0] = random_smooth_field(seed=2, n=25)
            after = svc.request(0)
        assert after.source == "render"
        assert not np.array_equal(before.texture, after.texture)

    def test_bounded_smog_history_evicts_oldest(self):
        from repro.apps.smog.steering import SteeredSmogApplication
        from repro.errors import SteeringError

        app = SteeredSmogApplication(
            nx=19, ny=17, n_sources=2, seed=5, history_limit=2
        )
        for _ in range(4):
            app.advance()
        with pytest.raises(SteeringError, match="evicted"):
            app.read_history(0)
        app.read_history(2)
        app.read_history(3)

    def test_disk_cache_entries_honor_umask(self, tmp_path):
        import os

        from repro.service.cache import DiskTextureCache

        disk = DiskTextureCache(tmp_path)
        disk.put("abc", np.zeros((4, 4)))
        mode = os.stat(os.path.join(str(tmp_path), "abc.npz")).st_mode & 0o777
        um = os.umask(0)
        os.umask(um)
        assert mode == 0o666 & ~um  # not mkstemp's 0600
