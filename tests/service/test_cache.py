"""Tests for repro.service.cache — LRU budget, disk tier, promotion."""

import os
import threading
import time

import numpy as np
import pytest

from repro.service.cache import (
    DiskBlobStore,
    DiskTextureCache,
    LRUTextureCache,
    MemoryBlobStore,
    TieredTextureCache,
)


def tex(value: float, n: int = 8) -> np.ndarray:
    return np.full((n, n), value, dtype=np.float64)


ENTRY_BYTES = tex(0.0).nbytes  # 8*8*8 = 512


class TestLRUTextureCache:
    def test_round_trip_is_exact(self):
        cache = LRUTextureCache(4 * ENTRY_BYTES)
        t = np.random.default_rng(0).random((8, 8))
        cache.put("a", t)
        got = cache.get("a")
        np.testing.assert_array_equal(got, t)

    def test_entries_are_read_only(self):
        cache = LRUTextureCache(4 * ENTRY_BYTES)
        cache.put("a", tex(1.0))
        got = cache.get("a")
        with pytest.raises(ValueError):
            got[0, 0] = 99.0

    def test_byte_budget_evicts_lru(self):
        cache = LRUTextureCache(3 * ENTRY_BYTES)
        for i, name in enumerate("abc"):
            cache.put(name, tex(float(i)))
        assert cache.nbytes == 3 * ENTRY_BYTES
        cache.get("a")           # refresh a; b becomes LRU
        cache.put("d", tex(3.0))  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("d") is not None
        assert cache.nbytes <= 3 * ENTRY_BYTES
        assert cache.evictions == 1

    def test_oversized_entry_is_rejected_not_thrashing(self):
        cache = LRUTextureCache(ENTRY_BYTES)
        cache.put("small", tex(1.0))
        assert not cache.put("big", np.zeros((64, 64)))
        # The resident small entry survives the rejected oversized put.
        assert cache.get("small") is not None

    def test_reinsert_same_key_replaces_bytes(self):
        cache = LRUTextureCache(2 * ENTRY_BYTES)
        cache.put("a", tex(1.0))
        cache.put("a", tex(2.0))
        assert len(cache) == 1
        assert cache.nbytes == ENTRY_BYTES
        assert cache.get("a")[0, 0] == 2.0

    def test_zero_budget_caches_nothing(self):
        cache = LRUTextureCache(0)
        assert not cache.put("a", tex(1.0))
        assert cache.get("a") is None


class TestDiskTextureCache:
    def test_round_trip_is_bit_exact(self, tmp_path):
        disk = DiskTextureCache(tmp_path)
        t = np.random.default_rng(1).random((16, 16))
        disk.put("deadbeef", t)
        np.testing.assert_array_equal(disk.get("deadbeef"), t)

    def test_missing_entry_is_a_miss(self, tmp_path):
        disk = DiskTextureCache(tmp_path)
        assert disk.get("nope") is None
        assert disk.misses == 1

    def test_corrupt_entry_is_dropped_and_missed(self, tmp_path):
        disk = DiskTextureCache(tmp_path)
        path = os.path.join(str(tmp_path), "bad.npz")
        with open(path, "wb") as fh:
            fh.write(b"PK\x03\x04 truncated garbage")
        assert disk.get("bad") is None
        assert not os.path.exists(path)

    def test_no_partial_files_after_put(self, tmp_path):
        disk = DiskTextureCache(tmp_path)
        disk.put("abc", tex(0.5))
        leftovers = [n for n in os.listdir(tmp_path) if not n.endswith(".npz")]
        assert leftovers == []
        assert disk.nbytes_on_disk() > 0
        assert "abc" in disk

    def test_preview_pgm_written(self, tmp_path):
        disk = DiskTextureCache(tmp_path, preview_pgm=True)
        disk.put("abc", tex(0.5))
        assert os.path.exists(os.path.join(str(tmp_path), "abc.pgm"))


class TestTieredTextureCache:
    def test_memory_first_then_disk_with_promotion(self, tmp_path):
        tiered = TieredTextureCache(
            LRUTextureCache(4 * ENTRY_BYTES), DiskTextureCache(tmp_path)
        )
        tiered.put("a", tex(1.0))
        _, tier = tiered.get("a")
        assert tier == "memory"
        # Drop the memory tier; the disk tier must answer and re-promote.
        tiered.memory.clear()
        got, tier = tiered.get("a")
        assert tier == "disk"
        np.testing.assert_array_equal(got, tex(1.0))
        _, tier = tiered.get("a")
        assert tier == "memory"

    def test_miss_returns_none_tier(self, tmp_path):
        tiered = TieredTextureCache(LRUTextureCache(ENTRY_BYTES), None)
        got, tier = tiered.get("zzz")
        assert got is None and tier is None


class TestDiskBlobStoreEviction:
    """Eviction vs concurrent readers: clean miss-and-refetch, never a
    truncated read or stale-handle crash (PR 7 satellite fix)."""

    def test_raw_blob_round_trip_and_evict(self, tmp_path):
        store = DiskBlobStore(tmp_path)
        store.put_bytes("d1", b"payload-one")
        assert store.contains_bytes("d1")
        assert store.get_bytes("d1") == b"payload-one"
        assert store.evict("d1")
        assert not store.contains_bytes("d1")
        assert store.get_bytes("d1") is None
        assert store.evictions == 1
        assert not store.evict("d1")  # double-evict is a clean no-op

    def test_evict_removes_bundles_too(self, tmp_path):
        store = DiskBlobStore(tmp_path)
        store.put("d1", {"x": np.arange(4.0)})
        assert "d1" in store
        assert store.evict("d1")
        assert "d1" not in store and store.get("d1") is None

    def test_eviction_racing_readers_is_clean(self, tmp_path):
        # Hammer: writers re-put and evictors unlink while readers read.
        # Every read must return either the complete payload or a clean
        # None — any exception or partial payload fails the test.
        store = DiskBlobStore(tmp_path)
        payload_a = b"A" * 65536
        bundle = {"texture": np.full((32, 32), 7.0)}
        store.put_bytes("blob", payload_a)
        store.put("arr", bundle)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                raw = store.get_bytes("blob")
                if raw is not None and raw != payload_a:
                    failures.append(("partial-blob", len(raw)))
                got = store.get("arr")
                if got is not None and not np.array_equal(
                    got["texture"], bundle["texture"]
                ):
                    failures.append(("partial-bundle",))

        def churner():
            while not stop.is_set():
                store.evict("blob")
                store.evict("arr")
                store.put_bytes("blob", payload_a)
                store.put("arr", bundle)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads += [threading.Thread(target=churner) for _ in range(2)]
        for t in threads:
            t.start()
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(10.0)
        assert failures == []
        # After the churn settles the entries are wholly readable again.
        assert store.get_bytes("blob") == payload_a
        np.testing.assert_array_equal(store.get("arr")["texture"], bundle["texture"])

    def test_corrupt_entry_dropped_only_if_not_replaced(self, tmp_path):
        # A reader that decided an entry is corrupt must not unlink the
        # fresh bytes a concurrent put atomically replaced it with: the
        # drop is guarded by the inode the reader actually read.
        store = DiskBlobStore(tmp_path)
        path = store._path("d1")
        with open(path, "wb") as fh:
            fh.write(b"not an npz")
        corrupt_ino = os.stat(path).st_ino
        # A writer replaces the corrupt file before the reader's drop.
        store.put("d1", {"x": np.arange(3.0)})
        store._drop_corrupt(path, expected_ino=corrupt_ino)
        got = store.get("d1")  # the replacement survived the stale drop
        assert got is not None
        np.testing.assert_array_equal(got["x"], np.arange(3.0))
        # Without a replacement the corrupt inode is dropped normally.
        with open(path, "wb") as fh:
            fh.write(b"garbage again")
        store._drop_corrupt(path, expected_ino=os.stat(path).st_ino)
        assert not os.path.exists(path)

    def test_trim_to_bytes_evicts_oldest_first(self, tmp_path):
        store = DiskBlobStore(tmp_path)
        for i, name in enumerate(["old", "mid", "new"]):
            store.put_bytes(name, bytes(1000))
            # Deterministic ages regardless of filesystem timestamp
            # granularity.
            os.utime(store._blob_path(name), (1000.0 + i, 1000.0 + i))
        removed = store.trim_to_bytes(2000)
        assert removed == 1
        assert not store.contains_bytes("old")
        assert store.contains_bytes("mid") and store.contains_bytes("new")
        assert store.trim_to_bytes(0) == 2


class TestMemoryBlobStore:
    def test_round_trip_and_evict(self):
        store = MemoryBlobStore()
        store.put_bytes("d", b"abc")
        assert store.contains_bytes("d")
        assert store.get_bytes("d") == b"abc"
        assert store.nbytes() == 3 and len(store) == 1
        assert store.evict("d")
        assert store.get_bytes("d") is None
        assert not store.evict("d")
        assert (store.hits, store.misses, store.evictions) == (1, 1, 1)
