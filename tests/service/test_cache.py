"""Tests for repro.service.cache — LRU budget, disk tier, promotion."""

import os

import numpy as np
import pytest

from repro.service.cache import DiskTextureCache, LRUTextureCache, TieredTextureCache


def tex(value: float, n: int = 8) -> np.ndarray:
    return np.full((n, n), value, dtype=np.float64)


ENTRY_BYTES = tex(0.0).nbytes  # 8*8*8 = 512


class TestLRUTextureCache:
    def test_round_trip_is_exact(self):
        cache = LRUTextureCache(4 * ENTRY_BYTES)
        t = np.random.default_rng(0).random((8, 8))
        cache.put("a", t)
        got = cache.get("a")
        np.testing.assert_array_equal(got, t)

    def test_entries_are_read_only(self):
        cache = LRUTextureCache(4 * ENTRY_BYTES)
        cache.put("a", tex(1.0))
        got = cache.get("a")
        with pytest.raises(ValueError):
            got[0, 0] = 99.0

    def test_byte_budget_evicts_lru(self):
        cache = LRUTextureCache(3 * ENTRY_BYTES)
        for i, name in enumerate("abc"):
            cache.put(name, tex(float(i)))
        assert cache.nbytes == 3 * ENTRY_BYTES
        cache.get("a")           # refresh a; b becomes LRU
        cache.put("d", tex(3.0))  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("d") is not None
        assert cache.nbytes <= 3 * ENTRY_BYTES
        assert cache.evictions == 1

    def test_oversized_entry_is_rejected_not_thrashing(self):
        cache = LRUTextureCache(ENTRY_BYTES)
        cache.put("small", tex(1.0))
        assert not cache.put("big", np.zeros((64, 64)))
        # The resident small entry survives the rejected oversized put.
        assert cache.get("small") is not None

    def test_reinsert_same_key_replaces_bytes(self):
        cache = LRUTextureCache(2 * ENTRY_BYTES)
        cache.put("a", tex(1.0))
        cache.put("a", tex(2.0))
        assert len(cache) == 1
        assert cache.nbytes == ENTRY_BYTES
        assert cache.get("a")[0, 0] == 2.0

    def test_zero_budget_caches_nothing(self):
        cache = LRUTextureCache(0)
        assert not cache.put("a", tex(1.0))
        assert cache.get("a") is None


class TestDiskTextureCache:
    def test_round_trip_is_bit_exact(self, tmp_path):
        disk = DiskTextureCache(tmp_path)
        t = np.random.default_rng(1).random((16, 16))
        disk.put("deadbeef", t)
        np.testing.assert_array_equal(disk.get("deadbeef"), t)

    def test_missing_entry_is_a_miss(self, tmp_path):
        disk = DiskTextureCache(tmp_path)
        assert disk.get("nope") is None
        assert disk.misses == 1

    def test_corrupt_entry_is_dropped_and_missed(self, tmp_path):
        disk = DiskTextureCache(tmp_path)
        path = os.path.join(str(tmp_path), "bad.npz")
        with open(path, "wb") as fh:
            fh.write(b"PK\x03\x04 truncated garbage")
        assert disk.get("bad") is None
        assert not os.path.exists(path)

    def test_no_partial_files_after_put(self, tmp_path):
        disk = DiskTextureCache(tmp_path)
        disk.put("abc", tex(0.5))
        leftovers = [n for n in os.listdir(tmp_path) if not n.endswith(".npz")]
        assert leftovers == []
        assert disk.nbytes_on_disk() > 0
        assert "abc" in disk

    def test_preview_pgm_written(self, tmp_path):
        disk = DiskTextureCache(tmp_path, preview_pgm=True)
        disk.put("abc", tex(0.5))
        assert os.path.exists(os.path.join(str(tmp_path), "abc.pgm"))


class TestTieredTextureCache:
    def test_memory_first_then_disk_with_promotion(self, tmp_path):
        tiered = TieredTextureCache(
            LRUTextureCache(4 * ENTRY_BYTES), DiskTextureCache(tmp_path)
        )
        tiered.put("a", tex(1.0))
        _, tier = tiered.get("a")
        assert tier == "memory"
        # Drop the memory tier; the disk tier must answer and re-promote.
        tiered.memory.clear()
        got, tier = tiered.get("a")
        assert tier == "disk"
        np.testing.assert_array_equal(got, tex(1.0))
        _, tier = tiered.get("a")
        assert tier == "memory"

    def test_miss_returns_none_tier(self, tmp_path):
        tiered = TieredTextureCache(LRUTextureCache(ENTRY_BYTES), None)
        got, tier = tiered.get("zzz")
        assert got is None and tier is None
