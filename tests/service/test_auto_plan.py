"""backend="auto" through the serving layer: resolution, keys, re-planning.

The invariant under test: the *resolved* plan — not the requested
``"auto"`` — is what gets fingerprinted into cache keys, so a plan
change (construction-time or drift-triggered) can only ever cause an
extra render, never a wrong cache hit.
"""

import numpy as np
import pytest

from repro.anim import AnimationService
from repro.core.config import BentConfig, SpotNoiseConfig
from repro.fields.analytic import random_smooth_field
from repro.parallel.planner import PLANNABLE_BACKENDS, DecompositionPlanner
from repro.service import TextureService
from repro.service.admission import LatencyPredictor


@pytest.fixture
def fields():
    cache = {}

    def source(frame):
        if frame not in cache:
            cache[frame] = random_smooth_field(seed=500 + frame, n=32)
        return cache[frame]

    return source


AUTO = SpotNoiseConfig(n_spots=150, texture_size=64, seed=0, backend="auto")

#: A genuinely parallelisable workload: bent spots cost hundreds of mesh
#: vertices each, so the plan flips between serial (fast host, small
#: calibration scale) and a parallel backend (slow host) — standard
#: spots are so cheap per spot that eq 3.2's preprocessing + blend terms
#: keep them serial at any scale, which is itself correct.
BENT_AUTO = SpotNoiseConfig(
    n_spots=400,
    texture_size=64,
    seed=0,
    backend="auto",
    spot_mode="bent",
    bent=BentConfig(n_along=16, n_across=5, length_cells=2.0, width_cells=0.8),
)


class TestTextureServiceAuto:
    def test_auto_resolves_to_concrete_plan(self, fields):
        with TextureService(fields, AUTO) as svc:
            assert svc.requested_config.backend == "auto"
            assert svc.config.backend in PLANNABLE_BACKENDS
            assert svc.plan is not None
            assert svc.plan.triple == (
                svc.config.backend, svc.config.n_groups, svc.config.partition
            )
            # Keys carry the *resolved* fingerprint.
            assert svc._fingerprint == svc.config.fingerprint()
            assert svc._fingerprint != svc.requested_config.fingerprint()

    def test_auto_serves_bit_identical_repeats(self, fields):
        with TextureService(fields, AUTO) as svc:
            first = svc.request(1)
            again = svc.request(1)
            assert first.source == "render" and again.source == "memory"
            np.testing.assert_array_equal(first.texture, again.texture)

    def test_drift_replans_and_changes_keys(self, fields):
        field0 = fields(0)
        shape = tuple(field0.grid.shape)
        config = BENT_AUTO
        predictor = LatencyPredictor(alpha=1.0)
        raw = predictor.predict(config, field=field0)
        # Pre-calibrate a very fast host: the plan resolves to serial.
        predictor.observe(config, actual_s=raw * 1e-3, grid_shape=shape)
        svc = TextureService(
            fields,
            config,
            predictor=predictor,
            planner=DecompositionPlanner(host_workers=8),
        )
        try:
            assert svc.config.backend == "serial"
            fingerprint = svc._fingerprint
            old_renderer = svc.renderer
            # The host "slows down" by six orders of magnitude: drift far
            # beyond the 2x band must produce a parallel re-plan.
            predictor.observe(config, actual_s=raw * 1e3, grid_shape=shape)
            svc._maybe_replan()
            assert svc.replans == 1
            assert svc.config.n_groups > 1
            assert svc._fingerprint != fingerprint
            assert svc._fingerprint == svc.config.fingerprint()
            assert svc.renderer is not old_renderer
            # The swapped service still serves, consistently.
            r1 = svc.request(0)
            r2 = svc.request(0)
            np.testing.assert_array_equal(r1.texture, r2.texture)
        finally:
            svc.close()

    def test_no_replan_within_drift_band(self, fields):
        with TextureService(fields, AUTO) as svc:
            svc.request(0)  # observes a real render; drift is modest
            svc._maybe_replan()
            # Whatever the calibration said, the first observation sets
            # the reference *only* when it escapes the band; a concrete
            # assertion: the resolved triple still matches the plan.
            assert svc.plan.triple == (
                svc.config.backend, svc.config.n_groups, svc.config.partition
            )

    def test_replan_mid_request_cannot_split_key_and_renderer(self, fields, monkeypatch):
        # Regression: request() used to read the fingerprint for its key
        # and bind the renderer in two separate steps; a drift re-plan
        # landing between them cached the *new* plan's bytes under the
        # *old* plan's key.  The request must key and render from one
        # consistent snapshot: whatever config actually rendered is the
        # config fingerprinted into the response key.
        from repro.service.server import FrameRenderer

        field0 = fields(0)
        shape = tuple(field0.grid.shape)
        requested = BENT_AUTO
        raw = LatencyPredictor(alpha=1.0).predict(requested, field=field0)

        class ReplanInWindow(LatencyPredictor):
            """Fires a drift re-plan from inside the request path's
            predict call — exactly the window between keying a request
            and handing it to the renderer."""

            service = None
            armed = False

            def predict(self, config, **kwargs):
                if self.armed:
                    self.armed = False
                    self.observe(requested, actual_s=raw * 1e3, grid_shape=shape)
                    self.service._maybe_replan()
                return super().predict(config, **kwargs)

        predictor = ReplanInWindow(alpha=1.0)
        # Pre-calibrate a very fast host: the plan resolves to serial.
        predictor.observe(requested, actual_s=raw * 1e-3, grid_shape=shape)

        rendered_fingerprints = []
        real_render = FrameRenderer.render

        def recording_render(self, field):
            rendered_fingerprints.append(self.config.fingerprint())
            return real_render(self, field)

        monkeypatch.setattr(FrameRenderer, "render", recording_render)
        svc = TextureService(
            fields,
            requested,
            predictor=predictor,
            planner=DecompositionPlanner(host_workers=8),
        )
        predictor.service = svc
        try:
            assert svc.config.backend == "serial"
            predictor.armed = True
            response = svc.request(0)
            assert svc.replans == 1  # the re-plan really fired in the window
            assert response.source == "render"
            assert rendered_fingerprints == [response.key.config_fingerprint]
        finally:
            svc.close()

    def test_concrete_backend_skips_planning(self, fields):
        cfg = AUTO.with_overrides(backend="serial")
        with TextureService(fields, cfg) as svc:
            assert svc.plan is None
            assert svc.config is cfg


class TestAnimationServiceAuto:
    def test_auto_resolves_and_streams(self, fields):
        with AnimationService(fields, AUTO, length=6) as svc:
            assert svc.requested_config.backend == "auto"
            assert svc.config.backend in PLANNABLE_BACKENDS
            assert svc.plan is not None
            frames = list(svc.stream(0, 4))
            assert [r.frame for r in frames] == [0, 1, 2, 3]
            # Streams stay bit-identical to the one-shot reference.
            assert svc.verify(2)

    def test_replan_if_drifted_swaps_sequence_identity(self, fields):
        field0 = fields(0)
        shape = tuple(field0.grid.shape)
        config = BENT_AUTO
        predictor = LatencyPredictor(alpha=1.0)
        raw = predictor.predict(config, field=field0)
        predictor.observe(config, actual_s=raw * 1e-3, grid_shape=shape)
        svc = AnimationService(
            fields,
            config,
            length=6,
            predictor=predictor,
            planner=DecompositionPlanner(host_workers=8),
        )
        try:
            assert svc.config.backend == "serial"
            old_id = svc._sequence_id
            predictor.observe(config, actual_s=raw * 1e3, grid_shape=shape)
            assert svc.replan_if_drifted() is True
            assert svc.replans == 1
            assert svc.config.n_groups > 1
            assert svc._sequence_id != old_id
            # The re-planned service still serves frames bit-identical
            # to the one-shot reference under the new identity.
            response = svc.request(1)
            assert response.texture.shape == (64, 64)
            assert svc.verify(1)
        finally:
            svc.close()

    def test_replan_noop_without_auto(self, fields):
        with AnimationService(fields, AUTO.with_overrides(backend="serial"),
                              length=4) as svc:
            assert svc.replan_if_drifted() is False
            assert svc.plan is None
