"""Tests for repro.service.keys — content-addressed request identity."""

import numpy as np
import pytest

from repro.core.config import SpotNoiseConfig
from repro.errors import ServiceError
from repro.fields.analytic import vortex_field
from repro.fields.io import field_digest
from repro.fields.vectorfield import VectorField2D
from repro.service.keys import TileSpec, request_key


class TestRequestKey:
    def test_same_inputs_same_digest(self):
        f = vortex_field(n=17)
        cfg = SpotNoiseConfig(n_spots=10, texture_size=32)
        assert request_key(f, cfg, frame=3).digest == request_key(f, cfg, frame=3).digest

    def test_frame_is_not_part_of_the_digest(self):
        # Content-addressed: identical bytes are identical work even when
        # clients name them by different frame indices.
        f = vortex_field(n=17)
        cfg = SpotNoiseConfig(n_spots=10, texture_size=32)
        assert request_key(f, cfg, frame=0).digest == request_key(f, cfg, frame=9).digest

    def test_field_content_changes_digest(self):
        f = vortex_field(n=17)
        g = VectorField2D(f.grid, f.data + 1e-12, f.boundary)
        cfg = SpotNoiseConfig(n_spots=10, texture_size=32)
        assert request_key(f, cfg).digest != request_key(g, cfg).digest

    def test_config_changes_digest(self):
        f = vortex_field(n=17)
        a = SpotNoiseConfig(n_spots=10, texture_size=32)
        b = a.with_overrides(n_spots=11)
        assert request_key(f, a).digest != request_key(f, b).digest

    def test_precomputed_digest_is_honoured(self):
        f = vortex_field(n=17)
        cfg = SpotNoiseConfig(n_spots=10, texture_size=32)
        d = field_digest(f)
        key = request_key(f, cfg, field_digest_hex=d)
        assert key.field_digest == d
        assert key.digest == request_key(f, cfg).digest

    def test_render_key_strips_the_tile(self):
        f = vortex_field(n=17)
        cfg = SpotNoiseConfig(n_spots=10, texture_size=32)
        tiled = request_key(f, cfg, tile=TileSpec(0, 0, 8, 8))
        assert tiled.render_key().tile is None
        assert tiled.render_key().digest == request_key(f, cfg).digest
        assert tiled.digest != tiled.render_key().digest


class TestTileSpec:
    def test_crop_slices_the_texture(self):
        tex = np.arange(16.0).reshape(4, 4)
        np.testing.assert_array_equal(
            TileSpec(1, 2, 2, 2).crop(tex), tex[2:4, 1:3]
        )

    def test_rejects_negative_origin(self):
        with pytest.raises(ServiceError):
            TileSpec(-1, 0, 4, 4)

    def test_rejects_empty_extent(self):
        with pytest.raises(ServiceError):
            TileSpec(0, 0, 0, 4)

    def test_rejects_out_of_bounds_for_texture(self):
        f = vortex_field(n=17)
        cfg = SpotNoiseConfig(n_spots=10, texture_size=32)
        with pytest.raises(ServiceError):
            request_key(f, cfg, tile=TileSpec(30, 0, 8, 8))
