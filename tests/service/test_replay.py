"""Tests for repro.service.trace — trace shapes and the replay harness."""

import numpy as np
import pytest

from repro.core.config import SpotNoiseConfig
from repro.errors import ServiceError
from repro.fields.analytic import random_smooth_field
from repro.service import (
    FrameRenderer,
    TextureService,
    replay,
    replay_uncached,
    scrubbing_trace,
    uniform_trace,
    zipf_trace,
)


class TestTraceGenerators:
    def test_traces_are_deterministic_per_seed(self):
        assert zipf_trace(50, 8, seed=3) == zipf_trace(50, 8, seed=3)
        assert uniform_trace(50, 8, seed=3) == uniform_trace(50, 8, seed=3)
        assert scrubbing_trace(50, 8, seed=3) == scrubbing_trace(50, 8, seed=3)
        assert zipf_trace(50, 8, seed=3) != zipf_trace(50, 8, seed=4)

    def test_frames_stay_in_range(self):
        for trace in (
            uniform_trace(200, 5, seed=0),
            zipf_trace(200, 5, seed=0),
            scrubbing_trace(200, 5, seed=0),
        ):
            assert len(trace) == 200
            assert all(0 <= f < 5 for f in trace)

    def test_zipf_is_skewed_uniform_is_not(self):
        n = 2000
        zipf_counts = np.bincount(zipf_trace(n, 16, seed=1), minlength=16)
        uni_counts = np.bincount(uniform_trace(n, 16, seed=1), minlength=16)
        # The hottest Zipf frame dominates far beyond the uniform maximum.
        assert zipf_counts.max() > 2 * uni_counts.max()

    def test_scrubbing_moves_locally(self):
        trace = scrubbing_trace(500, 64, jump_probability=0.0, seed=2)
        steps = np.abs(np.diff(trace))
        assert steps.max() <= 1

    def test_validation(self):
        with pytest.raises(ServiceError):
            uniform_trace(0, 5)
        with pytest.raises(ServiceError):
            zipf_trace(10, 0)
        with pytest.raises(ServiceError):
            zipf_trace(10, 5, exponent=0.0)
        with pytest.raises(ServiceError):
            scrubbing_trace(10, 5, jump_probability=1.5)


class TestReplay:
    @pytest.fixture
    def served(self):
        fields = {f: random_smooth_field(seed=70 + f, n=21) for f in range(4)}
        config = SpotNoiseConfig(n_spots=80, texture_size=32, seed=5)
        return fields, config

    def test_replay_accounts_every_request(self, served):
        fields, config = served
        trace = zipf_trace(40, 4, seed=0)
        with TextureService(lambda f: fields[f], config) as svc:
            result = replay(svc, trace, n_clients=3)
        assert result.n_requests == 40
        assert sum(result.sources.values()) == 40
        assert result.renders <= 4  # never more renders than distinct frames
        assert result.throughput_rps > 0.0

    def test_replay_verifies_bit_identity(self, served):
        fields, config = served
        renderer = FrameRenderer(config)
        with TextureService(lambda f: fields[f], config) as svc:
            result = replay(
                svc,
                uniform_trace(12, 4, seed=1),
                n_clients=2,
                verify_fresh=lambda f: renderer.render(fields[f]),
            )
        renderer.close()
        assert result.bit_identical is True

    def test_uncached_baseline_renders_everything(self, served):
        fields, config = served
        renderer = FrameRenderer(config)
        trace = uniform_trace(6, 4, seed=2)
        result = replay_uncached(
            lambda f: renderer.render(fields[f]), trace, n_clients=2
        )
        renderer.close()
        assert result.renders == 6
        assert result.sources == {"render": 6}

    def test_bad_client_count(self, served):
        fields, config = served
        with TextureService(lambda f: fields[f], config) as svc:
            with pytest.raises(ServiceError):
                replay(svc, [0], n_clients=0)


class TestShedAccounting:
    def test_throughput_counts_only_completed_requests(self):
        from repro.service.trace import ReplayResult

        r = ReplayResult(
            n_requests=100, n_clients=4, duration_s=2.0, renders=10, sheds=50
        )
        assert r.completed == 50
        assert r.throughput_rps == 25.0
