"""Tests for repro.service.scheduler — single-flight coalescing."""

import threading
import time

import numpy as np
import pytest

from repro.errors import AdmissionError, ServiceError
from repro.service.scheduler import RequestScheduler


class TestSingleFlight:
    def test_concurrent_duplicates_render_once(self):
        """N threads hitting the same key while the render is held at a
        barrier must produce exactly one render and N-1 coalesces."""
        n_threads = 8
        render_calls = [0]
        calls_lock = threading.Lock()
        release = threading.Event()
        all_submitted = threading.Barrier(n_threads + 1)

        def slow_render():
            with calls_lock:
                render_calls[0] += 1
            release.wait(5.0)
            return np.ones((4, 4))

        scheduler = RequestScheduler(n_workers=2)
        results = []
        results_lock = threading.Lock()

        def client():
            ticket, created = scheduler.submit("hot-key", slow_render)
            all_submitted.wait(5.0)
            texture = ticket.wait(5.0)
            with results_lock:
                results.append((created, texture))

        threads = [threading.Thread(target=client) for _ in range(n_threads)]
        for t in threads:
            t.start()
        all_submitted.wait(5.0)  # every client has submitted...
        release.set()            # ...before the render is allowed to finish
        for t in threads:
            t.join()
        scheduler.close()

        assert render_calls[0] == 1
        assert scheduler.coalesced == n_threads - 1
        assert sum(created for created, _ in results) == 1
        for _, texture in results:
            np.testing.assert_array_equal(texture, np.ones((4, 4)))

    def test_distinct_keys_render_independently(self):
        scheduler = RequestScheduler(n_workers=2)
        t1, c1 = scheduler.submit("a", lambda: np.zeros((2, 2)))
        t2, c2 = scheduler.submit("b", lambda: np.ones((2, 2)))
        assert c1 and c2
        assert t1.wait(5.0)[0, 0] == 0.0
        assert t2.wait(5.0)[0, 0] == 1.0
        scheduler.close()

    def test_sequential_same_key_renders_again_after_completion(self):
        calls = [0]

        def render():
            calls[0] += 1
            return np.zeros((2, 2))

        scheduler = RequestScheduler(n_workers=1)
        t1, _ = scheduler.submit("k", render)
        t1.wait(5.0)
        t2, created = scheduler.submit("k", render)
        t2.wait(5.0)
        assert created  # the first flight retired before the second submit
        assert calls[0] == 2
        scheduler.close()


class TestErrorsAndLifecycle:
    def test_render_error_propagates_to_every_waiter(self):
        release = threading.Event()

        def failing():
            release.wait(5.0)
            raise RuntimeError("render exploded")

        scheduler = RequestScheduler(n_workers=1)
        t1, _ = scheduler.submit("k", failing)
        t2, created = scheduler.submit("k", failing)
        assert not created
        release.set()
        for ticket in (t1, t2):
            with pytest.raises(RuntimeError, match="render exploded"):
                ticket.wait(5.0)
        # The scheduler survives and serves the next request.
        t3, _ = scheduler.submit("k", lambda: np.ones((2, 2)))
        assert t3.wait(5.0)[0, 0] == 1.0
        scheduler.close()

    def test_wait_timeout_raises(self):
        scheduler = RequestScheduler(n_workers=1)
        hold = threading.Event()
        ticket, _ = scheduler.submit("k", lambda: hold.wait(10.0) or np.zeros((2, 2)))
        with pytest.raises(ServiceError, match="timed out"):
            ticket.wait(0.05)
        hold.set()
        scheduler.close()

    def test_wait_timeout_detaches_the_waiter(self):
        # Regression: a timed-out waiter used to stay attached to the
        # flight forever, so anything pricing work by live waiters —
        # shed and late-cancellation accounting — over-counted for the
        # rest of the flight's life.
        scheduler = RequestScheduler(n_workers=1)
        hold = threading.Event()
        ticket, _ = scheduler.submit("k", lambda: hold.wait(10.0) and np.zeros((2, 2)))
        joined, created = scheduler.submit("k", lambda: np.zeros((2, 2)))
        assert not created
        assert ticket.waiters == 2
        with pytest.raises(ServiceError, match="timed out"):
            joined.wait(0.05)
        # The detach hops onto the runtime loop; poll the snapshot read.
        deadline = time.monotonic() + 5.0
        while ticket.waiters != 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert ticket.waiters == 1
        hold.set()
        assert ticket.wait(5.0).shape == (2, 2)
        scheduler.close()

    def test_submit_after_close_raises(self):
        scheduler = RequestScheduler(n_workers=1)
        scheduler.close()
        with pytest.raises(ServiceError, match="closed"):
            scheduler.submit("k", lambda: np.zeros((2, 2)))

    def test_close_drains_pending_work(self):
        scheduler = RequestScheduler(n_workers=1)
        tickets = [
            scheduler.submit(f"k{i}", lambda i=i: np.full((2, 2), float(i)))[0]
            for i in range(5)
        ]
        scheduler.close(wait=True)
        for i, ticket in enumerate(tickets):
            assert ticket.wait(1.0)[0, 0] == float(i)


class TestAdmissionHook:
    def test_admit_sees_backlog_and_can_shed(self):
        depths = []

        def admit(depth):
            depths.append(depth)
            if depth >= 2:
                raise AdmissionError("queue full")

        hold = threading.Event()
        started = threading.Event()
        scheduler = RequestScheduler(n_workers=1, admit=admit)
        scheduler.submit(
            "a", lambda: started.set() or hold.wait(5.0) or np.zeros((2, 2))
        )
        assert started.wait(5.0)  # "a" is executing, not queued
        scheduler.submit("b", lambda: np.zeros((2, 2)))  # backlog 0
        scheduler.submit("c", lambda: np.zeros((2, 2)))  # backlog 1 (b queued)
        with pytest.raises(AdmissionError):
            scheduler.submit("d", lambda: np.zeros((2, 2)))  # backlog 2: shed
        # Coalescing onto an existing flight is never shed.
        _, created = scheduler.submit("a", lambda: np.zeros((2, 2)))
        assert not created
        assert depths == [0, 0, 1, 2]
        hold.set()
        scheduler.close()

    def test_admit_excludes_executing_renders(self):
        """Regression: admit used to receive len(inflight) — executing
        plus queued — so budgets priced nearly-finished renders as if
        they queued ahead of the new request and over-shed."""
        depths = []
        hold = threading.Event()
        scheduler = RequestScheduler(n_workers=2, admit=depths.append)

        def slow(started):
            started.set()
            hold.wait(5.0)
            return np.zeros((2, 2))

        for key in ("a", "b"):
            started = threading.Event()
            scheduler.submit(key, lambda started=started: slow(started))
            assert started.wait(5.0)  # this flight is executing
        assert scheduler.queue_depth() == 2  # total in the system...
        assert scheduler.backlog() == 0      # ...but nothing queues ahead
        scheduler.submit("c", lambda: np.zeros((2, 2)))
        # The new flight was admitted against an empty backlog, not the
        # two executing renders.
        assert depths == [0, 0, 0]
        hold.set()
        scheduler.close()

    def test_queue_depth_tracks_inflight(self):
        hold = threading.Event()
        scheduler = RequestScheduler(n_workers=1)
        assert scheduler.queue_depth() == 0
        ticket, _ = scheduler.submit("a", lambda: hold.wait(5.0) or np.zeros((2, 2)))
        assert scheduler.queue_depth() == 1
        hold.set()
        ticket.wait(5.0)
        deadline = time.time() + 2.0
        while scheduler.queue_depth() and time.time() < deadline:
            time.sleep(0.005)
        assert scheduler.queue_depth() == 0
        scheduler.close()


class TestBatchSubmit:
    def test_submit_many_coalesces_within_the_batch(self):
        calls = [0]
        calls_lock = threading.Lock()
        release = threading.Event()

        def render():
            with calls_lock:
                calls[0] += 1
            release.wait(5.0)
            return np.zeros((2, 2))

        scheduler = RequestScheduler(n_workers=2)
        tickets = scheduler.submit_many(
            [("a", render), ("b", render), ("a", render), ("b", render)]
        )
        release.set()
        for ticket, _ in tickets:
            ticket.wait(5.0)
        scheduler.close()
        assert calls[0] == 2  # two distinct keys, duplicates coalesced
        created = [c for _, c in tickets]
        assert created == [True, True, False, False]
