"""Tests for repro.advection.streamline and advector."""

import numpy as np
import pytest

from repro.advection.advector import Advector
from repro.advection.lifecycle import LifeCyclePolicy
from repro.advection.particles import ParticleSet
from repro.advection.streamline import arc_lengths, integrate_streamline, streamline_bundle
from repro.errors import AdvectionError
from repro.fields.analytic import constant_field, vortex_field


class TestStreamlineBundle:
    def test_shapes(self):
        f = constant_field(1.0, 0.0, n=9)
        seeds = np.zeros((7, 2))
        out = streamline_bundle(f.sample, seeds, n_steps=10, dt=0.01)
        assert out.shape == (7, 11, 2)

    def test_uniform_flow_straight_lines(self):
        f = constant_field(2.0, 0.0, n=9)
        out = streamline_bundle(f.sample, np.array([[0.0, 0.0]]), n_steps=4, dt=0.1)
        xs = out[0, :, 0]
        np.testing.assert_allclose(np.diff(xs), 0.2, atol=1e-12)
        np.testing.assert_allclose(out[0, :, 1], 0.0, atol=1e-12)

    def test_bidirectional_centred_on_seed(self):
        f = constant_field(1.0, 0.0, n=9)
        out = streamline_bundle(f.sample, np.array([[0.0, 0.0]]), n_steps=4, dt=0.1)
        np.testing.assert_allclose(out[0, 2], [0.0, 0.0], atol=1e-12)
        assert out[0, 0, 0] < 0 < out[0, -1, 0]

    def test_forward_only(self):
        f = constant_field(1.0, 0.0, n=9)
        out = streamline_bundle(
            f.sample, np.array([[0.0, 0.0]]), n_steps=4, dt=0.1, bidirectional=False
        )
        np.testing.assert_allclose(out[0, 0], [0.0, 0.0], atol=1e-12)
        assert (np.diff(out[0, :, 0]) > 0).all()

    def test_single_streamline_helper(self):
        f = vortex_field(n=17)
        curve = integrate_streamline(f.sample, np.array([0.5, 0.0]), 8, 0.05)
        assert curve.shape == (9, 2)

    def test_vortex_streamline_stays_on_circle(self):
        f = vortex_field(n=65)
        curve = integrate_streamline(f.sample, np.array([0.5, 0.0]), 40, 0.02)
        radii = np.hypot(curve[:, 0], curve[:, 1])
        np.testing.assert_allclose(radii, 0.5, atol=5e-3)

    @pytest.mark.parametrize("bad_steps", [0, -3])
    def test_bad_steps(self, bad_steps):
        f = constant_field(n=9)
        with pytest.raises(AdvectionError):
            streamline_bundle(f.sample, np.zeros((1, 2)), bad_steps, 0.1)

    def test_bad_dt(self):
        f = constant_field(n=9)
        with pytest.raises(AdvectionError):
            streamline_bundle(f.sample, np.zeros((1, 2)), 4, 0.0)

    def test_arc_lengths(self):
        curves = np.zeros((2, 3, 2))
        curves[0, 1] = [1.0, 0.0]
        curves[0, 2] = [1.0, 1.0]
        np.testing.assert_allclose(arc_lengths(curves), [2.0, 0.0])

    def test_arc_lengths_bad_shape(self):
        with pytest.raises(AdvectionError):
            arc_lengths(np.zeros((2, 3)))


class TestAdvector:
    def test_uniform_flow_moves_linearly(self):
        f = constant_field(1.0, 0.0, n=9)
        adv = Advector(f, dt=0.1, policy=LifeCyclePolicy(boundary="clamp"))
        ps = ParticleSet(np.array([[-0.5, 0.0]]), np.array([1.0]))
        adv.advance(ps)
        np.testing.assert_allclose(ps.positions, [[-0.4, 0.0]], atol=1e-12)

    def test_static_mode_never_moves(self):
        f = constant_field(5.0, 5.0, n=9)
        adv = Advector(f, dt=0.1, policy=LifeCyclePolicy(position_mode="static"))
        ps = ParticleSet(np.array([[0.0, 0.0]]), np.array([1.0]))
        before = ps.positions.copy()
        adv.run(ps, 5)
        np.testing.assert_array_equal(ps.positions, before)

    def test_rerandomize_mode_moves_all(self):
        f = constant_field(0.0, 0.0, n=9)
        adv = Advector(f, dt=0.1, policy=LifeCyclePolicy(position_mode="rerandomize"), seed=3)
        ps = ParticleSet.uniform_random(50, f.grid.bounds, seed=1)
        before = ps.positions.copy()
        adv.advance(ps)
        assert not np.allclose(ps.positions, before)

    def test_auto_dt_half_cell(self):
        f = constant_field(2.0, 0.0, n=11)  # spacing 0.2, vmax 2
        adv = Advector(f)
        assert adv.dt == pytest.approx(0.5 * 0.2 / 2.0)

    def test_auto_dt_zero_field(self):
        f = constant_field(0.0, 0.0, n=9)
        assert Advector(f).dt == 1.0

    def test_respawn_keeps_particles_inside(self):
        f = constant_field(10.0, 0.0, n=9)
        adv = Advector(f, dt=0.3, policy=LifeCyclePolicy(boundary="respawn"), seed=5)
        ps = ParticleSet.uniform_random(100, f.grid.bounds, seed=2)
        stats = adv.run(ps, 10)
        assert f.grid.contains(ps.positions).all()
        assert sum(s.n_respawned for s in stats) > 0

    def test_ensure_lifetimes_installs_policy_lifetime(self):
        f = constant_field(1.0, 0.0, n=9)
        adv = Advector(f, dt=0.01, policy=LifeCyclePolicy(lifetime=7), seed=1)
        ps = ParticleSet.uniform_random(30, f.grid.bounds, seed=3)
        adv.advance(ps)
        assert (ps.lifetimes == 7).all()

    def test_field_evals_counted(self):
        f = constant_field(1.0, 0.0, n=9)
        adv = Advector(f, dt=0.01, integrator="rk4", policy=LifeCyclePolicy())
        ps = ParticleSet.uniform_random(10, f.grid.bounds, seed=4)
        stats = adv.advance(ps)
        assert stats.field_evals == 40

    def test_negative_frames_rejected(self):
        f = constant_field(n=9)
        adv = Advector(f, dt=0.01)
        ps = ParticleSet.uniform_random(5, f.grid.bounds, seed=1)
        with pytest.raises(AdvectionError):
            adv.run(ps, -1)

    def test_field_swap_preserves_particles(self):
        f1 = constant_field(1.0, 0.0, n=9)
        f2 = constant_field(0.0, 1.0, n=9)
        adv = Advector(f1, dt=0.1, policy=LifeCyclePolicy(boundary="clamp"))
        ps = ParticleSet(np.array([[0.0, 0.0]]), np.array([1.0]))
        adv.advance(ps)
        adv.field = f2
        adv.advance(ps)
        np.testing.assert_allclose(ps.positions, [[0.1, 0.1]], atol=1e-12)
