"""Tests for repro.advection.integrators."""

import numpy as np
import pytest

from repro.errors import AdvectionError
from repro.advection.integrators import (
    EVALS_PER_STEP,
    euler_step,
    get_integrator,
    rk2_step,
    rk4_step,
)


def circular(points):
    """Velocity of unit-rate rotation: (-y, x)."""
    out = np.empty_like(points)
    out[:, 0] = -points[:, 1]
    out[:, 1] = points[:, 0]
    return out


class TestBasics:
    def test_constant_velocity_is_exact_for_all(self):
        vel = lambda p: np.full_like(p, 2.0)
        start = np.array([[0.0, 0.0], [1.0, -1.0]])
        for step in (euler_step, rk2_step, rk4_step):
            out = step(vel, start, 0.5)
            np.testing.assert_allclose(out, start + 1.0)

    def test_zero_dt_identity(self):
        start = np.array([[0.3, 0.4]])
        for step in (euler_step, rk2_step, rk4_step):
            np.testing.assert_allclose(step(circular, start, 0.0), start)

    def test_bad_positions_shape(self):
        with pytest.raises(AdvectionError):
            euler_step(circular, np.zeros(2), 0.1)

    def test_nonfinite_dt(self):
        with pytest.raises(AdvectionError):
            rk4_step(circular, np.zeros((1, 2)), float("nan"))

    def test_get_integrator(self):
        assert get_integrator("euler") is euler_step
        assert get_integrator("rk2") is rk2_step
        assert get_integrator("rk4") is rk4_step

    def test_get_integrator_unknown(self):
        with pytest.raises(AdvectionError):
            get_integrator("rk5")

    def test_evals_per_step_table(self):
        assert EVALS_PER_STEP == {"euler": 1, "rk2": 2, "rk4": 4}


class TestConvergenceOrder:
    """Global error on one revolution of the circular field must shrink with
    the integrator's order: halving dt divides the error by ~2^order."""

    def _error_after_quarter_turn(self, step, n_steps):
        dt = (np.pi / 2) / n_steps
        pos = np.array([[1.0, 0.0]])
        for _ in range(n_steps):
            pos = step(circular, pos, dt)
        exact = np.array([[0.0, 1.0]])
        return float(np.linalg.norm(pos - exact))

    @pytest.mark.parametrize(
        "step,order", [(euler_step, 1), (rk2_step, 2), (rk4_step, 4)]
    )
    def test_order(self, step, order):
        e1 = self._error_after_quarter_turn(step, 32)
        e2 = self._error_after_quarter_turn(step, 64)
        ratio = e1 / e2
        assert ratio > 2 ** (order - 0.5), f"observed ratio {ratio:.2f} too small"

    def test_rk4_beats_euler(self):
        e_euler = self._error_after_quarter_turn(euler_step, 64)
        e_rk4 = self._error_after_quarter_turn(rk4_step, 64)
        assert e_rk4 < e_euler / 100.0

    def test_radius_conservation_rk4(self):
        pos = np.array([[1.0, 0.0]])
        dt = 2 * np.pi / 256
        for _ in range(256):
            pos = rk4_step(circular, pos, dt)
        radius = np.hypot(pos[0, 0], pos[0, 1])
        assert radius == pytest.approx(1.0, abs=1e-6)
