"""Tests for repro.advection.particles and lifecycle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advection.lifecycle import LifeCyclePolicy
from repro.advection.particles import ParticleSet
from repro.errors import AdvectionError

BOUNDS = (0.0, 1.0, 0.0, 1.0)


class TestParticleSetConstruction:
    def test_uniform_random_within_bounds(self):
        ps = ParticleSet.uniform_random(500, BOUNDS, seed=0)
        assert len(ps) == 500
        assert ps.positions[:, 0].min() >= 0.0 and ps.positions[:, 0].max() <= 1.0
        assert ps.positions[:, 1].min() >= 0.0 and ps.positions[:, 1].max() <= 1.0

    def test_intensities_zero_mean_family(self):
        ps = ParticleSet.uniform_random(4000, BOUNDS, seed=1, intensity=2.0)
        assert set(np.unique(ps.intensities)) == {-2.0, 2.0}
        # Statistical: mean ~ 0 within 5 sigma.
        assert abs(ps.intensities.mean()) < 5 * 2.0 / np.sqrt(4000)

    def test_negative_count_raises(self):
        with pytest.raises(AdvectionError):
            ParticleSet.uniform_random(-1, BOUNDS)

    def test_lifetime_staggering(self):
        ps = ParticleSet.uniform_random(200, BOUNDS, seed=2, lifetime=50)
        assert ps.ages.min() >= 0 and ps.ages.max() < 50
        assert len(np.unique(ps.ages)) > 10  # actually staggered

    def test_bad_lifetime(self):
        with pytest.raises(AdvectionError):
            ParticleSet.uniform_random(10, BOUNDS, lifetime=0)

    def test_mismatched_arrays(self):
        with pytest.raises(AdvectionError):
            ParticleSet(np.zeros((5, 2)), np.zeros(4))


class TestSubsetConcat:
    def test_subset_roundtrip(self):
        ps = ParticleSet.uniform_random(100, BOUNDS, seed=3)
        idx = np.array([5, 10, 99])
        sub = ps.subset(idx)
        np.testing.assert_array_equal(sub.positions, ps.positions[idx])
        np.testing.assert_array_equal(sub.intensities, ps.intensities[idx])

    def test_subset_is_copy(self):
        ps = ParticleSet.uniform_random(10, BOUNDS, seed=3)
        sub = ps.subset(np.array([0]))
        sub.positions[0, 0] = 99.0
        assert ps.positions[0, 0] != 99.0

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 60), k=st.integers(1, 5))
    def test_concat_of_partition_preserves_everything(self, n, k):
        ps = ParticleSet.uniform_random(n, BOUNDS, seed=4)
        parts = [ps.subset(np.arange(g, n, k)) for g in range(k)]
        merged = ParticleSet.concatenate(parts)
        assert len(merged) == n
        # Round-robin interleave: sort both by position to compare as sets.
        key = lambda p: np.lexsort((p.positions[:, 1], p.positions[:, 0]))
        np.testing.assert_allclose(
            merged.positions[key(merged)], ps.positions[key(ps)]
        )

    def test_concat_empty_raises(self):
        with pytest.raises(AdvectionError):
            ParticleSet.concatenate([])


class TestAgingAndRespawn:
    def test_age_one_frame_flags_expired(self):
        ps = ParticleSet.uniform_random(10, BOUNDS, seed=5, lifetime=3, stagger_ages=False)
        assert not ps.age_one_frame().any()
        assert not ps.age_one_frame().any()
        assert ps.age_one_frame().all()

    def test_respawn_resets_age_and_positions(self):
        ps = ParticleSet.uniform_random(50, BOUNDS, seed=6, lifetime=2, stagger_ages=False)
        ps.positions[:] = 5.0  # move everyone out
        mask = np.ones(50, dtype=bool)
        n = ps.respawn(mask, BOUNDS, np.random.default_rng(0))
        assert n == 50
        assert ps.positions.max() <= 1.0
        assert (ps.ages == 0).all()

    def test_respawn_empty_mask(self):
        ps = ParticleSet.uniform_random(5, BOUNDS, seed=7)
        assert ps.respawn(np.zeros(5, bool), BOUNDS, np.random.default_rng(0)) == 0

    def test_fade_weights_all_one_without_fading(self):
        ps = ParticleSet.uniform_random(5, BOUNDS, seed=8)
        np.testing.assert_array_equal(ps.fade_weights(0), np.ones(5))

    def test_fade_weights_young_particles_faded(self):
        ps = ParticleSet.uniform_random(4, BOUNDS, seed=9, lifetime=100, stagger_ages=False)
        w = ps.fade_weights(fade_frames=4)
        np.testing.assert_allclose(w, 0.25)  # age 0 -> (0+1)/4

    def test_fade_weights_near_death(self):
        ps = ParticleSet.uniform_random(4, BOUNDS, seed=10, lifetime=10, stagger_ages=False)
        ps.ages[:] = 9
        w = ps.fade_weights(fade_frames=4)
        np.testing.assert_allclose(w, 0.25)  # 1 frame left of 4


class TestLifeCyclePolicy:
    def test_invalid_mode(self):
        with pytest.raises(AdvectionError):
            LifeCyclePolicy(position_mode="teleport")

    def test_invalid_boundary(self):
        with pytest.raises(AdvectionError):
            LifeCyclePolicy(boundary="bounce")

    def test_negative_lifetime(self):
        with pytest.raises(AdvectionError):
            LifeCyclePolicy(lifetime=-1)

    def test_factories(self):
        assert LifeCyclePolicy.default_spot_noise().position_mode == "static"
        adv = LifeCyclePolicy.advected(lifetime=30)
        assert adv.position_mode == "advect" and adv.lifetime == 30

    def test_apply_boundary_respawn(self):
        policy = LifeCyclePolicy(boundary="respawn")
        ps = ParticleSet.uniform_random(20, BOUNDS, seed=11)
        ps.positions[:10] = 2.0
        n = policy.apply_boundary(ps, BOUNDS, np.random.default_rng(1))
        assert n == 10
        assert ps.positions.max() <= 1.0

    def test_apply_boundary_wrap(self):
        policy = LifeCyclePolicy(boundary="wrap")
        ps = ParticleSet.uniform_random(5, BOUNDS, seed=12)
        ps.positions[0] = [1.25, -0.25]
        policy.apply_boundary(ps, BOUNDS, np.random.default_rng(1))
        np.testing.assert_allclose(ps.positions[0], [0.25, 0.75])

    def test_apply_boundary_clamp(self):
        policy = LifeCyclePolicy(boundary="clamp")
        ps = ParticleSet.uniform_random(5, BOUNDS, seed=13)
        ps.positions[0] = [9.0, -9.0]
        policy.apply_boundary(ps, BOUNDS, np.random.default_rng(1))
        np.testing.assert_allclose(ps.positions[0], [1.0, 0.0])

    def test_apply_aging_without_lifetime_is_noop(self):
        policy = LifeCyclePolicy(lifetime=0)
        ps = ParticleSet.uniform_random(5, BOUNDS, seed=14)
        assert policy.apply_aging(ps, BOUNDS, np.random.default_rng(1)) == 0
