"""Tests for pathlines/streaklines/timelines (repro.advection.unsteady)."""

import numpy as np
import pytest

from repro.advection.streamline import streamline_bundle
from repro.advection.unsteady import pathline_bundle, steady, streakline, timeline
from repro.errors import AdvectionError
from repro.fields.analytic import constant_field, vortex_field


def rotating_uniform(positions, t):
    """A spatially uniform flow whose direction rotates in time."""
    out = np.empty_like(positions)
    out[:, 0] = np.cos(t)
    out[:, 1] = np.sin(t)
    return out


class TestPathlines:
    def test_steady_pathline_equals_streamline(self):
        f = vortex_field(n=65)
        seeds = np.array([[0.5, 0.0], [0.3, 0.2]])
        paths = pathline_bundle(steady(f.sample), seeds, t0=0.0, dt=0.02, n_steps=20)
        streams = streamline_bundle(
            f.sample, seeds, n_steps=20, dt=0.02, integrator="rk4", bidirectional=False
        )
        np.testing.assert_allclose(paths, streams, atol=1e-12)

    def test_unsteady_pathline_analytic(self):
        # dx/dt = (cos t, sin t) -> x(T) = x0 + (sin T, 1 - cos T).
        T = 1.3
        n = 64
        paths = pathline_bundle(rotating_uniform, np.zeros((1, 2)), 0.0, T / n, n)
        np.testing.assert_allclose(
            paths[0, -1], [np.sin(T), 1.0 - np.cos(T)], atol=1e-8
        )

    def test_shape(self):
        paths = pathline_bundle(rotating_uniform, np.zeros((5, 2)), 0.0, 0.1, 7)
        assert paths.shape == (5, 8, 2)

    def test_validation(self):
        with pytest.raises(AdvectionError):
            pathline_bundle(rotating_uniform, np.zeros((1, 3)), 0.0, 0.1, 5)
        with pytest.raises(AdvectionError):
            pathline_bundle(rotating_uniform, np.zeros((1, 2)), 0.0, 0.0, 5)
        with pytest.raises(AdvectionError):
            pathline_bundle(rotating_uniform, np.zeros((1, 2)), 0.0, 0.1, 0)


class TestStreaklines:
    def test_steady_streakline_lies_on_streamline(self):
        f = constant_field(1.0, 0.5, n=9)
        streak = streakline(steady(f.sample), np.array([0.0, 0.0]), 0.0, 0.05, 10)
        # In a steady uniform flow the streakline is the straight line
        # through the source along the velocity.
        assert streak.shape == (11, 2)
        np.testing.assert_allclose(streak[:, 1], 0.5 * streak[:, 0], atol=1e-12)
        # Newest particle at the source.
        np.testing.assert_allclose(streak[-1], [0.0, 0.0], atol=1e-12)

    def test_oldest_particle_travelled_furthest(self):
        f = constant_field(2.0, 0.0, n=9)
        streak = streakline(steady(f.sample), np.array([0.0, 0.0]), 0.0, 0.05, 10)
        assert streak[0, 0] == pytest.approx(2.0 * 0.5)  # emitted at t0, advected 10 steps
        assert (np.diff(streak[:, 0]) < 0).all()

    def test_unsteady_streakline_differs_from_pathline(self):
        src = np.array([0.0, 0.0])
        streak = streakline(rotating_uniform, src, 0.0, 0.1, 30)
        path = pathline_bundle(rotating_uniform, src[None, :], 0.0, 0.1, 30)[0]
        # Same endpoints family but different curves in unsteady flow.
        assert not np.allclose(streak[::-1], path, atol=1e-3)


class TestTimeline:
    def test_material_line_translates_in_uniform_flow(self):
        f = constant_field(1.0, -1.0, n=9)
        seeds = np.stack([np.linspace(0, 1, 5), np.zeros(5)], axis=-1)
        moved = timeline(steady(f.sample), seeds, 0.0, 0.1, 4)
        np.testing.assert_allclose(moved, seeds + np.array([0.4, -0.4]), atol=1e-12)

    def test_shear_tilts_material_line(self):
        from repro.fields.analytic import shear_field

        f = shear_field(rate=1.0, n=17)
        seeds = np.stack([np.zeros(5), np.linspace(-0.5, 0.5, 5)], axis=-1)
        moved = timeline(steady(f.sample), seeds, 0.0, 0.1, 5)
        # u = y: top moves right, bottom moves left.
        assert moved[-1, 0] > 0 > moved[0, 0]
