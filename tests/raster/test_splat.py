"""Tests for repro.raster.splat."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RasterError
from repro.raster.framebuffer import FrameBuffer
from repro.raster.rasterize import rasterize_quads_exact
from repro.raster.splat import rasterize_quads_sampled, splat_points
from repro.raster.texture import Texture

WIN = (0.0, 1.0, 0.0, 1.0)
UV = np.array([[[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]])


def quad(x0, x1, y0, y1):
    return np.array([[[x0, y0], [x1, y0], [x1, y1], [x0, y1]]], dtype=float)


class TestSplatPoints:
    def test_interior_point_conserves_value(self):
        fb = FrameBuffer(16, 16, WIN)
        splat_points(fb, np.array([[0.37, 0.61]]), np.array([2.5]))
        assert fb.total() == pytest.approx(2.5)

    def test_point_on_pixel_center_single_pixel(self):
        fb = FrameBuffer(4, 4, WIN)
        # Pixel (1, 2) center = ((1+0.5)/4, (2+0.5)/4).
        splat_points(fb, np.array([[0.375, 0.625]]), np.array([1.0]))
        assert fb.data[2, 1] == pytest.approx(1.0)
        assert fb.total() == pytest.approx(1.0)

    def test_outside_point_ignored(self):
        fb = FrameBuffer(4, 4, WIN)
        landed = splat_points(fb, np.array([[5.0, 5.0]]), np.array([1.0]))
        assert landed == 0
        assert fb.total() == 0.0

    def test_boundary_point_loses_offgrid_share(self):
        fb = FrameBuffer(4, 4, WIN)
        splat_points(fb, np.array([[0.0, 0.5]]), np.array([1.0]))
        assert 0 < fb.total() < 1.0

    def test_validation(self):
        fb = FrameBuffer(4, 4, WIN)
        with pytest.raises(RasterError):
            splat_points(fb, np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(RasterError):
            splat_points(fb, np.zeros((2, 2)), np.zeros(3))

    @settings(max_examples=25, deadline=None)
    @given(
        x=st.floats(0.2, 0.8),
        y=st.floats(0.2, 0.8),
        v=st.floats(-3, 3),
    )
    def test_conservation_property(self, x, y, v):
        fb = FrameBuffer(32, 32, WIN)
        splat_points(fb, np.array([[x, y]]), np.array([v]))
        assert fb.total() == pytest.approx(v, abs=1e-9)


class TestRasterizeQuadsSampled:
    def test_total_matches_exact_for_aligned_quad(self):
        q = quad(0.25, 0.75, 0.25, 0.75)
        a = np.array([1.0])
        fbe = FrameBuffer(32, 32, WIN)
        fbs = FrameBuffer(32, 32, WIN)
        rasterize_quads_exact(fbe, q, UV, a)
        rasterize_quads_sampled(fbs, q, UV, a)
        assert fbs.total() == pytest.approx(fbe.total(), rel=0.05)

    def test_adaptive_matches_exact_pixelwise_for_big_quads(self):
        rng = np.random.default_rng(0)
        centers = rng.uniform(0.2, 0.8, (20, 2))
        quads = np.stack(
            [
                centers + np.array([-0.08, -0.05]),
                centers + np.array([0.08, -0.05]),
                centers + np.array([0.08, 0.05]),
                centers + np.array([-0.08, 0.05]),
            ],
            axis=1,
        )
        uvs = np.broadcast_to(UV, (20, 4, 2)).copy()
        a = rng.choice([-1.0, 1.0], 20)
        tex = Texture(np.ones((8, 8)))
        fbe = FrameBuffer(64, 64, WIN)
        fbs = FrameBuffer(64, 64, WIN)
        rasterize_quads_exact(fbe, quads, uvs, a, tex)
        rasterize_quads_sampled(fbs, quads, uvs, a, tex)
        err = np.abs(fbe.data - fbs.data).sum() / np.abs(fbe.data).sum()
        assert err < 0.25  # anti-aliased edges differ; interiors agree

    def test_subpixel_quads_deposit_area_weighted(self):
        # A quad covering 1/4 pixel deposits ~intensity * area_px.
        fb = FrameBuffer(8, 8, WIN)
        q = quad(0.25, 0.3125, 0.25, 0.3125)  # 0.5 x 0.5 pixels
        rasterize_quads_sampled(fb, q, UV, np.array([4.0]))
        assert fb.total() == pytest.approx(4.0 * 0.25, rel=1e-6)

    def test_empty_batch(self):
        fb = FrameBuffer(8, 8, WIN)
        n = rasterize_quads_sampled(
            fb, np.zeros((0, 4, 2)), np.zeros((0, 4, 2)), np.zeros(0)
        )
        assert n == 0

    def test_chunking_equivalence(self):
        rng = np.random.default_rng(1)
        n = 50
        c = rng.uniform(0.1, 0.9, (n, 2))
        quads = np.stack(
            [c + [-0.02, -0.02], c + [0.02, -0.02], c + [0.02, 0.02], c + [-0.02, 0.02]],
            axis=1,
        )
        uvs = np.broadcast_to(UV, (n, 4, 2)).copy()
        a = rng.normal(size=n)
        fb1 = FrameBuffer(32, 32, WIN)
        fb2 = FrameBuffer(32, 32, WIN)
        rasterize_quads_sampled(fb1, quads, uvs, a, chunk=7)
        rasterize_quads_sampled(fb2, quads, uvs, a, chunk=1 << 18)
        np.testing.assert_allclose(fb1.data, fb2.data, atol=1e-12)

    def test_validation(self):
        fb = FrameBuffer(4, 4, WIN)
        with pytest.raises(RasterError):
            rasterize_quads_sampled(fb, np.zeros((1, 4, 2)), np.zeros((1, 4, 2)), np.zeros(1), samples_per_edge=0)
        with pytest.raises(RasterError):
            rasterize_quads_sampled(fb, np.zeros((1, 3, 2)), np.zeros((1, 3, 2)), np.zeros(1))
