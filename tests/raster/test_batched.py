"""Bit-equivalence of the batched rasteriser against the reference loop.

The batched renderer's contract is not "close": into a cleared frame
buffer it must produce *bitwise identical* pixels to
:func:`repro.raster.rasterize.rasterize_quads_exact` — same edge-function
arithmetic, same winding normalisation, same inclusive/exclusive shared
diagonal, same accumulation order.  These tests drive both renderers over
the geometry zoo (overlapping quads, reversed windings, degenerate and
sliver quads, bowties, huge quads spanning pow2 buckets, real bent-spot
meshes) and assert exact array equality plus identical coverage counts.
"""

import numpy as np
import pytest

from repro.errors import RasterError
from repro.fields.analytic import random_smooth_field
from repro.raster.batched import rasterize_quads_batched
from repro.raster.framebuffer import FrameBuffer
from repro.raster.rasterize import rasterize_quads_exact
from repro.raster.texture import Texture
from repro.spots.functions import get_profile


TEXTURE = Texture(get_profile("gaussian").make_texture(32))
UNIT_UV = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


def both(quads, uvs, inten, texture=TEXTURE, size=96, window=(0.0, 1.0, 0.0, 1.0), **kw):
    fb_ref = FrameBuffer(size, size, window)
    fb_bat = FrameBuffer(size, size, window)
    n_ref = rasterize_quads_exact(fb_ref, quads, uvs, inten, texture)
    n_bat = rasterize_quads_batched(fb_bat, quads, uvs, inten, texture, **kw)
    return fb_ref, fb_bat, n_ref, n_bat


def random_quads(n, seed, scale=0.05, jitter=0.3):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 1, (n, 2))
    base = np.array([[-1, -1], [1, -1], [1, 1], [-1, 1]], dtype=float) * scale
    quads = centers[:, None, :] + base + rng.uniform(-scale, scale, (n, 4, 2)) * jitter
    uvs = np.broadcast_to(UNIT_UV, (n, 4, 2)).copy()
    inten = rng.uniform(-1.0, 1.0, n)
    return quads, uvs, inten


class TestBitEquivalence:
    @pytest.mark.parametrize("textured", [True, False])
    def test_random_overlapping_quads(self, textured):
        quads, uvs, inten = random_quads(400, seed=1)
        ref, bat, n_ref, n_bat = both(quads, uvs, inten, TEXTURE if textured else None)
        assert n_ref == n_bat
        np.testing.assert_array_equal(bat.data, ref.data)

    def test_mixed_windings(self):
        quads, uvs, inten = random_quads(200, seed=2)
        quads[::3] = quads[::3][:, ::-1]  # reverse every third quad
        ref, bat, n_ref, n_bat = both(quads, uvs, inten)
        assert n_ref == n_bat
        np.testing.assert_array_equal(bat.data, ref.data)

    def test_degenerate_sliver_and_bowtie_quads(self):
        quads, uvs, inten = random_quads(60, seed=3)
        quads[0] = quads[0][[0, 0, 0, 0]]      # fully collapsed
        quads[1, 2] = quads[1, 1]              # first triangle degenerate
        quads[2, 0] = quads[2, 3]              # second triangle degenerate
        quads[3] = quads[3][[0, 2, 1, 3]]      # bowtie: opposite windings
        ref, bat, n_ref, n_bat = both(quads, uvs, inten)
        assert n_ref == n_bat
        np.testing.assert_array_equal(bat.data, ref.data)

    def test_shared_diagonal_covered_once(self):
        # An axis-aligned square whose v0-v2 diagonal passes exactly
        # through pixel centres: the complementary inclusive/exclusive
        # rule must count every diagonal pixel exactly once in both
        # renderers (flat intensity makes double-coverage visible).
        quad = np.array([[[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]])
        uv = np.array([UNIT_UV])
        inten = np.array([1.0])
        ref, bat, n_ref, n_bat = both(quad, uv, inten, texture=None, size=16)
        assert n_ref == n_bat == 16 * 16
        np.testing.assert_array_equal(bat.data, ref.data)
        np.testing.assert_array_equal(ref.data, np.ones((16, 16)))

    def test_huge_quads_use_pow2_buckets(self):
        quads, uvs, inten = random_quads(40, seed=4)
        quads[5] = quads[5] * 30.0 - 5.0       # spans the frame buffer
        quads[6] = quads[6] * 8.0 - 2.0
        ref, bat, n_ref, n_bat = both(quads, uvs, inten)
        assert n_ref == n_bat
        np.testing.assert_array_equal(bat.data, ref.data)

    def test_partially_offscreen_quads(self):
        quads, uvs, inten = random_quads(150, seed=5)
        quads += np.array([0.6, -0.4])         # many bboxes clip to the border
        ref, bat, n_ref, n_bat = both(quads, uvs, inten)
        assert n_ref == n_bat
        np.testing.assert_array_equal(bat.data, ref.data)

    def test_bent_mesh_quads(self):
        from repro.advection.particles import ParticleSet
        from repro.core.config import BentConfig, SpotNoiseConfig
        from repro.parallel.groups import build_spot_geometry

        field = random_smooth_field(seed=21, n=33)
        cfg = SpotNoiseConfig(
            n_spots=80,
            texture_size=64,
            spot_mode="bent",
            bent=BentConfig(n_along=6, n_across=4, length_cells=3.0, width_cells=1.0),
            seed=9,
        )
        ps = ParticleSet.uniform_random(80, field.grid.bounds, seed=9)
        quads, uvs, qps = build_spot_geometry(ps.positions, field, cfg)
        inten = np.repeat(ps.intensities, qps)
        ref, bat, n_ref, n_bat = both(
            quads, uvs, inten, size=64, window=field.grid.bounds
        )
        assert n_ref == n_bat
        np.testing.assert_array_equal(bat.data, ref.data)

    def test_chunking_is_invisible(self):
        quads, uvs, inten = random_quads(300, seed=6)
        ref, bat, n_ref, n_bat = both(quads, uvs, inten, chunk_px=64)
        assert n_ref == n_bat
        np.testing.assert_array_equal(bat.data, ref.data)


class TestBatchedBehaviour:
    def test_empty_batch(self):
        fb = FrameBuffer(32, 32, (0, 1, 0, 1))
        n = rasterize_quads_batched(
            fb, np.zeros((0, 4, 2)), np.zeros((0, 4, 2)), np.zeros(0), TEXTURE
        )
        assert n == 0
        assert fb.total() == 0.0

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_nonfinite_quads_dropped(self, bad):
        # The reference loop cannot digest non-finite vertices; the batch
        # renderer drops those quads and renders the rest normally.  An
        # infinite vertex is the sneaky case: it can make a triangle's
        # area +inf, which must not survive the validity filter.
        quads, uvs, inten = random_quads(30, seed=7)
        good_ref, _, _, _ = both(quads[1:], uvs[1:], inten[1:])
        quads[0, 1, 0] = bad
        fb = FrameBuffer(96, 96, (0, 1, 0, 1))
        rasterize_quads_batched(fb, quads, uvs, inten, TEXTURE)
        np.testing.assert_array_equal(fb.data, good_ref.data)

    def test_inf_vertex_fuzz_never_crashes(self):
        # Regression: inf-vertex quads used to pass the area filter with
        # area = +inf and crash on NaN barycentric weights.
        rng = np.random.default_rng(11)
        quads, uvs, inten = random_quads(300, seed=11)
        corners = rng.integers(0, 4, 300)
        axes = rng.integers(0, 2, 300)
        signs = rng.choice([-np.inf, np.inf], 300)
        hit = rng.random(300) < 0.5
        quads[hit, corners[hit], axes[hit]] = signs[hit]
        fb = FrameBuffer(96, 96, (0, 1, 0, 1))
        rasterize_quads_batched(fb, quads, uvs, inten, TEXTURE)
        assert np.isfinite(fb.data).all()

    def test_validation_errors(self):
        fb = FrameBuffer(32, 32, (0, 1, 0, 1))
        with pytest.raises(RasterError):
            rasterize_quads_batched(fb, np.zeros((2, 3, 2)), np.zeros((2, 3, 2)), np.zeros(2))
        with pytest.raises(RasterError):
            rasterize_quads_batched(fb, np.zeros((2, 4, 2)), np.zeros((3, 4, 2)), np.zeros(2))
        with pytest.raises(RasterError):
            rasterize_quads_batched(fb, np.zeros((2, 4, 2)), np.zeros((2, 4, 2)), np.zeros(3))
        with pytest.raises(RasterError):
            rasterize_quads_batched(
                fb, np.zeros((2, 4, 2)), np.zeros((2, 4, 2)), np.zeros(2), chunk_px=0
            )

    def test_additivity_on_prefilled_buffer(self):
        # Drawing onto an already-filled buffer stays an additive blend
        # (rounding may differ from the reference at the last ulp, which
        # is why the bitwise guarantee is stated for cleared buffers).
        quads, uvs, inten = random_quads(50, seed=8)
        fb = FrameBuffer(96, 96, (0, 1, 0, 1))
        fb.data[...] = 1.0
        rasterize_quads_batched(fb, quads, uvs, inten, TEXTURE)
        fb2 = FrameBuffer(96, 96, (0, 1, 0, 1))
        rasterize_quads_batched(fb2, quads, uvs, inten, TEXTURE)
        np.testing.assert_allclose(fb.data, fb2.data + 1.0, rtol=0, atol=1e-12)
