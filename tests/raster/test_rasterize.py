"""Tests for repro.raster.rasterize and texture."""

import numpy as np
import pytest

from repro.errors import RasterError
from repro.raster.framebuffer import FrameBuffer
from repro.raster.rasterize import rasterize_quads_exact, rasterize_triangle
from repro.raster.texture import Texture

WIN = (0.0, 1.0, 0.0, 1.0)


def unit_quad(x0, x1, y0, y1):
    return np.array([[[x0, y0], [x1, y0], [x1, y1], [x0, y1]]], dtype=float)


UV = np.array([[[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]])


class TestTexture:
    def test_nearest_lookup(self):
        t = Texture(np.array([[1.0, 2.0], [3.0, 4.0]]), filter="nearest")
        out = t.sample(np.array([0.25, 0.75]), np.array([0.25, 0.75]))
        np.testing.assert_array_equal(out, [1.0, 4.0])

    def test_bilinear_center(self):
        t = Texture(np.array([[0.0, 1.0], [1.0, 2.0]]))
        assert t.sample(np.array([0.5]), np.array([0.5]))[0] == pytest.approx(1.0)

    def test_clamp_to_edge(self):
        t = Texture(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert t.sample(np.array([-1.0]), np.array([-1.0]))[0] == pytest.approx(1.0)
        assert t.sample(np.array([2.0]), np.array([2.0]))[0] == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(RasterError):
            Texture(np.zeros(4))
        with pytest.raises(RasterError):
            Texture(np.zeros((2, 2)), filter="trilinear")

    def test_nbytes(self):
        assert Texture(np.zeros((4, 8))).nbytes() == 4 * 8 * 8


class TestRasterizeTriangle:
    def test_full_buffer_triangle_covers_half(self):
        fb = FrameBuffer(32, 32, WIN)
        verts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        uvs = np.zeros((3, 2))
        n = rasterize_triangle(fb, verts, uvs, 1.0)
        assert n == pytest.approx(32 * 32 / 2, rel=0.1)

    def test_winding_insensitive(self):
        fb1 = FrameBuffer(16, 16, WIN)
        fb2 = FrameBuffer(16, 16, WIN)
        verts = np.array([[0.1, 0.1], [0.9, 0.2], [0.4, 0.8]])
        uvs = np.zeros((3, 2))
        rasterize_triangle(fb1, verts, uvs, 1.0)
        rasterize_triangle(fb2, verts[::-1], uvs[::-1], 1.0)
        np.testing.assert_array_equal(fb1.data, fb2.data)

    def test_degenerate_zero_coverage(self):
        fb = FrameBuffer(16, 16, WIN)
        verts = np.array([[0.1, 0.1], [0.5, 0.5], [0.9, 0.9]])  # collinear
        assert rasterize_triangle(fb, verts, np.zeros((3, 2)), 1.0) == 0

    def test_offscreen_clipped(self):
        fb = FrameBuffer(16, 16, WIN)
        verts = np.array([[5.0, 5.0], [6.0, 5.0], [5.0, 6.0]])
        assert rasterize_triangle(fb, verts, np.zeros((3, 2)), 1.0) == 0

    def test_bad_exclusive_edge(self):
        fb = FrameBuffer(4, 4, WIN)
        with pytest.raises(RasterError):
            rasterize_triangle(fb, np.zeros((3, 2)), np.zeros((3, 2)), 1.0, exclusive_edge=5)


class TestRasterizeQuadsExact:
    def test_full_coverage_quad(self):
        fb = FrameBuffer(16, 16, WIN)
        n = rasterize_quads_exact(fb, unit_quad(0, 1, 0, 1), UV, np.array([2.0]))
        assert n == 256
        np.testing.assert_array_equal(fb.data, 2.0)

    def test_no_double_coverage_on_diagonal(self):
        # The quad diagonal passes exactly through pixel centres when the
        # quad is the full square of an even-sized buffer.
        fb = FrameBuffer(8, 8, WIN)
        rasterize_quads_exact(fb, unit_quad(0, 1, 0, 1), UV, np.array([1.0]))
        np.testing.assert_array_equal(fb.data, 1.0)  # each pixel exactly once

    def test_half_pixel_quad_covers_nothing_or_one(self):
        fb = FrameBuffer(8, 8, WIN)
        n = rasterize_quads_exact(fb, unit_quad(0.0, 0.05, 0.0, 0.05), UV, np.array([1.0]))
        assert n <= 1

    def test_additive_blending(self):
        fb = FrameBuffer(8, 8, WIN)
        q = np.concatenate([unit_quad(0, 1, 0, 1)] * 3)
        uv = np.concatenate([UV] * 3)
        rasterize_quads_exact(fb, q, uv, np.array([1.0, 2.0, -0.5]))
        np.testing.assert_allclose(fb.data, 2.5)

    def test_texture_mapping_gradient(self):
        # Texture = u coordinate; rendered quad must reproduce the ramp.
        ramp = np.tile(np.linspace(0, 1, 64)[None, :], (64, 1))
        tex = Texture(ramp)
        fb = FrameBuffer(32, 32, WIN)
        rasterize_quads_exact(fb, unit_quad(0, 1, 0, 1), UV, np.array([1.0]), tex)
        # Left column near 0, right column near 1, monotone along x.
        assert fb.data[:, 0].mean() < 0.1
        assert fb.data[:, -1].mean() > 0.9
        assert (np.diff(fb.data.mean(axis=0)) >= -1e-9).all()

    def test_rotated_quad_same_total_as_axis_aligned(self):
        # Conservation-ish: a rotated square deposits a similar total.
        fb1 = FrameBuffer(64, 64, (-1, 1, -1, 1))
        fb2 = FrameBuffer(64, 64, (-1, 1, -1, 1))
        sq = unit_quad(-0.4, 0.4, -0.4, 0.4)
        c, s = np.cos(0.5), np.sin(0.5)
        rot = sq.copy()
        rot[0, :, 0] = c * sq[0, :, 0] - s * sq[0, :, 1]
        rot[0, :, 1] = s * sq[0, :, 0] + c * sq[0, :, 1]
        rasterize_quads_exact(fb1, sq, UV, np.array([1.0]))
        rasterize_quads_exact(fb2, rot, UV, np.array([1.0]))
        assert fb2.total() == pytest.approx(fb1.total(), rel=0.05)

    def test_validation(self):
        fb = FrameBuffer(4, 4, WIN)
        with pytest.raises(RasterError):
            rasterize_quads_exact(fb, np.zeros((1, 3, 2)), np.zeros((1, 3, 2)), np.zeros(1))
        with pytest.raises(RasterError):
            rasterize_quads_exact(fb, unit_quad(0, 1, 0, 1), UV, np.zeros(2))
        with pytest.raises(RasterError):
            rasterize_quads_exact(fb, unit_quad(0, 1, 0, 1), np.zeros((1, 4, 3)), np.zeros(1))
