"""Tests for repro.raster.clip."""

import numpy as np
import pytest

from repro.errors import RasterError
from repro.raster.clip import clip_quads_to_rect, points_in_rect, quad_bboxes


def quads_at(centers, half=0.1):
    c = np.asarray(centers, dtype=float)
    return np.stack(
        [c + [-half, -half], c + [half, -half], c + [half, half], c + [-half, half]],
        axis=1,
    )


class TestQuadBboxes:
    def test_bbox_values(self):
        q = quads_at([[0.5, 0.5]], half=0.2)
        bb = quad_bboxes(q)
        np.testing.assert_allclose(bb, [[0.3, 0.7, 0.3, 0.7]])

    def test_bad_shape(self):
        with pytest.raises(RasterError):
            quad_bboxes(np.zeros((2, 3, 2)))


class TestClipQuads:
    def test_inside_outside_straddling(self):
        q = quads_at([[0.5, 0.5], [2.0, 2.0], [1.0, 0.5]], half=0.1)
        mask = clip_quads_to_rect(q, (0.0, 1.0, 0.0, 1.0))
        assert mask.tolist() == [True, False, True]  # third straddles x=1

    def test_degenerate_rect(self):
        with pytest.raises(RasterError):
            clip_quads_to_rect(quads_at([[0, 0]]), (1.0, 1.0, 0.0, 1.0))


class TestPointsInRect:
    def test_margin_grows_rect(self):
        pts = np.array([[1.05, 0.5]])
        assert not points_in_rect(pts, (0, 1, 0, 1), margin=0.0)[0]
        assert points_in_rect(pts, (0, 1, 0, 1), margin=0.1)[0]

    def test_negative_margin_rejected(self):
        with pytest.raises(RasterError):
            points_in_rect(np.zeros((1, 2)), (0, 1, 0, 1), margin=-0.1)

    def test_bad_points(self):
        with pytest.raises(RasterError):
            points_in_rect(np.zeros((1, 3)), (0, 1, 0, 1))
