"""Tests for repro.raster.framebuffer and blend."""

import numpy as np
import pytest

from repro.errors import RasterError
from repro.raster.blend import blend_add, blend_max, blend_over
from repro.raster.framebuffer import FrameBuffer

WIN = (0.0, 4.0, 0.0, 2.0)


class TestFrameBufferGeometry:
    def test_construction(self):
        fb = FrameBuffer(8, 4, WIN)
        assert fb.data.shape == (4, 8)
        assert fb.pixel_size == (0.5, 0.5)

    def test_validation(self):
        with pytest.raises(RasterError):
            FrameBuffer(0, 4, WIN)
        with pytest.raises(RasterError):
            FrameBuffer(4, 4, (0, 0, 0, 1))

    def test_world_to_pixel_corners(self):
        fb = FrameBuffer(8, 4, WIN)
        pp = fb.world_to_pixel(np.array([[0.0, 0.0], [4.0, 2.0]]))
        np.testing.assert_allclose(pp, [[0.0, 0.0], [8.0, 4.0]])

    def test_pixel_roundtrip(self):
        fb = FrameBuffer(8, 4, WIN)
        pts = np.array([[1.3, 0.7], [3.9, 1.99]])
        pp = fb.world_to_pixel(pts)
        back = fb.pixel_to_world(pp[:, 0], pp[:, 1])
        np.testing.assert_allclose(back, pts, atol=1e-12)

    def test_pixel_centers_shape_and_range(self):
        fb = FrameBuffer(8, 4, WIN)
        X, Y = fb.pixel_centers()
        assert X.shape == (4, 8)
        assert X[0, 0] == pytest.approx(0.25)
        assert Y[-1, -1] == pytest.approx(1.75)


class TestRectOps:
    def test_view_write_through(self):
        fb = FrameBuffer(8, 4, WIN)
        fb.view((2, 4, 1, 3))[...] = 5.0
        assert fb.data[1:3, 2:4].sum() == 20.0
        assert fb.total() == 20.0

    def test_clip_rect(self):
        fb = FrameBuffer(8, 4, WIN)
        assert fb.clip_rect((-5, 100, -5, 100)) == (0, 8, 0, 4)

    def test_paste_from(self):
        a = FrameBuffer(8, 4, WIN)
        b = FrameBuffer(4, 2, (0, 2, 0, 1))
        b.data[...] = 3.0
        a.paste_from(b, (0, 4, 0, 2), (0, 4, 0, 2))
        assert a.data[:2, :4].sum() == 24.0
        assert a.data[2:, :].sum() == 0.0

    def test_add_from_accumulates(self):
        a = FrameBuffer(4, 4, (0, 1, 0, 1))
        b = FrameBuffer(4, 4, (0, 1, 0, 1))
        b.data[...] = 1.0
        a.add_from(b, (0, 4, 0, 4), (0, 4, 0, 4))
        a.add_from(b, (0, 4, 0, 4), (0, 4, 0, 4))
        np.testing.assert_array_equal(a.data, 2.0)

    def test_paste_shape_mismatch(self):
        a = FrameBuffer(8, 4, WIN)
        b = FrameBuffer(4, 2, (0, 2, 0, 1))
        with pytest.raises(RasterError):
            a.paste_from(b, (0, 3, 0, 2), (0, 4, 0, 2))

    def test_copy_independent(self):
        a = FrameBuffer(4, 4, (0, 1, 0, 1))
        c = a.copy()
        c.data[...] = 9.0
        assert a.total() == 0.0

    def test_clear(self):
        a = FrameBuffer(4, 4, (0, 1, 0, 1))
        a.data[...] = 1.0
        a.clear()
        assert a.total() == 0.0


class TestBlend:
    def test_add(self):
        np.testing.assert_array_equal(blend_add(np.ones(4), 2 * np.ones(4)), 3 * np.ones(4))

    def test_max(self):
        np.testing.assert_array_equal(
            blend_max(np.array([1.0, 5.0]), np.array([3.0, 2.0])), [3.0, 5.0]
        )

    def test_over_alpha_zero_keeps_dst(self):
        dst = np.array([1.0, 2.0])
        out = blend_over(dst, np.array([9.0, 9.0]), np.array([0.0, 0.0]))
        np.testing.assert_array_equal(out, dst)

    def test_over_alpha_one_takes_src(self):
        out = blend_over(np.zeros(2), np.array([9.0, 8.0]), np.array([1.0, 1.0]))
        np.testing.assert_array_equal(out, [9.0, 8.0])

    def test_over_alpha_validation(self):
        with pytest.raises(RasterError):
            blend_over(np.zeros(2), np.zeros(2), np.array([1.5, 0.0]))

    def test_shape_mismatch(self):
        with pytest.raises(RasterError):
            blend_add(np.zeros(2), np.zeros(3))

    def test_add_commutative_associative(self):
        rng = np.random.default_rng(0)
        a, b, c = rng.normal(size=(3, 8, 8))
        np.testing.assert_allclose(blend_add(a, b), blend_add(b, a))
        np.testing.assert_allclose(
            blend_add(blend_add(a, b), c), blend_add(a, blend_add(b, c)), atol=1e-12
        )
