"""Simulator-vs-implementation agreement on countable work.

The machine model charges time per unit of work; the real runtime counts
the work it performs.  The two must agree on those counts — vertices,
quads, bus bytes — otherwise the model is predicting a different
algorithm than the one implemented.
"""

import pytest

from repro.advection.particles import ParticleSet
from repro.core.config import BentConfig, SpotNoiseConfig
from repro.core.synthesizer import workload_from_config
from repro.fields.analytic import random_smooth_field
from repro.glsim.commands import BYTES_PER_FLOAT, FLOATS_PER_VERTEX
from repro.parallel.runtime import DivideAndConquerRuntime

FIELD = random_smooth_field(seed=0, n=33)


def run(config):
    ps = ParticleSet.uniform_random(config.n_spots, FIELD.grid.bounds, seed=1)
    with DivideAndConquerRuntime(config) as rt:
        _, report = rt.synthesize(FIELD, ps)
    return report


class TestWorkCounts:
    def test_standard_spot_counts(self):
        cfg = SpotNoiseConfig(n_spots=150, texture_size=64, spot_mode="standard", seed=1)
        report = run(cfg)
        workload = workload_from_config(cfg, FIELD)
        assert report.counters.quads_drawn == workload.total_quads == 150
        assert report.counters.vertices_in == workload.total_vertices == 600

    def test_bent_spot_counts(self):
        bent = BentConfig(n_along=6, n_across=3, length_cells=2.0, width_cells=0.8)
        cfg = SpotNoiseConfig(
            n_spots=40, texture_size=64, spot_mode="bent", bent=bent, seed=1
        )
        report = run(cfg)
        workload = workload_from_config(cfg, FIELD)
        assert report.counters.quads_drawn == workload.total_quads == 40 * 10
        # The pipe sees 4 corner vertices per independent quad while the
        # workload counts unique mesh vertices; both derive from the same
        # spot count.
        assert workload.total_vertices == 40 * 18

    def test_bus_bytes_match_wire_format(self):
        cfg = SpotNoiseConfig(n_spots=100, texture_size=64, spot_mode="standard", seed=1)
        report = run(cfg)
        # DrawQuads wire bytes: per quad 4 verts * 4 floats * 4 bytes + 4.
        expected_geometry = 100 * (4 * FLOATS_PER_VERTEX * BYTES_PER_FLOAT + BYTES_PER_FLOAT)
        # Plus the one-time spot-profile texture upload (32x32 float64).
        texture_upload = cfg.profile_resolution**2 * 8
        assert report.counters.bytes_received >= expected_geometry + texture_upload
        # Remaining overhead (command headers) stays tiny.
        assert report.counters.bytes_received < expected_geometry + texture_upload + 256

    def test_duplication_counted_in_groups(self):
        cfg = SpotNoiseConfig(
            n_spots=400,
            texture_size=64,
            spot_mode="standard",
            n_groups=4,
            partition="spatial",
            guard_px=16,
            seed=1,
        )
        report = run(cfg)
        assert report.total_spots_rendered >= 400
        assert report.duplication == pytest.approx(report.total_spots_rendered / 400)

    def test_model_duplication_comparable_to_real(self):
        """The DES's analytic duplication estimate matches the measured one."""
        from repro.machine.schedule import _tile_duplication
        from repro.machine.workload import SpotWorkload

        cfg = SpotNoiseConfig(
            n_spots=2000,
            texture_size=128,
            spot_mode="standard",
            n_groups=4,
            partition="spatial",
            guard_px=12,
            seed=2,
        )
        report = run(cfg)
        workload = SpotWorkload.standard_spots(2000, pixels_per_spot=30.0, texture_size=128)
        modelled = 1.0 + _tile_duplication(workload, 4)
        # Same order of magnitude; both small (a few percent to ~30%).
        assert 1.0 <= report.duplication < 1.6
        assert 1.0 <= modelled < 1.6
