"""Animation quality: advected spots keep consecutive frames coherent.

Section 2's animation mechanism relies on frame-to-frame coherence: each
frame advects the *same* particles a small distance, so the texture
moves smoothly instead of flickering.  The temporal-coherence metric
quantifies it, and distinguishes the paper's mechanism from naive
re-randomisation.
"""

import pytest

from repro.advection.lifecycle import LifeCyclePolicy
from repro.core.config import SpotNoiseConfig
from repro.core.pipeline import SpotNoisePipeline
from repro.fields.analytic import vortex_field
from repro.viz.quality import temporal_coherence

FIELD = vortex_field(n=33)
CFG = SpotNoiseConfig(n_spots=800, texture_size=96, spot_mode="standard", seed=8)


def frame_textures(policy, n_frames=5):
    with SpotNoisePipeline(CFG, FIELD, policy=policy) as pipe:
        return [pipe.step().texture for _ in range(n_frames)]


class TestTemporalCoherence:
    def test_advected_frames_highly_coherent(self):
        frames = frame_textures(LifeCyclePolicy(position_mode="advect"))
        assert temporal_coherence(frames) > 0.7

    def test_rerandomized_frames_incoherent(self):
        frames = frame_textures(LifeCyclePolicy(position_mode="rerandomize"))
        assert abs(temporal_coherence(frames)) < 0.2

    def test_static_frames_perfectly_coherent(self):
        frames = frame_textures(LifeCyclePolicy.default_spot_noise(), n_frames=3)
        assert temporal_coherence(frames) == pytest.approx(1.0, abs=1e-12)

    def test_advected_beats_rerandomized(self):
        adv = temporal_coherence(frame_textures(LifeCyclePolicy(position_mode="advect")))
        rnd = temporal_coherence(
            frame_textures(LifeCyclePolicy(position_mode="rerandomize"))
        )
        assert adv > rnd + 0.5

    def test_needs_two_frames(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            temporal_coherence([FIELD.u])
