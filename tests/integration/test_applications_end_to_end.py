"""Full application pipelines: simulate -> visualise -> compose, both apps."""

import numpy as np
import pytest

from repro.apps.dns.browser import DataBrowser, VisualizationMapping
from repro.apps.dns.solver import DNSConfig, DNSSolver
from repro.apps.dns.store import ChunkedFieldStore
from repro.apps.smog.geography import land_mask_raster
from repro.apps.smog.steering import SteeredSmogApplication
from repro.core.animation import AnimationLoop
from repro.core.config import BentConfig, SpotNoiseConfig
from repro.core.pipeline import SpotNoisePipeline
from repro.fields.grid import RectilinearGrid
from repro.viz.colormap import diverging, rainbow

SMALL_BENT = BentConfig(n_along=6, n_across=3, length_cells=2.5, width_cells=0.8)


class TestSmogEndToEnd:
    def test_figure6_style_animation(self):
        app = SteeredSmogApplication(nx=24, ny=26, n_sources=3, seed=2)
        wind, _ = app.advance()
        cfg = SpotNoiseConfig(
            n_spots=300, texture_size=64, spot_mode="bent", bent=SMALL_BENT, seed=1
        )
        mask = land_mask_raster(app.land, app.grid, 64)
        with SpotNoisePipeline(cfg, wind) as pipe:
            loop = AnimationLoop(pipe, app.frame_source, colormap=rainbow(), mask=mask)
            stats = loop.run(3)
        assert stats.n_frames == 3
        frame = loop.frames[-1]
        assert frame.image is not None and frame.image.shape == (64, 64, 3)
        # The pollutant overlay must tint some pixels away from grayscale.
        r, g, b = frame.image[..., 0], frame.image[..., 1], frame.image[..., 2]
        assert (np.abs(r - g) + np.abs(g - b)).max() > 0.05

    def test_steering_mid_animation(self):
        app = SteeredSmogApplication(nx=24, ny=26, n_sources=3, seed=2)
        wind, _ = app.advance()
        cfg = SpotNoiseConfig(n_spots=200, texture_size=48, spot_mode="standard", seed=1)
        with SpotNoisePipeline(cfg, wind) as pipe:
            loop = AnimationLoop(pipe, app.frame_source, colormap=rainbow())
            loop.run(1)
            app.steer("emission_scale", 8.0)
            loop.run(2)
        assert app.emissions.scale == 8.0
        assert len(loop.frames) == 3


class TestDNSEndToEnd:
    @pytest.fixture(scope="class")
    def database(self, tmp_path_factory):
        """A small computed DNS database (the §5.2 substrate, downscaled)."""
        solver = DNSSolver(DNSConfig(nx=64, ny=48, reynolds=120))
        solver.advance_to(0.4)
        grid = RectilinearGrid(solver.grid.x_coords(), solver.grid.y_coords())
        store = ChunkedFieldStore.create(
            tmp_path_factory.mktemp("dns") / "db", grid, frames_per_chunk=4
        )
        for _ in range(10):
            solver.advance_to(solver.time + 0.05)
            store.append(solver.field(), time=solver.time)
        store.flush()
        return store

    def test_browse_and_visualise(self, database):
        browser = DataBrowser(database, VisualizationMapping(scalar="vorticity"))
        field, scalar = browser.current()
        cfg = SpotNoiseConfig(
            n_spots=400, texture_size=64, spot_mode="bent", bent=SMALL_BENT, seed=9
        )
        with SpotNoisePipeline(cfg, field) as pipe:
            frame = pipe.step(scalar=scalar, colormap=diverging())
        assert frame.image is not None

    def test_play_any_part_of_database(self, database):
        browser = DataBrowser(database, VisualizationMapping(scalar=None))
        browser.seek(7)
        field = database.read(7)
        cfg = SpotNoiseConfig(n_spots=200, texture_size=48, spot_mode="standard", seed=9)
        with SpotNoisePipeline(cfg, field) as pipe:
            loop = AnimationLoop(pipe, browser.frame_source)
            stats = loop.run(4)  # wraps over the end of the database
        assert stats.n_frames == 4

    def test_wake_is_unsteady(self, database):
        # Consecutive stored slices differ: the wake is time dependent.
        a = database.read(0).data
        b = database.read(9).data
        assert not np.allclose(a, b, atol=1e-3)
