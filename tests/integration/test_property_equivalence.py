"""Property-based check of the central decomposition invariant.

Hypothesis draws random synthesis configurations (group counts,
partition strategies, spot modes, profiles, seeds); for every draw the
divide-and-conquer result must match the sequential reference.  This is
the paper's section-3 argument — spots are independent, blending is an
associative commutative sum — tested over the configuration space rather
than at hand-picked points.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.advection.particles import ParticleSet
from repro.core.config import BentConfig, SpotNoiseConfig
from repro.fields.analytic import random_smooth_field
from repro.parallel.runtime import DivideAndConquerRuntime

FIELD = random_smooth_field(seed=99, n=33)


def render(config, particles):
    with DivideAndConquerRuntime(config) as rt:
        texture, _ = rt.synthesize(FIELD, particles)
    return texture


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_groups=st.integers(2, 6),
    partition=st.sampled_from(["round_robin", "block", "spatial"]),
    profile=st.sampled_from(["disk", "gaussian", "cone", "dog"]),
    anisotropy=st.floats(0.0, 2.0),
    seed=st.integers(0, 2**16),
    n_spots=st.integers(20, 200),
)
def test_divide_and_conquer_equals_sequential(
    n_groups, partition, profile, anisotropy, seed, n_spots
):
    config = SpotNoiseConfig(
        n_spots=n_spots,
        texture_size=48,
        spot_mode="standard",
        profile=profile,
        anisotropy=anisotropy,
        seed=seed,
        guard_px=16,
    )
    particles = ParticleSet.uniform_random(n_spots, FIELD.grid.bounds, seed=seed)
    reference = render(config, particles.copy())
    parallel = render(
        config.with_overrides(n_groups=n_groups, partition=partition),
        particles.copy(),
    )
    np.testing.assert_allclose(parallel, reference, atol=1e-9)


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n_groups=st.integers(2, 4),
    n_along=st.integers(3, 8),
    n_across=st.integers(2, 4),
    seed=st.integers(0, 2**16),
)
def test_bent_spot_decomposition_equivalence(n_groups, n_along, n_across, seed):
    config = SpotNoiseConfig(
        n_spots=40,
        texture_size=48,
        spot_mode="bent",
        bent=BentConfig(
            n_along=n_along, n_across=n_across, length_cells=2.0, width_cells=0.8
        ),
        seed=seed,
        guard_px=20,
    )
    particles = ParticleSet.uniform_random(40, FIELD.grid.bounds, seed=seed)
    reference = render(config, particles.copy())
    parallel = render(
        config.with_overrides(n_groups=n_groups, partition="spatial"), particles.copy()
    )
    np.testing.assert_allclose(parallel, reference, atol=1e-9)
