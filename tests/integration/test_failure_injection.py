"""Failure injection: the library must fail loudly and legibly.

Corrupted stores, dying workers, invalid field data — each must surface
as the library's own exception with an actionable message, not a numpy
stack trace three layers deep.
"""

import os

import numpy as np
import pytest

from repro.advection.particles import ParticleSet
from repro.apps.dns.store import ChunkedFieldStore
from repro.core.config import SpotNoiseConfig
from repro.errors import BackendError, FieldError, StoreError
from repro.fields.analytic import vortex_field
from repro.fields.grid import RectilinearGrid
from repro.fields.vectorfield import VectorField2D
from repro.parallel.backends import ProcessBackend, SerialBackend
from repro.parallel.groups import GroupTask
from repro.parallel.runtime import DivideAndConquerRuntime

FIELD = vortex_field(n=17)


class TestStoreCorruption:
    def _store_with_frames(self, tmp_path, n=4):
        grid = RectilinearGrid(np.linspace(0, 1, 6), np.linspace(0, 1, 5))
        store = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=2)
        for i in range(n):
            store.append(VectorField2D(grid, np.zeros((*grid.shape, 2))), time=float(i))
        store.flush()
        return store

    def test_missing_chunk_file_reported(self, tmp_path):
        store = self._store_with_frames(tmp_path)
        os.remove(store._chunk_path(1))
        with pytest.raises(StoreError, match="missing chunk"):
            store.read(3)

    def test_unflushed_store_reopened_reports_missing_frames(self, tmp_path):
        grid = RectilinearGrid(np.linspace(0, 1, 6), np.linspace(0, 1, 5))
        store = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=4)
        store.append(VectorField2D(grid, np.zeros((*grid.shape, 2))))
        # No flush: a reopened store sees the frame in meta but no chunk.
        reopened = ChunkedFieldStore(tmp_path / "db")
        with pytest.raises(StoreError, match="missing chunk"):
            reopened.read(0)

    def test_garbage_meta_rejected(self, tmp_path):
        d = tmp_path / "db"
        os.makedirs(d)
        (d / "meta.json").write_text('{"format_version": 99}')
        with pytest.raises(StoreError, match="format"):
            ChunkedFieldStore(d)


class TestWorkerFailure:
    def _bad_task(self):
        # NaN positions make VectorField sampling produce garbage spot
        # geometry; the field constructor rejects non-finite *field* data,
        # and the rasteriser rejects the resulting degenerate quads — but
        # the earliest guard is the particle set itself here: we build a
        # task whose field data is corrupted after construction.
        cfg = SpotNoiseConfig(n_spots=4, texture_size=16, spot_mode="standard")
        field = vortex_field(n=9)
        field.data[0, 0] = np.nan  # corrupt in place, bypassing validation
        return GroupTask(
            group_index=0,
            positions=np.zeros((4, 2)),
            intensities=np.ones(4),
            field=field,
            config=cfg,
            fb_size=(16, 16),
            fb_window=field.grid.bounds,
        )

    def test_process_backend_wraps_worker_exception(self):
        backend = ProcessBackend(max_workers=1)
        try:
            with pytest.raises(BackendError, match="process backend failed"):
                # Non-picklable payload or failing worker — inject by
                # killing pickling: a lambda inside the task config.
                task = self._bad_task()
                object.__setattr__(task.config, "seed", lambda: None)  # unpicklable
                backend.run([task])
        finally:
            backend.close()

    def test_serial_backend_propagates_original_error(self):
        # The serial backend does not wrap: the original error surfaces
        # so debugging stays direct.
        from repro.errors import SpotError

        task = self._bad_task()
        object.__setattr__(task.config, "profile", "bogus")
        with pytest.raises(SpotError, match="unknown spot profile"):
            SerialBackend().run([task])

    def test_nan_positions_degrade_gracefully(self):
        # Silently corrupted particle positions must not crash the
        # renderer: the splat path drops non-finite samples.
        task = self._bad_task()
        task.positions[:] = np.nan
        task.field.data[0, 0] = 0.0  # restore the field; corrupt only spots
        result = SerialBackend().run([task])[0]
        assert np.isfinite(result.texture).all() or True  # no exception raised


class TestInvalidFieldData:
    def test_nonfinite_field_rejected_at_construction(self):
        data = np.zeros((5, 5, 2))
        data[2, 2, 0] = np.inf
        from repro.fields.grid import RegularGrid

        with pytest.raises(FieldError, match="non-finite"):
            VectorField2D(RegularGrid(5, 5), data)

    def test_runtime_survives_empty_particles(self):
        cfg = SpotNoiseConfig(n_spots=1, texture_size=16, spot_mode="standard")
        ps = ParticleSet(np.zeros((0, 2)), np.zeros(0))
        with DivideAndConquerRuntime(cfg) as rt:
            texture, report = rt.synthesize(FIELD, ps)
        assert texture.shape == (16, 16)
        assert texture.sum() == 0.0
