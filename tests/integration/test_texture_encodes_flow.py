"""End-to-end: the synthesised texture must actually encode the flow.

This is the scientific claim of spot noise (section 2): spot shape
controls texture characteristics, so deforming spots by the data makes
the texture show the data.  We verify it quantitatively through the
spectral anisotropy estimator instead of by eye.
"""

import numpy as np
import pytest

from repro.core.config import BentConfig, SpotNoiseConfig
from repro.core.synthesizer import SpotNoiseSynthesizer
from repro.fields.analytic import constant_field
from repro.viz.stats import anisotropy_direction


def synth_texture(field, config):
    with SpotNoiseSynthesizer(config) as s:
        return s.synthesize(field).texture


class TestStandardSpotsEncodeDirection:
    @pytest.mark.parametrize(
        "u,v",
        [(1.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, -1.0), (2.0, 1.0)],
    )
    def test_uniform_flow_direction_recovered(self, u, v):
        field = constant_field(u, v, n=17)
        cfg = SpotNoiseConfig(
            n_spots=2500, texture_size=128, spot_mode="standard", anisotropy=2.0, seed=11
        )
        angle, strength = anisotropy_direction(synth_texture(field, cfg))
        expected = np.arctan2(v, u)
        # Texture anisotropy is direction modulo pi.
        diff = abs((angle - expected + np.pi / 2) % np.pi - np.pi / 2)
        assert diff < np.deg2rad(8), f"angle {np.degrees(angle):.1f} vs {np.degrees(expected):.1f}"
        assert strength > 0.5

    def test_isotropic_without_anisotropy(self):
        field = constant_field(1.0, 0.0, n=17)
        cfg = SpotNoiseConfig(
            n_spots=2500, texture_size=128, spot_mode="standard", anisotropy=0.0, seed=11
        )
        _, strength = anisotropy_direction(synth_texture(field, cfg))
        assert strength < 0.25

    def test_stronger_anisotropy_stronger_signal(self):
        field = constant_field(1.0, 0.0, n=17)
        base = SpotNoiseConfig(n_spots=2000, texture_size=128, spot_mode="standard", seed=3)
        _, weak = anisotropy_direction(
            synth_texture(field, base.with_overrides(anisotropy=0.5))
        )
        _, strong = anisotropy_direction(
            synth_texture(field, base.with_overrides(anisotropy=2.5))
        )
        assert strong > weak


class TestBentSpotsEncodeDirection:
    def test_uniform_flow_direction_recovered(self):
        field = constant_field(1.0, 1.0, n=17)
        cfg = SpotNoiseConfig(
            n_spots=800,
            texture_size=128,
            spot_mode="bent",
            bent=BentConfig(n_along=8, n_across=3, length_cells=3.0, width_cells=0.8),
            seed=13,
        )
        angle, strength = anisotropy_direction(synth_texture(field, cfg))
        assert abs(angle - np.pi / 4) < np.deg2rad(8)
        assert strength > 0.5


class TestZeroMeanTexture:
    def test_texture_mean_near_zero(self):
        field = constant_field(1.0, 0.0, n=17)
        cfg = SpotNoiseConfig(n_spots=3000, texture_size=128, spot_mode="standard", seed=5)
        tex = synth_texture(field, cfg)
        # Signed spot weights are ±1 and zero mean; the pixel mean must be
        # small relative to the pixel std.
        assert abs(tex.mean()) < 0.2 * tex.std()
