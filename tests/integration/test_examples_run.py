"""The fast examples must actually run — they are part of the public API."""

import os
import subprocess
import sys

import pytest

HERE = os.path.dirname(os.path.abspath(__file__))
EXAMPLES = os.path.abspath(os.path.join(HERE, "..", "..", "examples"))


def run_example(name, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize(
    "script,expected",
    [
        ("quickstart.py", "quickstart_vortex.pgm"),
        ("separation_study.py", "separation band"),
        ("performance_prediction.py", "16 processors"),
        ("serve_trace.py", "speedup"),
        ("animate_stream.py", "bit-identical to one-shot render: yes"),
    ],
)
def test_fast_example_runs(script, expected):
    result = run_example(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout
