"""Section 2's core claim, spectrally: the spot controls the texture.

"The use of a spot as a basis texture synthesis has a number of
convenient, user controllable, properties.  First, the shape of the spot
determines the characteristics of the texture."  We verify the spectral
side of that statement with the radial power spectrum: bigger spots move
the roll-off to lower frequencies, and the DoG (filtered) spot removes
the low band entirely.
"""


from repro.advection.particles import ParticleSet
from repro.core.config import SpotNoiseConfig
from repro.fields.analytic import constant_field
from repro.parallel.runtime import DivideAndConquerRuntime
from repro.viz.quality import radial_power_spectrum

FIELD = constant_field(0.0, 0.0, n=17)


def texture_for(radius_cells, profile="gaussian", n_spots=2500):
    cfg = SpotNoiseConfig(
        n_spots=n_spots,
        texture_size=128,
        spot_mode="standard",
        spot_radius_cells=radius_cells,
        profile=profile,
        anisotropy=0.0,
        seed=31,
    )
    ps = ParticleSet.uniform_random(cfg.n_spots, FIELD.grid.bounds, seed=31)
    with DivideAndConquerRuntime(cfg) as rt:
        tex, _ = rt.synthesize(FIELD, ps)
    return tex


def spectral_centroid(texture):
    k, p = radial_power_spectrum(texture, n_bins=32)
    return float((k * p).sum() / p.sum())


class TestSpotSizeControlsSpectrum:
    def test_bigger_spots_lower_frequencies(self):
        centroids = [spectral_centroid(texture_for(r)) for r in (0.4, 0.8, 1.6)]
        assert centroids[0] > centroids[1] > centroids[2]

    def test_dog_spot_suppresses_low_band(self):
        k, p_gauss = radial_power_spectrum(texture_for(1.0, "gaussian"))
        _, p_dog = radial_power_spectrum(texture_for(1.0, "dog"))
        low = k < 0.04
        low_share_gauss = p_gauss[low].sum() / p_gauss.sum()
        low_share_dog = p_dog[low].sum() / p_dog.sum()
        assert low_share_dog < 0.5 * low_share_gauss

    def test_spot_count_does_not_move_the_spectrum(self):
        # More spots change amplitude, not spectral shape: the centroid is
        # a property of the spot, not of the population size.
        a = spectral_centroid(texture_for(0.8, n_spots=1000))
        b = spectral_centroid(texture_for(0.8, n_spots=4000))
        assert abs(a - b) < 0.03
