"""PlanSupervisor: cadence, counters, and failure isolation."""

import threading
import time

import pytest

from repro.errors import ServiceError
from repro.runtime.loop import RuntimeLoop
from repro.runtime.supervisor import PlanSupervisor


@pytest.fixture
def rt():
    with RuntimeLoop(name="rt-supervisor-test") as runtime:
        yield runtime


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestConstruction:
    def test_interval_must_be_positive(self):
        with pytest.raises(ServiceError, match="interval_s"):
            PlanSupervisor(interval_s=0.0)


class TestCadence:
    def test_watched_check_fires_repeatedly(self, rt):
        calls = []
        with PlanSupervisor(interval_s=0.02, runtime=rt) as sup:
            sup.watch("svc", lambda: calls.append(1))
            assert wait_until(lambda: len(calls) >= 3)
        assert sup.checks >= 3

    def test_truthy_check_counts_as_replan(self, rt):
        with PlanSupervisor(interval_s=0.02, runtime=rt) as sup:
            sup.watch("drifty", lambda: True)
            assert wait_until(lambda: sup.replans >= 2)
            assert sup.replans <= sup.checks

    def test_falsy_check_does_not_count_as_replan(self, rt):
        with PlanSupervisor(interval_s=0.02, runtime=rt) as sup:
            sup.watch("steady", lambda: False)
            assert wait_until(lambda: sup.checks >= 3)
            assert sup.replans == 0

    def test_check_runs_off_the_loop_thread(self, rt):
        # Re-plan checks take service locks and build runtimes; they
        # must never run on (and stall) the event loop itself.
        threads = []
        with PlanSupervisor(interval_s=0.02, runtime=rt) as sup:
            sup.watch("probe", lambda: threads.append(threading.current_thread().name))
            assert wait_until(lambda: len(threads) >= 1)
        assert all(name != "rt-supervisor-test" for name in threads)


class TestFailureIsolation:
    def test_raising_check_counts_error_and_supervision_continues(self, rt):
        healthy = []

        def broken():
            raise RuntimeError("check exploded")

        with PlanSupervisor(interval_s=0.02, runtime=rt) as sup:
            sup.watch("broken", broken)
            sup.watch("healthy", lambda: healthy.append(1))
            assert wait_until(lambda: sup.errors >= 2 and len(healthy) >= 2)
        assert sup.errors >= 2
        assert len(healthy) >= 2


class TestRegistration:
    def test_watched_lists_registrations(self, rt):
        with PlanSupervisor(interval_s=5.0, runtime=rt) as sup:
            sup.watch("b", lambda: False)
            sup.watch("a", lambda: False)
            assert sup.watched() == ["a", "b"]
            sup.unwatch("b")
            assert sup.watched() == ["a"]
            sup.unwatch("missing")  # unknown names are a no-op

    def test_rewatching_same_name_replaces_the_check(self, rt):
        old, new = [], []
        with PlanSupervisor(interval_s=0.02, runtime=rt) as sup:
            sup.watch("svc", lambda: old.append(1))
            assert wait_until(lambda: len(old) >= 1)
            sup.watch("svc", lambda: new.append(1))
            baseline = len(old)
            assert wait_until(lambda: len(new) >= 2)
            assert len(old) <= baseline + 1  # at most one in-flight straggler


class TestLifecycle:
    def test_stop_halts_the_cadence(self, rt):
        calls = []
        sup = PlanSupervisor(interval_s=0.02, runtime=rt)
        sup.watch("svc", lambda: calls.append(1))
        assert wait_until(lambda: len(calls) >= 1)
        sup.stop()
        settled = len(calls)
        time.sleep(0.1)
        assert len(calls) <= settled + 1  # at most one in-flight straggler

    def test_start_after_stop_resumes_with_registrations_intact(self, rt):
        calls = []
        sup = PlanSupervisor(interval_s=0.02, runtime=rt)
        sup.watch("svc", lambda: calls.append(1))
        sup.stop()
        mark = len(calls)
        sup.start()
        assert wait_until(lambda: len(calls) >= mark + 2)
        sup.close()
