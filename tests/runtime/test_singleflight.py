"""AsyncSingleFlight: coalescing, waiter accounting, settle ordering."""

import asyncio

import pytest

from repro.errors import ServiceError
from repro.runtime.singleflight import AsyncSingleFlight


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_runs_share_one_supplier_call(self):
        async def main():
            flights = AsyncSingleFlight()
            calls = []

            async def supplier():
                calls.append(1)
                await asyncio.sleep(0.01)
                return "payload"

            results = await asyncio.gather(
                *(flights.run("k", supplier) for _ in range(5))
            )
            return flights, calls, results

        flights, calls, results = run(main())
        assert calls == [1]
        assert results == ["payload"] * 5
        assert flights.dispatched == 1
        assert flights.coalesced == 4

    def test_distinct_keys_dispatch_independently(self):
        async def main():
            flights = AsyncSingleFlight()

            async def supplier(key):
                return key.upper()

            a, b = await asyncio.gather(
                flights.run("a", lambda: supplier("a")),
                flights.run("b", lambda: supplier("b")),
            )
            return flights, a, b

        flights, a, b = run(main())
        assert (a, b) == ("A", "B")
        assert flights.dispatched == 2
        assert flights.coalesced == 0

    def test_sequential_same_key_runs_again(self):
        async def main():
            flights = AsyncSingleFlight()
            calls = []

            async def supplier():
                calls.append(1)
                return len(calls)

            first = await flights.run("k", supplier)
            second = await flights.run("k", supplier)
            return flights, first, second

        flights, first, second = run(main())
        assert (first, second) == (1, 2)
        assert flights.dispatched == 2


class TestFlightMap:
    def test_begin_duplicate_key_raises(self):
        async def main():
            flights = AsyncSingleFlight()
            flights.begin("deadbeefdeadbeef")
            with pytest.raises(ServiceError, match="already in flight"):
                flights.begin("deadbeefdeadbeef")

        run(main())

    def test_settle_retires_before_resolving(self):
        # A waiter woken by settle must observe the flight gone from
        # the map, so a same-key request it issues starts fresh.
        async def main():
            flights = AsyncSingleFlight()
            flight = flights.begin("k")
            seen = []

            async def waiter():
                await flights.wait(flight)
                seen.append(len(flights))

            task = asyncio.ensure_future(waiter())
            await asyncio.sleep(0)
            flights.settle(flight, "done")
            await task
            return seen

        assert run(main()) == [0]

    def test_error_settle_raises_in_every_waiter(self):
        async def main():
            flights = AsyncSingleFlight()

            async def supplier():
                await asyncio.sleep(0.01)
                raise RuntimeError("render failed")

            results = await asyncio.gather(
                *(flights.run("k", supplier) for _ in range(3)),
                return_exceptions=True,
            )
            return flights, results

        flights, results = run(main())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert len(flights) == 0


class TestWaiterAccounting:
    def test_join_and_detach_track_live_waiters(self):
        async def main():
            flights = AsyncSingleFlight()
            flight = flights.begin("k")
            assert flight.waiters == 1
            flights.join(flight)
            flights.join(flight)
            assert flight.waiters == 3
            flights.detach(flight)
            assert flight.waiters == 2
            flights.detach(flight)
            flights.detach(flight)
            flights.detach(flight)  # never goes negative
            assert flight.waiters == 0

        run(main())

    def test_wait_timeout_detaches_the_waiter(self):
        # Mirror of RenderTicket.wait's detach-on-timeout fix: a waiter
        # that gives up must not count as live forever.
        async def main():
            flights = AsyncSingleFlight()
            flight = flights.begin("k")
            flights.join(flight)
            assert flight.waiters == 2
            with pytest.raises(asyncio.TimeoutError):
                await flights.wait(flight, timeout=0.01)
            assert flight.waiters == 1
            flights.settle(flight, "late")
            return flight

        run(main())

    def test_cancelled_waiter_detaches_without_killing_the_flight(self):
        async def main():
            flights = AsyncSingleFlight()
            flight = flights.begin("k")
            flights.join(flight)

            async def waiter():
                return await flights.wait(flight)

            task = asyncio.ensure_future(waiter())
            await asyncio.sleep(0)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # The shield kept the shared future alive for the creator.
            assert flight.waiters == 1
            assert not flight.future.cancelled()
            flights.settle(flight, "survived")
            return await flights.wait(flight)

        assert run(main()) == "survived"

    def test_timed_out_waiter_still_left_result_for_others(self):
        async def main():
            flights = AsyncSingleFlight()

            async def slow():
                await asyncio.sleep(0.05)
                return "eventually"

            async def impatient():
                existing = flights.get("k")
                flights.join(existing)
                try:
                    await flights.wait(existing, timeout=0.001)
                except asyncio.TimeoutError:
                    return "gave up"

            patient = asyncio.ensure_future(flights.run("k", slow))
            await asyncio.sleep(0)
            gave_up = await impatient()
            return gave_up, await patient

        assert run(main()) == ("gave up", "eventually")
