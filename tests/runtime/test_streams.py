"""FrameStream and BoundedFrameChannel: the streaming spine primitives."""

import asyncio

import pytest

from repro.errors import ServiceError
from repro.runtime.streams import BoundedFrameChannel, ChannelClosed, FrameStream


def run(coro):
    return asyncio.run(coro)


class TestFrameStreamWalk:
    def test_claim_publish_walks_the_range(self):
        stream = FrameStream("seq", first=0, target=3, buffer_limit=8)
        walked = []
        while (frame := stream.next_frame()) is not None:
            stream.publish(frame, f"payload-{frame}")
            walked.append(frame)
        assert walked == [0, 1, 2]
        assert stream.done
        assert stream.position == 3

    def test_publish_evicts_oldest_past_buffer_limit(self):
        stream = FrameStream("seq", first=0, target=10, buffer_limit=2)
        for frame in range(4):
            stream.publish(frame, frame * 10)
        assert list(stream.frames) == [2, 3]

    def test_curtail_stops_the_claim_and_reports_old_target(self):
        stream = FrameStream("seq", first=0, target=10, buffer_limit=8)
        stream.publish(0, "a")
        assert stream.curtail() == 10
        assert stream.target == stream.position == 1
        assert stream.next_frame() is None
        assert stream.done
        # A finished stream has no unserved remainder: curtail reports 0
        # so the registry's curtail-and-union never folds a dead walk's
        # historical target into its replacement.
        assert stream.curtail() == 0


class TestFrameStreamJoin:
    def test_join_extends_target(self):
        stream = FrameStream("seq", first=0, target=4, buffer_limit=8)
        assert stream.try_join(2, 9)
        assert stream.target == 9
        assert stream.joiners == 1

    def test_join_refused_once_start_passed_and_evicted(self):
        stream = FrameStream("seq", first=0, target=10, buffer_limit=1)
        stream.publish(0, "a")
        stream.publish(1, "b")  # evicts frame 0
        assert not stream.try_join(0, 5)
        assert stream.try_join(1, 5)  # still buffered

    def test_join_refused_after_done_or_error(self):
        stream = FrameStream("seq", first=0, target=1, buffer_limit=8)
        stream.finish()
        assert not stream.try_join(0, 1)
        failed = FrameStream("seq", first=0, target=4, buffer_limit=8)
        failed.finish(error=RuntimeError("walk died"))
        assert not failed.try_join(0, 4)


class TestFrameStreamWait:
    def test_wait_frame_delivers_published_payload(self):
        async def main():
            stream = FrameStream("seq", first=0, target=2, buffer_limit=8)

            async def walk():
                await asyncio.sleep(0.01)
                stream.publish(0, "zero")
                stream.publish(1, "one")
                stream.finish()

            task = asyncio.ensure_future(walk())
            payload = await stream.wait_frame(1)
            await task
            return payload

        assert run(main()) == "one"

    def test_wait_frame_none_for_passed_or_unreached_frames(self):
        async def main():
            stream = FrameStream("seq", first=0, target=10, buffer_limit=1)
            stream.publish(0, "a")
            stream.publish(1, "b")  # frame 0 evicted
            passed = await stream.wait_frame(0)
            stream.curtail()
            # The walk observes the curtailed target at its next claim
            # and marks the stream done; only then do waiters on frames
            # beyond the walk's reach get their cache-fallback None.
            assert stream.next_frame() is None
            unreached = await stream.wait_frame(7)
            return passed, unreached

        assert run(main()) == (None, None)

    def test_wait_frame_raises_walk_error(self):
        async def main():
            stream = FrameStream("seq", first=0, target=4, buffer_limit=8)

            async def walk():
                await asyncio.sleep(0.01)
                stream.finish(error=RuntimeError("walk died"))

            task = asyncio.ensure_future(walk())
            with pytest.raises(RuntimeError, match="walk died"):
                await stream.wait_frame(2)
            await task

        run(main())


class TestBoundedChannel:
    def test_maxsize_must_be_positive(self):
        with pytest.raises(ServiceError, match="maxsize"):
            BoundedFrameChannel(0)

    def test_put_backpressures_at_maxsize(self):
        async def main():
            channel = BoundedFrameChannel(maxsize=2)
            high_water = []

            async def produce():
                for i in range(6):
                    await channel.put(i)
                    high_water.append(len(channel))
                channel.close()

            async def consume():
                items = []
                async for item in channel:
                    await asyncio.sleep(0.001)
                    items.append(item)
                return items

            producer = asyncio.ensure_future(produce())
            items = await consume()
            await producer
            return items, max(high_water)

        items, deepest = run(main())
        assert items == list(range(6))
        assert deepest <= 2  # producer never ran ahead of the bound

    def test_close_lets_consumer_drain_then_stops(self):
        async def main():
            channel = BoundedFrameChannel(maxsize=4)
            await channel.put("a")
            await channel.put("b")
            channel.close()
            drained = [item async for item in channel]
            return drained

        assert run(main()) == ["a", "b"]

    def test_error_surfaces_after_buffered_items(self):
        async def main():
            channel = BoundedFrameChannel(maxsize=4)
            await channel.put("before")
            channel.close(error=RuntimeError("producer died"))
            first = await channel.get()
            with pytest.raises(RuntimeError, match="producer died"):
                await channel.get()
            return first

        assert run(main()) == "before"

    def test_put_on_closed_channel_raises(self):
        async def main():
            channel = BoundedFrameChannel(maxsize=1)
            channel.close()
            with pytest.raises(ChannelClosed):
                await channel.put("late")

        run(main())

    def test_blocked_producer_unblocks_on_close(self):
        async def main():
            channel = BoundedFrameChannel(maxsize=1)
            await channel.put("full")

            async def produce_more():
                with pytest.raises(ChannelClosed):
                    await channel.put("overflow")
                return "unblocked"

            task = asyncio.ensure_future(produce_more())
            await asyncio.sleep(0.01)
            channel.close()
            return await task

        assert run(main()) == "unblocked"
