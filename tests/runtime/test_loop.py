"""RuntimeLoop: the one event loop everything above it schedules onto."""

import asyncio
import threading

import pytest

from repro.errors import ServiceError
from repro.runtime.loop import RuntimeLoop, get_runtime_loop


@pytest.fixture
def rt():
    with RuntimeLoop(name="rt-test") as runtime:
        yield runtime


class TestSingleton:
    def test_process_singleton_is_stable(self):
        assert get_runtime_loop() is get_runtime_loop()

    def test_singleton_is_alive_and_daemonic(self):
        runtime = get_runtime_loop()
        assert runtime.alive
        assert runtime._thread.daemon


class TestCrossing:
    def test_run_returns_coroutine_result(self, rt):
        async def answer():
            return 42

        assert rt.run(answer()) == 42

    def test_run_propagates_exceptions(self, rt):
        async def boom():
            raise ValueError("kapow")

        with pytest.raises(ValueError, match="kapow"):
            rt.run(boom())

    def test_run_timeout_raises_service_error(self, rt):
        with pytest.raises(ServiceError, match="timed out"):
            rt.run(asyncio.sleep(30.0), timeout=0.05)

    def test_call_executes_on_the_loop_thread(self, rt):
        name = rt.call(lambda: threading.current_thread().name)
        assert name == "rt-test"
        assert rt.call(lambda: asyncio.get_running_loop()) is rt.loop

    def test_call_soon_fires_callback(self, rt):
        fired = threading.Event()
        rt.call_soon(fired.set)
        assert fired.wait(5.0)

    def test_blocking_run_from_loop_thread_is_refused(self, rt):
        # The deadlock guard: a blocking shim on the loop thread would
        # wait on a result only the loop thread itself can produce.
        def shim_from_the_loop():
            return rt.run(asyncio.sleep(0))

        with pytest.raises(ServiceError, match="deadlock"):
            rt.call(shim_from_the_loop)

    def test_in_loop_thread_is_accurate(self, rt):
        assert not rt.in_loop_thread()
        assert rt.call(rt.in_loop_thread)


class TestClock:
    def test_time_is_monotone_nondecreasing(self, rt):
        a = rt.time()
        b = rt.time()
        assert b >= a

    def test_time_matches_loop_clock(self, rt):
        # Admission windows and supervisor cadence compare against
        # loop-side timestamps; both must read the same clock.
        loop_side = rt.call(rt.loop.time)
        assert abs(rt.time() - loop_side) < 5.0


class TestLifecycle:
    def test_shutdown_ends_the_loop(self):
        runtime = RuntimeLoop(name="rt-brief")
        assert runtime.alive
        runtime.shutdown()
        assert not runtime.alive

    def test_submit_after_shutdown_raises(self):
        runtime = RuntimeLoop(name="rt-dead")
        runtime.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            runtime.submit(asyncio.sleep(0))

    def test_shutdown_cancels_pending_tasks(self):
        runtime = RuntimeLoop(name="rt-cancel")
        cancelled = threading.Event()

        async def linger():
            try:
                await asyncio.sleep(60.0)
            except asyncio.CancelledError:
                cancelled.set()
                raise

        runtime.submit(linger())
        runtime.call(lambda: None)  # ensure the task is scheduled
        runtime.shutdown()
        assert cancelled.wait(5.0)

    def test_context_manager_shuts_down(self):
        with RuntimeLoop(name="rt-ctx") as runtime:
            assert runtime.alive
        assert not runtime.alive
