"""Live re-planning under load: supervisor-driven plan swaps mid-stream.

The drift recipe mirrors ``tests/service/test_auto_plan.py``: bent
spots are expensive enough per spot that the resolved plan flips
between serial (fast host) and parallel (slow host).  A predictor
calibrated at 1e-3 of its own prediction pins the construction-time
plan to serial; injecting an observation at 1e+3 mid-stream is a six
orders of magnitude drift the supervisor must fold into a parallel
re-plan — while a range stream is actively being consumed.

The bar for the swap: at most an extra render.  Never a dropped frame,
a duplicated frame, or bytes cached under another plan's key.
"""

import time

import numpy as np
import pytest

from repro.anim import AnimationService
from repro.core.config import BentConfig, SpotNoiseConfig
from repro.fields.analytic import random_smooth_field
from repro.parallel.planner import DecompositionPlanner
from repro.runtime.supervisor import PlanSupervisor
from repro.service import TextureService
from repro.service.admission import LatencyPredictor

N_FRAMES = 6

BENT_AUTO = SpotNoiseConfig(
    n_spots=400,
    texture_size=64,
    seed=0,
    backend="auto",
    spot_mode="bent",
    bent=BentConfig(n_along=16, n_across=5, length_cells=2.0, width_cells=0.8),
)


@pytest.fixture
def fields():
    cache = {}

    def source(frame):
        if frame not in cache:
            cache[frame] = random_smooth_field(seed=500 + frame, n=32)
        return cache[frame]

    return source


class PinnedPredictor(LatencyPredictor):
    """Calibration that moves only when the test says so.

    The walk feeds real render times into the predictor; with those
    live, "when does drift escape the band" would depend on host speed.
    Dropping walk-side observations makes the re-plan moment a pure
    function of the test's :meth:`inject` calls.
    """

    def __init__(self):
        super().__init__(alpha=1.0)

    def observe(self, config, actual_s, grid_shape=None):
        return None

    def inject(self, config, actual_s, grid_shape):
        return LatencyPredictor.observe(self, config, actual_s, grid_shape=grid_shape)


def wait_until(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def drifting_anim_service(fields, **kwargs):
    field0 = fields(0)
    shape = tuple(field0.grid.shape)
    predictor = PinnedPredictor()
    raw = predictor.predict(BENT_AUTO, field=field0)
    predictor.inject(BENT_AUTO, raw * 1e-3, shape)  # fast host -> serial plan
    svc = AnimationService(
        fields,
        BENT_AUTO,
        length=N_FRAMES,
        checkpoint_every=0,
        predictor=predictor,
        planner=DecompositionPlanner(host_workers=8),
        **kwargs,
    )
    inject_drift = lambda: predictor.inject(BENT_AUTO, raw * 1e3, shape)  # noqa: E731
    return svc, inject_drift


class TestAnimationLiveReplanning:
    def test_supervised_replan_lands_mid_stream_without_frame_loss(self, fields):
        svc, inject_drift = drifting_anim_service(fields)
        sup = PlanSupervisor(interval_s=0.02)
        try:
            assert svc.config.backend == "serial"
            old_fingerprint = svc.config.fingerprint()
            svc.supervise(sup)

            frames = []
            for response in svc.stream(0, N_FRAMES):
                frames.append(response)
                if response.frame == 1:
                    # The host "slows down" mid-stream; the supervisor
                    # must adopt the new plan while the walk is live.
                    inject_drift()
                    assert wait_until(lambda: svc.replans >= 1)

            # No dropped or duplicated frame across the swap.
            assert [f.frame for f in frames] == list(range(N_FRAMES))
            assert svc.replans >= 1
            assert wait_until(lambda: sup.replans >= 1)
            assert svc.config.n_groups > 1
            assert svc.config.fingerprint() != old_fingerprint

            # Every frame of the interrupted stream is keyed under the
            # identity whose config actually rendered it — the old one.
            assert {f.key.config_fingerprint for f in frames} == {old_fingerprint}

            # Bit-identity is the oracle *within* an identity: a plan
            # decides blend-reduction order, so plans may differ by an
            # ULP — which is exactly why bytes are keyed by the plan's
            # fingerprint and old entries go cold instead of being
            # served.  Across the swap the textures must still agree to
            # rounding; under the new identity, exactly.
            post = {f.frame: f for f in svc.stream(0, N_FRAMES)}
            assert sorted(post) == list(range(N_FRAMES))
            for response in frames:
                np.testing.assert_allclose(
                    post[response.frame].texture, response.texture,
                    rtol=0, atol=1e-12,
                )
            assert {f.key.config_fingerprint for f in post.values()} == {
                svc.config.fingerprint()
            }
            repeat = {f.frame: f for f in svc.stream(0, N_FRAMES)}
            for t in range(N_FRAMES):
                np.testing.assert_array_equal(repeat[t].texture, post[t].texture)
            assert svc.verify(2)
        finally:
            sup.close()
            svc.close()

    def test_replan_cache_is_consistent_after_the_swap(self, fields):
        svc, inject_drift = drifting_anim_service(fields)
        sup = PlanSupervisor(interval_s=0.02)
        try:
            svc.supervise(sup)
            before = svc.request(0)
            inject_drift()
            assert wait_until(lambda: svc.replans >= 1)
            # Old-identity entries went cold; the new identity renders
            # fresh and repeats hit its own cache, bit-identically.
            first = svc.request(0)
            again = svc.request(0)
            assert again.source in ("memory", "disk")
            np.testing.assert_array_equal(first.texture, again.texture)
            np.testing.assert_allclose(
                first.texture, before.texture, rtol=0, atol=1e-12
            )
            assert first.key.config_fingerprint != before.key.config_fingerprint
        finally:
            sup.close()
            svc.close()


class TestTextureServiceSupervision:
    def test_supervisor_folds_drift_into_texture_replan(self, fields):
        field0 = fields(0)
        shape = tuple(field0.grid.shape)
        predictor = PinnedPredictor()
        raw = predictor.predict(BENT_AUTO, field=field0)
        predictor.inject(BENT_AUTO, raw * 1e-3, shape)
        svc = TextureService(
            fields,
            BENT_AUTO,
            predictor=predictor,
            planner=DecompositionPlanner(host_workers=8),
        )
        sup = PlanSupervisor(interval_s=0.02)
        try:
            assert svc.config.backend == "serial"
            svc.supervise(sup)
            before = svc.request(0)
            predictor.inject(BENT_AUTO, raw * 1e3, shape)
            # The service's counter moves inside the check; the
            # supervisor's own counter moves once the check returns.
            assert wait_until(lambda: svc.replans >= 1 and sup.replans >= 1)
            assert svc.config.n_groups > 1
            after = svc.request(0)
            again = svc.request(0)
            np.testing.assert_array_equal(after.texture, again.texture)
            np.testing.assert_allclose(
                after.texture, before.texture, rtol=0, atol=1e-12
            )
        finally:
            sup.close()
            svc.close()
