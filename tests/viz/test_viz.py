"""Tests for repro.viz (colormaps, overlays, image IO, statistics)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.viz.colormap import Colormap, diverging, get_colormap, grayscale, rainbow
from repro.viz.image import read_pgm, to_uint8, write_pgm, write_ppm
from repro.viz.overlay import compose_scene, mask_overlay, scalar_overlay
from repro.viz.stats import (
    anisotropy_direction,
    directional_energy,
    texture_statistics,
)


class TestColormap:
    def test_rainbow_endpoints(self):
        cm = rainbow()
        np.testing.assert_allclose(cm(np.array([0.0])), [[0.0, 0.0, 1.0]])
        np.testing.assert_allclose(cm(np.array([1.0])), [[1.0, 0.0, 0.0]])

    def test_clipping(self):
        cm = grayscale()
        np.testing.assert_allclose(cm(np.array([-5.0, 5.0])), [[0, 0, 0], [1, 1, 1]])

    def test_output_shape(self):
        cm = diverging()
        out = cm(np.zeros((4, 5)))
        assert out.shape == (4, 5, 3)

    def test_midpoint_interpolation(self):
        cm = Colormap("二", np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]))
        np.testing.assert_allclose(cm(np.array([0.5])), [[0.5, 0.5, 0.5]])

    def test_registry(self):
        assert get_colormap("rainbow").name == "rainbow"
        with pytest.raises(ReproError):
            get_colormap("turbo")

    def test_validation(self):
        with pytest.raises(ReproError):
            Colormap("bad", np.array([[0.0, 0.0, 2.0], [1, 1, 1]]))
        with pytest.raises(ReproError):
            Colormap("bad", np.zeros((1, 3)))


class TestOverlay:
    def test_zero_scalar_keeps_texture(self):
        tex = np.full((8, 8), 0.5)
        out = scalar_overlay(tex, np.zeros((8, 8)), rainbow())
        np.testing.assert_allclose(out, 0.5)

    def test_full_scalar_tints(self):
        tex = np.zeros((8, 8))
        out = scalar_overlay(tex, np.ones((8, 8)), rainbow(), max_alpha=1.0)
        np.testing.assert_allclose(out[0, 0], [1.0, 0.0, 0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            scalar_overlay(np.zeros((8, 8)), np.zeros((4, 4)), rainbow())

    def test_alpha_validation(self):
        with pytest.raises(ReproError):
            scalar_overlay(np.zeros((4, 4)), np.zeros((4, 4)), rainbow(), max_alpha=2.0)

    def test_mask_outline_only_draws_border(self):
        img = np.ones((8, 8, 3))
        mask = np.zeros((8, 8), dtype=bool)
        mask[2:6, 2:6] = True
        out = mask_overlay(img, mask, colour=(0, 0, 0), alpha=1.0, outline_only=True)
        assert (out[3, 3] == 1.0).all()      # interior untouched
        assert (out[2, 2] == 0.0).all()      # border drawn

    def test_mask_filled(self):
        img = np.ones((4, 4, 3))
        mask = np.ones((4, 4), dtype=bool)
        out = mask_overlay(img, mask, colour=(0, 0, 0), alpha=1.0, outline_only=False)
        np.testing.assert_allclose(out, 0.0)

    def test_compose_scene_requires_colormap_with_scalar(self):
        with pytest.raises(ReproError):
            compose_scene(np.zeros((4, 4)), scalar01=np.zeros((4, 4)))

    def test_compose_scene_grayscale_passthrough(self):
        out = compose_scene(np.full((4, 4), 0.25))
        np.testing.assert_allclose(out, 0.25)


class TestImageIO:
    def test_to_uint8(self):
        np.testing.assert_array_equal(
            to_uint8(np.array([0.0, 0.5, 1.0, 2.0])), [0, 128, 255, 255]
        )

    def test_pgm_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        tex = rng.uniform(0, 1, (9, 13))
        path = tmp_path / "t.pgm"
        write_pgm(path, tex)
        back = read_pgm(path)
        assert back.shape == tex.shape
        np.testing.assert_allclose(back, tex, atol=1.0 / 255)

    def test_pgm_orientation(self, tmp_path):
        tex = np.zeros((4, 4))
        tex[0, :] = 1.0  # bottom row bright (y-up)
        path = tmp_path / "o.pgm"
        write_pgm(path, tex)
        with open(path, "rb") as fh:
            fh.readline(), fh.readline(), fh.readline()
            raw = fh.read()
        # File is y-down: bright row must be the *last* row on disk.
        assert raw[-4:] == b"\xff\xff\xff\xff"
        np.testing.assert_allclose(read_pgm(path), tex)

    def test_ppm_write(self, tmp_path):
        img = np.zeros((4, 4, 3))
        img[..., 0] = 1.0
        path = tmp_path / "c.ppm"
        write_ppm(path, img)
        data = path.read_bytes()
        assert data.startswith(b"P6\n4 4\n255\n")

    def test_write_validation(self, tmp_path):
        with pytest.raises(ReproError):
            write_pgm(tmp_path / "x.pgm", np.zeros((4, 4, 3)))
        with pytest.raises(ReproError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4)))

    def test_read_rejects_non_pgm(self, tmp_path):
        p = tmp_path / "no.pgm"
        p.write_bytes(b"P3\n1 1\n255\n0")
        with pytest.raises(ReproError):
            read_pgm(p)


class TestAtomicWrites:
    """Interrupted writes must never leave a truncated image behind
    (the serving disk cache reads whatever file exists)."""

    def test_overwrite_is_all_or_nothing(self, tmp_path, monkeypatch):
        import os

        path = tmp_path / "t.pgm"
        good = np.full((6, 6), 0.25)
        write_pgm(path, good)
        before = path.read_bytes()

        # Make the replace step fail: the destination must be untouched.
        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            write_pgm(path, np.full((6, 6), 0.75))
        monkeypatch.undo()
        assert path.read_bytes() == before
        np.testing.assert_allclose(read_pgm(path), good, atol=1.0 / 255)

    def test_no_temp_files_left_behind(self, tmp_path, monkeypatch):
        import os

        path = tmp_path / "t.ppm"

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            write_ppm(path, np.zeros((4, 4, 3)))
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []

    def test_successful_write_leaves_only_the_image(self, tmp_path):
        path = tmp_path / "t.pgm"
        write_pgm(path, np.zeros((4, 4)))
        assert [p.name for p in tmp_path.iterdir()] == ["t.pgm"]


class TestStats:
    def test_texture_statistics_values(self):
        t = np.array([[0.0, 2.0], [-2.0, 0.0]])
        s = texture_statistics(t)
        assert s.mean == 0.0
        assert s.max == 2.0 and s.min == -2.0
        assert s.rms == pytest.approx(np.sqrt(2.0))

    def test_zero_mean_check(self):
        rng = np.random.default_rng(0)
        s = texture_statistics(rng.normal(0, 1, (64, 64)))
        assert s.is_roughly_zero_mean()

    def test_anisotropy_of_horizontal_stripes(self):
        # Stripes along x (varying in y) = texture elongated along x.
        y = np.arange(64)
        tex = np.sin(y * 0.8)[:, None] * np.ones((1, 64))
        angle, strength = anisotropy_direction(tex)
        assert abs(angle) < 0.1
        assert strength > 0.9

    def test_anisotropy_of_vertical_stripes(self):
        x = np.arange(64)
        tex = np.sin(x * 0.8)[None, :] * np.ones((64, 1))
        angle, strength = anisotropy_direction(tex)
        assert abs(abs(angle) - np.pi / 2) < 0.1

    def test_isotropic_noise_weak_anisotropy(self):
        rng = np.random.default_rng(1)
        _, strength = anisotropy_direction(rng.normal(size=(128, 128)))
        assert strength < 0.2

    def test_directional_energy_normalised(self):
        rng = np.random.default_rng(2)
        e = directional_energy(rng.normal(size=(32, 32)), n_bins=18)
        assert e.shape == (18,)
        assert e.sum() == pytest.approx(1.0)

    def test_directional_energy_peak_perpendicular_to_stripes(self):
        y = np.arange(64)
        tex = np.sin(y * 0.8)[:, None] * np.ones((1, 64))  # elongated along x
        e = directional_energy(tex, n_bins=18)
        # Energy concentrates at 90 degrees (ky axis).
        assert e.argmax() == 9

    def test_validation(self):
        with pytest.raises(ReproError):
            texture_statistics(np.zeros(5))
        with pytest.raises(ReproError):
            directional_energy(np.zeros((4, 4)), n_bins=1)
