"""Tests for texture quality metrics (repro.viz.quality)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.viz.quality import radial_power_spectrum, spectral_distance, ssim


def noise(seed, shape=(64, 64)):
    return np.random.default_rng(seed).normal(size=shape)


def smooth_noise(seed, sigma, shape=(64, 64)):
    from scipy import ndimage

    return ndimage.gaussian_filter(noise(seed, shape), sigma=sigma, mode="wrap")


class TestRadialSpectrum:
    def test_shapes(self):
        k, p = radial_power_spectrum(noise(0), n_bins=16)
        assert k.shape == p.shape == (16,)
        assert (np.diff(k) > 0).all()

    def test_smooth_texture_rolls_off(self):
        _, p_rough = radial_power_spectrum(noise(1))
        _, p_smooth = radial_power_spectrum(smooth_noise(1, sigma=4.0))
        # High-frequency tail share shrinks with smoothing.
        tail = slice(20, None)
        assert (p_smooth[tail].sum() / p_smooth.sum()) < 0.3 * (
            p_rough[tail].sum() / p_rough.sum()
        )

    def test_validation(self):
        with pytest.raises(ReproError):
            radial_power_spectrum(np.zeros(8))
        with pytest.raises(ReproError):
            radial_power_spectrum(np.zeros((8, 8)), n_bins=1)


class TestSpectralDistance:
    def test_same_statistics_near_zero(self):
        # Different seeds of the same process: statistically identical.
        d = spectral_distance(smooth_noise(2, 2.0), smooth_noise(3, 2.0))
        assert d < 0.25

    def test_different_scales_far_apart(self):
        d_same = spectral_distance(smooth_noise(2, 2.0), smooth_noise(3, 2.0))
        d_diff = spectral_distance(smooth_noise(2, 1.0), smooth_noise(3, 6.0))
        assert d_diff > 3 * d_same

    def test_scale_invariance(self):
        a = smooth_noise(4, 2.0)
        assert spectral_distance(a, 100.0 * a) == pytest.approx(0.0, abs=1e-12)

    def test_symmetric(self):
        a, b = smooth_noise(5, 1.0), smooth_noise(6, 3.0)
        assert spectral_distance(a, b) == pytest.approx(spectral_distance(b, a))

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            spectral_distance(np.zeros((8, 8)), np.zeros((8, 9)))


class TestSSIM:
    def test_identical_is_one(self):
        a = smooth_noise(7, 2.0)
        assert ssim(a, a) == pytest.approx(1.0, abs=1e-9)

    def test_independent_noise_near_zero(self):
        assert abs(ssim(noise(8), noise(9))) < 0.15

    def test_degradation_monotone(self):
        a = smooth_noise(10, 2.0)
        slight = a + 0.1 * noise(11)
        heavy = a + 1.0 * noise(11)
        assert ssim(a, slight) > ssim(a, heavy)

    def test_validation(self):
        with pytest.raises(ReproError):
            ssim(np.zeros((8, 8)), np.zeros((8, 8)), sigma=0.0)
