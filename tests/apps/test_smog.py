"""Tests for the atmospheric pollution application (repro.apps.smog)."""

import numpy as np
import pytest

from repro.apps.smog.emissions import EmissionInventory, EmissionSource
from repro.apps.smog.geography import (
    europe_like_landmass,
    land_mask_raster,
    random_land_points,
)
from repro.apps.smog.meteo import SyntheticMeteorology
from repro.apps.smog.model import SmogModel, SmogModelConfig
from repro.apps.smog.steering import SteeredSmogApplication
from repro.errors import ApplicationError, SteeringError
from repro.fields.grid import RegularGrid

GRID = RegularGrid(20, 22, (0.0, 20.0, 0.0, 22.0))


class TestMeteorology:
    def test_wind_field_on_grid(self):
        met = SyntheticMeteorology(GRID, n_systems=2, seed=0)
        wind = met.wind_at(0.0)
        assert wind.grid.shape == GRID.shape
        assert wind.max_magnitude() > 0

    def test_base_wind_controls_mean(self):
        met = SyntheticMeteorology(GRID, n_systems=0, base_wind=3.0, seed=0)
        wind = met.wind_at(0.0)
        np.testing.assert_allclose(wind.u, 3.0)
        np.testing.assert_allclose(wind.v, 0.0)

    def test_wind_direction_rotates(self):
        met = SyntheticMeteorology(GRID, n_systems=0, base_wind=2.0, seed=0)
        met.wind_direction = np.pi / 2
        wind = met.wind_at(0.0)
        np.testing.assert_allclose(wind.u, 0.0, atol=1e-12)
        np.testing.assert_allclose(wind.v, 2.0)

    def test_systems_drift_in_time(self):
        met = SyntheticMeteorology(GRID, n_systems=2, seed=1)
        a = met.wind_at(0.0)
        b = met.wind_at(5.0)
        assert not np.allclose(a.data, b.data)

    def test_negative_systems_rejected(self):
        with pytest.raises(ApplicationError):
            SyntheticMeteorology(GRID, n_systems=-1)


class TestGeography:
    def test_landmass_deterministic(self):
        a = europe_like_landmass(GRID, seed=7)
        b = europe_like_landmass(GRID, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_land_fraction_respected(self):
        mask = europe_like_landmass(GRID, seed=7, land_fraction=0.4)
        assert mask.mean() == pytest.approx(0.4, abs=0.06)

    def test_fraction_validation(self):
        with pytest.raises(ApplicationError):
            europe_like_landmass(GRID, land_fraction=0.99)

    def test_raster_resampling(self):
        mask = europe_like_landmass(GRID, seed=7)
        raster = land_mask_raster(mask, GRID, 64)
        assert raster.shape == (64, 64)
        assert raster.dtype == bool
        # Land fraction roughly preserved under resampling.
        assert abs(raster.mean() - mask.mean()) < 0.1

    def test_random_land_points_on_land(self):
        mask = europe_like_landmass(GRID, seed=7)
        pts = random_land_points(mask, GRID, 50, seed=1)
        fx, fy = GRID.world_to_fractional(pts)
        ix = np.clip(np.rint(fx).astype(int), 0, GRID.nx - 1)
        iy = np.clip(np.rint(fy).astype(int), 0, GRID.ny - 1)
        assert mask[iy, ix].mean() > 0.9  # jitter may nudge a few off-cell

    def test_empty_landmass_rejected(self):
        with pytest.raises(ApplicationError):
            random_land_points(np.zeros(GRID.shape, bool), GRID, 5)


class TestEmissions:
    def test_rasterize_conserves_rate(self):
        inv = EmissionInventory(
            [EmissionSource((10.0, 11.0), rate=2.0, radius=1.5)], scale=1.0
        )
        field = inv.rasterize(GRID)
        total = field.sum() * GRID.dx * GRID.dy
        assert total == pytest.approx(2.0, rel=1e-6)

    def test_scale_multiplies(self):
        inv = EmissionInventory([EmissionSource((10.0, 11.0), 1.0, 1.0)], scale=3.0)
        assert inv.total_rate() == 3.0

    def test_validation(self):
        with pytest.raises(ApplicationError):
            EmissionSource((0, 0), rate=-1.0, radius=1.0)
        with pytest.raises(ApplicationError):
            EmissionSource((0, 0), rate=1.0, radius=0.0)
        with pytest.raises(ApplicationError):
            EmissionInventory([], scale=-1.0)


class TestSmogModel:
    def _model(self, **cfg):
        mask = europe_like_landmass(GRID, seed=7)
        inv = EmissionInventory([EmissionSource((10.0, 11.0), 1.0, 1.5)])
        return SmogModel(GRID, inv, mask, SmogModelConfig(**cfg) if cfg else None)

    def test_concentration_stays_nonnegative(self):
        model = self._model()
        met = SyntheticMeteorology(GRID, n_systems=2, base_wind=2.0, seed=3)
        for i in range(10):
            field = model.step(met.wind_at(i * 0.25))
        assert model.concentration.min() >= 0.0
        assert field.max() > 0.0

    def test_emissions_accumulate_without_sinks(self):
        model = self._model(
            deposition_land=0.0, deposition_sea=0.0, photo_rate=0.0, diffusivity=0.0
        )
        met = SyntheticMeteorology(GRID, n_systems=0, base_wind=0.0, seed=0)
        wind = met.wind_at(0.0)
        model.step(wind, dt=1.0)
        m1 = model.total_mass()
        model.step(wind, dt=1.0)
        m2 = model.total_mass()
        assert m2 == pytest.approx(2 * m1, rel=1e-6)

    def test_deposition_decays_mass(self):
        model = self._model(photo_rate=0.0)
        model.emissions.scale = 0.0
        model.concentration[...] = 1.0
        met = SyntheticMeteorology(GRID, n_systems=0, base_wind=0.0, seed=0)
        before = model.total_mass()
        model.step(met.wind_at(0.0), dt=1.0)
        assert model.total_mass() < before

    def test_cfl_substepping_keeps_stability(self):
        model = self._model()
        met = SyntheticMeteorology(GRID, n_systems=0, base_wind=50.0, seed=0)
        model.step(met.wind_at(0.0), dt=2.0)  # would violate CFL in one step
        assert np.isfinite(model.concentration).all()

    def test_sunlight_cycle(self):
        model = self._model()
        assert model.sunlight(6.0) == pytest.approx(1.0)
        assert model.sunlight(18.0) == 0.0  # clipped at night

    def test_wind_grid_mismatch(self):
        model = self._model()
        other = RegularGrid(5, 5)
        met = SyntheticMeteorology(other, n_systems=0)
        with pytest.raises(ApplicationError):
            model.step(met.wind_at(0.0))

    def test_bad_dt(self):
        model = self._model()
        met = SyntheticMeteorology(GRID, n_systems=0)
        with pytest.raises(ApplicationError):
            model.step(met.wind_at(0.0), dt=0.0)


class TestSteeredApplication:
    def test_paper_grid_dimensions(self):
        app = SteeredSmogApplication()
        assert app.grid.nx == 53 and app.grid.ny == 55

    def test_advance_produces_fields(self):
        app = SteeredSmogApplication(nx=20, ny=22, n_sources=2)
        wind, pollutant = app.advance()
        assert wind.grid.shape == (22, 20)
        assert pollutant.grid.shape == (22, 20)

    def test_steering_emission_scale(self):
        app = SteeredSmogApplication(nx=20, ny=22, n_sources=2)
        app.steer("emission_scale", 5.0)
        assert app.emissions.scale == 5.0

    def test_steering_changes_outcome(self):
        a = SteeredSmogApplication(nx=20, ny=22, n_sources=2, seed=3)
        b = SteeredSmogApplication(nx=20, ny=22, n_sources=2, seed=3)
        b.steer("emission_scale", 10.0)
        for _ in range(5):
            _, pa = a.advance()
            _, pb = b.advance()
        assert pb.max() > pa.max()

    def test_steering_wind(self):
        app = SteeredSmogApplication(nx=20, ny=22, n_sources=2)
        app.steer("base_wind", 4.0)
        wind, _ = app.advance()
        assert app.meteo.base_wind == 4.0

    def test_invalid_steer_rejected(self):
        app = SteeredSmogApplication(nx=20, ny=22, n_sources=2)
        with pytest.raises(SteeringError):
            app.steer("emission_scale", 100.0)
        with pytest.raises(SteeringError):
            app.steer("nonexistent", 1.0)

    def test_journal_records_steering(self):
        app = SteeredSmogApplication(nx=20, ny=22, n_sources=2)
        app.advance()
        app.steer("base_wind", 2.0)
        assert (1, "base_wind", 2.0) in app.session.journal

    def test_frame_source_adapter(self):
        app = SteeredSmogApplication(nx=20, ny=22, n_sources=2)
        wind, scalar = app.frame_source(0)
        assert wind is not None and scalar is not None
