"""Tests for the DNS application (repro.apps.dns)."""

import os

import numpy as np
import pytest

from repro.apps.dns.browser import DataBrowser, VisualizationMapping
from repro.apps.dns.obstacle import block_mask, fringe_mask
from repro.apps.dns.poisson import (
    divergence,
    solve_poisson_periodic,
    solve_poisson_sor,
    spectral_wavenumbers,
)
from repro.apps.dns.solver import DNSConfig, DNSSolver
from repro.apps.dns.store import ChunkedFieldStore
from repro.errors import ApplicationError, StoreError
from repro.fields.grid import RectilinearGrid, RegularGrid


class TestPoisson:
    def _smooth_rhs(self, ny=32, nx=48):
        x = np.linspace(0, 2 * np.pi, nx, endpoint=False)
        y = np.linspace(0, 2 * np.pi, ny, endpoint=False)
        X, Y = np.meshgrid(x, y)
        return np.sin(2 * X) * np.cos(3 * Y), (2 * np.pi / nx, 2 * np.pi / ny)

    def test_fft_solves_laplacian_exactly(self):
        rhs, (dx, dy) = self._smooth_rhs()
        # lap(p) = rhs with rhs = sin(2x)cos(3y) -> p = -rhs / (2^2 + 3^2).
        p = solve_poisson_periodic(rhs, dx, dy)
        np.testing.assert_allclose(p, -rhs / 13.0, atol=1e-10)

    def test_fft_zero_mean_output(self):
        rhs, (dx, dy) = self._smooth_rhs()
        p = solve_poisson_periodic(rhs + 5.0, dx, dy)  # mean removed
        assert abs(p.mean()) < 1e-12

    def test_sor_agrees_with_fft_on_smooth_rhs(self):
        rhs, (dx, dy) = self._smooth_rhs(24, 24)
        p_fft = solve_poisson_periodic(rhs, dx, dy)
        p_sor = solve_poisson_sor(rhs, dx, dy, tol=1e-10)
        # Different discretisations (spectral vs 5-point): the 5-point
        # eigenvalue error at k=3, dx=2*pi/24 is ~(k*dx)^2/12 ~ 5%, i.e.
        # ~4e-3 on a solution of amplitude 1/13.
        assert np.abs(p_fft - p_sor).max() < 6e-3

    def test_divergence_of_gradient_field(self):
        # div(grad p) must equal lap p: check via the Poisson solution.
        rhs, (dx, dy) = self._smooth_rhs()
        p = solve_poisson_periodic(rhs, dx, dy)
        ky, kx = spectral_wavenumbers(*p.shape, dx, dy)
        px = np.fft.irfft2(1j * kx * np.fft.rfft2(p), s=p.shape)
        py = np.fft.irfft2(1j * ky * np.fft.rfft2(p), s=p.shape)
        np.testing.assert_allclose(divergence(px, py, dx, dy), rhs, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ApplicationError):
            solve_poisson_periodic(np.zeros(4), 0.1, 0.1)
        with pytest.raises(ApplicationError):
            solve_poisson_periodic(np.zeros((4, 4)), 0.0, 0.1)


class TestObstacle:
    GRID = RegularGrid(48, 32, (0.0, 4.0, 0.0, 3.0))

    def test_block_mask_inside_outside(self):
        chi = block_mask(self.GRID, (1.0, 1.5), 0.5, 0.5, smooth_cells=0.5)
        # Deep inside ~1, far outside ~0.
        X, Y = self.GRID.mesh()
        inside = (np.abs(X - 1.0) < 0.15) & (np.abs(Y - 1.5) < 0.15)
        outside = (np.abs(X - 1.0) > 0.6) | (np.abs(Y - 1.5) > 0.6)
        assert chi[inside].min() > 0.9
        assert chi[outside].max() < 0.1

    def test_block_mask_range(self):
        chi = block_mask(self.GRID, (2.0, 1.5), 0.4, 0.6)
        assert chi.min() >= 0.0 and chi.max() <= 1.0

    def test_fringe_only_at_domain_end(self):
        sigma = fringe_mask(self.GRID, fraction=0.2, strength=5.0)
        X, _ = self.GRID.mesh()
        assert sigma[X < 3.0].max() == 0.0
        assert sigma[X > 3.5].max() > 0.0

    def test_validation(self):
        with pytest.raises(ApplicationError):
            block_mask(self.GRID, (0, 0), -1.0, 1.0)
        with pytest.raises(ApplicationError):
            fringe_mask(self.GRID, fraction=0.6)


class TestDNSSolver:
    @pytest.fixture(scope="class")
    def solver(self):
        s = DNSSolver(DNSConfig(nx=64, ny=48, reynolds=100))
        for _ in range(60):
            s.step()
        return s

    def test_divergence_free(self, solver):
        assert solver.max_divergence() < 1e-10

    def test_energy_bounded(self, solver):
        ke = solver.kinetic_energy()
        assert 0.1 < ke < 2.0  # near the free-stream value, no blow-up

    def test_velocity_suppressed_in_block(self, solver):
        speed = np.hypot(solver.u, solver.v)
        inside = solver.chi > 0.9
        outside = solver.chi < 0.01
        assert speed[inside].mean() < 0.15 * speed[outside].mean()

    def test_wake_deficit_behind_block(self, solver):
        # Mean streamwise velocity right behind the block is below free stream.
        c = solver.config
        X, Y = solver.grid.mesh()
        wake = (
            (X > c.block_center[0] + c.block_width)
            & (X < c.block_center[0] + 3 * c.block_width)
            & (np.abs(Y - c.block_center[1]) < c.block_height / 2)
        )
        assert solver.u[wake].mean() < 0.7 * c.u_inflow

    def test_fringe_restores_freestream(self, solver):
        X, _ = solver.grid.mesh()
        end = X > 0.97 * solver.config.domain[0]
        np.testing.assert_allclose(solver.u[end], solver.config.u_inflow, atol=0.15)
        np.testing.assert_allclose(solver.v[end], 0.0, atol=0.1)

    def test_field_export(self, solver):
        f = solver.field()
        assert f.grid.shape == (48, 64)
        assert f.max_magnitude() > 0

    def test_advance_to(self):
        s = DNSSolver(DNSConfig(nx=32, ny=24))
        steps = s.advance_to(0.05)
        assert s.time >= 0.05
        assert steps > 0

    def test_forced_bad_dt(self):
        s = DNSSolver(DNSConfig(nx=32, ny=24))
        with pytest.raises(ApplicationError):
            s.step(dt=-0.1)

    def test_config_validation(self):
        with pytest.raises(ApplicationError):
            DNSConfig(nx=8)
        with pytest.raises(ApplicationError):
            DNSConfig(reynolds=0)
        with pytest.raises(ApplicationError):
            DNSConfig(cfl=1.5)

    def test_viscosity_from_reynolds(self):
        c = DNSConfig(reynolds=150.0, u_inflow=1.0, block_height=0.45)
        assert c.viscosity == pytest.approx(0.45 / 150.0)


class TestStore:
    def _grid(self, nx=16, ny=12):
        return RectilinearGrid(np.linspace(0, 4, nx), np.linspace(0, 3, ny))

    def _field(self, grid, value):
        from repro.fields.vectorfield import VectorField2D

        data = np.full((*grid.shape, 2), float(value))
        return VectorField2D(grid, data)

    def test_append_read_roundtrip(self, tmp_path):
        grid = self._grid()
        store = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=3)
        for i in range(7):
            store.append(self._field(grid, i), time=0.1 * i)
        store.flush()
        for i in range(7):
            f = store.read(i)
            np.testing.assert_allclose(f.data, float(i))
        assert len(store) == 7
        assert store.times[3] == pytest.approx(0.3)

    def test_unflushed_frames_readable(self, tmp_path):
        grid = self._grid()
        store = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=4)
        store.append(self._field(grid, 42), time=0.0)
        np.testing.assert_allclose(store.read(0).data, 42.0)

    def test_reopen_existing(self, tmp_path):
        grid = self._grid()
        store = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=2)
        for i in range(4):
            store.append(self._field(grid, i))
        store.flush()
        reopened = ChunkedFieldStore(tmp_path / "db")
        assert len(reopened) == 4
        np.testing.assert_allclose(reopened.read(2).data, 2.0)

    def test_iter_range_stride(self, tmp_path):
        grid = self._grid()
        store = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=2)
        for i in range(6):
            store.append(self._field(grid, i))
        store.flush()
        vals = [f.data[0, 0, 0] for f in store.iter_range(1, 6, 2)]
        assert vals == [1.0, 3.0, 5.0]

    def test_out_of_range_read(self, tmp_path):
        grid = self._grid()
        store = ChunkedFieldStore.create(tmp_path / "db", grid)
        with pytest.raises(StoreError):
            store.read(0)

    def test_wrong_shape_append(self, tmp_path):
        grid = self._grid()
        store = ChunkedFieldStore.create(tmp_path / "db", grid)
        other = self._grid(nx=8, ny=8)
        with pytest.raises(StoreError):
            store.append(self._field(other, 0))

    def test_create_twice_rejected(self, tmp_path):
        grid = self._grid()
        ChunkedFieldStore.create(tmp_path / "db", grid)
        with pytest.raises(StoreError):
            ChunkedFieldStore.create(tmp_path / "db", grid)

    def test_open_nonexistent(self, tmp_path):
        with pytest.raises(StoreError):
            ChunkedFieldStore(tmp_path / "missing")

    def test_bytes_on_disk_grows(self, tmp_path):
        grid = self._grid()
        store = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=1)
        rng = np.random.default_rng(0)
        from repro.fields.vectorfield import VectorField2D

        store.append(VectorField2D(grid, rng.normal(size=(*grid.shape, 2))))
        store.flush()
        assert store.nbytes_on_disk() > 0

    def test_failed_chunk_write_leaves_no_partial_file(self, tmp_path, monkeypatch):
        # Regression: chunks were written with np.savez_compressed(path)
        # which truncates in place — a crash mid-write left a corrupt
        # chunk that failed every later read.  The atomic write must
        # leave either no chunk file or a complete one, and the buffered
        # frames must survive for a retry.
        import repro.apps.dns.store as store_mod

        grid = self._grid()
        store = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=2)
        store.append(self._field(grid, 0))

        def exploding_savez(fh, **arrays):
            fh.write(b"partial garbage")
            raise RuntimeError("disk full")

        monkeypatch.setattr(store_mod.np, "savez_compressed", exploding_savez)
        with pytest.raises(RuntimeError, match="disk full"):
            store.append(self._field(grid, 1))  # fills the chunk -> write
        monkeypatch.undo()
        names = sorted(os.listdir(tmp_path / "db"))
        assert names == ["meta.json"]  # no partial chunk, no temp litter
        store.flush()  # the buffered frames were not lost
        np.testing.assert_allclose(store.read(0).data, 0.0)
        np.testing.assert_allclose(store.read(1).data, 1.0)

    def test_failed_meta_write_preserves_previous_meta(self, tmp_path, monkeypatch):
        # Regression: meta.json was rewritten with open("w"), truncating
        # the only record of the store's contents before the new bytes
        # landed.  A failed rewrite must leave the previous meta intact.
        import repro.apps.dns.store as store_mod

        grid = self._grid()
        store = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=1)
        store.append(self._field(grid, 7))
        store.flush()

        def exploding_dumps(obj, *a, **kw):
            raise RuntimeError("serialiser died")

        monkeypatch.setattr(store_mod.json, "dumps", exploding_dumps)
        with pytest.raises(RuntimeError, match="serialiser died"):
            store.append(self._field(grid, 8))
        monkeypatch.undo()
        reopened = ChunkedFieldStore(tmp_path / "db")
        assert len(reopened) == 1
        np.testing.assert_allclose(reopened.read(0).data, 7.0)


class TestBrowser:
    @pytest.fixture
    def store(self, tmp_path):
        grid = RectilinearGrid(np.linspace(0, 4, 16), np.linspace(0, 3, 12))
        from repro.fields.vectorfield import VectorField2D

        st = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=3)
        rng = np.random.default_rng(0)
        for i in range(8):
            st.append(VectorField2D(grid, rng.normal(size=(*grid.shape, 2))))
        st.flush()
        return st

    def test_mapping_validation(self):
        with pytest.raises(ApplicationError):
            VisualizationMapping(scalar="pressure_gradient_magnitude")

    def test_current_with_scalar(self, store):
        browser = DataBrowser(store, VisualizationMapping(scalar="vorticity"))
        field, scalar = browser.current()
        assert scalar is not None
        assert scalar.grid.shape == field.grid.shape

    def test_mapping_none_scalar(self, store):
        browser = DataBrowser(store, VisualizationMapping(scalar=None))
        _, scalar = browser.current()
        assert scalar is None

    def test_seek_and_play(self, store):
        browser = DataBrowser(store)
        browser.seek(2)
        frames = list(browser.play(stop=6, stride=2))
        assert len(frames) == 2
        assert browser.position == 4

    def test_seek_out_of_range(self, store):
        browser = DataBrowser(store)
        with pytest.raises(ApplicationError):
            browser.seek(99)

    def test_select_mapping_switches(self, store):
        browser = DataBrowser(store, VisualizationMapping(scalar=None))
        browser.select_mapping(VisualizationMapping(scalar="speed"))
        _, scalar = browser.current()
        assert scalar is not None
        assert scalar.data.min() >= 0.0

    def test_frame_source_wraps(self, store):
        browser = DataBrowser(store)
        item = browser.frame_source(len(store) + 1)  # wraps around
        assert item is not None
