"""Tests for the space-time volume and slice browser (repro.apps.dns.volume)."""

import numpy as np
import pytest

from repro.apps.dns.store import ChunkedFieldStore
from repro.apps.dns.volume import SliceBrowser, space_time_volume
from repro.errors import ApplicationError
from repro.fields.grid import RectilinearGrid
from repro.fields.vectorfield import VectorField2D


@pytest.fixture
def store(tmp_path):
    grid = RectilinearGrid(np.linspace(0, 4, 12), np.linspace(0, 3, 9))
    st = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=3)
    for i in range(6):
        data = np.zeros((*grid.shape, 2))
        data[..., 0] = float(i)          # u encodes the frame index
        data[..., 1] = -float(i)
        st.append(VectorField2D(grid, data), time=0.5 * i)
    st.flush()
    return st


class TestSpaceTimeVolume:
    def test_shape_and_bounds(self, store):
        vol = space_time_volume(store)
        assert vol.shape == (6, 9, 12)
        x0, x1, y0, y1, t0, t1 = vol.bounds
        assert (x0, x1, y0, y1) == pytest.approx((0.0, 4.0, 0.0, 3.0))
        assert (t0, t1) == pytest.approx((0.0, 2.5))

    def test_z_slice_reproduces_stored_frame(self, store):
        vol = space_time_volume(store)
        from repro.fields.slices import SliceSpec

        f = vol.slice(SliceSpec("z", 4))
        np.testing.assert_allclose(f.u, 4.0)
        np.testing.assert_allclose(f.v, -4.0)

    def test_y_slice_shows_time_evolution(self, store):
        vol = space_time_volume(store)
        from repro.fields.slices import SliceSpec

        # Plane axes (x, t): the second in-plane component is w = 0, and
        # u varies along the slice's row (time) axis.
        f = vol.slice(SliceSpec("y", 2))
        assert f.grid.shape == (6, 12)  # (nt, nx)
        np.testing.assert_allclose(f.u[:, 0], np.arange(6, dtype=float))

    def test_stride_and_range(self, store):
        vol = space_time_volume(store, start=1, stop=6, stride=2)
        assert vol.shape[0] == 3

    def test_too_few_frames(self, store):
        with pytest.raises(ApplicationError):
            space_time_volume(store, start=0, stop=1)


class TestSliceBrowser:
    def test_navigation(self, store):
        vol = space_time_volume(store)
        browser = SliceBrowser(vol, axis="z", index=0)
        assert browser.current().u[0, 0] == 0.0
        browser.step(2)
        assert browser.current().u[0, 0] == 2.0
        browser.step(-3)  # wraparound
        assert browser.index == 5

    def test_axis_switch_clamps_index(self, store):
        vol = space_time_volume(store)          # sizes: z=6, y=9, x=12
        browser = SliceBrowser(vol, axis="x", index=11)
        browser.select_axis("z")
        assert browser.index == 5

    def test_seek_bounds(self, store):
        vol = space_time_volume(store)
        browser = SliceBrowser(vol)
        with pytest.raises(ApplicationError):
            browser.seek(99)

    def test_bad_initial_index(self, store):
        vol = space_time_volume(store)
        with pytest.raises(ApplicationError):
            SliceBrowser(vol, axis="z", index=6)

    def test_sweep_yields_all(self, store):
        vol = space_time_volume(store)
        browser = SliceBrowser(vol, axis="z")
        slices = list(browser.sweep())
        assert len(slices) == 6
        assert slices[3].u[0, 0] == 3.0
