"""Tests for the two-species photochemistry (repro.apps.smog.chemistry)."""

import numpy as np
import pytest

from repro.apps.smog.chemistry import ChemistryConfig, PhotochemicalSmogModel
from repro.apps.smog.emissions import EmissionInventory, EmissionSource
from repro.apps.smog.geography import europe_like_landmass
from repro.apps.smog.meteo import SyntheticMeteorology
from repro.apps.smog.model import SmogModelConfig
from repro.errors import ApplicationError
from repro.fields.grid import RegularGrid

GRID = RegularGrid(20, 18, (0.0, 20.0, 0.0, 18.0))


def make_model(**chem_kwargs):
    mask = europe_like_landmass(GRID, seed=3)
    inv = EmissionInventory([EmissionSource((6.0, 9.0), rate=1.0, radius=1.5)])
    return PhotochemicalSmogModel(
        GRID, inv, mask, chemistry=ChemistryConfig(**chem_kwargs) if chem_kwargs else None
    )


def calm_wind():
    return SyntheticMeteorology(GRID, n_systems=0, base_wind=0.0, seed=0).wind_at(0.0)


class TestChemistryConfig:
    def test_validation(self):
        with pytest.raises(ApplicationError):
            ChemistryConfig(photo_rate=-1.0)
        with pytest.raises(ApplicationError):
            ChemistryConfig(ozone_yield=0.0)
        with pytest.raises(ApplicationError):
            ChemistryConfig(day_length=0.0)


class TestPhotochemistry:
    def test_ozone_requires_sunlight(self):
        model = make_model(day_length=24.0)
        wind = calm_wind()
        # Start at night: t in [12, 24) has sun = 0.
        model.time = 13.0
        for _ in range(4):
            model.step(wind, dt=0.5)
        assert model.nox.max() > 0.0        # precursor accumulates
        assert model.concentration.max() == 0.0  # no ozone in the dark

    def test_ozone_forms_in_daylight(self):
        model = make_model()
        wind = calm_wind()
        model.time = 1.0  # daytime
        for _ in range(8):
            model.step(wind, dt=0.5)
        assert model.concentration.max() > 0.0

    def test_odd_oxygen_conserved_by_chemistry(self):
        # No deposition, no diffusion losses, calm wind: yield*NOx + O3
        # changes only through emissions.
        mask = europe_like_landmass(GRID, seed=3)
        inv = EmissionInventory([EmissionSource((6.0, 9.0), rate=1.0, radius=1.5)])
        model = PhotochemicalSmogModel(
            GRID,
            inv,
            mask,
            config=SmogModelConfig(
                diffusivity=0.0, deposition_land=0.0, deposition_sea=0.0,
                photo_rate=0.0, background=0.0,
            ),
            chemistry=ChemistryConfig(deposition_nox=0.0, ozone_yield=2.0),
        )
        wind = calm_wind()
        model.time = 2.0
        model.step(wind, dt=1.0)
        m1 = model.odd_oxygen_mass()
        model.step(wind, dt=1.0)
        m2 = model.odd_oxygen_mass()
        # Each unit time adds exactly yield * total emission rate of odd O.
        assert m2 - m1 == pytest.approx(2.0 * inv.total_rate(), rel=1e-6)

    def test_ozone_displaced_downwind_of_source(self):
        mask = np.ones(GRID.shape, dtype=bool)
        inv = EmissionInventory([EmissionSource((4.0, 9.0), rate=2.0, radius=1.0)])
        model = PhotochemicalSmogModel(GRID, inv, mask)
        wind = SyntheticMeteorology(GRID, n_systems=0, base_wind=2.0, seed=0).wind_at(0.0)
        model.time = 2.0
        for _ in range(10):
            model.step(wind, dt=0.5)
        X, _ = GRID.mesh()
        o3_centroid = float((model.concentration * X).sum() / model.concentration.sum())
        assert o3_centroid > 4.5  # blown east of the source

    def test_both_species_nonnegative(self):
        model = make_model()
        met = SyntheticMeteorology(GRID, n_systems=2, base_wind=1.5, seed=5)
        for i in range(8):
            model.step(met.wind_at(i * 0.25), dt=0.25)
        assert model.nox.min() >= 0.0
        assert model.concentration.min() >= 0.0

    def test_fields_accessor(self):
        model = make_model()
        model.step(calm_wind(), dt=0.5)
        nox, o3 = model.fields()
        assert nox.grid.shape == GRID.shape
        assert o3.grid.shape == GRID.shape
