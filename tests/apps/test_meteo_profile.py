"""Tests for the Rankine pressure-system profile (repro.apps.smog.meteo)."""

import numpy as np
import pytest

from repro.apps.smog.meteo import PressureSystem


class TestPressureSystem:
    @pytest.fixture
    def system(self):
        return PressureSystem(center=(0.0, 0.0), strength=2.0, core_radius=1.0, drift=(0.5, 0.0))

    def _speed_at_radius(self, system, r, t=0.0):
        u, v = system.velocity(np.array([[r]]), np.array([[0.0]]), t)
        return float(np.hypot(u, v)[0, 0])

    def test_solid_body_core(self, system):
        # Inside the core, tangential speed grows linearly with radius.
        assert self._speed_at_radius(system, 0.25) == pytest.approx(0.5)
        assert self._speed_at_radius(system, 0.5) == pytest.approx(1.0)

    def test_peak_at_core_radius(self, system):
        assert self._speed_at_radius(system, 1.0) == pytest.approx(2.0)

    def test_decay_outside(self, system):
        # 1/r decay outside the core.
        assert self._speed_at_radius(system, 4.0) == pytest.approx(0.5)

    def test_velocity_tangential(self, system):
        X = np.array([[0.7, -0.3]])
        Y = np.array([[0.2, 0.6]])
        u, v = system.velocity(X, Y, 0.0)
        radial = u * X + v * Y  # dot product with the radius vector
        np.testing.assert_allclose(radial, 0.0, atol=1e-12)

    def test_drift_moves_center(self, system):
        # At t=2 the centre sits at (1, 0): zero velocity there.
        u, v = system.velocity(np.array([[1.0]]), np.array([[0.0]]), 2.0)
        assert np.hypot(u, v)[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_anticyclone_spins_backwards(self):
        cyclone = PressureSystem((0, 0), strength=1.0, core_radius=1.0, drift=(0, 0))
        anti = PressureSystem((0, 0), strength=-1.0, core_radius=1.0, drift=(0, 0))
        uc, vc = cyclone.velocity(np.array([[0.5]]), np.array([[0.0]]), 0.0)
        ua, va = anti.velocity(np.array([[0.5]]), np.array([[0.0]]), 0.0)
        assert vc[0, 0] == pytest.approx(-va[0, 0])
