"""Tests for the discrete-event engine (repro.machine.events)."""

import pytest

from repro.errors import MachineError
from repro.machine.events import Resource, Simulator, Store


class TestSimulatorBasics:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(2.5)
            log.append(sim.now)
            yield sim.timeout(1.5)
            log.append(sim.now)

        sim.process(proc())
        end = sim.run()
        assert log == [2.5, 4.0]
        assert end == 4.0

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(MachineError):
            sim.timeout(-1.0)

    def test_two_processes_interleave_deterministically(self):
        sim = Simulator()
        log = []

        def proc(name, dt):
            for _ in range(3):
                yield sim.timeout(dt)
                log.append((sim.now, name))

        sim.process(proc("a", 1.0))
        sim.process(proc("b", 1.5))
        sim.run()
        # Tie at t=3.0: b's timeout was scheduled at t=1.5, before a's at
        # t=2.0, so insertion order puts b first — determinism contract.
        assert log == [
            (1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"), (3.0, "a"), (4.5, "b"),
        ]

    def test_event_value_passed_to_waiter(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def waiter():
            value = yield ev
            got.append(value)

        def trigger():
            yield sim.timeout(1.0)
            ev.succeed("payload")

        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert got == ["payload"]

    def test_double_succeed_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(MachineError):
            ev.succeed()

    def test_process_completion_is_awaitable(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(2.0)
            return 42

        results = []

        def outer():
            value = yield sim.process(inner())
            results.append((sim.now, value))

        sim.process(outer())
        sim.run()
        assert results == [(2.0, 42)]

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 5

        sim.process(bad())
        with pytest.raises(MachineError):
            sim.run()

    def test_run_until(self):
        sim = Simulator()

        def proc():
            for _ in range(10):
                yield sim.timeout(1.0)

        sim.process(proc())
        end = sim.run(until=3.5)
        assert end == 3.5


class TestResource:
    def test_serializes_holders(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        spans = []

        def worker():
            start_req = res.request()
            yield start_req
            t0 = sim.now
            yield sim.timeout(1.0)
            spans.append((t0, sim.now))
            res.release()

        for _ in range(3):
            sim.process(worker())
        sim.run()
        assert spans == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        finishes = []

        def worker():
            yield res.request()
            yield sim.timeout(1.0)
            finishes.append(sim.now)
            res.release()

        for _ in range(4):
            sim.process(worker())
        sim.run()
        assert finishes == [1.0, 1.0, 2.0, 2.0]

    def test_held_accounts_busy_time(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def worker():
            yield from res.held(2.0)

        sim.process(worker())
        sim.run()
        assert res.busy_time == 2.0

    def test_release_without_request(self):
        sim = Simulator()
        res = Resource(sim, 1)
        with pytest.raises(MachineError):
            res.release()

    def test_bad_capacity(self):
        with pytest.raises(MachineError):
            Resource(Simulator(), 0)


class TestStore:
    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        def producer():
            for i in range(3):
                yield sim.timeout(1.0)
                store.put(i)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [0, 1, 2]

    def test_immediate_get_when_stocked(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        sim.process(consumer())
        sim.run()
        assert got == [(0.0, "x")]

    def test_len(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
