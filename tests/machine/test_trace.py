"""Tests for schedule tracing (TraceSpan / Gantt / utilization)."""

import pytest

from repro.machine.schedule import simulate_texture
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig

W1 = SpotWorkload.atmospheric()


@pytest.fixture(scope="module")
def traced():
    return simulate_texture(WorkstationConfig(4, 2), W1, trace=True)


class TestTraceRecording:
    def test_untraced_by_default(self):
        res = simulate_texture(WorkstationConfig(2, 1), W1)
        assert res.trace == []
        assert "no trace recorded" in res.format_gantt()

    def test_trace_does_not_change_timing(self, traced):
        plain = simulate_texture(WorkstationConfig(4, 2), W1)
        assert plain.makespan_s == traced.makespan_s

    def test_expected_actors_present(self, traced):
        actors = {s.actor for s in traced.trace}
        assert {"g0.master", "g1.master", "g0.slave0", "g1.slave0",
                "pipe0", "pipe1", "bus", "blender"} <= actors

    def test_spans_within_makespan(self, traced):
        for span in traced.trace:
            assert 0.0 <= span.start_s <= span.end_s <= traced.makespan_s + 1e-12

    def test_per_actor_spans_disjoint(self, traced):
        by_actor = {}
        for s in traced.trace:
            by_actor.setdefault(s.actor, []).append(s)
        for actor, spans in by_actor.items():
            if actor == "bus":
                continue  # bus spans are recorded by independent transfers
            spans.sort(key=lambda s: s.start_s)
            for a, b in zip(spans, spans[1:]):
                assert a.end_s <= b.start_s + 1e-12, f"{actor} overlaps itself"

    def test_pipe_busy_matches_trace(self, traced):
        scan = sum(s.duration_s for s in traced.trace if s.actor == "pipe0")
        assert scan == pytest.approx(traced.pipe_busy_s[0], rel=1e-9)

    def test_blend_spans_after_all_scans(self, traced):
        last_scan = max(s.end_s for s in traced.trace if s.kind == "scan")
        first_blend = min(s.start_s for s in traced.trace if s.kind == "blend")
        assert first_blend >= last_scan - 1e-12

    def test_kind_vocabulary(self, traced):
        kinds = {s.kind for s in traced.trace}
        assert kinds <= {"shape", "feed", "transfer", "scan", "blend", "readback"}


class TestGanttAndUtilization:
    def test_gantt_has_one_row_per_actor(self, traced):
        text = traced.format_gantt(width=60)
        actors = {s.actor for s in traced.trace}
        for actor in actors:
            assert actor in text

    def test_utilization_in_unit_range(self, traced):
        util = traced.actor_utilization()
        assert util
        for value in util.values():
            assert 0.0 < value <= 1.0 + 1e-9

    def test_cpu_bound_config_has_busy_processors(self, traced):
        # (4, 2) on the atmospheric workload is CPU-bound: processors are
        # busier than the pipes.
        util = traced.actor_utilization()
        assert util["g0.slave0"] > util["pipe0"]
