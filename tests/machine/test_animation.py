"""Tests for the animation-rate model (repro.machine.animation)."""

import pytest

from repro.errors import MachineError
from repro.machine.animation import (
    AnimationTiming,
    data_bytes_for_grid,
    simulate_animation,
)
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig


class TestDataBytes:
    def test_atmospheric_grid(self):
        # 53x55 cells, 2 floats, 4 bytes.
        assert data_bytes_for_grid((55, 53)) == 55 * 53 * 8

    def test_validation(self):
        with pytest.raises(MachineError):
            data_bytes_for_grid((0, 10))


class TestAnimationTiming:
    def test_frame_composition(self):
        t = AnimationTiming(read_s=0.01, synthesis_s=0.1, display_s=0.005)
        assert t.frame_s == pytest.approx(0.115)
        assert t.frames_per_second == pytest.approx(1 / 0.115)

    def test_budget(self):
        fast = AnimationTiming(0.001, 0.05, 0.005)
        slow = AnimationTiming(0.001, 0.5, 0.005)
        assert fast.meets_budget(5.0)
        assert not slow.meets_budget(5.0)


class TestSimulateAnimation:
    def test_read_time_is_marginal(self):
        # §2: the data read happens 5-15x/s and must be cheap relative to
        # synthesis; a 53x55 frame over an 800 MB/s bus is microseconds.
        timing, _ = simulate_animation(WorkstationConfig(8, 4), SpotWorkload.atmospheric())
        assert timing.read_s < 0.001 * timing.synthesis_s

    def test_full_machine_meets_budget_atmospheric(self):
        timing, _ = simulate_animation(WorkstationConfig(8, 4), SpotWorkload.atmospheric())
        assert timing.meets_budget(5.0)

    def test_single_cpu_misses_budget(self):
        timing, _ = simulate_animation(WorkstationConfig(1, 1), SpotWorkload.atmospheric())
        assert not timing.meets_budget(5.0)

    def test_custom_data_bytes(self):
        big = 800_000_000  # one full bus-second of data
        timing, _ = simulate_animation(
            WorkstationConfig(8, 4), SpotWorkload.atmospheric(), data_bytes=big
        )
        assert timing.read_s == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(MachineError):
            simulate_animation(
                WorkstationConfig(1, 1), SpotWorkload.atmospheric(), display_s=-1.0
            )
        with pytest.raises(MachineError):
            simulate_animation(
                WorkstationConfig(1, 1), SpotWorkload.atmospheric(), data_bytes=-5
            )
