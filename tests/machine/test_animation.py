"""Tests for the animation-rate model (repro.machine.animation)."""

import pytest

from repro.errors import MachineError
from repro.machine.animation import (
    AnimationTiming,
    data_bytes_for_grid,
    pipelined_rate,
    simulate_animation,
)
from repro.machine.costs import CostModel
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig


class TestDataBytes:
    def test_atmospheric_grid(self):
        # 53x55 cells, 2 floats, 4 bytes.
        assert data_bytes_for_grid((55, 53)) == 55 * 53 * 8

    def test_validation(self):
        with pytest.raises(MachineError):
            data_bytes_for_grid((0, 10))


class TestAnimationTiming:
    def test_frame_composition(self):
        t = AnimationTiming(read_s=0.01, synthesis_s=0.1, display_s=0.005)
        assert t.frame_s == pytest.approx(0.115)
        assert t.frames_per_second == pytest.approx(1 / 0.115)

    def test_budget(self):
        fast = AnimationTiming(0.001, 0.05, 0.005)
        slow = AnimationTiming(0.001, 0.5, 0.005)
        assert fast.meets_budget(5.0)
        assert not slow.meets_budget(5.0)


class TestAnimationTimingEdges:
    def test_zero_frame_time_is_infinite_rate(self):
        t = AnimationTiming(read_s=0.0, synthesis_s=0.0, display_s=0.0)
        assert t.frame_s == 0.0
        assert t.frames_per_second == float("inf")
        assert t.meets_budget(5.0)

    def test_budget_boundary_is_inclusive(self):
        t = AnimationTiming(read_s=0.0, synthesis_s=0.2, display_s=0.0)
        assert t.frames_per_second == pytest.approx(5.0)
        assert t.meets_budget(5.0)


class TestPipelinedRate:
    """The §6 'higher speeds are possible' claim, quantified."""

    def test_pipelining_never_slower_than_sequential(self):
        for shape in ((1, 1), (4, 2), (8, 4)):
            for workload in (SpotWorkload.atmospheric(), SpotWorkload.turbulence()):
                fps, seq_fps = pipelined_rate(WorkstationConfig(*shape), workload)
                assert fps >= seq_fps

    def test_full_machine_gains_from_pipelining(self):
        # On (8, 4) the sequential blend term is a visible fraction of
        # the frame; overlapping it with the next frame's CPU work must
        # yield a strict speedup.
        fps, seq_fps = pipelined_rate(WorkstationConfig(8, 4), SpotWorkload.atmospheric())
        assert fps > seq_fps * 1.05

    def test_period_is_largest_resource_load(self):
        # Reconstruct the period from the model's own cost terms and
        # check the returned rate inverts it.
        config = WorkstationConfig(8, 4)
        workload = SpotWorkload.atmospheric()
        costs = CostModel.onyx2()
        fps, _ = pipelined_rate(config, workload, costs=costs)
        n_batches = -(-workload.n_spots // 50)
        cpu = (
            costs.shape_time(workload.n_spots, workload.total_vertices)
            + costs.feed_time(workload.total_vertices)
            + n_batches * costs.dispatch_s
        )
        pipe = costs.pipe_time(workload.total_vertices, workload.total_pixels)
        blend = config.n_pipes * costs.blend_time(workload.texture_pixels)
        period = max(cpu / config.n_processors, pipe / config.n_pipes, blend)
        assert fps == pytest.approx(1.0 / period)

    def test_tiled_variant_runs_and_accounts_duplication(self):
        fps, seq_fps = pipelined_rate(
            WorkstationConfig(8, 4), SpotWorkload.atmospheric(), tiled=True
        )
        assert fps > 0 and seq_fps > 0

    def test_single_resource_machine_pipelines_little(self):
        # With one processor and one pipe there is almost nothing to
        # overlap; the pipelined rate stays close to sequential.
        fps, seq_fps = pipelined_rate(WorkstationConfig(1, 1), SpotWorkload.atmospheric())
        assert fps <= seq_fps * 2.0


class TestSimulateAnimation:
    def test_read_time_is_marginal(self):
        # §2: the data read happens 5-15x/s and must be cheap relative to
        # synthesis; a 53x55 frame over an 800 MB/s bus is microseconds.
        timing, _ = simulate_animation(WorkstationConfig(8, 4), SpotWorkload.atmospheric())
        assert timing.read_s < 0.001 * timing.synthesis_s

    def test_full_machine_meets_budget_atmospheric(self):
        timing, _ = simulate_animation(WorkstationConfig(8, 4), SpotWorkload.atmospheric())
        assert timing.meets_budget(5.0)

    def test_single_cpu_misses_budget(self):
        timing, _ = simulate_animation(WorkstationConfig(1, 1), SpotWorkload.atmospheric())
        assert not timing.meets_budget(5.0)

    def test_custom_data_bytes(self):
        big = 800_000_000  # one full bus-second of data
        timing, _ = simulate_animation(
            WorkstationConfig(8, 4), SpotWorkload.atmospheric(), data_bytes=big
        )
        assert timing.read_s == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(MachineError):
            simulate_animation(
                WorkstationConfig(1, 1), SpotWorkload.atmospheric(), display_s=-1.0
            )
        with pytest.raises(MachineError):
            simulate_animation(
                WorkstationConfig(1, 1), SpotWorkload.atmospheric(), data_bytes=-5
            )
