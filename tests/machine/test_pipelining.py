"""Tests for the frame-pipelining model (repro.machine.animation.pipelined_rate)."""

import pytest

from repro.machine.animation import pipelined_rate
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig

W1 = SpotWorkload.atmospheric()
W2 = SpotWorkload.turbulence()


class TestPipelinedRate:
    def test_pipelining_never_slower(self):
        for shape in [(1, 1), (4, 2), (8, 4), (8, 1)]:
            piped, sequential = pipelined_rate(WorkstationConfig(*shape), W1)
            assert piped >= sequential * 0.999

    def test_biggest_gain_where_blend_dominates(self):
        # The blend term hurts most at many pipes with ample processors.
        piped_84, seq_84 = pipelined_rate(WorkstationConfig(8, 4), W1)
        piped_11, seq_11 = pipelined_rate(WorkstationConfig(1, 1), W1)
        assert piped_84 / seq_84 > piped_11 / seq_11

    def test_conclusion_headroom(self):
        # Section 6: "higher speeds than presented in the paper are
        # possible" — the pipelined model exceeds the paper's best
        # Table-1 cell (5.6 tex/s).
        piped, _ = pipelined_rate(WorkstationConfig(8, 4), W1)
        assert piped > 5.6

    def test_blend_can_become_the_bottleneck(self):
        # With enough resources the sequential blend bounds the rate.
        cfg = WorkstationConfig(64, 16)
        piped, _ = pipelined_rate(cfg, W1)
        from repro.machine.costs import CostModel

        blend_bound = 1.0 / (16 * CostModel.onyx2().blend_time(W1.texture_pixels))
        assert piped == pytest.approx(blend_bound, rel=1e-6)

    def test_tiled_lifts_the_blend_bound(self):
        cfg = WorkstationConfig(64, 16)
        piped_untiled, _ = pipelined_rate(cfg, W1, tiled=False)
        piped_tiled, _ = pipelined_rate(cfg, W1, tiled=True)
        assert piped_tiled > piped_untiled

    def test_turbulence_also_gains(self):
        piped, sequential = pipelined_rate(WorkstationConfig(8, 4), W2)
        assert piped > sequential
