"""Tests for repro.machine.costs, workload and workstation."""

import pytest

from repro.errors import MachineError
from repro.machine.costs import CostModel
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig


class TestCostModel:
    def test_defaults_valid(self):
        CostModel.onyx2()

    def test_negative_cost_rejected(self):
        with pytest.raises(MachineError):
            CostModel(cpu_spot_s=-1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(MachineError):
            CostModel(bus_bandwidth_Bps=0.0)

    def test_with_overrides(self):
        c = CostModel.onyx2().with_overrides(dispatch_s=0.0)
        assert c.dispatch_s == 0.0
        assert c.cpu_vertex_s == CostModel.onyx2().cpu_vertex_s

    def test_shape_time_linear(self):
        c = CostModel.onyx2()
        assert c.shape_time(10, 100) == pytest.approx(
            10 * c.cpu_spot_s + 100 * c.cpu_vertex_s
        )

    def test_pipe_time_includes_syncs(self):
        c = CostModel.onyx2()
        base = c.pipe_time(100, 50.0)
        with_sync = c.pipe_time(100, 50.0, n_syncs=10)
        assert with_sync == pytest.approx(base + 10 * c.pipe_state_sync_s)

    def test_transfer_time(self):
        c = CostModel.onyx2()
        assert c.transfer_time(800_000_000) == pytest.approx(1.0)


class TestSpotWorkload:
    def test_atmospheric_matches_paper(self):
        w = SpotWorkload.atmospheric()
        assert w.n_spots == 2500
        assert w.vertices_per_spot == 544
        assert w.total_vertices == 1_360_000
        # "approximately 1.3 million quadrilaterals"
        assert 1.2e6 < w.total_quads < 1.3e6
        assert w.texture_size == 512
        assert w.grid_shape == (55, 53)

    def test_turbulence_matches_paper(self):
        w = SpotWorkload.turbulence()
        assert w.n_spots == 40_000
        assert w.total_vertices == 1_920_000
        # The paper says "approximately 1.9 million quadrilaterals", which
        # matches the vertex count (40000 * 48 = 1.92M); the exact cell
        # count of a 16x3 mesh is 15*2 = 30 quads/spot = 1.2M.
        assert w.total_quads == 1_200_000

    def test_turbulence_bus_bytes_31MB(self):
        # §5.2: "approximately 31.0 megabyte per texture".
        w = SpotWorkload.turbulence()
        assert w.total_bytes == pytest.approx(31.0e6, rel=0.03)

    def test_standard_spots(self):
        w = SpotWorkload.standard_spots(1000)
        assert w.vertices_per_spot == 4
        assert w.quads_per_spot == 1

    def test_with_mesh_scales_counts(self):
        w = SpotWorkload.atmospheric().with_mesh(16, 9)
        assert w.vertices_per_spot == 144
        assert w.quads_per_spot == 15 * 8
        assert w.pixels_per_spot == SpotWorkload.atmospheric().pixels_per_spot

    def test_with_spots(self):
        w = SpotWorkload.turbulence().with_spots(10_000)
        assert w.n_spots == 10_000
        assert w.vertices_per_spot == 48

    def test_validation(self):
        with pytest.raises(MachineError):
            SpotWorkload("bad", 0, 4, 1, 1.0)
        with pytest.raises(MachineError):
            SpotWorkload("bad", 10, 2, 1, 1.0)
        with pytest.raises(MachineError):
            SpotWorkload("bad", 10, 4, 1, 0.0)


class TestWorkstationConfig:
    def test_even_partition(self):
        assert WorkstationConfig(8, 4).processors_per_group() == [2, 2, 2, 2]
        assert WorkstationConfig(8, 2).processors_per_group() == [4, 4]

    def test_uneven_partition(self):
        assert WorkstationConfig(5, 2).processors_per_group() == [3, 2]
        assert WorkstationConfig(7, 4).processors_per_group() == [2, 2, 2, 1]

    def test_group_sizes(self):
        assert WorkstationConfig(4, 2).group_sizes() == [(1, 1), (1, 1)]

    def test_pipes_need_masters(self):
        with pytest.raises(MachineError):
            WorkstationConfig(2, 4)

    def test_onyx2_limits(self):
        WorkstationConfig.onyx2(8, 4)
        with pytest.raises(MachineError):
            WorkstationConfig.onyx2(16, 4)

    def test_describe_mentions_all_groups(self):
        text = WorkstationConfig(8, 4).describe()
        assert text.count("group") == 4

    def test_validation(self):
        with pytest.raises(MachineError):
            WorkstationConfig(0, 1)
        with pytest.raises(MachineError):
            WorkstationConfig(1, 0)
        with pytest.raises(MachineError):
            WorkstationConfig(1, 1, bus_bandwidth_Bps=0.0)


class TestDeltaTransportPricing:
    """Keyframe-cadence economics: thin diffs buy long cadences, fat
    diffs price K down to all-keyframes (PR 7 delta transport)."""

    def test_incoherent_frames_price_all_keyframes(self):
        model = CostModel.onyx2()
        frame = 128 * 128 * 8
        # Diffs as large as keyframes: chains cost decode time and save
        # no bandwidth, so K=1 must win.
        assert model.best_keyframe_cadence(frame, 100_000, 100_000) == 1

    def test_coherent_frames_price_long_cadence(self):
        model = CostModel.onyx2()
        frame = 128 * 128 * 8
        k = model.best_keyframe_cadence(frame, 30_000, 500)
        assert k > 1

    def test_seek_time_monotone_in_chain_for_fat_diffs(self):
        model = CostModel.onyx2()
        frame = 64 * 64 * 8
        times = [
            model.delta_seek_time(frame, 50_000, 50_000, k) for k in (1, 4, 16)
        ]
        assert times == sorted(times)

    def test_bandwidth_shifts_the_optimum(self):
        # A slower link makes shipped bytes dearer: the priced cadence
        # can only grow (more amortisation of the keyframe).
        fast = CostModel.onyx2()
        slow = fast.with_overrides(net_bandwidth_Bps=1.0e6)
        frame = 128 * 128 * 8
        assert slow.best_keyframe_cadence(frame, 30_000, 500) >= (
            fast.best_keyframe_cadence(frame, 30_000, 500)
        )

    def test_validation(self):
        model = CostModel.onyx2()
        with pytest.raises(MachineError):
            model.delta_seek_time(100, 100, 100, 0)
        with pytest.raises(MachineError):
            model.best_keyframe_cadence(100, 100, 100, candidates=())
        with pytest.raises(MachineError):
            CostModel(net_bandwidth_Bps=0.0)
        with pytest.raises(MachineError):
            CostModel(delta_decode_Bps=-1.0)
