"""Tests for the workstation schedule simulator (repro.machine.schedule).

These encode the *shape* claims of the paper's evaluation — the actual
cell-by-cell comparison against Tables 1 and 2 lives in the benchmark
harness and EXPERIMENTS.md.
"""

import pytest

from repro.errors import MachineError
from repro.machine.analytic import (
    balanced_processors_per_pipe,
    eq21_time,
    eq32_time,
    total_genP,
    total_genT,
)
from repro.machine.costs import CostModel
from repro.machine.schedule import format_table, simulate_texture, sweep_configurations
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig


W1 = SpotWorkload.atmospheric()
W2 = SpotWorkload.turbulence()


def rate(n_proc, n_pipe, workload=W1, **kw):
    return simulate_texture(WorkstationConfig(n_proc, n_pipe), workload, **kw).textures_per_second


class TestBaselineCells:
    def test_table1_1x1_about_one_texture_per_second(self):
        assert rate(1, 1, W1) == pytest.approx(1.0, rel=0.15)

    def test_table2_1x1_about_0p7(self):
        assert rate(1, 1, W2) == pytest.approx(0.7, rel=0.15)

    def test_table2_slower_than_table1_everywhere(self):
        r1 = sweep_configurations(W1)
        r2 = sweep_configurations(W2)
        for key in r1:
            assert r2[key].textures_per_second < r1[key].textures_per_second


class TestScalingShape:
    def test_two_processors_double_rate(self):
        assert rate(2, 1) == pytest.approx(2.0 * rate(1, 1), rel=0.15)

    def test_saturation_beyond_four_processors_per_pipe(self):
        # §5.1: "Using more than 4 processors per pipe does not increase
        # performance."
        assert rate(8, 1) <= rate(4, 1) * 1.05

    def test_pipes_without_processors_do_not_help(self):
        # §5.1: more pipes help "if and only if there are a sufficient
        # number of processors to keep the graphics pipes busy".
        assert rate(2, 2) <= rate(2, 1) * 1.1

    def test_pipes_with_processors_do_help(self):
        assert rate(8, 2) > rate(8, 1) * 1.4

    def test_best_configuration_is_8x4(self):
        results = sweep_configurations(W1)
        best = max(results, key=lambda k: results[k].textures_per_second)
        assert best == (8, 4)

    def test_sublinear_at_4n_processors_n_pipes(self):
        # §5.1: no linear speedup at (4n, n) "due to the additional overhead
        # caused by blending" — the sequential c of eq 3.2.
        r11 = rate(4, 1)
        r44 = rate(8, 2)  # 4 procs/pipe at doubled scale
        assert r44 < 2.0 * r11


class TestBusTraffic:
    def test_table2_bytes_per_texture(self):
        res = simulate_texture(WorkstationConfig(8, 4), W2)
        geometry_bytes = W2.total_bytes
        assert res.bytes_on_bus >= geometry_bytes  # plus readbacks

    def test_bus_well_below_capacity(self):
        # §5.1: ~116 MB/s needed at 5.6 tex/s, far under 800 MB/s.
        res = simulate_texture(WorkstationConfig(8, 4), W1)
        assert res.bus_bandwidth_used_Bps < 0.3 * 800e6

    def test_bus_busy_time_below_makespan(self):
        res = simulate_texture(WorkstationConfig(8, 4), W1)
        assert 0 < res.bus_busy_s < res.makespan_s


class TestOptions:
    def test_tiling_duplicates_spots(self):
        res = simulate_texture(WorkstationConfig(8, 4), W2, tiled=True)
        assert res.duplicated_spots > 0

    def test_tiling_reduces_blend_time(self):
        untiled = simulate_texture(WorkstationConfig(8, 4), W2, tiled=False)
        tiled = simulate_texture(WorkstationConfig(8, 4), W2, tiled=True)
        assert tiled.blend_s < untiled.blend_s

    def test_single_group_never_duplicates(self):
        res = simulate_texture(WorkstationConfig(4, 1), W1, tiled=True)
        assert res.duplicated_spots == 0

    def test_hardware_transform_slower_at_scale(self):
        # The paper chose software transform to avoid per-spot pipe syncs.
        sw = simulate_texture(WorkstationConfig(8, 1), W2, hardware_transform=False)
        hw = simulate_texture(WorkstationConfig(8, 1), W2, hardware_transform=True)
        assert hw.makespan_s > sw.makespan_s

    def test_bad_batch_size(self):
        with pytest.raises(MachineError):
            simulate_texture(WorkstationConfig(1, 1), W1, batch_spots=0)

    def test_custom_costs_used(self):
        slow = CostModel.onyx2().with_overrides(cpu_vertex_s=1e-5)
        res = simulate_texture(WorkstationConfig(1, 1), W1, costs=slow)
        assert res.textures_per_second < 0.2

    def test_determinism(self):
        a = simulate_texture(WorkstationConfig(8, 4), W1)
        b = simulate_texture(WorkstationConfig(8, 4), W1)
        assert a.makespan_s == b.makespan_s


class TestSweepAndFormat:
    def test_sweep_skips_infeasible_cells(self):
        results = sweep_configurations(W1, (1, 2), (1, 2))
        assert (1, 2) not in results
        assert set(results) == {(1, 1), (2, 1), (2, 2)}

    def test_format_table_layout(self):
        results = sweep_configurations(W1, (1, 2), (1, 2))
        text = format_table(results, (1, 2), (1, 2))
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("nP\\nG")


class TestAnalyticCrossChecks:
    def test_eq21_is_max_of_work(self):
        assert eq21_time(W1) == pytest.approx(max(total_genP(W1), total_genT(W1)))

    def test_eq32_lower_bounds_simulator(self):
        # The DES includes overheads eq 3.2 ignores, so it can never be
        # faster than the analytic bound.
        for np_, ng in [(1, 1), (4, 2), (8, 4), (8, 1)]:
            analytic = eq32_time(W1, np_, ng)
            simulated = simulate_texture(WorkstationConfig(np_, ng), W1).makespan_s
            assert simulated >= analytic * 0.999

    def test_eq32_monotone_in_resources(self):
        assert eq32_time(W1, 8, 4) <= eq32_time(W1, 4, 4) <= eq32_time(W1, 4, 1)

    def test_balance_point_near_four(self):
        # §5.1/§5.2: optimum around 4 processors per pipe.
        assert 2.0 < balanced_processors_per_pipe(W1) < 5.0
        assert 2.0 < balanced_processors_per_pipe(W2) < 5.0

    def test_eq32_validation(self):
        with pytest.raises(MachineError):
            eq32_time(W1, 0, 1)
