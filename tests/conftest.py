"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.advection.particles import ParticleSet
from repro.fields.analytic import constant_field, vortex_field, shear_field
from repro.fields.grid import RegularGrid
from repro.fields.vectorfield import VectorField2D


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def unit_grid() -> RegularGrid:
    return RegularGrid(17, 13, (0.0, 1.0, 0.0, 1.0))


@pytest.fixture
def vortex() -> VectorField2D:
    return vortex_field(n=33)


@pytest.fixture
def uniform_flow() -> VectorField2D:
    return constant_field(1.0, 0.5, n=17)


@pytest.fixture
def shear() -> VectorField2D:
    return shear_field(rate=2.0, n=17)


@pytest.fixture
def particles(vortex) -> ParticleSet:
    return ParticleSet.uniform_random(200, vortex.grid.bounds, seed=7)
