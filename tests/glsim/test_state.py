"""Tests for repro.glsim.state and geometry."""

import numpy as np
import pytest

from repro.errors import GLStateError
from repro.glsim.geometry import Transform2D
from repro.glsim.state import GLState


class TestGLState:
    def test_defaults(self):
        s = GLState()
        assert s.get("blend_mode") == "add"
        assert s.get("texture") is None

    def test_set_records_change(self):
        s = GLState()
        assert s.set("blend_mode", "max") is True
        assert s.log.total == 1

    def test_redundant_set_not_counted(self):
        s = GLState()
        s.set("blend_mode", "max")
        assert s.set("blend_mode", "max") is False
        assert s.log.total == 1

    def test_transform_is_synchronizing(self):
        s = GLState()
        s.set("transform", Transform2D.identity())
        assert s.log.synchronizing == 1

    def test_non_transform_not_synchronizing(self):
        s = GLState()
        s.set("texture", 3)
        assert s.log.synchronizing == 0
        assert s.log.total == 1

    def test_unknown_key(self):
        s = GLState()
        with pytest.raises(GLStateError):
            s.set("depth_test", True)
        with pytest.raises(GLStateError):
            s.get("depth_test")

    def test_invalid_values(self):
        s = GLState()
        with pytest.raises(GLStateError):
            s.set("blend_mode", "xor")
        with pytest.raises(GLStateError):
            s.set("render_mode", "raytrace")
        with pytest.raises(GLStateError):
            s.set("samples_per_edge", 0)

    def test_snapshot_is_copy(self):
        s = GLState()
        snap = s.snapshot()
        snap["blend_mode"] = "max"
        assert s.get("blend_mode") == "add"

    def test_reset(self):
        s = GLState()
        s.set("blend_mode", "max")
        s.reset()
        assert s.get("blend_mode") == "add"
        assert s.log.total == 0

    def test_by_key_counts(self):
        s = GLState()
        s.set("texture", 1)
        s.set("texture", 2)
        assert s.log.by_key["texture"] == 2


class TestTransform2D:
    def test_identity(self):
        t = Transform2D.identity()
        assert t.is_identity()
        pts = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(t.apply(pts), pts)

    def test_scale_rotate(self):
        t = Transform2D.scale_rotate(2.0, 1.0, np.pi / 2)
        out = t.apply(np.array([[1.0, 0.0]]))
        np.testing.assert_allclose(out, [[0.0, 2.0]], atol=1e-12)

    def test_offset(self):
        t = Transform2D.scale_rotate(1.0, 1.0, 0.0, offset=(5.0, -1.0))
        np.testing.assert_allclose(t.apply(np.array([[0.0, 0.0]])), [[5.0, -1.0]])

    def test_compose(self):
        a = Transform2D.scale_rotate(2.0, 2.0, 0.0)
        b = Transform2D.scale_rotate(1.0, 1.0, 0.0, offset=(1.0, 0.0))
        ab = a.compose(b)  # a after b: scale(translate(p))
        np.testing.assert_allclose(ab.apply(np.array([[0.0, 0.0]])), [[2.0, 0.0]])

    def test_batched_apply_shape(self):
        t = Transform2D.identity()
        out = t.apply(np.zeros((5, 4, 2)))
        assert out.shape == (5, 4, 2)

    def test_validation(self):
        with pytest.raises(GLStateError):
            Transform2D(np.zeros((3, 3)))
        with pytest.raises(GLStateError):
            Transform2D(offset=np.zeros(3))
        with pytest.raises(GLStateError):
            Transform2D.identity().apply(np.zeros((2, 3)))

    def test_equality(self):
        assert Transform2D.identity() == Transform2D.identity()
        assert Transform2D.identity() != Transform2D.scale_rotate(2, 1, 0)
