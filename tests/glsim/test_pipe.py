"""Tests for repro.glsim.pipe, commands and context."""

import numpy as np
import pytest

from repro.errors import GLStateError
from repro.glsim.commands import (
    BindTexture,
    Clear,
    DrawQuads,
    ReadPixels,
    SetBlendMode,
    SetTransform,
    command_bytes,
)
from repro.glsim.context import GLContext
from repro.glsim.geometry import Transform2D
from repro.glsim.pipe import GraphicsPipe
from repro.raster.texture import Texture

WIN = (0.0, 1.0, 0.0, 1.0)
UV = np.array([[[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]])


def full_quad():
    return np.array([[[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]])


@pytest.fixture
def pipe():
    p = GraphicsPipe(0, 16, 16, WIN)
    p.upload_texture(1, Texture(np.ones((4, 4))))
    return p


class TestCommandBytes:
    def test_draw_quads_accounting(self):
        cmd = DrawQuads(full_quad(), UV, np.array([1.0]))
        # 4 vertices * 4 floats * 4 bytes + 1 intensity * 4 + 16 header.
        assert command_bytes(cmd) == 16 + 64 + 4

    def test_small_commands(self):
        assert command_bytes(SetBlendMode("add")) == 16
        assert command_bytes(Clear()) == 16
        assert command_bytes(SetTransform(Transform2D.identity())) == 16

    def test_readpixels_counts_framebuffer(self):
        assert command_bytes(ReadPixels(512, 512)) == 16 + 512 * 512 * 4

    def test_texture_upload_counted(self):
        assert command_bytes(BindTexture(1, upload_nbytes=1024)) == 16 + 1024

    def test_drawquads_validation(self):
        with pytest.raises(GLStateError):
            DrawQuads(np.zeros((1, 3, 2)), np.zeros((1, 3, 2)), np.zeros(1))
        with pytest.raises(GLStateError):
            DrawQuads(full_quad(), UV, np.zeros(2))


class TestGraphicsPipe:
    def test_draw_requires_uploaded_texture(self, pipe):
        with pytest.raises(GLStateError):
            pipe.execute(BindTexture(99))

    def test_duplicate_upload_rejected(self, pipe):
        with pytest.raises(GLStateError):
            pipe.upload_texture(1, Texture(np.ones((4, 4))))

    def test_draw_counts_work(self, pipe):
        pipe.execute(BindTexture(1))
        pipe.execute(DrawQuads(full_quad(), UV, np.array([1.0])))
        assert pipe.counters.quads_drawn == 1
        assert pipe.counters.vertices_in == 4
        assert pipe.counters.pixels_filled > 0
        assert pipe.counters.bytes_received > 0

    def test_draw_renders_into_framebuffer(self, pipe):
        pipe.execute(BindTexture(1))
        pipe.state.set("render_mode", "exact")
        pipe.execute(DrawQuads(full_quad(), UV, np.array([2.0])))
        np.testing.assert_allclose(pipe.framebuffer.data, 2.0)

    def test_non_additive_blend_rejected_for_draw(self, pipe):
        pipe.execute(SetBlendMode("max"))
        with pytest.raises(GLStateError):
            pipe.execute(DrawQuads(full_quad(), UV, np.array([1.0])))

    def test_transform_applied_and_synchronizing(self, pipe):
        pipe.execute(BindTexture(1))
        pipe.state.set("render_mode", "exact")
        pipe.execute(SetTransform(Transform2D.scale_rotate(0.5, 0.5, 0.0, (0.25, 0.25))))
        pipe.execute(DrawQuads(full_quad(), UV, np.array([1.0])))
        assert pipe.counters.synchronizing_changes == 1
        # Only the scaled-down region is covered.
        assert 0 < pipe.framebuffer.total() < 16 * 16

    def test_clear(self, pipe):
        pipe.execute(BindTexture(1))
        pipe.execute(DrawQuads(full_quad(), UV, np.array([1.0])))
        pipe.execute(Clear())
        assert pipe.framebuffer.total() == 0.0
        assert pipe.counters.clears == 1

    def test_read_pixels_returns_copy(self, pipe):
        out = pipe.read_pixels()
        out[...] = 99.0
        assert pipe.framebuffer.total() == 0.0
        assert pipe.counters.readbacks == 1

    def test_reset_counters(self, pipe):
        pipe.execute(SetBlendMode("max"))
        pipe.reset_counters()
        assert pipe.counters.state_changes == 0

    def test_counters_merge(self, pipe):
        from repro.glsim.pipe import PipeCounters

        a = PipeCounters(vertices_in=4, quads_drawn=1)
        b = PipeCounters(vertices_in=8, quads_drawn=2)
        m = a.merged_with(b)
        assert m.vertices_in == 12 and m.quads_drawn == 3


class TestGLContext:
    def test_exclusive_pipe_ownership(self, pipe):
        a = GLContext(0, pipe)
        b = GLContext(1, pipe)
        a.make_current()
        with pytest.raises(GLStateError):
            b.make_current()
        a.release()
        b.make_current()
        b.release()

    def test_submit_requires_current(self, pipe):
        ctx = GLContext(0, pipe)
        with pytest.raises(GLStateError):
            ctx.submit(Clear())

    def test_flush_executes_in_order(self, pipe):
        with GLContext(0, pipe) as ctx:
            ctx.submit(BindTexture(1))
            ctx.submit(DrawQuads(full_quad(), UV, np.array([1.0])))
            assert ctx.pending == 2
            n = ctx.flush()
            assert n == 2
        assert pipe.counters.quads_drawn == 1

    def test_context_manager_flushes_on_exit(self, pipe):
        with GLContext(0, pipe) as ctx:
            ctx.submit(BindTexture(1))
            ctx.submit(DrawQuads(full_quad(), UV, np.array([1.0])))
        assert pipe.counters.quads_drawn == 1
        # Pipe is free again.
        with GLContext(5, pipe):
            pass
