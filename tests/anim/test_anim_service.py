"""End-to-end animation streaming: cache tiers, checkpoints, coalescing."""

import threading
import time

import numpy as np
import pytest

from repro.anim import AnimationService, one_shot_frame
from repro.core.config import SpotNoiseConfig
from repro.errors import AnimationServiceError, ServiceError
from repro.fields.analytic import random_smooth_field

CONFIG = SpotNoiseConfig(n_spots=100, texture_size=32, seed=9)
N_FRAMES = 24


@pytest.fixture
def source():
    cache = {t: random_smooth_field(seed=200 + t, n=16) for t in range(N_FRAMES)}
    return cache.__getitem__


def make_service(source, **kwargs):
    kwargs.setdefault("length", N_FRAMES)
    kwargs.setdefault("checkpoint_every", 4)
    return AnimationService(source, CONFIG, **kwargs)


class TestStreaming:
    def test_stream_serves_all_frames_in_order(self, source):
        with make_service(source) as svc:
            frames = list(svc.stream(0, 8))
        assert [f.frame for f in frames] == list(range(8))
        assert all(f.texture.shape == (32, 32) for f in frames)

    def test_second_pass_is_all_cache_hits(self, source):
        with make_service(source) as svc:
            list(svc.stream(0, 8))
            renders = svc.stats.renders
            again = list(svc.stream(0, 8))
            assert svc.stats.renders == renders
        assert {f.source for f in again} == {"memory"}

    def test_streamed_frames_bit_identical_to_one_shot(self, source):
        with make_service(source) as svc:
            frames = {f.frame: f.texture for f in svc.stream(0, 10)}
            for t in (0, 5, 9):
                reference = one_shot_frame(CONFIG, source, t, dt=svc.dt)
                assert np.array_equal(frames[t], reference.display)
            assert svc.verify(6)

    def test_request_is_single_frame_stream(self, source):
        with make_service(source) as svc:
            response = svc.request(5)
        assert response.frame == 5
        assert response.key.frame == 5

    def test_each_distinct_frame_rendered_once_single_client(self, source):
        with make_service(source) as svc:
            trace = [0, 1, 2, 1, 0, 3, 2, 4, 4, 0]
            for t in trace:
                svc.request(t)
            assert svc.stats.renders == len(set(trace))

    def test_range_validation(self, source):
        with make_service(source) as svc:
            with pytest.raises(AnimationServiceError):
                list(svc.stream(3, 3))
            with pytest.raises(AnimationServiceError):
                list(svc.stream(0, N_FRAMES + 1))
            with pytest.raises(ServiceError):
                svc.close()
                svc.request(0)

    def test_source_errors_propagate_and_are_counted(self):
        def flaky(t):
            if t >= 2:
                raise RuntimeError("data source down")
            return random_smooth_field(seed=t, n=16)

        with AnimationService(flaky, CONFIG, checkpoint_every=0) as svc:
            list(svc.stream(0, 2))
            with pytest.raises(RuntimeError):
                list(svc.stream(2, 3))
            assert svc.stats.errors >= 1


class TestCheckpoints:
    def test_seek_resumes_from_checkpoint_not_frame_zero(self, source):
        advected = []

        def counting(t):
            advected.append(t)
            return source(t)

        with make_service(counting, checkpoint_every=4) as svc:
            list(svc.stream(0, 9))  # checkpoints at 4 and 8
            advected.clear()
            svc.request(10)
        # The walk resumed from its threaded state / the boundary-8
        # checkpoint and replayed only the suffix — never frames 0..7.
        assert advected and min(advected) >= 8

    def test_fresh_process_resumes_via_disk(self, source, tmp_path):
        disk = str(tmp_path / "cache")
        with make_service(source, disk_dir=disk) as svc:
            list(svc.stream(0, 9))
        # New service, cold memory: cached frames come from disk ...
        with make_service(source, disk_dir=disk) as svc2:
            assert svc2.request(7).source == "disk"
            # ... and an uncached frame resumes from the disk checkpoint
            # with exactly the missing renders, still bit-identical.
            response = svc2.request(10)
            assert svc2.stats.renders <= 3  # frames 9, 10 (+ race slack)
            reference = one_shot_frame(CONFIG, source, 10, dt=svc2.dt)
            assert np.array_equal(response.texture, reference.display)

    def test_manifest_records_frames_and_checkpoints(self, source, tmp_path):
        disk = str(tmp_path / "cache")
        with make_service(source, disk_dir=disk) as svc:
            list(svc.stream(0, 9))
            manifest = svc.manifest()
            path = svc.write_manifest()
        assert manifest["checkpoints"] == [4, 8]
        assert sorted(manifest["cached_frames"]) == list(range(9))
        assert path is not None

    def test_checkpointing_can_be_disabled(self, source):
        with make_service(source, checkpoint_every=0) as svc:
            list(svc.stream(0, 6))
            assert svc.manifest()["checkpoints"] == []
            assert len(svc.checkpoints) == 0


class TestFailureRecovery:
    def test_render_failure_does_not_poison_later_walks(self, source):
        # A synthesis failure lands *after* the advection mutated the
        # evolution state; pooling that animator would double-advect the
        # failed frame on retry and cache wrong bytes under correct keys.
        with make_service(source) as svc:
            calls = {"n": 0}
            orig = svc.runtime.synthesize

            def flaky(field, particles):
                calls["n"] += 1
                if calls["n"] >= 3:
                    raise RuntimeError("backend died mid-synthesis")
                return orig(field, particles)

            svc.runtime.synthesize = flaky
            with pytest.raises(RuntimeError, match="mid-synthesis"):
                list(svc.stream(0, 5))
            svc.runtime.synthesize = orig
            frames = {r.frame: r.texture for r in svc.stream(0, 5)}
            for t in (2, 4):
                reference = one_shot_frame(CONFIG, source, t, dt=svc.dt)
                assert np.array_equal(frames[t], reference.display), f"frame {t}"

    def test_walk_over_warm_cache_still_checkpoints(self, source, tmp_path):
        import os

        disk = str(tmp_path / "cache")
        with make_service(source, disk_dir=disk, checkpoint_every=0) as svc:
            list(svc.stream(0, 8))  # warm the disk tier, no checkpoints
        # Fresh process, cold memory; one missing entry forces a walk
        # that passes the other (disk-cached) frames.
        with make_service(
            source, disk_dir=disk, checkpoint_every=4, memory_budget_bytes=0
        ) as svc2:
            missing = svc2.sequence.frame_digest(2)
            os.unlink(os.path.join(disk, f"{missing}.npz"))
            frames = list(svc2.stream(0, 8))
            assert [f.frame for f in frames] == list(range(8))
        # close() joined the walk; cache-hit frames inside it are
        # bookkept and checkpointed too — a warm-cache replay leaves
        # resume points behind.
        manifest = svc2.manifest()
        assert sorted(manifest["cached_frames"]) == list(range(2, 8))
        assert manifest["checkpoints"] == [4, 8]


class TestCoalescing:
    def test_concurrent_overlapping_scrubs_share_one_walk(self, source):
        slow = threading.Event()

        def slow_source(t):
            # First load stalls the walk long enough for the second
            # client to arrive and join.
            if t == 1:
                slow.wait(0.2)
            return source(t)

        with AnimationService(
            slow_source, CONFIG, length=N_FRAMES, checkpoint_every=4
        ) as svc:
            results = {}

            def client(name, a, b):
                results[name] = list(svc.stream(a, b))

            t1 = threading.Thread(target=client, args=("a", 0, 12))
            t2 = threading.Thread(target=client, args=("b", 4, 10))
            t1.start()
            t2.start()
            slow.set()
            t1.join()
            t2.join()
            # Every frame of both (overlapping) scrubs served, renders
            # not duplicated per client.
            assert [f.frame for f in results["a"]] == list(range(12))
            assert [f.frame for f in results["b"]] == list(range(4, 10))
            assert svc.stats.renders <= 14  # 12 distinct + race slack
        for f in results["b"]:
            matching = results["a"][f.frame]
            assert np.array_equal(f.texture, matching.texture)

    def test_prefetch_streams_ahead(self, source):
        with make_service(source) as svc:
            created = svc.prefetch(0, 6)
            assert created
            frames = list(svc.stream(0, 6))
            assert [f.frame for f in frames] == list(range(6))
            assert svc.prefetch(0, 6) is False  # fully cached now


class TestReplanConcurrency:
    def test_replan_racing_active_scrub_is_safe(self):
        # Regression: replan_if_drifted used to rebuild the sequence,
        # runtime and sequence id one attribute at a time, so a scrub
        # racing the swap could key a frame with one plan's fingerprint
        # and render it with the next plan's runtime.  The snapshot-swap
        # publishes a whole _PlanContext at once: racing re-plans must
        # never drop/duplicate a frame or tear an identity.
        from repro.core.config import BentConfig
        from repro.parallel.planner import DecompositionPlanner
        from repro.service.admission import LatencyPredictor

        # The drift recipe proven in tests/service/test_auto_plan.py:
        # bent spots are expensive enough per spot that the plan flips
        # between serial (fast host) and parallel (slow host); the
        # fixture's 16x16 fields are too cheap to flip, so this test
        # brings its own 32x32 fields.
        config = SpotNoiseConfig(
            n_spots=400,
            texture_size=64,
            seed=0,
            backend="auto",
            spot_mode="bent",
            bent=BentConfig(n_along=16, n_across=5, length_cells=2.0, width_cells=0.8),
        )
        fields = {t: random_smooth_field(seed=500 + t, n=32) for t in range(8)}
        field0 = fields[0]
        shape = tuple(field0.grid.shape)
        predictor = LatencyPredictor(alpha=1.0)
        raw = predictor.predict(config, field=field0)
        predictor.observe(config, actual_s=raw * 1e-3, grid_shape=shape)
        svc = AnimationService(
            fields.__getitem__, config, length=8, checkpoint_every=0,
            predictor=predictor, planner=DecompositionPlanner(host_workers=8),
        )
        errors = []
        started = threading.Event()

        def churn():
            # Alternate six-orders-of-magnitude drift so every check
            # escapes the band: each call swaps the plan context while
            # the scrub below is mid-stream.
            for flip in range(6):
                predictor.observe(
                    config,
                    actual_s=raw * (1e3 if flip % 2 == 0 else 1e-3),
                    grid_shape=shape,
                )
                try:
                    svc.replan_if_drifted()
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)
                    return
                started.set()
                time.sleep(0.01)

        churner = threading.Thread(target=churn)
        try:
            churner.start()
            assert started.wait(10.0)
            frames = list(svc.stream(0, 8))
            churner.join(30.0)
            assert not churner.is_alive()
            assert errors == []
            assert [f.frame for f in frames] == list(range(8))
            assert svc.replans >= 1
            # Every frame was keyed by the identity that rendered it.
            fingerprints = {f.key.config_fingerprint for f in frames}
            assert len(fingerprints) <= svc.replans + 1
            # With the churn quiesced, the surviving identity serves
            # bit-identically and matches a one-shot render.
            again = {f.frame: f.texture for f in svc.stream(0, 8)}
            repeat = {f.frame: f.texture for f in svc.stream(0, 8)}
            for t in range(8):
                assert np.array_equal(again[t], repeat[t])
            assert svc.verify(3)
        finally:
            churner.join(30.0)
            svc.close()


class TestVerifyEvery:
    def test_verify_every_checks_and_passes(self, source):
        with make_service(source, verify_every=2) as svc:
            list(svc.stream(0, 5))  # raises inside the walk on divergence

    def test_unseeded_config_rejected(self, source):
        with pytest.raises(AnimationServiceError):
            AnimationService(source, CONFIG.with_overrides(seed=None))
