"""Range coalescing and streaming delivery of the sequence scheduler."""

import threading
import time

import pytest

from repro.anim.scheduler import SequenceFlight, SequenceScheduler
from repro.errors import AnimationServiceError, ServiceError


def stepped_runner(release: threading.Event, rendered: list):
    """A flight job that renders one 'frame' per release-check cycle."""

    def run(flight: SequenceFlight) -> None:
        while True:
            t = flight.next_frame()
            if t is None:
                return
            release.wait(5.0)
            rendered.append(t)
            flight.publish(t, f"tex-{t}")

    return run


class TestCoalescing:
    def test_overlapping_range_joins_inflight_walk(self):
        release = threading.Event()
        rendered = []
        with SequenceScheduler() as sched:
            flight_a, created_a = sched.stream(
                "seq", 0, 10, stepped_runner(release, rendered)
            )
            assert created_a
            # The scrub of [3, 8) joins the in-flight [0, 10) walk.
            flight_b, created_b = sched.stream(
                "seq", 3, 8, stepped_runner(release, rendered)
            )
            assert flight_b is flight_a
            assert not created_b
            assert sched.joined == 1
            release.set()
            assert flight_a.wait_frame(7, timeout=5.0) == "tex-7"
            assert flight_a.wait_frame(9, timeout=5.0) == "tex-9"
        # One walk rendered every frame exactly once.
        assert rendered == list(range(10))

    def test_join_extends_target(self):
        release = threading.Event()
        rendered = []
        with SequenceScheduler() as sched:
            flight, _ = sched.stream("seq", 0, 4, stepped_runner(release, rendered))
            joined, created = sched.stream(
                "seq", 2, 9, stepped_runner(release, rendered)
            )
            assert joined is flight and not created
            release.set()
            assert flight.wait_frame(8, timeout=5.0) == "tex-8"
        assert rendered == list(range(9))

    def test_finished_flight_not_joined(self):
        release = threading.Event()
        release.set()
        rendered = []
        with SequenceScheduler() as sched:
            flight, _ = sched.stream("seq", 0, 3, stepped_runner(release, rendered))
            flight.wait_frame(2, timeout=5.0)
            # Wait for retirement (the job's finally runs after publish).
            deadline = time.time() + 5.0
            while sched.inflight() and time.time() < deadline:
                time.sleep(0.005)
            second, created = sched.stream(
                "seq", 0, 3, stepped_runner(release, rendered)
            )
            assert created
            assert second is not flight

    def test_request_behind_walk_start_gets_new_flight(self):
        # Curtail-and-union: the old flight stops claiming frames (its
        # remaining range is handed to the replacement), and the new
        # flight covers the union [1, 8) — so the behind request is
        # served without two walks racing over the same frames.
        release = threading.Event()
        rendered = []
        with SequenceScheduler() as sched:
            flight, _ = sched.stream("seq", 5, 8, stepped_runner(release, rendered))
            behind, created = sched.stream(
                "seq", 1, 3, stepped_runner(release, rendered)
            )
            assert created
            assert behind is not flight
            assert behind.target == 8  # union of [1, 3) and the curtailed [5, 8)
            release.set()
            assert behind.wait_frame(2, timeout=5.0) == "tex-2"
            assert behind.wait_frame(7, timeout=5.0) == "tex-7"

    def test_overlapping_behind_request_never_double_renders(self):
        # Regression: [8, 24) arriving while [0, 16) streams — with the
        # walk already past 8 and frame 8 evicted from the buffer — used
        # to leave the old walk rendering its remainder [10, 16) while
        # the replacement walked [8, 24): the shared boundary frames
        # were claimed by both walks and rendered (and delivered) twice.
        # Now the old flight is curtailed at its position and the
        # replacement covers the union, so every not-yet-claimed frame
        # belongs to exactly one walk.  (Frames the old walk already
        # published may be re-walked — those are cache hits at the
        # service layer, never re-renders.)
        gate = threading.Event()
        rendered = []
        flights = []

        def runner(flight: SequenceFlight) -> None:
            while True:
                if flight is flights[0] and flight.position >= 10:
                    gate.wait(5.0)  # stall the first walk *before* it claims 10
                t = flight.next_frame()
                if t is None:
                    return
                rendered.append(t)
                flight.publish(t, f"tex-{t}")

        with SequenceScheduler(buffer_limit=1) as sched:
            first, _ = sched.stream("seq", 0, 16, runner)
            flights.append(first)
            assert first.wait_frame(9, timeout=5.0) == "tex-9"
            second, created = sched.stream("seq", 8, 24, runner)
            assert created and second is not first
            assert second.target == 24  # union already covered by [8, 24)
            gate.set()
            assert second.wait_frame(23, timeout=5.0) == "tex-23"
        # The curtailed walk claimed nothing past its position: every
        # frame of the old remainder and the extension rendered once.
        boundary = [t for t in rendered if t >= 10]
        assert sorted(boundary) == list(range(10, 24))


class TestDelivery:
    def test_error_propagates_to_waiters(self):
        def failing(flight: SequenceFlight) -> None:
            t = flight.next_frame()
            flight.publish(t, "ok")
            raise RuntimeError("render exploded")

        with SequenceScheduler() as sched:
            flight, _ = sched.stream("seq", 0, 5, failing)
            assert flight.wait_frame(0, timeout=5.0) == "ok"
            with pytest.raises(RuntimeError, match="render exploded"):
                flight.wait_frame(1, timeout=5.0)

    def test_wait_timeout(self):
        stall = threading.Event()

        def stalled(flight: SequenceFlight) -> None:
            stall.wait(5.0)
            while flight.next_frame() is not None:
                flight.publish(flight.position, "late")

        with SequenceScheduler() as sched:
            flight, _ = sched.stream("seq", 0, 2, stalled)
            with pytest.raises(ServiceError, match="timed out"):
                flight.wait_frame(0, timeout=0.05)
            stall.set()

    def test_flight_ended_before_frame_reports_none(self):
        flight = SequenceFlight("seq", 0, 2)
        flight.finish()
        # The caller (AnimationService) falls back to the cache / a new
        # flight on None; the flight never blocks for unreachable frames.
        assert flight.wait_frame(1, timeout=1.0) is None

    def test_join_refused_once_walk_passed_and_evicted(self):
        flight = SequenceFlight("seq", 0, 100, buffer_limit=2)
        for t in range(10):
            flight.publish(t, f"tex-{t}")
        assert flight.try_join(9, 20)       # still buffered
        assert flight.try_join(10, 20)      # ahead of the walk
        # Passed and evicted: refusing lets the registry start a fresh
        # flight instead of waiting on one that never looks back.
        assert not flight.try_join(3, 20)

    def test_buffer_bounded_and_passed_frames_fall_back(self):
        flight = SequenceFlight("seq", 0, 100, buffer_limit=4)
        for t in range(10):
            flight.publish(t, f"tex-{t}")
        assert len(flight.frames) == 4  # only the most recent window
        assert flight.wait_frame(9) == "tex-9"
        assert flight.wait_frame(2) is None  # evicted: the walk passed it
        assert flight.wait_frame(3, timeout=0.01) is None  # no blocking either

    def test_wait_timeout_is_a_total_deadline(self):
        # A walk that publishes steadily must not keep re-arming the
        # caller's timeout: frame 50 is ~5 s away but timeout is 0.2 s.
        flight = SequenceFlight("seq", 0, 100)
        stop = threading.Event()

        def slow_walk():
            t = 0
            while not stop.is_set() and t < 100:
                flight.publish(t, f"tex-{t}")
                t += 1
                time.sleep(0.02)

        worker = threading.Thread(target=slow_walk, daemon=True)
        worker.start()
        t0 = time.monotonic()
        with pytest.raises(ServiceError, match="timed out"):
            flight.wait_frame(50, timeout=0.2)
        assert time.monotonic() - t0 < 2.0
        stop.set()
        worker.join()

    def test_empty_range_rejected(self):
        with SequenceScheduler() as sched:
            with pytest.raises(AnimationServiceError):
                sched.stream("seq", 3, 3, lambda flight: None)
