"""The incremental renderer's bit-identity and reuse contracts."""

import numpy as np
import pytest

from repro.advection.lifecycle import LifeCyclePolicy
from repro.anim.incremental import IncrementalAnimator, one_shot_frame
from repro.core.config import SpotNoiseConfig
from repro.errors import AnimationServiceError
from repro.fields.analytic import constant_field, random_smooth_field

CONFIG = SpotNoiseConfig(n_spots=120, texture_size=32, seed=7)


def make_source(n=12, seed=80):
    cache = {t: random_smooth_field(seed=seed + t, n=20) for t in range(n)}
    return cache.__getitem__


class TestBitIdentity:
    @pytest.mark.parametrize("frame", [0, 3, 7])
    def test_incremental_equals_one_shot(self, frame):
        source = make_source()
        with IncrementalAnimator(CONFIG, source) as animator:
            results = list(animator.render_range(0, frame + 1))
        reference = one_shot_frame(CONFIG, source, frame)
        assert np.array_equal(results[frame].texture, reference.texture)
        assert np.array_equal(results[frame].display, reference.display)

    def test_bit_identity_with_respawning_lifecycle(self):
        # Lifetimes + fading exercise every RNG consumer (aging respawns,
        # staggered birth ages) — the hard case for state threading.
        policy = LifeCyclePolicy.advected(lifetime=4, fade_frames=2)
        source = make_source()
        with IncrementalAnimator(CONFIG, source, policy=policy) as animator:
            result = list(animator.render_range(0, 9))[-1]
            animator.verify_frame(result)  # raises on divergence

    def test_verify_frame_detects_divergence(self):
        source = make_source()
        with IncrementalAnimator(CONFIG, source) as animator:
            result = list(animator.render_range(0, 3))[-1]
            broken = type(result)(
                texture=result.texture + 1e-9,
                display=result.display,
                image=result.image,
                report=result.report,
                frame_index=result.frame_index,
            )
            with pytest.raises(AnimationServiceError):
                animator.verify_frame(broken)


class TestStateThreading:
    def test_checkpoint_restore_resumes_bit_identically(self):
        source = make_source()
        with IncrementalAnimator(CONFIG, source) as animator:
            list(animator.render_range(0, 4))
            checkpoint = animator.state()
            expected = [r.texture for r in animator.render_range(4, 8)]
        with IncrementalAnimator(CONFIG, source) as fresh:
            fresh.restore(checkpoint)
            assert fresh.position == 4
            got = [r.texture for r in fresh.render_range(4, 8)]
        for e, g in zip(expected, got):
            assert np.array_equal(e, g)

    def test_advance_backwards_rejected(self):
        source = make_source()
        with IncrementalAnimator(CONFIG, source) as animator:
            list(animator.render_range(0, 3))
            with pytest.raises(AnimationServiceError):
                animator.advance_to(1)

    def test_reset_replays_from_scratch(self):
        source = make_source()
        with IncrementalAnimator(CONFIG, source) as animator:
            first = list(animator.render_range(0, 3))
            animator.reset()
            again = list(animator.render_range(0, 3))
        for a, b in zip(first, again):
            assert np.array_equal(a.texture, b.texture)

    def test_restore_rejects_wrong_dt(self):
        source = make_source()
        with IncrementalAnimator(CONFIG, source) as animator:
            state = animator.state()
        with IncrementalAnimator(CONFIG, source, dt=state.dt * 2) as other:
            with pytest.raises(AnimationServiceError):
                other.restore(state)

    def test_unseeded_config_rejected(self):
        source = make_source()
        with pytest.raises(AnimationServiceError):
            IncrementalAnimator(CONFIG.with_overrides(seed=None), source)


class TestUnchangedFrameReuse:
    def test_static_policy_reuses_unchanged_frames(self):
        field = constant_field(1.0, 0.5, n=20)
        policy = LifeCyclePolicy.default_spot_noise()
        with IncrementalAnimator(CONFIG, lambda t: field, policy=policy) as animator:
            results = list(animator.render_range(0, 4))
            assert animator.synthesized_frames == 1
            assert animator.reused_frames == 3
            # Reuse is provably identical, including against one-shot.
            animator.verify_frame(results[-1])
        for r in results[1:]:
            assert np.array_equal(r.texture, results[0].texture)

    def test_advected_policy_never_reuses(self):
        field = constant_field(1.0, 0.5, n=20)
        with IncrementalAnimator(CONFIG, lambda t: field) as animator:
            list(animator.render_range(0, 3))
            assert animator.reused_frames == 0
            assert animator.synthesized_frames == 3

    def test_static_policy_resynthesises_on_content_change(self):
        fields = {0: constant_field(1.0, 0.0, n=20), 1: constant_field(1.0, 0.0, n=20),
                  2: constant_field(0.0, 1.0, n=20)}
        policy = LifeCyclePolicy.default_spot_noise()
        with IncrementalAnimator(CONFIG, fields.__getitem__, policy=policy) as animator:
            list(animator.render_range(0, 3))
            # Frame 1 is byte-equal to frame 0 (reused); frame 2 differs.
            assert animator.reused_frames == 1
            assert animator.synthesized_frames == 2


class TestOneShot:
    def test_negative_frame_rejected(self):
        with pytest.raises(AnimationServiceError):
            one_shot_frame(CONFIG, make_source(), -1)
