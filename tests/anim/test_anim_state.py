"""Pipeline evolution state: capture, restore, exact serialisation."""

import numpy as np
import pytest

from repro.anim.state import PipelineState
from repro.core.config import SpotNoiseConfig
from repro.core.pipeline import SpotNoisePipeline
from repro.errors import AnimationServiceError, PipelineError
from repro.fields.analytic import random_smooth_field
from repro.service.cache import DiskBlobStore

CONFIG = SpotNoiseConfig(n_spots=120, texture_size=32, seed=11)


def fields(n=10, seed=50):
    return [random_smooth_field(seed=seed + t, n=20) for t in range(n)]


class TestCaptureRestore:
    def test_restored_pipeline_continues_bit_identically(self):
        fs = fields()
        a = SpotNoisePipeline(CONFIG, fs[0])
        for t in range(3):
            a.step(fs[t])
        state = PipelineState.capture(a)
        expected = [a.step(fs[t]) for t in range(3, 6)]

        b = SpotNoisePipeline(CONFIG, fs[0])
        b.step(fs[0])  # desynchronise deliberately before restoring
        state.restore(b)
        assert b.frame_index == 3
        got = [b.step(fs[t]) for t in range(3, 6)]
        for e, g in zip(expected, got):
            assert np.array_equal(e.texture, g.texture)
            assert np.array_equal(e.display, g.display)
        a.close()
        b.close()

    def test_capture_copies_arrays(self):
        fs = fields()
        pipe = SpotNoisePipeline(CONFIG, fs[0])
        state = PipelineState.capture(pipe)
        pipe.step(fs[0])
        # The snapshot must not see the subsequent advection.
        assert not np.array_equal(state.positions, pipe.particles.positions)
        pipe.close()

    def test_rng_state_round_trips(self):
        fs = fields()
        pipe = SpotNoisePipeline(CONFIG, fs[0])
        pipe.step(fs[0])
        state = PipelineState.capture(pipe)
        draws = pipe.rng.integers(0, 1 << 30, size=4)
        state.restore(pipe)
        assert np.array_equal(pipe.rng.integers(0, 1 << 30, size=4), draws)
        pipe.close()

    def test_restore_rejects_mismatched_particle_count(self):
        fs = fields()
        pipe = SpotNoisePipeline(CONFIG, fs[0])
        state = PipelineState.capture(pipe)
        other = SpotNoisePipeline(CONFIG.with_overrides(n_spots=60), fs[0])
        with pytest.raises(PipelineError):
            state.restore(other)
        pipe.close()
        other.close()


class TestSerialisation:
    def test_array_bundle_round_trip(self):
        fs = fields()
        pipe = SpotNoisePipeline(CONFIG, fs[0])
        for t in range(4):
            pipe.step(fs[t])
        state = PipelineState.capture(pipe)
        again = PipelineState.from_arrays(state.to_arrays())
        assert again == state
        pipe.close()

    def test_disk_round_trip_is_exact(self, tmp_path):
        fs = fields()
        pipe = SpotNoisePipeline(CONFIG, fs[0])
        pipe.step(fs[0])
        state = PipelineState.capture(pipe)
        store = DiskBlobStore(tmp_path / "blobs")
        store.put("abc", state.to_arrays())
        loaded = PipelineState.from_arrays(store.get("abc"))
        assert loaded == state
        # ... and the loaded state drives identical frames.
        expected = pipe.step(fs[1])
        fresh = SpotNoisePipeline(CONFIG, fs[0])
        loaded.restore(fresh)
        assert np.array_equal(fresh.step(fs[1]).texture, expected.texture)
        pipe.close()
        fresh.close()

    def test_malformed_bundle_rejected(self):
        with pytest.raises(AnimationServiceError):
            PipelineState.from_arrays({"positions": np.zeros((3, 2))})


class TestBlobStore:
    def test_missing_and_corrupt_read_as_miss(self, tmp_path):
        store = DiskBlobStore(tmp_path / "blobs")
        assert store.get("nope") is None
        path = tmp_path / "blobs" / "bad.npz"
        path.write_bytes(b"not a zipfile")
        assert store.get("bad") is None
        assert not path.exists()  # corrupt entry dropped
        assert store.misses == 2
