"""Sequence identity: chain digests, keys, manifest."""

import json

import pytest

from repro.advection.lifecycle import LifeCyclePolicy
from repro.anim.sequence import FrameSequence
from repro.core.config import SpotNoiseConfig
from repro.errors import AnimationServiceError
from repro.fields.analytic import random_smooth_field
from repro.service.keys import SequenceKey, chain_digest

CONFIG = SpotNoiseConfig(n_spots=100, texture_size=32, seed=5)


def make_fields(n=8, seed=30):
    return [random_smooth_field(seed=seed + t, n=16) for t in range(n)]


class TestChain:
    def test_prefix_sharing(self):
        fields = make_fields()
        forked = list(fields)
        forked[4] = random_smooth_field(seed=999, n=16)
        a = FrameSequence(fields.__getitem__, CONFIG, dt=0.1)
        b = FrameSequence(forked.__getitem__, CONFIG, dt=0.1)
        for t in range(4):
            assert a.chain(t) == b.chain(t)
            assert a.frame_digest(t) == b.frame_digest(t)
        for t in range(4, 8):
            # One changed field re-addresses every later frame: frame t
            # depends on the whole prefix, and the identity says so.
            assert a.chain(t) != b.chain(t)
            assert a.frame_digest(t) != b.frame_digest(t)

    def test_chain_is_order_sensitive(self):
        d1, d2 = "a" * 64, "b" * 64
        assert chain_digest(chain_digest(None, d1), d2) != chain_digest(
            chain_digest(None, d2), d1
        )

    def test_chain_memoised(self):
        loads = []
        fields = make_fields()

        def source(t):
            loads.append(t)
            return fields[t]

        seq = FrameSequence(source, CONFIG, dt=0.1)
        seq.chain(5)
        seq.chain(5)
        seq.chain(3)
        assert loads == [0, 1, 2, 3, 4, 5]
        assert seq.known_frames() == 6


class TestKeys:
    def test_identity_covers_config_dt_and_policy(self):
        fields = make_fields()
        base = FrameSequence(fields.__getitem__, CONFIG, dt=0.1)
        other_config = FrameSequence(
            fields.__getitem__, CONFIG.with_overrides(n_spots=101), dt=0.1
        )
        other_dt = FrameSequence(fields.__getitem__, CONFIG, dt=0.2)
        other_policy = FrameSequence(
            fields.__getitem__, CONFIG, dt=0.1,
            policy=LifeCyclePolicy.advected(lifetime=9),
        )
        digests = {
            seq.frame_digest(2)
            for seq in (base, other_config, other_dt, other_policy)
        }
        assert len(digests) == 4

    def test_texture_and_state_digests_differ(self):
        key = SequenceKey("c" * 64, "f" * 64, frame=3, dt=0.1)
        assert key.digest != key.state_digest

    def test_checkpoint_boundary_validation(self):
        seq = FrameSequence(make_fields().__getitem__, CONFIG, dt=0.1)
        with pytest.raises(AnimationServiceError):
            seq.checkpoint_digest(0)
        assert seq.checkpoint_digest(3) == seq.frame_key(2).state_digest

    def test_length_bounds(self):
        seq = FrameSequence(make_fields().__getitem__, CONFIG, dt=0.1, length=8)
        seq.check_frame(7)
        with pytest.raises(AnimationServiceError):
            seq.check_frame(8)
        with pytest.raises(AnimationServiceError):
            seq.check_frame(-1)

    def test_unseeded_config_rejected(self):
        with pytest.raises(AnimationServiceError):
            FrameSequence(
                make_fields().__getitem__, CONFIG.with_overrides(seed=None), dt=0.1
            )


class TestManifest:
    def test_manifest_contents(self):
        seq = FrameSequence(make_fields().__getitem__, CONFIG, dt=0.1, length=8)
        seq.chain(3)
        manifest = seq.manifest(cached_frames={1: "x" * 64}, checkpoints=[4])
        assert manifest["known_frames"] == 4
        assert manifest["length"] == 8
        assert manifest["cached_frames"] == {1: "x" * 64}
        assert manifest["checkpoints"] == [4]
        assert manifest["config_fingerprint"] == CONFIG.fingerprint()

    def test_write_manifest_round_trips(self, tmp_path):
        seq = FrameSequence(make_fields().__getitem__, CONFIG, dt=0.1, length=8)
        seq.chain(2)
        path = seq.write_manifest(tmp_path, checkpoints=[2])
        with open(path, encoding="utf-8") as fh:
            loaded = json.load(fh)
        assert loaded["checkpoints"] == [2]
        assert loaded["chain"] == [seq.chain(t) for t in range(3)]
