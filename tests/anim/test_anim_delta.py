"""Delta frame transport: bit-exactness, fallback, manifest, cadence pricing.

The exactness oracle is the incremental renderer: every decoded frame
must equal the :func:`one_shot_frame` reference byte-for-byte, for
randomized configs, policies and keyframe cadences — including walks
that resumed mid-sequence (re-anchored keyframes) and the missing-chunk
fallback path.
"""

import numpy as np
import pytest

from repro.advection.lifecycle import LifeCyclePolicy
from repro.anim import AnimationService, one_shot_frame
from repro.anim.delta import (
    DeltaDecoder,
    DeltaEncoder,
    DeltaManifest,
    DeltaTransport,
)
from repro.core.config import SpotNoiseConfig
from repro.errors import AnimationServiceError
from repro.fields.analytic import random_smooth_field
from repro.service.cache import MemoryBlobStore

N_FRAMES = 12


def make_source(seed: int, n: int = 12):
    cache = {t: random_smooth_field(seed=seed + t, n=n) for t in range(N_FRAMES)}
    return cache.__getitem__


def canonical(texture) -> bytes:
    return np.ascontiguousarray(texture, dtype=np.float64).tobytes()


class TestCodecExactness:
    @pytest.mark.parametrize("codec", ["zlib", "bz2"])
    def test_round_trip_bit_exact(self, codec):
        rng = np.random.default_rng(3)
        store = MemoryBlobStore()
        enc = DeltaEncoder(store, "seq", keyframe_every=4, codec=codec,
                           chunk_bytes=2048)
        frames = [rng.random((16, 16)) for _ in range(9)]
        for t, f in enumerate(frames):
            enc.add_frame(t, f, f"digest-{t}")
        for t, f in enumerate(frames):
            assert enc.decode(t).tobytes() == canonical(f)

    def test_property_randomized_configs_policies_and_cadence(self):
        # Property-style sweep: random synthesis configs, life-cycle
        # policies and cadences (including auto).  Every frame the
        # service streams is delta-encoded; every decode must be
        # byte-identical to the one-shot reference render.
        rng = np.random.default_rng(17)
        for trial in range(3):
            config = SpotNoiseConfig(
                n_spots=int(rng.integers(40, 90)),
                texture_size=int(rng.choice([16, 24, 32])),
                seed=int(rng.integers(0, 1000)),
            )
            policy = LifeCyclePolicy(
                lifetime=int(rng.integers(4, 40)),
                fade_frames=int(rng.integers(0, 3)),
            )
            delta_every = int(rng.choice([0, 1, 3, 8]))
            source = make_source(seed=500 + 31 * trial, n=12)
            with AnimationService(
                source, config, policy=policy, length=N_FRAMES,
                checkpoint_every=4, delta_every=delta_every,
            ) as svc:
                n = int(rng.integers(5, N_FRAMES))
                list(svc.stream(0, n))
                enc = svc._ctx.delta_encoder
                assert len(enc) == n
                for t in range(n):
                    reference = one_shot_frame(
                        config, source, t, dt=svc.dt, policy=policy
                    )
                    decoded = enc.decode(t)
                    assert decoded is not None
                    assert decoded.tobytes() == canonical(reference.display), (
                        f"trial {trial} frame {t} cadence {delta_every}"
                    )

    def test_resume_mid_sequence_reanchors_and_stays_exact(self):
        # A walk that starts mid-sequence (seek) feeds the encoder a
        # non-consecutive frame: it must re-anchor as a keyframe so the
        # frame is decodable without the (never-encoded) predecessors.
        config = SpotNoiseConfig(n_spots=60, texture_size=24, seed=5)
        source = make_source(seed=900, n=12)
        with AnimationService(
            source, config, length=N_FRAMES, checkpoint_every=4, delta_every=8,
        ) as svc:
            svc.request(6)  # seek: resume/replay renders only frame 6
            enc = svc._ctx.delta_encoder
            assert enc.manifest().frames[6].kind == "key"
            list(svc.stream(0, 9))  # now fill the range around it
            for t in range(9):
                reference = one_shot_frame(config, source, t, dt=svc.dt)
                assert enc.decode(t).tobytes() == canonical(reference.display)

    def test_add_frame_is_idempotent_per_frame(self):
        rng = np.random.default_rng(8)
        store = MemoryBlobStore()
        enc = DeltaEncoder(store, "seq", keyframe_every=4)
        frames = [rng.random((8, 8)) for _ in range(3)]
        for t, f in enumerate(frames):
            first = enc.add_frame(t, f, f"d{t}")
        again = enc.add_frame(1, frames[1], "d1")
        assert again is enc.manifest().frames[1]
        assert len(enc) == 3
        # The refreshed anchor keeps successors delta-encodable.
        enc.add_frame(2, frames[2], "d2")
        assert enc.decode(2).tobytes() == canonical(frames[2])

    def test_identical_frames_dedup_to_shared_chunks(self):
        store = MemoryBlobStore()
        enc = DeltaEncoder(store, "seq", keyframe_every=1, chunk_bytes=1024)
        frame = np.full((16, 16), 0.5)
        enc.add_frame(0, frame, "d0")
        shipped_after_first = enc.stats()["shipped_bytes"]
        enc.add_frame(1, frame, "d1")  # keyframe with identical bytes
        assert enc.stats()["shipped_bytes"] == shipped_after_first
        assert enc.stats()["dedup_chunks"] > 0

    def test_validation(self):
        store = MemoryBlobStore()
        with pytest.raises(AnimationServiceError):
            DeltaEncoder(store, "s", codec="lz4")
        with pytest.raises(AnimationServiceError):
            DeltaEncoder(store, "s", keyframe_every=-1)
        with pytest.raises(AnimationServiceError):
            DeltaEncoder(store, "s", chunk_bytes=12)  # not a multiple of 8
        enc = DeltaEncoder(store, "s")
        with pytest.raises(AnimationServiceError):
            enc.add_frame(-1, np.zeros((4, 4)), "d")
        enc.add_frame(0, np.zeros((4, 4)), "d")
        with pytest.raises(AnimationServiceError):
            enc.add_frame(1, np.zeros((8, 8)), "d")  # shape drift


class TestManifestAndDecoder:
    def test_manifest_round_trip_and_client_decode(self):
        rng = np.random.default_rng(11)
        store = MemoryBlobStore()
        transport = DeltaTransport(store, keyframe_every=4)
        enc = transport.encoder("seq-a")
        frames = [rng.random((16, 16)) for _ in range(6)]
        for t, f in enumerate(frames):
            enc.add_frame(t, f, f"d{t}")
        manifest = DeltaManifest.from_dict(enc.manifest().to_dict())
        assert manifest.sequence == "seq-a"
        assert manifest.keyframe_every == 4
        assert manifest.json_bytes() > 0
        dec = transport.decoder(manifest)
        for t, f in enumerate(frames):
            assert dec.decode(t).tobytes() == canonical(f)

    def test_missing_chunk_yields_none_never_wrong_bytes(self):
        rng = np.random.default_rng(12)
        store = MemoryBlobStore()
        enc = DeltaEncoder(store, "seq", keyframe_every=4, chunk_bytes=1024)
        frames = [rng.random((16, 16)) for _ in range(6)]
        for t, f in enumerate(frames):
            enc.add_frame(t, f, f"d{t}")
        manifest = enc.manifest()
        dec = DeltaDecoder(store, manifest)
        # Evict a *keyframe* chunk: the whole group [4, 6) is undecodable.
        store.evict(manifest.frames[4].chunks[0].digest)
        assert dec.decode(4) is None
        assert dec.decode(5) is None
        assert dec.decode(3) is not None  # earlier group unaffected
        assert dec.decode(7) is None  # never-encoded frame

    def test_corrupt_chunk_yields_none(self):
        rng = np.random.default_rng(13)
        store = MemoryBlobStore()
        enc = DeltaEncoder(store, "seq", keyframe_every=2)
        enc.add_frame(0, rng.random((8, 8)), "d0")
        manifest = enc.manifest()
        digest = manifest.frames[0].chunks[0].digest
        store.put_bytes(digest, b"\x00garbage")
        assert DeltaDecoder(store, manifest).decode(0) is None

    def test_version_and_kind_guard(self):
        with pytest.raises(AnimationServiceError):
            DeltaManifest.from_dict({"kind": "something-else"})
        payload = {
            "kind": DeltaManifest.KIND, "version": 99, "sequence": "s",
            "codec": "zlib", "level": 6, "chunk_bytes": 8, "keyframe_every": 1,
            "shape": [4, 4], "dtype": "<f8", "frames": {},
        }
        with pytest.raises(AnimationServiceError):
            DeltaManifest.from_dict(payload)


class TestServiceIntegration:
    CONFIG = SpotNoiseConfig(n_spots=60, texture_size=24, seed=7)

    def test_cache_miss_decodes_from_delta_store(self):
        source = make_source(seed=700, n=12)
        with AnimationService(
            source, self.CONFIG, length=N_FRAMES, delta_every=4,
        ) as svc:
            first = {f.frame: f.texture for f in svc.stream(0, 6)}
            renders = svc.stats.renders
            svc.cache.memory.clear()  # drop every texture; chunks remain
            again = list(svc.stream(0, 6))
            assert svc.stats.renders == renders  # no re-render
            assert {f.source for f in again} == {"delta"}
            for f in again:
                assert f.texture.tobytes() == first[f.frame].tobytes()

    def test_missing_chunk_falls_back_to_render(self):
        source = make_source(seed=701, n=12)
        with AnimationService(
            source, self.CONFIG, length=N_FRAMES, delta_every=4,
        ) as svc:
            reference = {f.frame: f.texture for f in svc.stream(0, 4)}
            enc = svc._ctx.delta_encoder
            for entry in enc.manifest().frames.values():
                for chunk in entry.chunks:
                    svc.delta_transport.store.evict(chunk.digest)
            svc.cache.memory.clear()
            response = svc.request(2)
            assert response.source in ("stream", "coalesced")
            assert response.texture.tobytes() == reference[2].tobytes()

    def test_prefetch_skips_delta_encoded_frames(self):
        source = make_source(seed=702, n=12)
        with AnimationService(
            source, self.CONFIG, length=N_FRAMES, delta_every=4,
        ) as svc:
            list(svc.stream(0, 6))
            svc.cache.memory.clear()
            assert svc.prefetch(0, 6) is False  # decodable, no new walk

    def test_manifest_embeds_delta_table(self):
        source = make_source(seed=703, n=12)
        with AnimationService(
            source, self.CONFIG, length=N_FRAMES, delta_every=4,
        ) as svc:
            list(svc.stream(0, 5))
            manifest = svc.manifest()
            delta = DeltaManifest.from_dict(manifest["delta"])
            assert sorted(delta.frames) == list(range(5))
            assert svc.delta_stats()["frames"] == 5

    def test_write_manifest_persists_delta_table(self, tmp_path):
        source = make_source(seed=704, n=12)
        with AnimationService(
            source, self.CONFIG, length=N_FRAMES, delta_every=4,
            disk_dir=str(tmp_path),
        ) as svc:
            list(svc.stream(0, 4))
            path = svc.write_manifest()
        import json

        with open(path) as fh:
            persisted = json.load(fh)
        delta = DeltaManifest.from_dict(persisted["delta"])
        # A fresh process can decode straight from the on-disk chunks.
        store = svc.delta_transport.store
        dec = DeltaDecoder(store, delta)
        reference = one_shot_frame(self.CONFIG, source, 3, dt=svc.dt)
        assert dec.decode(3).tobytes() == canonical(reference.display)

    def test_disabled_by_default(self):
        source = make_source(seed=705, n=12)
        with AnimationService(source, self.CONFIG, length=N_FRAMES) as svc:
            list(svc.stream(0, 3))
            assert svc.delta_transport is None
            assert svc.delta_stats() is None
            assert "delta" not in svc.manifest()
