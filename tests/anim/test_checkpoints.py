"""CheckpointStore tiering: LRU discipline, disk promotion, eviction order."""

import numpy as np

from repro.anim.checkpoints import CheckpointStore
from repro.anim.state import PipelineState


def state(frame: int) -> PipelineState:
    return PipelineState(
        positions=np.zeros((4, 2)),
        intensities=np.zeros(4),
        ages=np.zeros(4, dtype=np.int64),
        lifetimes=np.full(4, 10, dtype=np.int64),
        rng_state={"marker": frame},
        frame_index=frame,
        dt=0.1,
    )


class StubDisk:
    """A disk tier whose fetches can run a callback mid-promotion.

    ``get`` releases no locks itself — the callback simulates what a
    concurrent thread does between the store's memory-miss check and its
    promotion insert (the window where the store's lock is dropped
    around the disk I/O).
    """

    def __init__(self):
        self.bundles = {}
        self.fetches = {}
        self.on_get = None

    def put(self, digest, arrays):
        self.bundles[digest] = arrays

    def get(self, digest):
        self.fetches[digest] = self.fetches.get(digest, 0) + 1
        bundle = self.bundles.get(digest)
        if bundle is not None and self.on_get is not None:
            callback, self.on_get = self.on_get, None
            callback()
        return bundle

    def __contains__(self, digest):
        return digest in self.bundles


class TestMemoryTier:
    def test_put_get_round_trip(self):
        store = CheckpointStore(max_memory_entries=4)
        store.put("a", state(1))
        assert store.get("a") == state(1)
        assert store.get("zzz") is None
        assert (store.hits, store.misses) == (1, 1)

    def test_lru_eviction_order(self):
        store = CheckpointStore(max_memory_entries=2)
        store.put("a", state(1))
        store.put("b", state(2))
        store.get("a")  # a is now hotter than b
        store.put("c", state(3))  # evicts b
        assert store.get("b") is None
        assert store.get("a") is not None and store.get("c") is not None


class TestDiskPromotion:
    def test_promotion_fetches_once_then_serves_memory(self):
        disk = StubDisk()
        store = CheckpointStore(max_memory_entries=4, disk=disk)
        store.put("a", state(1))
        # Drop the memory tier; disk must answer with promotion.
        store._entries.clear()
        assert store.get("a") == state(1)
        assert disk.fetches["a"] == 1
        assert store.get("a") == state(1)
        assert disk.fetches["a"] == 1  # served from memory after promotion

    def test_promotion_lands_at_hot_end_of_lru(self):
        # Regression (PR 7 satellite): promotion of digest B racing a
        # concurrent put(B) used to leave B at its *old* LRU position —
        # the just-accessed checkpoint was then evicted before genuinely
        # colder entries.  Promotion must behave like put: pop, then
        # insert at the hot end.
        disk = StubDisk()
        store = CheckpointStore(max_memory_entries=2, disk=disk)

        def concurrent_interleaving():
            # Between the memory-miss check for B and its promotion
            # insert, another thread puts B and then touches A.
            store.put("b", state(2))
            store.get("a")

        store.put("a", state(1))
        disk.put("b", state(2).to_arrays())
        disk.on_get = concurrent_interleaving
        assert store.get("b") is not None  # promotes B (raced by the put)
        # B was accessed *after* A's touch landed; the next eviction must
        # take A, not B.
        store.put("d", state(4))
        assert list(store._entries) == ["b", "d"]

    def test_promotion_respects_max_memory_entries(self):
        disk = StubDisk()
        store = CheckpointStore(max_memory_entries=2, disk=disk)
        store.put("a", state(1))
        store.put("b", state(2))
        disk.put("c", state(3).to_arrays())
        assert store.get("c") is not None  # promotion evicts the LRU (a)
        assert len(store) == 2
        assert list(store._entries) == ["b", "c"]

    def test_promotion_keeps_raced_in_object(self):
        # When a concurrent put won the race, callers may already hold
        # that object — promotion must keep it, not shadow it with the
        # disk copy.
        disk = StubDisk()
        store = CheckpointStore(max_memory_entries=4, disk=disk)
        raced = state(2)
        disk.put("b", state(2).to_arrays())
        disk.on_get = lambda: store.put("b", raced)
        assert store.get("b") is raced
