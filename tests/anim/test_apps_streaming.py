"""The in-repo streaming clients: smog steering and the DNS browser."""

import numpy as np
import pytest

from repro.anim import one_shot_frame
from repro.anim.service import AnimationService
from repro.apps.dns.store import ChunkedFieldStore
from repro.apps.smog.steering import SteeredSmogApplication
from repro.core.config import SpotNoiseConfig
from repro.errors import ApplicationError
from repro.fields.grid import RectilinearGrid
from repro.fields.vectorfield import VectorField2D

CONFIG = SpotNoiseConfig(n_spots=100, texture_size=32, seed=4)


class TestSmogSteering:
    def test_steering_against_the_stream(self):
        app = SteeredSmogApplication(nx=16, ny=16, n_sources=2, seed=3)
        for _ in range(3):
            app.advance()
        app.steer("base_wind", 2.5)  # the steering action lands mid-sequence
        for _ in range(3):
            app.advance()
        with app.animation_service(CONFIG, length=app.frame) as svc:
            frames = list(svc.stream(0, app.frame))
            assert [f.frame for f in frames] == list(range(6))
            # The streamed history is bit-identical to a from-scratch
            # replay of the same recorded winds.
            reference = one_shot_frame(CONFIG, app.read_history, 5, dt=svc.dt)
            assert np.array_equal(frames[5].texture, reference.display)

    def test_stream_extends_as_simulation_advances(self):
        app = SteeredSmogApplication(nx=16, ny=16, n_sources=2, seed=3)
        for _ in range(2):
            app.advance()
        with app.animation_service(CONFIG) as svc:
            svc.request(1)
            for _ in range(2):
                app.advance()
            response = svc.request(3)  # a frame born after the service
            assert response.frame == 3


def build_store(tmp_path, n_frames=6, n=12):
    x = np.linspace(0.0, 1.0, n)
    grid = RectilinearGrid(x, x)
    store = ChunkedFieldStore.create(tmp_path / "db", grid, frames_per_chunk=4)
    for t in range(n_frames):
        u = np.cos(t * 0.3) * np.ones((n, n))
        v = np.sin(t * 0.3) * np.ones((n, n))
        store.append(VectorField2D(grid, np.stack([u, v], axis=-1)))
    store.flush()
    return store


class TestDnsBrowser:
    def test_scrub_streams_textures_with_drapes(self, tmp_path):
        from repro.apps.dns.browser import DataBrowser, VisualizationMapping

        store = build_store(tmp_path)
        browser = DataBrowser(store, VisualizationMapping(scalar="vorticity"))
        with browser.animation_service(CONFIG) as svc:
            assert isinstance(svc, AnimationService)
            pairs = list(browser.scrub(svc, 1, 5))
        assert [r.frame for r, _ in pairs] == [1, 2, 3, 4]
        assert all(s is not None for _, s in pairs)
        assert browser.position == 4

    def test_scrub_without_drape_and_range_checks(self, tmp_path):
        from repro.apps.dns.browser import DataBrowser, VisualizationMapping

        store = build_store(tmp_path)
        browser = DataBrowser(store, VisualizationMapping(scalar=None))
        with browser.animation_service(CONFIG) as svc:
            pairs = list(browser.scrub(svc, 0, 3, stride=2))
            assert [r.frame for r, _ in pairs] == [0, 2]
            assert all(s is None for _, s in pairs)
            with pytest.raises(ApplicationError):
                list(browser.scrub(svc, 0, 99))
            with pytest.raises(ApplicationError):
                list(browser.scrub(svc, 0, 3, stride=0))


class TestTextureServiceSibling:
    def test_texture_service_spawns_animation_sibling(self, tmp_path):
        store = build_store(tmp_path)
        from repro.service.server import TextureService

        with TextureService.for_store(store, CONFIG) as tex:
            with tex.animation_service(length=len(store)) as anim:
                response = anim.request(2)
        # Sequence frame 2 is NOT the per-frame render of field 2: the
        # sibling serves temporally-coherent frames, the point service
        # serves independent stills — different identities, both exact.
        reference = one_shot_frame(CONFIG, store.read, 2, dt=anim.dt)
        assert np.array_equal(response.texture, reference.display)
