"""Tests for repro.baselines."""

import numpy as np
import pytest

from repro.baselines.arrowplot import arrow_plot
from repro.baselines.lic import lic_texture
from repro.baselines.sequential import sequential_spot_noise
from repro.baselines.streamlines import streamline_plot
from repro.core.config import SpotNoiseConfig
from repro.errors import ReproError
from repro.fields.analytic import constant_field, vortex_field
from repro.viz.stats import anisotropy_direction

FIELD = vortex_field(n=33)


class TestArrowPlot:
    def test_renders_something(self):
        img = arrow_plot(FIELD, texture_size=96, grid_step=12)
        assert img.shape == (96, 96)
        assert img.sum() > 0

    def test_zero_field_blank(self):
        img = arrow_plot(constant_field(0.0, 0.0, n=9), texture_size=32)
        assert img.sum() == 0.0

    def test_discrete_coverage(self):
        # The introduction's complaint about arrows: most pixels stay empty.
        img = arrow_plot(FIELD, texture_size=96, grid_step=16)
        assert (img > 0).mean() < 0.3

    def test_validation(self):
        with pytest.raises(ReproError):
            arrow_plot(FIELD, grid_step=1)
        with pytest.raises(ReproError):
            arrow_plot(FIELD, head_fraction=1.5)


class TestStreamlinePlot:
    def test_renders(self):
        img = streamline_plot(FIELD, texture_size=64, n_seeds=9, n_steps=40)
        assert img.shape == (64, 64)
        assert img.sum() > 0

    def test_zero_field_blank(self):
        img = streamline_plot(constant_field(0.0, 0.0, n=9), texture_size=32, n_seeds=4)
        assert img.sum() == 0.0

    def test_validation(self):
        with pytest.raises(ReproError):
            streamline_plot(FIELD, n_seeds=0)
        with pytest.raises(ReproError):
            streamline_plot(FIELD, n_steps=1)


class TestLIC:
    def test_output_shape_and_range(self):
        img = lic_texture(FIELD, texture_size=48, kernel_half_length=6)
        assert img.shape == (48, 48)
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_zero_field_returns_noise(self):
        noise = np.random.default_rng(0).uniform(0, 1, (32, 32))
        img = lic_texture(constant_field(0.0, 0.0, n=9), 32, noise=noise)
        np.testing.assert_array_equal(img, noise)

    def test_smooths_along_flow(self):
        # LIC reduces variance relative to the input noise.
        img = lic_texture(constant_field(1.0, 0.0, n=9), 64, kernel_half_length=10, seed=1)
        assert img.std() < 0.2  # white noise std ~0.29

    def test_streaks_align_with_flow(self):
        img = lic_texture(constant_field(1.0, 0.0, n=9), 64, kernel_half_length=10, seed=2)
        angle, strength = anisotropy_direction(img)
        assert abs(angle) < 0.15
        assert strength > 0.3

    def test_longer_kernel_smoother(self):
        short = lic_texture(constant_field(1.0, 0.0, n=9), 48, kernel_half_length=3, seed=3)
        long_ = lic_texture(constant_field(1.0, 0.0, n=9), 48, kernel_half_length=12, seed=3)
        assert long_.std() < short.std()

    def test_validation(self):
        with pytest.raises(ReproError):
            lic_texture(FIELD, texture_size=4)
        with pytest.raises(ReproError):
            lic_texture(FIELD, kernel_half_length=0)
        with pytest.raises(ReproError):
            lic_texture(FIELD, texture_size=32, noise=np.zeros((8, 8)))


class TestSequentialBaseline:
    def test_matches_parallel_output(self):
        cfg = SpotNoiseConfig(
            n_spots=200, texture_size=48, spot_mode="standard", seed=4, n_groups=3
        )
        from repro.advection.particles import ParticleSet
        from repro.parallel.runtime import DivideAndConquerRuntime

        ps = ParticleSet.uniform_random(200, FIELD.grid.bounds, seed=4)
        seq_tex, report, modelled = sequential_spot_noise(FIELD, cfg, ps.copy())
        with DivideAndConquerRuntime(cfg) as rt:
            par_tex, _ = rt.synthesize(FIELD, ps.copy())
        np.testing.assert_allclose(seq_tex, par_tex, atol=1e-9)
        assert modelled > 0
        assert report.n_groups == 1
