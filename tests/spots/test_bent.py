"""Tests for repro.spots.bent."""

import numpy as np
import pytest

from repro.errors import SpotError
from repro.fields.analytic import constant_field, vortex_field
from repro.spots.bent import BentSpotConfig, bent_spot_meshes, meshes_to_quads


class TestBentSpotConfig:
    def test_paper_mesh_counts(self):
        atm = BentSpotConfig.atmospheric(cell=1.0)
        assert atm.vertices_per_spot == 32 * 17 == 544
        assert atm.quads_per_spot == 31 * 16 == 496
        dns = BentSpotConfig.turbulence(cell=1.0)
        assert dns.vertices_per_spot == 48
        assert dns.quads_per_spot == 30

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_along=1),
            dict(n_across=1),
            dict(length=0.0),
            dict(width=-1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SpotError):
            BentSpotConfig(**kwargs)


class TestBentSpotMeshes:
    def test_shapes(self):
        f = constant_field(1.0, 0.0, n=9)
        cfg = BentSpotConfig(n_along=8, n_across=3, length=0.2, width=0.05)
        verts, uvs = bent_spot_meshes(f.sample, np.zeros((5, 2)), cfg, 1.0)
        assert verts.shape == (5, 8, 3, 2)
        assert uvs.shape == (8, 3, 2)

    def test_uniform_flow_rectangular_strip(self):
        f = constant_field(2.0, 0.0, n=9)
        cfg = BentSpotConfig(n_along=5, n_across=3, length=0.4, width=0.1)
        verts, _ = bent_spot_meshes(f.sample, np.array([[0.0, 0.0]]), cfg, 2.0)
        # Spine along x, centred on the seed; width along y.
        xs = verts[0, :, 1, 0]  # middle row = the spine
        np.testing.assert_allclose(np.diff(xs), 0.1, atol=1e-9)
        np.testing.assert_allclose(verts[0, :, 1, 1], 0.0, atol=1e-9)
        np.testing.assert_allclose(verts[0, 0, 0, 1], -0.05, atol=1e-9)
        np.testing.assert_allclose(verts[0, 0, 2, 1], 0.05, atol=1e-9)

    def test_spine_length_matches_request(self):
        f = constant_field(1.0, 0.0, n=9)
        cfg = BentSpotConfig(n_along=9, n_across=2, length=0.32, width=0.02)
        verts, _ = bent_spot_meshes(f.sample, np.array([[0.0, 0.0]]), cfg, 1.0)
        spine = 0.5 * (verts[0, :, 0] + verts[0, :, 1])
        seg = np.diff(spine, axis=0)
        arc = np.hypot(seg[:, 0], seg[:, 1]).sum()
        assert arc == pytest.approx(0.32, rel=1e-6)

    def test_mesh_bends_in_vortex(self):
        f = vortex_field(n=65)
        cfg = BentSpotConfig(n_along=16, n_across=3, length=0.6, width=0.05)
        verts, _ = bent_spot_meshes(f.sample, np.array([[0.5, 0.0]]), cfg, f.max_magnitude())
        spine = verts[0, :, 1]
        radii = np.hypot(spine[:, 0], spine[:, 1])
        # Spine follows the circular streamline.
        np.testing.assert_allclose(radii, 0.5, atol=0.02)
        # And is genuinely curved (not a straight strip).
        chord = np.linalg.norm(spine[-1] - spine[0])
        seg = np.diff(spine, axis=0)
        arc = np.hypot(seg[:, 0], seg[:, 1]).sum()
        # ~0.42 rad of turning gives arc/chord ~ 1.0074.
        assert arc > chord * 1.005

    def test_zero_speed_hint_rejected(self):
        f = constant_field(n=9)
        with pytest.raises(SpotError):
            bent_spot_meshes(f.sample, np.zeros((1, 2)), BentSpotConfig(), 0.0)

    def test_bad_centers(self):
        f = constant_field(n=9)
        with pytest.raises(SpotError):
            bent_spot_meshes(f.sample, np.zeros((2, 3)), BentSpotConfig(), 1.0)


class TestMeshesToQuads:
    def test_counts(self):
        f = constant_field(1.0, 0.0, n=9)
        cfg = BentSpotConfig(n_along=4, n_across=3, length=0.2, width=0.05)
        verts, uvs = bent_spot_meshes(f.sample, np.zeros((7, 2)), cfg, 1.0)
        quads, quvs = meshes_to_quads(verts, uvs)
        assert quads.shape == (7 * 3 * 2, 4, 2)
        assert quvs.shape == quads.shape

    def test_quads_tile_the_strip_without_gaps(self):
        f = constant_field(1.0, 0.0, n=9)
        cfg = BentSpotConfig(n_along=3, n_across=2, length=0.2, width=0.1)
        verts, uvs = bent_spot_meshes(f.sample, np.array([[0.0, 0.0]]), cfg, 1.0)
        quads, _ = meshes_to_quads(verts, uvs)
        # Adjacent quads share an edge: quad 0's v1/v2 == quad 1's v0/v3.
        np.testing.assert_allclose(quads[0][1], quads[1][0])
        np.testing.assert_allclose(quads[0][2], quads[1][3])

    def test_uv_corners_span_unit_square(self):
        f = constant_field(1.0, 0.0, n=9)
        cfg = BentSpotConfig(n_along=4, n_across=4, length=0.2, width=0.1)
        verts, uvs = bent_spot_meshes(f.sample, np.zeros((1, 2)), cfg, 1.0)
        quads, quvs = meshes_to_quads(verts, uvs)
        assert quvs.min() == 0.0 and quvs.max() == 1.0

    def test_shape_validation(self):
        with pytest.raises(SpotError):
            meshes_to_quads(np.zeros((2, 3, 3)), np.zeros((3, 3, 2)))
        with pytest.raises(SpotError):
            meshes_to_quads(np.zeros((2, 3, 3, 2)), np.zeros((4, 3, 2)))
