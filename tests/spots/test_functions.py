"""Tests for repro.spots.functions."""

import numpy as np
import pytest

from repro.errors import SpotError
from repro.spots.functions import (
    ConeProfile,
    DiskProfile,
    GaussianProfile,
    RingProfile,
    get_profile,
)


class TestDiskProfile:
    def test_inside_outside(self):
        p = DiskProfile()
        s = np.array([0.0, 0.5, 0.99, 1.01, 2.0])
        t = np.zeros_like(s)
        np.testing.assert_array_equal(p.weight(s, t), [1.0, 1.0, 1.0, 0.0, 0.0])

    def test_texture_symmetric(self):
        tex = DiskProfile().make_texture(32)
        np.testing.assert_array_equal(tex, tex[::-1])
        np.testing.assert_array_equal(tex, tex[:, ::-1])
        np.testing.assert_array_equal(tex, tex.T)

    def test_footprint_small_compared_to_square(self):
        # "a function everywhere zero except for an area that is small"
        frac = DiskProfile().footprint_fraction(64)
        assert 0.7 < frac < 0.82  # pi/4 ~ 0.785 of the bounding square


class TestGaussianProfile:
    def test_peak_at_center(self):
        p = GaussianProfile(sigma=0.4)
        tex = p.make_texture(33)
        cy, cx = np.unravel_index(tex.argmax(), tex.shape)
        assert abs(cy - 16) <= 1 and abs(cx - 16) <= 1

    def test_truncated_at_unit_disk(self):
        p = GaussianProfile()
        assert p.weight(np.array([1.2]), np.array([0.0]))[0] == 0.0

    def test_monotone_decay(self):
        p = GaussianProfile(sigma=0.5)
        r = np.linspace(0, 0.99, 20)
        w = p.weight(r, np.zeros_like(r))
        assert (np.diff(w) < 0).all()

    def test_bad_sigma(self):
        with pytest.raises(SpotError):
            GaussianProfile(sigma=0.0)


class TestConeProfile:
    def test_linear_decay(self):
        p = ConeProfile()
        w = p.weight(np.array([0.0, 0.5, 1.0]), np.zeros(3))
        np.testing.assert_allclose(w, [1.0, 0.5, 0.0])


class TestRingProfile:
    def test_annulus(self):
        p = RingProfile(inner=0.4, outer=0.8)
        w = p.weight(np.array([0.2, 0.6, 0.9]), np.zeros(3))
        np.testing.assert_array_equal(w, [0.0, 1.0, 0.0])

    def test_bad_radii(self):
        with pytest.raises(SpotError):
            RingProfile(inner=0.8, outer=0.5)


class TestRegistry:
    @pytest.mark.parametrize("name", ["disk", "gaussian", "cone", "ring"])
    def test_lookup(self, name):
        assert get_profile(name).name == name

    def test_kwargs_forwarded(self):
        p = get_profile("gaussian", sigma=0.3)
        assert p.sigma == 0.3

    def test_unknown(self):
        with pytest.raises(SpotError):
            get_profile("star")

    def test_texture_resolution_validation(self):
        with pytest.raises(SpotError):
            DiskProfile().make_texture(1)
