"""Tests for repro.spots.transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpotError
from repro.spots.transform import (
    anisotropy_factors,
    flow_transforms,
    quad_areas,
    spot_quads,
)


class TestAnisotropyFactors:
    def test_zero_scale_keeps_circles(self):
        f = anisotropy_factors(np.array([0.0, 1.0, 5.0]), scale=0.0, v_ref=1.0)
        np.testing.assert_array_equal(f, 1.0)

    def test_grows_with_speed(self):
        f = anisotropy_factors(np.array([0.0, 1.0, 2.0]), scale=1.0, v_ref=2.0)
        np.testing.assert_allclose(f, [1.0, 1.5, 2.0])

    def test_bad_vref(self):
        with pytest.raises(SpotError):
            anisotropy_factors(np.array([1.0]), 1.0, 0.0)

    def test_bad_scale(self):
        with pytest.raises(SpotError):
            anisotropy_factors(np.array([1.0]), -1.0, 1.0)


class TestFlowTransforms:
    def test_area_preserved(self):
        rng = np.random.default_rng(0)
        vel = rng.uniform(-2, 2, (50, 2))
        m = flow_transforms(vel, radius=0.1, scale=1.5, v_ref=2.0)
        dets = np.linalg.det(m)
        np.testing.assert_allclose(dets, 0.01, rtol=1e-12)

    def test_major_axis_along_flow(self):
        vel = np.array([[3.0, 0.0], [0.0, 3.0]])
        m = flow_transforms(vel, radius=1.0, scale=1.0, v_ref=3.0)
        # First column is the major axis (radius * factor along flow dir).
        np.testing.assert_allclose(m[0, :, 0], [2.0, 0.0], atol=1e-12)
        np.testing.assert_allclose(m[1, :, 0], [0.0, 2.0], atol=1e-12)

    def test_zero_velocity_stays_circular(self):
        m = flow_transforms(np.array([[0.0, 0.0]]), radius=0.5, scale=2.0, v_ref=1.0)
        np.testing.assert_allclose(m[0], [[0.5, 0.0], [0.0, 0.5]], atol=1e-12)

    def test_bad_radius(self):
        with pytest.raises(SpotError):
            flow_transforms(np.zeros((1, 2)), radius=0.0, scale=1.0, v_ref=1.0)

    def test_bad_velocity_shape(self):
        with pytest.raises(SpotError):
            flow_transforms(np.zeros((2, 3)), radius=1.0, scale=1.0, v_ref=1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        vx=st.floats(-5, 5, allow_nan=False),
        vy=st.floats(-5, 5, allow_nan=False),
        scale=st.floats(0, 3),
    )
    def test_transform_is_rotation_times_diag(self, vx, vy, scale):
        m = flow_transforms(np.array([[vx, vy]]), radius=1.0, scale=scale, v_ref=5.0)[0]
        # Columns must be orthogonal (ellipse axes).
        assert abs(m[:, 0] @ m[:, 1]) < 1e-9


class TestSpotQuads:
    def test_identity_transform_unit_square(self):
        centers = np.array([[1.0, 2.0]])
        transforms = np.eye(2)[None, :, :]
        verts, uvs = spot_quads(centers, transforms)
        assert verts.shape == (1, 4, 2)
        np.testing.assert_allclose(verts[0, 0], [0.0, 1.0])  # center + (-1,-1)
        np.testing.assert_allclose(verts[0, 2], [2.0, 3.0])  # center + (1,1)
        assert uvs.shape == (1, 4, 2)
        np.testing.assert_array_equal(uvs[0, 0], [0.0, 0.0])
        np.testing.assert_array_equal(uvs[0, 2], [1.0, 1.0])

    def test_ccw_winding_positive_area(self):
        centers = np.zeros((3, 2))
        transforms = np.broadcast_to(np.eye(2), (3, 2, 2)).copy()
        verts, _ = spot_quads(centers, transforms)
        assert (quad_areas(verts) > 0).all()

    def test_area_formula(self):
        centers = np.zeros((1, 2))
        transforms = (2.0 * np.eye(2))[None, :, :]
        verts, _ = spot_quads(centers, transforms)
        # Square with half-side 2 -> area 16.
        np.testing.assert_allclose(quad_areas(verts), [16.0])

    def test_transform_count_mismatch(self):
        with pytest.raises(SpotError):
            spot_quads(np.zeros((2, 2)), np.zeros((1, 2, 2)))

    def test_quad_area_respects_transform_det(self):
        rng = np.random.default_rng(1)
        vel = rng.uniform(-1, 1, (20, 2))
        m = flow_transforms(vel, radius=0.3, scale=1.0, v_ref=1.0)
        verts, _ = spot_quads(rng.uniform(-1, 1, (20, 2)), m)
        # Quad area = 4 * det(M) (unit square side 2).
        np.testing.assert_allclose(quad_areas(verts), 4 * np.linalg.det(m), rtol=1e-10)
