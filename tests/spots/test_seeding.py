"""Tests for cell-area seeding and the DoG profile (enhancements of [4])."""

import numpy as np
import pytest

from repro.errors import SpotError
from repro.fields.grid import RectilinearGrid, RegularGrid
from repro.spots.distribution import cell_area_density, seed_positions
from repro.spots.functions import DoGProfile, get_profile


class TestCellAreaDensity:
    def test_uniform_on_regular_grid(self):
        g = RegularGrid(9, 7, (0.0, 2.0, 0.0, 1.0))
        rho = cell_area_density(g)
        assert rho.shape == (6, 8)
        np.testing.assert_allclose(rho, rho[0, 0])

    def test_higher_where_cells_smaller(self):
        g = RectilinearGrid.stretched(17, 9, (0.0, 1.0, 0.0, 1.0), focus=(0.25, 0.5))
        rho = cell_area_density(g)
        # Density near the focus column exceeds density far from it.
        focus_col = np.searchsorted(g.x, 0.25)
        far_col = np.searchsorted(g.x, 0.9)
        assert rho[:, max(focus_col - 1, 0)].mean() > rho[:, min(far_col, rho.shape[1] - 1)].mean()


class TestSeedPositions:
    def test_uniform_and_jittered_in_bounds(self):
        g = RegularGrid(9, 7, (0.0, 2.0, 0.0, 1.0))
        for strategy in ("uniform", "jittered"):
            pts = seed_positions(300, g, strategy, seed=0)
            assert pts.shape == (300, 2)
            assert g.contains(pts).all()

    def test_cell_area_concentrates_in_refined_region(self):
        g = RectilinearGrid.stretched(
            65, 17, (0.0, 1.0, 0.0, 1.0), focus=(0.25, 0.5), strength=6.0
        )
        pts = seed_positions(4000, g, "cell_area", seed=1)
        uniform = seed_positions(4000, g, "uniform", seed=1)
        near_focus = lambda p: (np.abs(p[:, 0] - 0.25) < 0.1).mean()
        assert near_focus(pts) > 1.8 * near_focus(uniform)

    def test_unknown_strategy(self):
        g = RegularGrid(4, 4)
        with pytest.raises(SpotError):
            seed_positions(10, g, "poisson_disk")


class TestDoGProfile:
    def test_registered(self):
        assert isinstance(get_profile("dog"), DoGProfile)

    def test_zero_mean_texture_by_construction(self):
        tex = DoGProfile().make_texture(64)
        # In-disk integral cancels by the analytic mass balance.
        assert abs(tex.sum()) < 0.05 * np.abs(tex).sum()

    def test_center_positive_surround_negative(self):
        p = DoGProfile(sigma=0.3, ratio=2.0)
        centre = p.weight(np.array([0.0]), np.array([0.0]))[0]
        surround = p.weight(np.array([0.7]), np.array([0.0]))[0]
        assert centre > 0 > surround

    def test_validation(self):
        with pytest.raises(SpotError):
            DoGProfile(sigma=0.0)
        with pytest.raises(SpotError):
            DoGProfile(ratio=1.0)

    def test_texture_from_dog_spots_is_highpass(self):
        """A spot noise texture built from DoG spots has suppressed low
        frequencies relative to gaussian spots — the point of [4]'s spot
        filtering."""
        from repro.advection.particles import ParticleSet
        from repro.core.config import SpotNoiseConfig
        from repro.fields.analytic import constant_field
        from repro.parallel.runtime import DivideAndConquerRuntime

        field = constant_field(0.0, 0.0, n=17)

        def lowfreq_share(profile):
            cfg = SpotNoiseConfig(
                n_spots=1500, texture_size=96, spot_mode="standard",
                profile=profile, spot_radius_cells=1.2, seed=3,
            )
            ps = ParticleSet.uniform_random(cfg.n_spots, field.grid.bounds, seed=3)
            with DivideAndConquerRuntime(cfg) as rt:
                tex, _ = rt.synthesize(field, ps)
            spec = np.abs(np.fft.fftshift(np.fft.fft2(tex - tex.mean()))) ** 2
            ky = np.fft.fftshift(np.fft.fftfreq(96))[:, None]
            kx = np.fft.fftshift(np.fft.fftfreq(96))[None, :]
            low = np.hypot(kx, ky) < 0.05
            return spec[low].sum() / spec.sum()

        assert lowfreq_share("dog") < 0.6 * lowfreq_share("gaussian")
