"""Tests for repro.spots.filtering and distribution."""

import numpy as np
import pytest

from repro.errors import SpotError
from repro.spots.distribution import (
    density_weighted_positions,
    gaussian_intensities,
    jittered_grid_positions,
    signed_intensities,
    uniform_positions,
)
from repro.spots.filtering import (
    contrast_stretch,
    dog_profile_weights,
    highpass_texture,
    histogram_equalize,
)

BOUNDS = (0.0, 2.0, 0.0, 1.0)


class TestDogProfile:
    def test_near_zero_integral(self):
        c = (np.arange(64) + 0.5) / 64 * 2 - 1
        S, T = np.meshgrid(c, c)
        w = dog_profile_weights(S, T)
        # DoG integral is small relative to its positive mass.
        assert abs(w.sum()) < 0.25 * np.abs(w).sum()

    def test_unit_peak(self):
        c = np.linspace(-1, 1, 65)
        S, T = np.meshgrid(c, c)
        w = dog_profile_weights(S, T)
        assert np.abs(w).max() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(SpotError):
            dog_profile_weights(np.zeros(1), np.zeros(1), sigma=0.0)
        with pytest.raises(SpotError):
            dog_profile_weights(np.zeros(1), np.zeros(1), ratio=1.0)


class TestHighpass:
    def test_removes_constant(self):
        tex = np.full((32, 32), 7.0)
        out = highpass_texture(tex, sigma_pixels=4.0)
        np.testing.assert_allclose(out, 0.0, atol=1e-9)

    def test_preserves_high_frequency(self):
        x = np.arange(64)
        tex = np.sin(x * np.pi)[None, :] * np.ones((64, 1))  # alternating columns
        out = highpass_texture(tex, sigma_pixels=8.0)
        assert np.abs(out).max() > 0.5 * np.abs(tex).max()

    def test_validation(self):
        with pytest.raises(SpotError):
            highpass_texture(np.zeros((4, 4)), sigma_pixels=0.0)
        with pytest.raises(SpotError):
            highpass_texture(np.zeros(4))


class TestContrastStretch:
    def test_output_range(self):
        rng = np.random.default_rng(0)
        out = contrast_stretch(rng.normal(0, 3, (32, 32)))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_constant_input(self):
        out = contrast_stretch(np.full((8, 8), 2.0))
        np.testing.assert_array_equal(out, 0.0)

    def test_monotone(self):
        tex = np.linspace(0, 1, 100).reshape(10, 10)
        out = contrast_stretch(tex, 0.0, 100.0)
        assert (np.diff(out.ravel()) >= 0).all()

    def test_validation(self):
        with pytest.raises(SpotError):
            contrast_stretch(np.zeros((4, 4)), lo_pct=60, hi_pct=50)


class TestHistogramEqualize:
    def test_output_range(self):
        rng = np.random.default_rng(1)
        out = histogram_equalize(rng.normal(size=(32, 32)))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_flattens_histogram(self):
        rng = np.random.default_rng(2)
        tex = rng.normal(size=(64, 64)) ** 3  # strongly non-uniform
        out = histogram_equalize(tex)
        hist, _ = np.histogram(out, bins=10, range=(0, 1))
        # Equalised histogram is roughly flat: max/min bin ratio bounded.
        assert hist.max() < 1.5 * max(hist.min(), 1)

    def test_constant_input_maps_to_zero(self):
        np.testing.assert_array_equal(histogram_equalize(np.full((4, 4), 3.0)), 0.0)

    def test_validation(self):
        with pytest.raises(SpotError):
            histogram_equalize(np.zeros((0,)))


class TestPositions:
    def test_uniform_in_bounds(self):
        pts = uniform_positions(500, BOUNDS, seed=0)
        assert pts.shape == (500, 2)
        assert pts[:, 0].min() >= 0 and pts[:, 0].max() <= 2
        assert pts[:, 1].min() >= 0 and pts[:, 1].max() <= 1

    def test_uniform_deterministic(self):
        np.testing.assert_array_equal(
            uniform_positions(10, BOUNDS, seed=5), uniform_positions(10, BOUNDS, seed=5)
        )

    def test_uniform_negative_count(self):
        with pytest.raises(SpotError):
            uniform_positions(-1, BOUNDS)

    def test_jittered_exact_count(self):
        pts = jittered_grid_positions(137, BOUNDS, seed=1)
        assert pts.shape == (137, 2)

    def test_jittered_zero(self):
        assert jittered_grid_positions(0, BOUNDS).shape == (0, 2)

    def test_jittered_lower_clumping_than_uniform(self):
        # Stratification: count points per coarse cell; variance must drop.
        def cell_var(pts):
            h, _, _ = np.histogram2d(pts[:, 0], pts[:, 1], bins=8, range=[[0, 2], [0, 1]])
            return h.var()

        u = uniform_positions(512, BOUNDS, seed=2)
        j = jittered_grid_positions(512, BOUNDS, seed=2)
        assert cell_var(j) < cell_var(u)

    def test_density_weighted_follows_density(self):
        density = np.zeros((4, 8))
        density[:, :4] = 1.0  # all mass in the left half
        pts = density_weighted_positions(400, density, BOUNDS, seed=3)
        assert (pts[:, 0] <= 1.0 + 1e-9).all()

    def test_density_validation(self):
        with pytest.raises(SpotError):
            density_weighted_positions(5, np.zeros((4, 4)), BOUNDS)
        with pytest.raises(SpotError):
            density_weighted_positions(5, -np.ones((4, 4)), BOUNDS)


class TestIntensities:
    def test_signed_two_point(self):
        a = signed_intensities(1000, amplitude=1.5, seed=0)
        assert set(np.unique(a)) == {-1.5, 1.5}

    def test_gaussian_zero_mean(self):
        a = gaussian_intensities(5000, sigma=2.0, seed=1)
        assert abs(a.mean()) < 5 * 2.0 / np.sqrt(5000)

    def test_gaussian_zero_sigma(self):
        np.testing.assert_array_equal(gaussian_intensities(5, sigma=0.0), np.zeros(5))

    def test_validation(self):
        with pytest.raises(SpotError):
            signed_intensities(-1)
        with pytest.raises(SpotError):
            gaussian_intensities(5, sigma=-1.0)
