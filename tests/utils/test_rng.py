"""Tests for repro.utils.rng."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import as_rng, derive_seed, permutation_chunks, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert as_rng(42).integers(0, 1 << 30) == as_rng(42).integers(0, 1 << 30)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(5)
        a = as_rng(ss)
        assert isinstance(a, np.random.Generator)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_path_sensitivity(self):
        assert derive_seed(1, 2) != derive_seed(1, 3)
        assert derive_seed(1, 2) != derive_seed(2, 2)

    def test_result_is_valid_seed(self):
        s = derive_seed(99, 0)
        assert 0 <= s < 2**64
        as_rng(s)  # must not raise


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_ok(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_differ(self):
        a, b = spawn_rngs(7, 2)
        assert a.integers(0, 1 << 30, 10).tolist() != b.integers(0, 1 << 30, 10).tolist()

    def test_deterministic_across_calls(self):
        a1, _ = spawn_rngs(7, 2)
        a2, _ = spawn_rngs(7, 2)
        assert a1.integers(0, 1 << 30, 5).tolist() == a2.integers(0, 1 << 30, 5).tolist()


class TestPermutationChunks:
    @settings(max_examples=25, deadline=None)
    @given(n_items=st.integers(0, 200), n_chunks=st.integers(1, 8))
    def test_chunks_partition_range(self, n_items, n_chunks):
        chunks = permutation_chunks(np.random.default_rng(0), n_items, n_chunks)
        assert len(chunks) == n_chunks
        merged = np.sort(np.concatenate(chunks)) if chunks else np.array([])
        assert np.array_equal(merged, np.arange(n_items))

    def test_bad_chunks_raises(self):
        with pytest.raises(ValueError):
            permutation_chunks(np.random.default_rng(0), 10, 0)
