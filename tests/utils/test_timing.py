"""Tests for repro.utils.timing."""

import pytest

from repro.utils.timing import StageTimer, Stopwatch


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        with sw:
            pass
        assert sw.laps == 2
        assert sw.elapsed >= 0.0

    def test_double_start_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0 and sw.laps == 0

    def test_mean_no_laps_is_zero(self):
        assert Stopwatch().mean == 0.0


class TestStageTimer:
    def test_unknown_stage_created_on_demand(self):
        t = StageTimer()
        with t.time("custom"):
            pass
        assert "custom" in t.report()

    def test_elapsed_of_untimed_stage_is_zero(self):
        assert StageTimer().elapsed("nope") == 0.0

    def test_textures_per_second_counts_only_named_stages(self):
        t = StageTimer()
        with t.time("advect"):
            pass
        with t.time("render"):
            pass
        rate = t.textures_per_second(10)
        assert rate > 0

    def test_textures_per_second_infinite_when_unmeasured(self):
        assert StageTimer().textures_per_second(5) == float("inf")

    def test_reset_clears_all(self):
        t = StageTimer()
        with t.time("advect"):
            pass
        t.reset()
        assert t.elapsed("advect") == 0.0
