"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_shape,
)


class TestCheckPositive:
    def test_passes(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [0, -1, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_zero_ok(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)


class TestCheckInRange:
    def test_bounds_inclusive(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_outside_rejected(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.01, 0.0, 1.0)


class TestCheckShape:
    def test_exact_match(self):
        a = np.zeros((3, 2))
        assert check_shape("a", a, (3, 2)) is not None

    def test_wildcard(self):
        check_shape("a", np.zeros((7, 2)), (None, 2))

    def test_wrong_rank(self):
        with pytest.raises(ValueError):
            check_shape("a", np.zeros(3), (3, 1))

    def test_wrong_dim(self):
        with pytest.raises(ValueError):
            check_shape("a", np.zeros((3, 3)), (3, 2))


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("good", [1, 2, 64, 512])
    def test_accepts(self, good):
        assert check_power_of_two("n", good) == good

    @pytest.mark.parametrize("bad", [0, -2, 3, 96])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_power_of_two("n", bad)
