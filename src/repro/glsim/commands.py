"""Graphics command stream with byte accounting.

Masters stream commands to their pipe over the workstation bus; the
"vertex and texture movement" tradeoff of section 3 is about the size of
this stream.  :func:`command_bytes` is the single source of truth for how
many bytes each command occupies on the bus — the Table 2 discussion's
"approximately 31.0 megabyte per texture" is reproduced from it.

Vertex data is counted at 4 bytes per float (the wire format the Onyx2
used for raw geometric data); each vertex carries an (x, y) position and a
(u, v) texture coordinate, and each quad additionally carries its scalar
intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import GLStateError
from repro.glsim.geometry import Transform2D

BYTES_PER_FLOAT = 4
#: floats per vertex on the wire: x, y, u, v
FLOATS_PER_VERTEX = 4


@dataclass(frozen=True)
class BindTexture:
    """Bind a spot-profile texture; *nbytes* counted only when uploading."""

    texture_id: int
    upload_nbytes: int = 0


@dataclass(frozen=True)
class SetBlendMode:
    mode: str


@dataclass(frozen=True)
class SetTransform:
    """Set the pipe's transform matrix — a synchronising state change."""

    transform: Transform2D


@dataclass(frozen=True)
class Clear:
    pass


@dataclass(frozen=True)
class ReadPixels:
    """Read the pipe's partial texture back (the gather step); w*h floats."""

    width: int
    height: int


class DrawQuads:
    """A batch of textured quads (the payload of texture synthesis).

    Parameters mirror the rasteriser: ``quads``/``uvs`` are ``(N, 4, 2)``,
    ``intensities`` is ``(N,)``.
    """

    __slots__ = ("quads", "uvs", "intensities")

    def __init__(self, quads: np.ndarray, uvs: np.ndarray, intensities: np.ndarray):
        quads = np.asarray(quads, dtype=np.float64)
        uvs = np.asarray(uvs, dtype=np.float64)
        intensities = np.asarray(intensities, dtype=np.float64)
        if quads.ndim != 3 or quads.shape[1:] != (4, 2):
            raise GLStateError(f"quads must be (N, 4, 2), got {quads.shape}")
        if uvs.shape != quads.shape:
            raise GLStateError(f"uvs must match quads shape, got {uvs.shape}")
        if intensities.shape != (quads.shape[0],):
            raise GLStateError(f"intensities must be (N,), got {intensities.shape}")
        self.quads = quads
        self.uvs = uvs
        self.intensities = intensities

    @property
    def n_quads(self) -> int:
        return self.quads.shape[0]

    @property
    def n_vertices(self) -> int:
        return 4 * self.n_quads

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DrawQuads(n_quads={self.n_quads})"


Command = Union[BindTexture, SetBlendMode, SetTransform, Clear, ReadPixels, DrawQuads]

_SMALL_COMMAND_BYTES = 16  # opcode + a couple of words


def command_bytes(cmd: Command) -> int:
    """Bus bytes occupied by *cmd* (processor -> pipe direction)."""
    if isinstance(cmd, DrawQuads):
        vertex_bytes = cmd.n_vertices * FLOATS_PER_VERTEX * BYTES_PER_FLOAT
        intensity_bytes = cmd.n_quads * BYTES_PER_FLOAT
        return _SMALL_COMMAND_BYTES + vertex_bytes + intensity_bytes
    if isinstance(cmd, BindTexture):
        return _SMALL_COMMAND_BYTES + cmd.upload_nbytes
    if isinstance(cmd, ReadPixels):
        # Readback travels pipe -> processor but crosses the same bus.
        return _SMALL_COMMAND_BYTES + cmd.width * cmd.height * BYTES_PER_FLOAT
    if isinstance(cmd, (SetBlendMode, SetTransform, Clear)):
        return _SMALL_COMMAND_BYTES
    raise GLStateError(f"unknown command type {type(cmd).__name__}")
