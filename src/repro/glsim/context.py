"""Per-master OpenGL graphics contexts.

"The task of a master is threefold: it sets up an unique OpenGL graphics
context, it renders each calculated spot, and it distributes work among
its slaves" (section 4).  A :class:`GLContext` is that unique context:
it binds one master to one pipe, buffers commands, and flushes them to
the pipe in order.  Only one context may be current on a pipe at a time
— the invariant the runtime relies on to keep pipe state coherent.
"""

from __future__ import annotations

from typing import List

from repro.errors import GLStateError
from repro.glsim.commands import Command
from repro.glsim.pipe import GraphicsPipe


class GLContext:
    """A command buffer bound to a single graphics pipe."""

    _current_on_pipe: "dict[int, GLContext]" = {}

    def __init__(self, context_id: int, pipe: GraphicsPipe):
        self.context_id = int(context_id)
        self.pipe = pipe
        self._buffer: List[Command] = []
        self._made_current = False

    def make_current(self) -> None:
        """Acquire the pipe; raises if another live context holds it."""
        holder = GLContext._current_on_pipe.get(self.pipe.pipe_id)
        if holder is not None and holder is not self and holder._made_current:
            raise GLStateError(
                f"pipe {self.pipe.pipe_id} already has current context {holder.context_id}"
            )
        GLContext._current_on_pipe[self.pipe.pipe_id] = self
        self._made_current = True

    def release(self) -> None:
        if GLContext._current_on_pipe.get(self.pipe.pipe_id) is self:
            del GLContext._current_on_pipe[self.pipe.pipe_id]
        self._made_current = False

    @property
    def is_current(self) -> bool:
        return self._made_current and GLContext._current_on_pipe.get(self.pipe.pipe_id) is self

    def submit(self, cmd: Command) -> None:
        """Queue a command for the pipe."""
        if not self._made_current:
            raise GLStateError(f"context {self.context_id} is not current on any pipe")
        self._buffer.append(cmd)

    def flush(self) -> int:
        """Execute all buffered commands on the pipe; returns count executed."""
        if not self._made_current:
            raise GLStateError(f"context {self.context_id} is not current on any pipe")
        n = len(self._buffer)
        for cmd in self._buffer:
            self.pipe.execute(cmd)
        self._buffer.clear()
        return n

    @property
    def pending(self) -> int:
        return len(self._buffer)

    def __enter__(self) -> "GLContext":
        self.make_current()
        return self

    def __exit__(self, *exc) -> None:
        if self._buffer:
            self.flush()
        self.release()
