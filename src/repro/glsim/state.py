"""OpenGL-like state machine with state-change accounting.

"The overhead of setting the OpenGL state machine may be quite
substantial.  Setting OpenGL in a new state may result in synchronization
latencies within the graphics pipe" (section 3) — on the InfiniteReality,
every transformation-matrix set synchronises four geometry processors.
The machine cost model charges for exactly the state transitions recorded
here, which is what makes the software-vs-hardware spot-transform
tradeoff (section 4) measurable in the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.errors import GLStateError

#: State keys whose mutation forces a geometry-processor synchronisation.
SYNCHRONIZING_KEYS = frozenset({"transform"})

#: All legal state keys and their default values.
_DEFAULTS: Dict[str, Any] = {
    "blend_mode": "add",
    "texture": None,
    "transform": None,  # None = identity, spots arrive pre-transformed
    "render_mode": "sampled",  # 'exact' | 'sampled'
    "raster_backend": "batched",  # 'exact' | 'batched' (exact-mode impl)
    "samples_per_edge": 2,
}

_VALID_BLEND = ("add", "max", "over")
_VALID_RENDER = ("exact", "sampled")
_VALID_RASTER_BACKEND = ("exact", "batched")


@dataclass
class StateChangeLog:
    """Tally of state transitions, split by whether they synchronise."""

    total: int = 0
    synchronizing: int = 0
    by_key: Dict[str, int] = field(default_factory=dict)

    def record(self, key: str) -> None:
        self.total += 1
        self.by_key[key] = self.by_key.get(key, 0) + 1
        if key in SYNCHRONIZING_KEYS:
            self.synchronizing += 1

    def reset(self) -> None:
        self.total = 0
        self.synchronizing = 0
        self.by_key.clear()


class GLState:
    """A small validated key-value state machine.

    Redundant sets (same value) are *not* counted as changes — real drivers
    filter them too, and the paper's overhead concern is about genuine
    transitions.
    """

    def __init__(self) -> None:
        self._state: Dict[str, Any] = dict(_DEFAULTS)
        self.log = StateChangeLog()

    def get(self, key: str) -> Any:
        try:
            return self._state[key]
        except KeyError:
            raise GLStateError(f"unknown state key {key!r}; valid: {sorted(_DEFAULTS)}") from None

    def set(self, key: str, value: Any) -> bool:
        """Set *key*; returns True if the state actually changed."""
        if key not in _DEFAULTS:
            raise GLStateError(f"unknown state key {key!r}; valid: {sorted(_DEFAULTS)}")
        if key == "blend_mode" and value not in _VALID_BLEND:
            raise GLStateError(f"invalid blend mode {value!r}; valid: {_VALID_BLEND}")
        if key == "render_mode" and value not in _VALID_RENDER:
            raise GLStateError(f"invalid render mode {value!r}; valid: {_VALID_RENDER}")
        if key == "raster_backend" and value not in _VALID_RASTER_BACKEND:
            raise GLStateError(
                f"invalid raster backend {value!r}; valid: {_VALID_RASTER_BACKEND}"
            )
        if key == "samples_per_edge" and (not isinstance(value, int) or value < 1):
            raise GLStateError(f"samples_per_edge must be a positive int, got {value!r}")
        current = self._state[key]
        if current is value or current == value:
            return False
        self._state[key] = value
        self.log.record(key)
        return True

    def snapshot(self) -> Dict[str, Any]:
        """Copy of the current state (queries do not count as changes)."""
        return dict(self._state)

    def reset(self) -> None:
        self._state = dict(_DEFAULTS)
        self.log.reset()
