"""2-D affine transform stage of the simulated geometry processors."""

from __future__ import annotations

import numpy as np

from repro.errors import GLStateError


class Transform2D:
    """An affine map ``p -> A p + b`` applied to incoming vertex streams.

    The paper's implementation performs spot transformation in software to
    avoid setting a pipe matrix per spot; this class exists so the
    alternative (hardware transform, one matrix set per spot) can be
    simulated and ablated.
    """

    __slots__ = ("matrix", "offset")

    def __init__(self, matrix: np.ndarray | None = None, offset: np.ndarray | None = None):
        m = np.eye(2) if matrix is None else np.asarray(matrix, dtype=np.float64)
        b = np.zeros(2) if offset is None else np.asarray(offset, dtype=np.float64)
        if m.shape != (2, 2):
            raise GLStateError(f"matrix must be 2x2, got {m.shape}")
        if b.shape != (2,):
            raise GLStateError(f"offset must be length 2, got {b.shape}")
        self.matrix = m
        self.offset = b

    @classmethod
    def identity(cls) -> "Transform2D":
        return cls()

    @classmethod
    def scale_rotate(cls, sx: float, sy: float, angle: float, offset=(0.0, 0.0)) -> "Transform2D":
        """Scale by (sx, sy) then rotate by *angle* radians, then translate."""
        c, s = np.cos(angle), np.sin(angle)
        rot = np.array([[c, -s], [s, c]])
        scl = np.array([[sx, 0.0], [0.0, sy]])
        return cls(rot @ scl, np.asarray(offset, dtype=np.float64))

    def is_identity(self) -> bool:
        return bool(np.array_equal(self.matrix, np.eye(2)) and not self.offset.any())

    def apply(self, vertices: np.ndarray) -> np.ndarray:
        """Transform a ``(..., 2)`` vertex array."""
        v = np.asarray(vertices, dtype=np.float64)
        if v.shape[-1] != 2:
            raise GLStateError(f"vertices must end in dimension 2, got shape {v.shape}")
        return v @ self.matrix.T + self.offset

    def compose(self, other: "Transform2D") -> "Transform2D":
        """self after other: ``(self . other)(p) = self(other(p))``."""
        return Transform2D(self.matrix @ other.matrix, self.matrix @ other.offset + self.offset)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transform2D):
            return NotImplemented
        return np.array_equal(self.matrix, other.matrix) and np.array_equal(self.offset, other.offset)

    def __hash__(self) -> int:  # pragma: no cover - required with __eq__
        return hash((self.matrix.tobytes(), self.offset.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Transform2D(matrix={self.matrix.tolist()}, offset={self.offset.tolist()})"
