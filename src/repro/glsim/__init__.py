"""Simulated graphics subsystem.

The paper treats each graphics pipe as "an OpenGL state machine which can
be set and queried through the OpenGL API".  This package provides that
abstraction in software: a state machine with explicit state-change
accounting (setting state on an InfiniteReality synchronises its four
geometry processors — the overhead the paper's design works around), a
command stream with byte accounting (bus traffic), a 2-D geometry
transform stage, and a :class:`GraphicsPipe` that executes commands
against the software rasteriser while counting the work it performs.

The counters — vertices in, quads scan-converted, state changes, bytes
moved — are the interface to :mod:`repro.machine`, which converts them
into simulated time.
"""

from repro.glsim.state import GLState, StateChangeLog
from repro.glsim.geometry import Transform2D
from repro.glsim.commands import (
    Command,
    BindTexture,
    SetBlendMode,
    SetTransform,
    DrawQuads,
    ReadPixels,
    Clear,
    command_bytes,
)
from repro.glsim.pipe import GraphicsPipe, PipeCounters
from repro.glsim.context import GLContext

__all__ = [
    "GLState",
    "StateChangeLog",
    "Transform2D",
    "Command",
    "BindTexture",
    "SetBlendMode",
    "SetTransform",
    "DrawQuads",
    "ReadPixels",
    "Clear",
    "command_bytes",
    "GraphicsPipe",
    "PipeCounters",
    "GLContext",
]
