"""The simulated graphics pipe.

A :class:`GraphicsPipe` owns a frame buffer, holds a
:class:`~repro.glsim.state.GLState`, executes the command stream against
the software rasteriser, and counts everything it does.  The counters are
the contract with :mod:`repro.machine`: simulated time is *derived* from
them, never measured, so the performance model is deterministic and
host-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import GLStateError
from repro.glsim.commands import (
    BindTexture,
    Clear,
    Command,
    DrawQuads,
    ReadPixels,
    SetBlendMode,
    SetTransform,
    command_bytes,
)
from repro.glsim.state import GLState
from repro.raster.batched import rasterize_quads_batched
from repro.raster.framebuffer import FrameBuffer
from repro.raster.rasterize import rasterize_quads_exact
from repro.raster.splat import rasterize_quads_sampled
from repro.raster.texture import Texture


@dataclass
class PipeCounters:
    """Work performed by a pipe since the last reset."""

    vertices_in: int = 0
    quads_drawn: int = 0
    pixels_filled: int = 0
    bytes_received: int = 0
    state_changes: int = 0
    synchronizing_changes: int = 0
    texture_uploads: int = 0
    readbacks: int = 0
    clears: int = 0

    def merged_with(self, other: "PipeCounters") -> "PipeCounters":
        return PipeCounters(
            **{k: getattr(self, k) + getattr(other, k) for k in self.__dataclass_fields__}
        )


class GraphicsPipe:
    """One simulated InfiniteReality pipe.

    Parameters
    ----------
    pipe_id:
        Identifier (0-based) within the workstation.
    width, height, window:
        Frame buffer geometry; a tiled configuration gives each pipe a
        smaller buffer covering only its tile.
    """

    def __init__(self, pipe_id: int, width: int, height: int, window):
        self.pipe_id = int(pipe_id)
        self.state = GLState()
        self.framebuffer = FrameBuffer(width, height, window)
        self.counters = PipeCounters()
        self._textures: Dict[int, Texture] = {}
        self._bound_texture: Optional[Texture] = None

    # -- texture management ----------------------------------------------------
    def upload_texture(self, texture_id: int, texture: Texture) -> None:
        """Make a texture resident on the pipe (counted once, then cached)."""
        if texture_id in self._textures:
            raise GLStateError(f"texture id {texture_id} already uploaded to pipe {self.pipe_id}")
        self._textures[texture_id] = texture
        self.counters.texture_uploads += 1
        self.counters.bytes_received += texture.nbytes()

    def has_texture(self, texture_id: int) -> bool:
        return texture_id in self._textures

    # -- command execution -------------------------------------------------------
    def execute(self, cmd: Command) -> None:
        """Execute one command, updating the frame buffer and counters."""
        self.counters.bytes_received += command_bytes(cmd)
        before = self.state.log.total
        before_sync = self.state.log.synchronizing

        if isinstance(cmd, BindTexture):
            if cmd.texture_id not in self._textures:
                raise GLStateError(
                    f"texture id {cmd.texture_id} not uploaded to pipe {self.pipe_id}"
                )
            if self.state.set("texture", cmd.texture_id):
                self._bound_texture = self._textures[cmd.texture_id]
        elif isinstance(cmd, SetBlendMode):
            self.state.set("blend_mode", cmd.mode)
        elif isinstance(cmd, SetTransform):
            self.state.set("transform", cmd.transform)
        elif isinstance(cmd, Clear):
            self.framebuffer.clear()
            self.counters.clears += 1
        elif isinstance(cmd, ReadPixels):
            self.counters.readbacks += 1
        elif isinstance(cmd, DrawQuads):
            self._draw(cmd)
        else:
            raise GLStateError(f"unknown command type {type(cmd).__name__}")

        self.counters.state_changes += self.state.log.total - before
        self.counters.synchronizing_changes += self.state.log.synchronizing - before_sync

    def _draw(self, cmd: DrawQuads) -> None:
        if self.state.get("blend_mode") != "add":
            raise GLStateError("spot synthesis requires additive blending")
        quads = cmd.quads
        transform = self.state.get("transform")
        if transform is not None and not transform.is_identity():
            quads = transform.apply(quads)

        mode = self.state.get("render_mode")
        if mode == "exact":
            # The scanline path has two implementations producing
            # bit-identical pixels: the vectorised batch renderer (the
            # fast default) and the per-quad reference loop (the oracle).
            if self.state.get("raster_backend") == "batched":
                rasterize = rasterize_quads_batched
            else:
                rasterize = rasterize_quads_exact
            pixels = rasterize(
                self.framebuffer, quads, cmd.uvs, cmd.intensities, self._bound_texture
            )
        else:
            pixels = rasterize_quads_sampled(
                self.framebuffer,
                quads,
                cmd.uvs,
                cmd.intensities,
                self._bound_texture,
                samples_per_edge=self.state.get("samples_per_edge"),
            )
        self.counters.vertices_in += cmd.n_vertices
        self.counters.quads_drawn += cmd.n_quads
        self.counters.pixels_filled += pixels

    def run(self, commands: "list[Command]") -> None:
        for cmd in commands:
            self.execute(cmd)

    # -- results -------------------------------------------------------------
    def read_pixels(self) -> np.ndarray:
        """Copy out the partial texture (counted as a readback command)."""
        self.execute(ReadPixels(self.framebuffer.width, self.framebuffer.height))
        return self.framebuffer.data.copy()

    def reset_counters(self) -> None:
        self.counters = PipeCounters()
        self.state.log.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphicsPipe(id={self.pipe_id}, fb={self.framebuffer!r})"
