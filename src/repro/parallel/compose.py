"""Gather and blend: composing partial textures into the final texture.

"After completion, these textures are gathered and blended to form the
final spot noise texture" (figure 5).  Two composition modes match the
two decomposition modes:

* non-spatial partitions: every group rendered the *whole* texture area
  for its subset of spots, so composition is a plain pixel-wise sum
  (:func:`compose_add`) — correct because spot noise blending is
  additive and addition is associative and commutative;
* spatial tiling: each group rendered a guard-banded tile buffer, and
  composition crops each tile's owned pixel rect out of its buffer
  (:func:`compose_tiles`).  Guard bands absorb spots whose extent
  crosses tile borders, so the result is identical to the untiled
  rendering (property-tested in ``tests/parallel/test_tiling.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import PartitionError
from repro.parallel.tiling import Tile


def compose_add(partials: Sequence[np.ndarray]) -> np.ndarray:
    """Sum equally-shaped partial textures (non-spatial decomposition)."""
    if not partials:
        raise PartitionError("nothing to compose")
    shape = partials[0].shape
    for p in partials:
        if p.shape != shape:
            raise PartitionError(f"partial texture shapes differ: {p.shape} vs {shape}")
    out = np.zeros(shape, dtype=np.float64)
    for p in partials:
        out += p
    return out


def compose_tiles(
    partials: Sequence[np.ndarray],
    tiles: Sequence[Tile],
    texture_size: int,
) -> np.ndarray:
    """Assemble guard-banded tile buffers into the final texture.

    ``partials[i]`` must have the :meth:`Tile.buffer_shape` of
    ``tiles[i]``; the owned pixel rect is cropped out of the guard band
    and pasted at the tile's location.
    """
    if len(partials) != len(tiles):
        raise PartitionError(f"{len(partials)} partial textures for {len(tiles)} tiles")
    out = np.zeros((texture_size, texture_size), dtype=np.float64)
    seen = np.zeros((texture_size, texture_size), dtype=bool)
    for data, tile in zip(partials, tiles):
        if data.shape != tile.buffer_shape():
            raise PartitionError(
                f"tile {tile.index} buffer shape {data.shape} != expected {tile.buffer_shape()}"
            )
        g = tile.guard_px
        ix0, ix1, iy0, iy1 = tile.pixel_rect
        crop = data[g : g + tile.height, g : g + tile.width]
        if seen[iy0:iy1, ix0:ix1].any():
            raise PartitionError(f"tile {tile.index} overlaps a previously placed tile")
        out[iy0:iy1, ix0:ix1] = crop
        seen[iy0:iy1, ix0:ix1] = True
    if not seen.all():
        raise PartitionError("tiles do not cover the full texture")
    return out


def blend_cost_pixels(tiles: Sequence[Tile]) -> int:
    """Pixels touched by the sequential blend — the `c` of eq 3.2."""
    return int(sum(t.width * t.height for t in tiles))
