"""Process groups: the per-pipe unit of work.

A :class:`GroupTask` bundles everything one process group needs to render
its particle set into a partial texture; :func:`render_group` is the pure
(picklable, side-effect-free) function executed by whichever backend —
it builds the spot geometry for the group's spots, streams it through a
private simulated :class:`~repro.glsim.pipe.GraphicsPipe`, and returns
the partial texture plus the pipe's work counters.

Geometry generation ("spot shape calculation") corresponds to the
master+slaves CPU work; the pipe corresponds to the graphics hardware.
Within a group the real backend uses one OS worker: the master/slave
split inside a group is a *simulated-time* concern handled by
:mod:`repro.machine.schedule`, while real parallelism happens across
groups — the axis the paper's figure 5 draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.core.config import SpotNoiseConfig
from repro.errors import PartitionError
from repro.fields.vectorfield import VectorField2D
from repro.glsim.commands import BindTexture, DrawQuads, SetBlendMode
from repro.glsim.pipe import GraphicsPipe, PipeCounters
from repro.raster.texture import Texture
from repro.spots.bent import bent_spot_meshes, meshes_to_quads
from repro.spots.functions import get_profile
from repro.spots.transform import flow_transforms, spot_quads


@dataclass
class GroupTask:
    """Everything one group needs (picklable for the process backend)."""

    group_index: int
    positions: np.ndarray      # (n, 2) spot centres of this group's set
    intensities: np.ndarray    # (n,)
    field: VectorField2D
    config: SpotNoiseConfig
    fb_size: Tuple[int, int]   # (width, height) of this group's buffer
    fb_window: Tuple[float, float, float, float]
    n_processors: int = 1

    def __post_init__(self) -> None:
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise PartitionError(f"positions must be (n, 2), got {self.positions.shape}")
        if self.intensities.shape != (self.positions.shape[0],):
            raise PartitionError("intensities must match positions")


@dataclass
class GroupResult:
    """A group's partial texture and accounting."""

    group_index: int
    texture: np.ndarray
    counters: PipeCounters
    n_spots: int
    n_vertices: int


def build_spot_geometry(
    positions: np.ndarray,
    field: VectorField2D,
    config: SpotNoiseConfig,
    speed_hint: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Spot shape calculation: world-space textured quads for the spots.

    Returns ``(quads, uvs, quads_per_spot)``.  This is the work the paper
    assigns to the processors — including the spot transform, performed in
    software to avoid per-spot pipe state changes (section 4).
    """
    v_ref = speed_hint if speed_hint is not None else max(field.max_magnitude(), 1e-12)
    cell = field.grid.min_spacing()
    if config.spot_mode == "bent":
        bent_cfg = config.bent.resolve(cell)
        # field.sampler() hoists validation out of the integrator loop;
        # numerically identical to passing field.sample.
        verts, uv_grid = bent_spot_meshes(field.sampler(), positions, bent_cfg, v_ref)
        quads, uvs = meshes_to_quads(verts, uv_grid)
        return quads, uvs, bent_cfg.quads_per_spot
    velocities = field.sample(positions)
    transforms = flow_transforms(
        velocities, radius=config.spot_radius_cells * cell, scale=config.anisotropy, v_ref=v_ref
    )
    quads, uvs = spot_quads(positions, transforms)
    return quads, uvs, 1


@lru_cache(maxsize=8)
def _profile_texture(name: str, resolution: int) -> Texture:
    """Rasterised spot-profile texture, shared across groups and frames.

    The profile is static per configuration, so re-rasterising it for
    every group of every animation frame is pure overhead; per-pipe
    upload accounting is unaffected (each pipe still counts the upload).
    """
    return Texture(get_profile(name).make_texture(resolution))


def render_group(task: GroupTask) -> GroupResult:
    """Execute one group's spot set on a private simulated pipe."""
    cfg = task.config
    pipe = GraphicsPipe(task.group_index, task.fb_size[0], task.fb_size[1], task.fb_window)
    pipe.upload_texture(0, _profile_texture(cfg.profile, cfg.profile_resolution))
    pipe.state.set("render_mode", cfg.render_mode)
    pipe.state.set("raster_backend", cfg.raster_backend)
    pipe.state.set("samples_per_edge", cfg.samples_per_edge)
    pipe.execute(SetBlendMode("add"))
    pipe.execute(BindTexture(0))

    n = task.positions.shape[0]
    if n > 0:
        quads, uvs, qps = build_spot_geometry(task.positions, task.field, cfg)
        weights = np.repeat(task.intensities, qps)
        pipe.execute(DrawQuads(quads, uvs, weights))
    return GroupResult(
        group_index=task.group_index,
        texture=pipe.framebuffer.data,
        counters=pipe.counters,
        n_spots=n,
        n_vertices=n * cfg.vertices_per_spot(),
    )


class ProcessGroup:
    """Static description of one process group (master + slaves).

    Real execution routes through :func:`render_group`; this class carries
    the structural facts (which pipe, how many processors) used by reports
    and by the machine model.
    """

    def __init__(self, group_index: int, n_processors: int = 1):
        if group_index < 0:
            raise PartitionError(f"group_index must be >= 0, got {group_index}")
        if n_processors < 1:
            raise PartitionError(f"a group needs >= 1 processor, got {n_processors}")
        self.group_index = group_index
        self.n_processors = n_processors

    @property
    def n_slaves(self) -> int:
        return self.n_processors - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessGroup(pipe={self.group_index}, master+{self.n_slaves} slaves)"
