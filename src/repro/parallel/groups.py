"""Process groups: the per-pipe unit of work.

A :class:`GroupTask` bundles everything one process group needs to render
its particle set into a partial texture; a :class:`FrameWork` describes a
whole frame structure-shared — the field, config and particle arrays
once, plus per-group :class:`GroupSpec` index sets — so backends can
ship the heavy state a single time instead of once per group.
:func:`render_group` is the pure
(picklable, side-effect-free) function executed by whichever backend —
it builds the spot geometry for the group's spots, streams it through a
private simulated :class:`~repro.glsim.pipe.GraphicsPipe`, and returns
the partial texture plus the pipe's work counters.

Geometry generation ("spot shape calculation") corresponds to the
master+slaves CPU work; the pipe corresponds to the graphics hardware.
Within a group the real backend uses one OS worker: the master/slave
split inside a group is a *simulated-time* concern handled by
:mod:`repro.machine.schedule`, while real parallelism happens across
groups — the axis the paper's figure 5 draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import SpotNoiseConfig
from repro.errors import PartitionError
from repro.fields.vectorfield import VectorField2D
from repro.glsim.commands import BindTexture, DrawQuads, SetBlendMode
from repro.glsim.pipe import GraphicsPipe, PipeCounters
from repro.raster.texture import Texture
from repro.spots.bent import bent_spot_meshes, meshes_to_quads
from repro.spots.functions import get_profile
from repro.spots.transform import flow_transforms, spot_quads


@dataclass
class GroupTask:
    """Everything one group needs (picklable for the process backend).

    ``speed_hint`` is the frame's reference speed (the clamped
    ``field.max_magnitude()``), computed once per frame by the runtime
    instead of once per group — an O(grid) scan that is a pure function
    of the shared field, so recomputing it in every group is waste.  A
    task built without one falls back to computing it locally, which
    yields the identical value.
    """

    group_index: int
    positions: np.ndarray      # (n, 2) spot centres of this group's set
    intensities: np.ndarray    # (n,)
    field: VectorField2D
    config: SpotNoiseConfig
    fb_size: Tuple[int, int]   # (width, height) of this group's buffer
    fb_window: Tuple[float, float, float, float]
    n_processors: int = 1
    speed_hint: Optional[float] = None

    def __post_init__(self) -> None:
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise PartitionError(f"positions must be (n, 2), got {self.positions.shape}")
        if self.intensities.shape != (self.positions.shape[0],):
            raise PartitionError("intensities must match positions")


@dataclass
class GroupSpec:
    """Structural description of one group inside a :class:`FrameWork`.

    Unlike :class:`GroupTask`, a spec does *not* carry the group's
    particle arrays — only the index set selecting them out of the
    frame's shared particle collection.  Backends that place the frame
    state in shared memory ship these index sets (plus an epoch tag)
    instead of pickled copies of the field and particles.
    """

    group_index: int
    indices: np.ndarray        # int64 indices into the frame's particle arrays
    fb_size: Tuple[int, int]   # (width, height) of this group's buffer
    fb_window: Tuple[float, float, float, float]
    n_processors: int = 1

    def __post_init__(self) -> None:
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        if self.indices.ndim != 1:
            raise PartitionError(f"indices must be 1-D, got {self.indices.shape}")


@dataclass
class FrameWork:
    """One frame's worth of decomposition work, structure-shared.

    The read-mostly state (field, config, full particle arrays) appears
    exactly once; each :class:`GroupSpec` selects its spot subset by
    index.  :meth:`task` materialises the classic per-group
    :class:`GroupTask` — bit-identical inputs to what the runtime used
    to build directly — which is how the default
    :meth:`~repro.parallel.backends.ExecutionBackend.run_frame`
    delegates to ``run()``.  Zero-copy backends instead publish the
    shared arrays once and ship only the specs.
    """

    field: VectorField2D
    config: SpotNoiseConfig
    positions: np.ndarray      # (N, 2) full spot centres for the frame
    intensities: np.ndarray    # (N,)
    groups: List[GroupSpec] = dataclass_field(default_factory=list)
    speed_hint: Optional[float] = None  # frame-wide clamped max |v|

    def __post_init__(self) -> None:
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise PartitionError(f"positions must be (n, 2), got {self.positions.shape}")
        if self.intensities.shape != (self.positions.shape[0],):
            raise PartitionError("intensities must match positions")
        if self.speed_hint is None:
            # One O(grid) scan for the whole frame; every group's
            # geometry uses the identical reference speed it would have
            # computed itself.
            self.speed_hint = max(self.field.max_magnitude(), 1e-12)

    def task(self, spec: GroupSpec) -> GroupTask:
        """Materialise one group's :class:`GroupTask` (copies the subset)."""
        return GroupTask(
            group_index=spec.group_index,
            positions=self.positions[spec.indices],
            intensities=self.intensities[spec.indices],
            field=self.field,
            config=self.config,
            fb_size=spec.fb_size,
            fb_window=spec.fb_window,
            n_processors=spec.n_processors,
            speed_hint=self.speed_hint,
        )

    def tasks(self) -> "List[GroupTask]":
        return [self.task(spec) for spec in self.groups]

    @classmethod
    def from_tasks(cls, tasks: "List[GroupTask]") -> "FrameWork":
        """Rebuild a frame from homogeneous per-group tasks.

        All tasks must share the same field object and configuration
        (the invariant the runtime guarantees); the shared particle
        arrays are the concatenation of the per-task subsets with
        identity index ranges.
        """
        if not tasks:
            raise PartitionError("cannot build a FrameWork from zero tasks")
        first = tasks[0]
        for t in tasks[1:]:
            if t.field is not first.field or t.config != first.config:
                raise PartitionError(
                    "from_tasks requires every task to share one field and config"
                )
        positions = np.concatenate([t.positions for t in tasks], axis=0)
        intensities = np.concatenate([t.intensities for t in tasks])
        groups: List[GroupSpec] = []
        offset = 0
        for t in tasks:
            n = t.positions.shape[0]
            groups.append(
                GroupSpec(
                    group_index=t.group_index,
                    indices=np.arange(offset, offset + n, dtype=np.int64),
                    fb_size=t.fb_size,
                    fb_window=t.fb_window,
                    n_processors=t.n_processors,
                )
            )
            offset += n
        return cls(
            field=first.field,
            config=first.config,
            positions=positions,
            intensities=intensities,
            groups=groups,
            speed_hint=first.speed_hint,
        )


@dataclass
class GroupResult:
    """A group's partial texture and accounting."""

    group_index: int
    texture: np.ndarray
    counters: PipeCounters
    n_spots: int
    n_vertices: int


def build_spot_geometry(
    positions: np.ndarray,
    field: VectorField2D,
    config: SpotNoiseConfig,
    speed_hint: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Spot shape calculation: world-space textured quads for the spots.

    Returns ``(quads, uvs, quads_per_spot)``.  This is the work the paper
    assigns to the processors — including the spot transform, performed in
    software to avoid per-spot pipe state changes (section 4).
    """
    v_ref = speed_hint if speed_hint is not None else max(field.max_magnitude(), 1e-12)
    cell = field.grid.min_spacing()
    if config.spot_mode == "bent":
        bent_cfg = config.bent.resolve(cell)
        # field.sampler() hoists validation out of the integrator loop;
        # numerically identical to passing field.sample.
        verts, uv_grid = bent_spot_meshes(field.sampler(), positions, bent_cfg, v_ref)
        quads, uvs = meshes_to_quads(verts, uv_grid)
        return quads, uvs, bent_cfg.quads_per_spot
    velocities = field.sample(positions)
    transforms = flow_transforms(
        velocities, radius=config.spot_radius_cells * cell, scale=config.anisotropy, v_ref=v_ref
    )
    quads, uvs = spot_quads(positions, transforms)
    return quads, uvs, 1


@lru_cache(maxsize=8)
def _profile_texture(name: str, resolution: int) -> Texture:
    """Rasterised spot-profile texture, shared across groups and frames.

    The profile is static per configuration, so re-rasterising it for
    every group of every animation frame is pure overhead; per-pipe
    upload accounting is unaffected (each pipe still counts the upload).
    """
    return Texture(get_profile(name).make_texture(resolution))


def render_group(task: GroupTask) -> GroupResult:
    """Execute one group's spot set on a private simulated pipe."""
    cfg = task.config
    pipe = GraphicsPipe(task.group_index, task.fb_size[0], task.fb_size[1], task.fb_window)
    pipe.upload_texture(0, _profile_texture(cfg.profile, cfg.profile_resolution))
    pipe.state.set("render_mode", cfg.render_mode)
    pipe.state.set("raster_backend", cfg.raster_backend)
    pipe.state.set("samples_per_edge", cfg.samples_per_edge)
    pipe.execute(SetBlendMode("add"))
    pipe.execute(BindTexture(0))

    n = task.positions.shape[0]
    if n > 0:
        quads, uvs, qps = build_spot_geometry(
            task.positions, task.field, cfg, speed_hint=task.speed_hint
        )
        weights = np.repeat(task.intensities, qps)
        pipe.execute(DrawQuads(quads, uvs, weights))
    return GroupResult(
        group_index=task.group_index,
        texture=pipe.framebuffer.data,
        counters=pipe.counters,
        n_spots=n,
        n_vertices=n * cfg.vertices_per_spot(),
    )


class ProcessGroup:
    """Static description of one process group (master + slaves).

    Real execution routes through :func:`render_group`; this class carries
    the structural facts (which pipe, how many processors) used by reports
    and by the machine model.
    """

    def __init__(self, group_index: int, n_processors: int = 1):
        if group_index < 0:
            raise PartitionError(f"group_index must be >= 0, got {group_index}")
        if n_processors < 1:
            raise PartitionError(f"a group needs >= 1 processor, got {n_processors}")
        self.group_index = group_index
        self.n_processors = n_processors

    @property
    def n_slaves(self) -> int:
        return self.n_processors - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessGroup(pipe={self.group_index}, master+{self.n_slaves} slaves)"
