"""Spot partitioning strategies.

"The collection of particles is partitioned into a number of disjunct
sets" (section 3).  Non-spatial strategies (round robin, contiguous
blocks) produce exactly disjoint, covering index sets; the spatial
strategy implements the tiling variant of section 4, where spots whose
extent straddles a tile border are deliberately assigned to *every*
group they might affect (so the partition covers but is not disjoint).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import PartitionError
from repro.raster.clip import points_in_rect


def _check_groups(n_groups: int) -> None:
    if n_groups < 1:
        raise PartitionError(f"need at least 1 group, got {n_groups}")


def round_robin_partition(n_items: int, n_groups: int) -> List[np.ndarray]:
    """Index sets ``[i, i + n_groups, ...]`` — load-balanced by construction."""
    _check_groups(n_groups)
    if n_items < 0:
        raise PartitionError(f"n_items must be >= 0, got {n_items}")
    return [np.arange(g, n_items, n_groups, dtype=np.int64) for g in range(n_groups)]


def block_partition(n_items: int, n_groups: int) -> List[np.ndarray]:
    """Contiguous index blocks; sizes differ by at most one."""
    _check_groups(n_groups)
    if n_items < 0:
        raise PartitionError(f"n_items must be >= 0, got {n_items}")
    return [np.asarray(b, dtype=np.int64) for b in np.array_split(np.arange(n_items), n_groups)]


def spatial_partition(
    positions: np.ndarray,
    rects: "list[tuple[float, float, float, float]]",
    margin: float,
) -> List[np.ndarray]:
    """Assign spots to every tile rect their extent may touch.

    Parameters
    ----------
    positions:
        ``(N, 2)`` spot centres.
    rects:
        World rectangles ``(x0, x1, y0, y1)``, one per group/tile.
    margin:
        Spot extent: a spot affects a tile if its centre is within
        *margin* of the tile rect.  "Spots, however, have a certain extent
        and may therefore belong to more than one region" (section 4).

    Returns index arrays per tile.  Every spot inside the union of rects
    appears in at least one group; border spots appear in several.
    """
    pos = np.asarray(positions, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise PartitionError(f"positions must be (N, 2), got {pos.shape}")
    if not rects:
        raise PartitionError("need at least one tile rect")
    if margin < 0:
        raise PartitionError(f"margin must be >= 0, got {margin}")
    out: List[np.ndarray] = []
    for rect in rects:
        mask = points_in_rect(pos, rect, margin)
        out.append(np.nonzero(mask)[0].astype(np.int64))
    return out


def partition_is_disjoint_cover(parts: List[np.ndarray], n_items: int) -> bool:
    """True when the index sets are pairwise disjoint and cover ``range(n)``."""
    if not parts:
        return n_items == 0
    allidx = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    if allidx.size != n_items:
        return False
    return bool(np.array_equal(np.sort(allidx), np.arange(n_items)))


def duplication_factor(parts: List[np.ndarray], n_items: int) -> float:
    """Total assigned spots / distinct spots — the tiling overhead metric."""
    if n_items == 0:
        return 1.0
    total = sum(int(p.size) for p in parts)
    return total / n_items
