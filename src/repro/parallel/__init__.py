"""The divide-and-conquer runtime (figure 5).

This package implements the paper's parallel decomposition *for real*:
spots are partitioned into disjoint sets, each set is processed by one
process group driving one simulated graphics pipe, partial textures are
gathered and blended into the final texture.  Execution backends range
from serial (reference) through thread- and process-based to zero-copy
shared-memory process groups (:mod:`repro.parallel.sharedmem`); all
backends produce bit-identical textures for the same seed, which is the
core correctness property of the decomposition (spots are independent
and blending is associative/commutative addition).

The decomposition itself can be *planned* instead of configured: the
cost-model :class:`~repro.parallel.planner.DecompositionPlanner` prices
candidate (backend, n_groups, partition) triples — eq 3.2's blend term
included — and ``SpotNoiseConfig(backend="auto")`` resolves through it.
"""

from repro.parallel.partition import (
    round_robin_partition,
    block_partition,
    spatial_partition,
)
from repro.parallel.tiling import TileLayout, Tile
from repro.parallel.groups import FrameWork, GroupResult, GroupSpec, ProcessGroup
from repro.parallel.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    SerialBackend,
    ThreadBackend,
    ProcessBackend,
    get_backend,
)
from repro.parallel.sharedmem import SharedMemoryBackend
from repro.parallel.planner import (
    DecompositionPlan,
    DecompositionPlanner,
    PlanCandidate,
)
from repro.parallel.compose import compose_add, compose_tiles
from repro.parallel.runtime import DivideAndConquerRuntime, RuntimeReport

__all__ = [
    "round_robin_partition",
    "block_partition",
    "spatial_partition",
    "TileLayout",
    "Tile",
    "ProcessGroup",
    "GroupResult",
    "GroupSpec",
    "FrameWork",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "SharedMemoryBackend",
    "DecompositionPlan",
    "DecompositionPlanner",
    "PlanCandidate",
    "get_backend",
    "compose_add",
    "compose_tiles",
    "DivideAndConquerRuntime",
    "RuntimeReport",
]
