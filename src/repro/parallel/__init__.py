"""The divide-and-conquer runtime (figure 5).

This package implements the paper's parallel decomposition *for real*:
spots are partitioned into disjoint sets, each set is processed by one
process group driving one simulated graphics pipe, partial textures are
gathered and blended into the final texture.  Execution backends range
from serial (reference) to thread- and process-based; all backends
produce bit-identical textures for the same seed, which is the core
correctness property of the decomposition (spots are independent and
blending is associative/commutative addition).
"""

from repro.parallel.partition import (
    round_robin_partition,
    block_partition,
    spatial_partition,
)
from repro.parallel.tiling import TileLayout, Tile
from repro.parallel.groups import ProcessGroup, GroupResult
from repro.parallel.backends import (
    ExecutionBackend,
    SerialBackend,
    ThreadBackend,
    ProcessBackend,
    get_backend,
)
from repro.parallel.compose import compose_add, compose_tiles
from repro.parallel.runtime import DivideAndConquerRuntime, RuntimeReport

__all__ = [
    "round_robin_partition",
    "block_partition",
    "spatial_partition",
    "TileLayout",
    "Tile",
    "ProcessGroup",
    "GroupResult",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "get_backend",
    "compose_add",
    "compose_tiles",
    "DivideAndConquerRuntime",
    "RuntimeReport",
]
