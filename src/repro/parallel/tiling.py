"""Texture tiling: spatial decomposition of the final texture.

"Particle sets can be partitioned into disjunct regions, allowing the
texture to be decomposed into smaller texture tiles" (section 3).  A
:class:`TileLayout` cuts the texture into a grid of tiles; each tile owns
a disjoint pixel rect of the final texture and renders into a private
frame buffer with a *guard band* wide enough for the extent of any spot
assigned to it, so cropping the owned rect out of the guard-banded buffer
reproduces the untiled rendering exactly (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import PartitionError
from repro.raster.framebuffer import FrameBuffer


@dataclass(frozen=True)
class Tile:
    """One tile of the final texture.

    Attributes
    ----------
    index:
        Tile id (row-major in the tile grid).
    pixel_rect:
        Owned pixels ``(ix0, ix1, iy0, iy1)`` (half-open) in the final
        texture — disjoint across tiles.
    world_rect:
        World rectangle of the owned pixels.
    guard_px:
        Guard band width in pixels added on every side of the private
        frame buffer.
    """

    index: int
    pixel_rect: Tuple[int, int, int, int]
    world_rect: Tuple[float, float, float, float]
    guard_px: int

    @property
    def width(self) -> int:
        return self.pixel_rect[1] - self.pixel_rect[0]

    @property
    def height(self) -> int:
        return self.pixel_rect[3] - self.pixel_rect[2]

    def buffer_shape(self) -> Tuple[int, int]:
        """(height, width) of the private guard-banded frame buffer."""
        return (self.height + 2 * self.guard_px, self.width + 2 * self.guard_px)


class TileLayout:
    """A tiles_x x tiles_y decomposition of a square texture.

    Parameters
    ----------
    texture_size:
        Final texture resolution (pixels, square).
    tiles_x, tiles_y:
        Tile grid shape; ``tiles_x * tiles_y`` tiles total.
    window:
        World rectangle of the full texture.
    guard_px:
        Guard band width; must be at least the pixel extent of the largest
        spot for exact composition.
    """

    def __init__(
        self,
        texture_size: int,
        tiles_x: int,
        tiles_y: int,
        window: Tuple[float, float, float, float],
        guard_px: int = 16,
    ):
        if texture_size < 1:
            raise PartitionError(f"texture_size must be >= 1, got {texture_size}")
        if tiles_x < 1 or tiles_y < 1:
            raise PartitionError(f"tile grid must be >= 1x1, got {tiles_x}x{tiles_y}")
        if tiles_x > texture_size or tiles_y > texture_size:
            raise PartitionError("more tiles than pixels")
        if guard_px < 0:
            raise PartitionError(f"guard_px must be >= 0, got {guard_px}")
        self.texture_size = int(texture_size)
        self.tiles_x = int(tiles_x)
        self.tiles_y = int(tiles_y)
        self.window = tuple(float(v) for v in window)
        self.guard_px = int(guard_px)

    @classmethod
    def for_groups(
        cls, texture_size: int, n_groups: int, window, guard_px: int = 16
    ) -> "TileLayout":
        """A near-square tile grid with exactly *n_groups* tiles.

        Factorises ``n_groups`` as ``a x b`` with ``a <= b`` and ``a`` as
        large as possible (1 -> 1x1, 2 -> 1x2, 4 -> 2x2, 6 -> 2x3 ...),
        minimising border length and hence spot duplication.
        """
        if n_groups < 1:
            raise PartitionError(f"n_groups must be >= 1, got {n_groups}")
        a = int(n_groups**0.5)
        while n_groups % a:
            a -= 1
        return cls(texture_size, n_groups // a, a, window, guard_px)

    @property
    def n_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    def _axis_splits(self, n: int) -> List[int]:
        """Pixel boundaries splitting ``texture_size`` into n near-even parts."""
        base, extra = divmod(self.texture_size, n)
        edges = [0]
        for i in range(n):
            edges.append(edges[-1] + base + (1 if i < extra else 0))
        return edges

    def tiles(self) -> List[Tile]:
        """All tiles, row-major (y outer)."""
        x0, x1, y0, y1 = self.window
        sx = (x1 - x0) / self.texture_size
        sy = (y1 - y0) / self.texture_size
        xs = self._axis_splits(self.tiles_x)
        ys = self._axis_splits(self.tiles_y)
        out: List[Tile] = []
        for ty in range(self.tiles_y):
            for tx in range(self.tiles_x):
                ix0, ix1 = xs[tx], xs[tx + 1]
                iy0, iy1 = ys[ty], ys[ty + 1]
                world = (x0 + ix0 * sx, x0 + ix1 * sx, y0 + iy0 * sy, y0 + iy1 * sy)
                out.append(
                    Tile(
                        index=ty * self.tiles_x + tx,
                        pixel_rect=(ix0, ix1, iy0, iy1),
                        world_rect=world,
                        guard_px=self.guard_px,
                    )
                )
        return out

    def make_tile_framebuffer(self, tile: Tile) -> FrameBuffer:
        """Private guard-banded frame buffer whose pixel lattice is aligned
        with the final texture (guard pixels continue the global grid)."""
        x0, x1, y0, y1 = self.window
        sx = (x1 - x0) / self.texture_size
        sy = (y1 - y0) / self.texture_size
        g = tile.guard_px
        ix0, ix1, iy0, iy1 = tile.pixel_rect
        win = (
            x0 + (ix0 - g) * sx,
            x0 + (ix1 + g) * sx,
            y0 + (iy0 - g) * sy,
            y0 + (iy1 + g) * sy,
        )
        h, w = tile.buffer_shape()
        return FrameBuffer(w, h, win)

    def guard_margin_world(self) -> float:
        """Guard band width in world units (max over axes)."""
        x0, x1, y0, y1 = self.window
        return self.guard_px * max(
            (x1 - x0) / self.texture_size, (y1 - y0) / self.texture_size
        )
