"""Zero-copy shared-memory process rendering.

:class:`SharedMemoryBackend` is the process backend the paper's
decomposition actually wants: process groups with *structure-shared*
frame state.  Where :class:`~repro.parallel.backends.ProcessBackend`
pickles the full field plus each group's particle subset into every
worker on every frame, this backend places the read-mostly state in
:mod:`multiprocessing.shared_memory` segments and ships only group
index sets plus epoch tags per :meth:`run_frame` — share the read-mostly
state, copy only what changed:

* the **field** segment holds the ``(ny, nx, 2)`` vector data; it is
  rewritten only when the frame carries a *different field object*
  (pipeline ``read_data`` swaps the object, so a new data frame bumps
  the field epoch and a static animation ships the field exactly once);
* the **particles** segment holds the frame's positions/intensities,
  rewritten once per frame (one memcpy, never per group);
* the **indices** segment holds the concatenated per-group index sets;
* the **out** segment holds one partial-texture slot per group that
  workers write their result into, so textures come back by memcpy too.

Workers are a persistent pool of plain processes.  Each caches its
reconstructed field/config *by epoch*: a task message whose epoch
matches costs nothing, a bumped epoch (``read_data`` or a config
change) invalidates the resident state and the worker rebuilds it from
the segment — no restart, no re-fork.  Task messages carry only the
segment names, offsets, epochs and the tiny pickled grid/config
metadata (<1 KB); the arrays themselves never travel through a pipe.

Execution is bit-identical to :class:`~repro.parallel.backends.SerialBackend`:
workers run the same pure :func:`~repro.parallel.groups.render_group` on
arrays that round-trip through shared memory exactly (float64 memcpy),
which the backend-equivalence zoo asserts.

A task failure inside a worker is caught there and reported back; the
pool stays warm and healthy (like the thread backend, unlike the classic
process pool).  Only infrastructure failures — a worker dying, an
interrupt mid-collection — discard the pool, via ``BaseException`` so a
``KeyboardInterrupt`` can never leave a desynchronised pool behind.

The field-epoch cache keys on *object identity*: callers must not
mutate ``field.data`` in place between frames (the pipeline API never
does — ``read_data`` replaces the field object).
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_mod
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from multiprocessing import shared_memory

from repro.core.config import SpotNoiseConfig
from repro.errors import BackendError, PartitionError
from repro.fields.vectorfield import VectorField2D
from repro.parallel.backends import ExecutionBackend
from repro.parallel.groups import FrameWork, GroupResult, GroupTask, render_group

_BYTES_F64 = 8
_BYTES_POS = 16  # one (x, y) float64 pair

#: Seconds between liveness checks while waiting for group results.
_POLL_S = 0.25

#: Seconds to wait for workers to drain their shutdown sentinel.
_JOIN_S = 5.0


@dataclass(frozen=True)
class _GroupMessage:
    """Everything one worker needs to render one group — no arrays.

    The heavy state travels through the named segments; this message is
    a few hundred bytes of names, offsets and epochs (the grid/config
    metadata blobs are tiny and carried on every message so a worker
    that joined the pool late, or missed an epoch, can always rebuild).
    """

    task_seq: int              # unique per message; results are keyed by it
    frame_epoch: int
    field_epoch: int
    field_name: str
    field_shape: Tuple[int, int, int]
    field_meta: bytes          # pickled (grid, boundary)
    config_epoch: int
    config_blob: bytes         # pickled SpotNoiseConfig
    part_name: str
    n_particles: int
    idx_name: str
    idx_total: int
    idx_start: int
    idx_count: int
    out_name: str
    out_offset: int            # bytes into the out segment
    group_index: int
    fb_size: Tuple[int, int]
    fb_window: Tuple[float, float, float, float]
    n_processors: int
    speed_hint: "float | None"


class _Segment:
    """A growable parent-owned shared-memory buffer.

    Shared-memory segments have a fixed size, so growth recreates the
    segment under a fresh (auto-generated) name; workers notice the name
    change in the next task message and re-attach.  Old mappings held by
    workers stay valid until they close them — ``unlink`` only removes
    the name.
    """

    def __init__(self) -> None:
        self.shm: Optional[shared_memory.SharedMemory] = None

    def ensure(self, nbytes: int) -> shared_memory.SharedMemory:
        nbytes = max(int(nbytes), 1)
        if self.shm is None or self.shm.size < nbytes:
            self.close()
            self.shm = shared_memory.SharedMemory(create=True, size=nbytes)
        return self.shm

    def close(self) -> None:
        if self.shm is not None:
            self.shm.close()
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self.shm = None


class _WorkerState:
    """Per-worker caches: segment attachments and epoch-tagged state."""

    def __init__(self) -> None:
        self.attached: Dict[str, shared_memory.SharedMemory] = {}
        self.role_names: Dict[str, str] = {}
        self._field: "Tuple[int, str, VectorField2D] | None" = None
        self._config: "Tuple[int, SpotNoiseConfig] | None" = None

    def attach(self, role: str, name: str) -> shared_memory.SharedMemory:
        old = self.role_names.get(role)
        if old is not None and old != name:
            stale = self.attached.pop(old, None)
            if stale is not None:
                stale.close()
        shm = self.attached.get(name)
        if shm is None:
            shm = shared_memory.SharedMemory(name=name)
            self.attached[name] = shm
        self.role_names[role] = name
        return shm

    def field(self, msg: _GroupMessage) -> VectorField2D:
        cached = self._field
        if cached is not None and cached[0] == msg.field_epoch and cached[1] == msg.field_name:
            return cached[2]
        shm = self.attach("field", msg.field_name)
        data = np.ndarray(msg.field_shape, dtype=np.float64, buffer=shm.buf)
        grid, boundary = pickle.loads(msg.field_meta)
        field = VectorField2D(grid, data, boundary)
        self._field = (msg.field_epoch, msg.field_name, field)
        return field

    def config(self, msg: _GroupMessage) -> SpotNoiseConfig:
        cached = self._config
        if cached is not None and cached[0] == msg.config_epoch:
            return cached[1]
        config = pickle.loads(msg.config_blob)
        self._config = (msg.config_epoch, config)
        return config

    def close(self) -> None:
        for shm in self.attached.values():
            shm.close()
        self.attached.clear()
        self.role_names.clear()
        self._field = None
        self._config = None


def _run_group(msg: _GroupMessage, state: _WorkerState) -> tuple:
    """Execute one group in a worker; returns the result-message tail."""
    field = state.field(msg)
    config = state.config(msg)
    part = state.attach("particles", msg.part_name)
    positions = np.ndarray((msg.n_particles, 2), dtype=np.float64, buffer=part.buf)
    intensities = np.ndarray(
        (msg.n_particles,), dtype=np.float64, buffer=part.buf,
        offset=msg.n_particles * _BYTES_POS,
    )
    idx_shm = state.attach("indices", msg.idx_name)
    indices = np.ndarray((msg.idx_total,), dtype=np.int64, buffer=idx_shm.buf)
    idx = indices[msg.idx_start : msg.idx_start + msg.idx_count]
    task = GroupTask(
        group_index=msg.group_index,
        positions=positions[idx],
        intensities=intensities[idx],
        field=field,
        config=config,
        fb_size=msg.fb_size,
        fb_window=msg.fb_window,
        n_processors=msg.n_processors,
        speed_hint=msg.speed_hint,
    )
    result = render_group(task)
    out_shm = state.attach("out", msg.out_name)
    out = np.ndarray(
        result.texture.shape, dtype=np.float64, buffer=out_shm.buf,
        offset=msg.out_offset,
    )
    out[:] = result.texture
    return (
        msg.task_seq,
        result.counters,
        result.n_spots,
        result.n_vertices,
        result.texture.shape,
    )


def _worker_main(task_q, result_q) -> None:
    """Worker loop: pull group messages until the ``None`` sentinel."""
    state = _WorkerState()
    try:
        while True:
            msg = task_q.get()
            if msg is None:
                return
            try:
                tail = _run_group(msg, state)
            except Exception as exc:  # noqa: BLE001 - reported to the parent
                # Ship the failure as plain strings: always picklable, so
                # a weird exception type can never wedge the result queue.
                result_q.put(
                    ("err", msg.task_seq, msg.group_index, type(exc).__name__, str(exc))
                )
            else:
                result_q.put(("ok",) + tail)
    finally:
        state.close()


class SharedMemoryBackend(ExecutionBackend):
    """Persistent process pool over shared-memory frame state.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` grows to the high-water group count (workers
        are added, never torn down, mirroring the thread backend).
    """

    name = "sharedmem"

    def __init__(self, max_workers: "int | None" = None):
        if max_workers is not None and max_workers < 1:
            raise BackendError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._ctx = multiprocessing.get_context()
        self._pool_lock = threading.Lock()
        self._workers: "List[multiprocessing.Process]" = []  #: guarded-by: _pool_lock
        self._task_q = None  #: guarded-by: _pool_lock
        self._result_q = None  #: guarded-by: _pool_lock
        self._segments: Dict[str, _Segment] = {  #: guarded-by: _pool_lock
            role: _Segment() for role in ("field", "particles", "indices", "out")
        }
        self._frame_epoch = 0  #: guarded-by: _pool_lock
        self._field_epoch = 0  #: guarded-by: _pool_lock
        self._last_field: Optional[VectorField2D] = None  #: guarded-by: _pool_lock
        self._field_meta = b""  #: guarded-by: _pool_lock
        self._config_epoch = 0  #: guarded-by: _pool_lock
        self._last_config: Optional[SpotNoiseConfig] = None  #: guarded-by: _pool_lock
        self._config_blob = b""  #: guarded-by: _pool_lock
        self._closed = False  #: guarded-by: _pool_lock

    # -- pool management -------------------------------------------------------
    def _ensure_pool_locked(self, n_groups: int) -> None:
        if self._closed:
            raise BackendError("shared-memory backend is closed")
        size = self.max_workers or n_groups
        if self._task_q is None:
            # Start the parent's resource tracker *before* forking: the
            # workers then inherit it, so their attach-side segment
            # registrations land in the same tracker the parent's
            # unlink() unregisters from.  A worker that forked without a
            # tracker would lazily start its own and mis-report the
            # parent's segments as leaked at shutdown.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - tracker is an optimisation
                pass
            self._task_q = self._ctx.SimpleQueue()
            self._result_q = self._ctx.Queue()
        while len(self._workers) < size:
            worker = self._ctx.Process(
                target=_worker_main,
                args=(self._task_q, self._result_q),
                name=f"sharedmem-worker-{len(self._workers)}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)

    def _discard_pool_locked(self) -> None:
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self._workers:
            worker.join(timeout=_JOIN_S)
        self._workers = []
        # Terminated workers may have died holding a queue lock; fresh
        # queues come with the next pool.
        self._task_q = None
        self._result_q = None
        # Worker epoch caches died with the pool, but the parent-side
        # epochs stay valid: messages always carry enough to rebuild.

    @property
    def pool_size(self) -> int:
        with self._pool_lock:
            return len(self._workers)

    # -- epoch bookkeeping -----------------------------------------------------
    def _publish_field_locked(self, field: VectorField2D) -> None:
        if self._last_field is field:
            return
        self._field_epoch += 1
        self._last_field = field
        self._field_meta = pickle.dumps((field.grid, field.boundary))
        shm = self._segments["field"].ensure(field.data.nbytes)
        view = np.ndarray(field.data.shape, dtype=np.float64, buffer=shm.buf)
        view[:] = field.data

    def _publish_config_locked(self, config: SpotNoiseConfig) -> None:
        if self._last_config == config:
            return
        self._config_epoch += 1
        self._last_config = config
        self._config_blob = pickle.dumps(config)

    def _publish_frame_locked(self, frame: FrameWork) -> "Tuple[list, list]":
        """Write the frame's arrays into the segments; return messages
        and per-group (offset, shape-capacity) output slots."""
        self._frame_epoch += 1
        self._publish_field_locked(frame.field)
        self._publish_config_locked(frame.config)

        n = frame.positions.shape[0]
        part = self._segments["particles"].ensure(n * (_BYTES_POS + _BYTES_F64))
        pos_view = np.ndarray((n, 2), dtype=np.float64, buffer=part.buf)
        pos_view[:] = frame.positions
        int_view = np.ndarray((n,), dtype=np.float64, buffer=part.buf, offset=n * _BYTES_POS)
        int_view[:] = frame.intensities

        counts = [int(spec.indices.size) for spec in frame.groups]
        total_idx = sum(counts)
        idx_seg = self._segments["indices"].ensure(total_idx * _BYTES_F64)
        idx_view = np.ndarray((total_idx,), dtype=np.int64, buffer=idx_seg.buf)
        starts = []
        cursor = 0
        for spec, count in zip(frame.groups, counts):
            idx_view[cursor : cursor + count] = spec.indices
            starts.append(cursor)
            cursor += count

        offsets = []
        out_bytes = 0
        for spec in frame.groups:
            offsets.append(out_bytes)
            out_bytes += spec.fb_size[0] * spec.fb_size[1] * _BYTES_F64
        out_seg = self._segments["out"].ensure(out_bytes)

        field_shm = self._segments["field"].shm
        messages = [
            _GroupMessage(
                task_seq=g,
                frame_epoch=self._frame_epoch,
                field_epoch=self._field_epoch,
                field_name=field_shm.name,
                field_shape=tuple(frame.field.data.shape),
                field_meta=self._field_meta,
                config_epoch=self._config_epoch,
                config_blob=self._config_blob,
                part_name=part.name,
                n_particles=n,
                idx_name=idx_seg.name,
                idx_total=total_idx,
                idx_start=starts[g],
                idx_count=counts[g],
                out_name=out_seg.name,
                out_offset=offsets[g],
                group_index=spec.group_index,
                fb_size=spec.fb_size,
                fb_window=spec.fb_window,
                n_processors=spec.n_processors,
                speed_hint=frame.speed_hint,
            )
            for g, spec in enumerate(frame.groups)
        ]
        return messages, offsets

    # -- execution -------------------------------------------------------------
    def _collect_locked(self, expected: int) -> "Tuple[dict, list]":
        """Drain *expected* result messages; errors collected, not raised,
        so the queue is clean for the next frame either way.

        Results are keyed by ``task_seq`` (the message's position in the
        frame), not by ``group_index`` — group indices are not required
        to be unique in a task sequence, and keying on a duplicate would
        drop a result and leave this loop waiting forever.
        """
        done: Dict[int, tuple] = {}
        errors: List[str] = []
        while len(done) + len(errors) < expected:
            try:
                msg = self._result_q.get(timeout=_POLL_S)
            except queue_mod.Empty:
                dead = [w.name for w in self._workers if not w.is_alive()]
                if dead:
                    raise BackendError(
                        f"shared-memory worker(s) died mid-frame: {', '.join(dead)}"
                    )
                continue
            if msg[0] == "ok":
                done[msg[1]] = msg[2:]
            else:
                _, _seq, group_index, exc_type, text = msg
                errors.append(f"group {group_index} failed: {exc_type}: {text}")
        return done, errors

    def run_frame(self, frame: FrameWork) -> List[GroupResult]:
        if not frame.groups:
            return []
        with self._pool_lock:
            self._ensure_pool_locked(len(frame.groups))
            try:
                messages, _ = self._publish_frame_locked(frame)
                for msg in messages:
                    self._task_q.put(msg)
                done, errors = self._collect_locked(len(messages))
            except BaseException as exc:
                # Infrastructure failure (dead worker, interrupt while
                # publishing or collecting): in-flight messages and
                # results can no longer be accounted for, so the pool is
                # unusable — discard it before propagating.
                self._discard_pool_locked()
                if isinstance(exc, BackendError) or not isinstance(exc, Exception):
                    raise
                raise BackendError(f"shared-memory backend failed: {exc}") from exc
            if errors:
                # Task-level failures: every message was drained, workers
                # are healthy, the pool stays warm for the next frame.
                raise BackendError("; ".join(errors))
            out_shm = self._segments["out"].shm
            results: List[GroupResult] = []
            for msg in messages:
                counters, n_spots, n_vertices, shape = done[msg.task_seq]
                view = np.ndarray(
                    shape, dtype=np.float64, buffer=out_shm.buf, offset=msg.out_offset
                )
                results.append(
                    GroupResult(
                        group_index=msg.group_index,
                        texture=view.copy(),
                        counters=counters,
                        n_spots=n_spots,
                        n_vertices=n_vertices,
                    )
                )
            return results

    def run(self, tasks: Sequence[GroupTask]) -> List[GroupResult]:
        """Task-level entry: rebuild the structure-shared frame.

        Homogeneous tasks (one field object, one config — what the
        runtime produces) execute as a single parallel frame; a
        heterogeneous sequence falls back to one frame per task.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        try:
            return self.run_frame(FrameWork.from_tasks(tasks))
        except PartitionError:
            results: List[GroupResult] = []
            for task in tasks:
                results.extend(self.run_frame(FrameWork.from_tasks([task])))
            return results

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        with self._pool_lock:
            if self._closed:
                return
            self._closed = True
            if self._task_q is not None:
                try:
                    for _ in self._workers:
                        self._task_q.put(None)
                except (OSError, ValueError):  # pragma: no cover - queue gone
                    pass
            for worker in self._workers:
                worker.join(timeout=_JOIN_S)
            for worker in self._workers:
                if worker.is_alive():  # pragma: no cover - stuck worker
                    worker.terminate()
                    worker.join(timeout=_JOIN_S)
            self._workers = []
            self._task_q = None
            self._result_q = None
            for segment in self._segments.values():
                segment.close()
            self._last_field = None
            self._last_config = None
