"""Cost-model decomposition planning.

The paper chooses its decomposition from a performance model (figure 5,
eq 3.2): total time is parallel spot work plus a sequential blend term
that grows with the number of process groups, so the best group count is
a balance, not a maximum.  :class:`DecompositionPlanner` turns that into
an executable decision for the *real* backends: given a
:class:`~repro.machine.workload.SpotWorkload` it prices every candidate
``(backend, n_groups, partition)`` triple with the calibrated
:class:`~repro.machine.costs.CostModel` and returns the cheapest as a
:class:`DecompositionPlan`.

Two families of constants participate:

* the **render-work terms** (spot shaping, feeding, scan conversion,
  the eq-3.2 blend term, the sequential spot-distribution preprocessing)
  use the 1997 Onyx2 constants times a host calibration ``scale`` — the
  same EWMA scale the serving layer's
  :class:`~repro.service.admission.LatencyPredictor` learns online;
* the **host transport terms** (pickling IPC for the classic process
  backend, shared-memory memcpy for the zero-copy backend, per-group
  worker dispatch) use present-day host magnitudes and are *not*
  scaled.

Because the calibration multiplies only the render work, it shifts the
balance: a slow host (large scale) amortises parallel overheads and the
plan fans out; a fast host tips the same workload back to ``serial``.
That is exactly why the serving layer re-plans when its calibration
drifts.  For a *fixed* calibration the plan is a deterministic pure
function of the workload.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.errors import BackendError, MachineError
from repro.machine.costs import CostModel
from repro.machine.schedule import tile_duplication
from repro.machine.workload import SpotWorkload

#: Backends the planner knows how to price, cheapest-infrastructure
#: first — the order used to break exact ties.
PLANNABLE_BACKENDS: "Tuple[str, ...]" = ("serial", "thread", "sharedmem", "process")

_BYTES_FLOAT64 = 8


@dataclass(frozen=True)
class PlanCandidate:
    """One priced decomposition candidate."""

    backend: str
    n_groups: int
    partition: str
    predicted_s: float


@dataclass(frozen=True)
class DecompositionPlan:
    """The planner's decision plus the full priced table.

    ``apply`` stamps the decision onto a config — the bridge used by
    ``SpotNoiseConfig(backend="auto")`` resolution in the runtime and
    the serving layer.
    """

    backend: str
    n_groups: int
    partition: str
    predicted_s: float
    scale: float
    candidates: "Tuple[PlanCandidate, ...]" = ()

    def apply(self, config):
        """A concrete config with this plan's decomposition stamped on."""
        return config.with_overrides(
            backend=self.backend, n_groups=self.n_groups, partition=self.partition
        )

    @property
    def triple(self) -> "Tuple[str, int, str]":
        return (self.backend, self.n_groups, self.partition)

    def summary(self) -> str:
        """Human-readable candidate table, cheapest first."""
        lines = [
            f"plan: backend={self.backend} n_groups={self.n_groups} "
            f"partition={self.partition} "
            f"({self.predicted_s * 1e3:.2f} ms/texture at scale {self.scale:.3g})"
        ]
        for cand in self.candidates:
            marker = "->" if (cand.backend, cand.n_groups, cand.partition) == self.triple else "  "
            lines.append(
                f"  {marker} {cand.backend:>9s} x{cand.n_groups:<2d} "
                f"{cand.partition:<11s} {cand.predicted_s * 1e3:9.2f} ms"
            )
        return "\n".join(lines)


class DecompositionPlanner:
    """Prices candidate decompositions and picks the cheapest.

    Parameters
    ----------
    costs:
        Cost constants (``CostModel.onyx2()`` by default; the host
        transport constants it carries are present-day magnitudes).
    host_workers:
        Parallel slots actually available on this host; defaults to
        ``os.cpu_count()``.  Effective speedup is capped by
        ``min(n_groups, host_workers)`` — on a single-core host every
        parallel candidate degenerates to overhead and the planner
        correctly answers ``serial``.
    backends:
        Candidate backends (subset of :data:`PLANNABLE_BACKENDS`).
    max_groups:
        Largest group count considered.
    thread_efficiency:
        Fraction of a parallel slot a thread-backend group realises —
        numpy releases the GIL in its inner loops, but the pure-python
        glue between them serialises.
    """

    def __init__(
        self,
        costs: Optional[CostModel] = None,
        host_workers: Optional[int] = None,
        backends: "Optional[Sequence[str]]" = None,
        max_groups: int = 8,
        thread_efficiency: float = 0.6,
    ):
        self.costs = costs or CostModel.onyx2()
        self.host_workers = int(host_workers or os.cpu_count() or 1)
        if self.host_workers < 1:
            raise MachineError(f"host_workers must be >= 1, got {self.host_workers}")
        self.backends = tuple(backends or PLANNABLE_BACKENDS)
        for name in self.backends:
            if name not in PLANNABLE_BACKENDS:
                raise BackendError(
                    f"cannot plan for backend {name!r}; plannable: {PLANNABLE_BACKENDS}"
                )
        if max_groups < 1:
            raise MachineError(f"max_groups must be >= 1, got {max_groups}")
        self.max_groups = int(max_groups)
        if not (0.0 < thread_efficiency <= 1.0):
            raise MachineError(
                f"thread_efficiency must be in (0, 1], got {thread_efficiency}"
            )
        self.thread_efficiency = float(thread_efficiency)

    # -- pricing ---------------------------------------------------------------
    def _slots(self, backend: str, n_groups: int) -> float:
        if backend == "serial":
            return 1.0
        slots = float(min(n_groups, self.host_workers))
        if backend == "thread":
            return max(1.0, slots * self.thread_efficiency)
        return slots

    def _transport_s(self, backend: str, n_groups: int, workload: SpotWorkload,
                     partition: str) -> float:
        """Host-side per-frame transport + dispatch seconds (unscaled)."""
        if backend == "serial":
            return 0.0
        c = self.costs
        dispatch = n_groups * c.worker_dispatch_s
        if backend == "thread":
            return dispatch  # shared address space: no bytes move
        partial_px = (
            workload.texture_pixels // n_groups
            if partition == "spatial"
            else workload.texture_pixels
        )
        texture_bytes = n_groups * partial_px * _BYTES_FLOAT64
        if backend == "process":
            # The pickling pool re-ships the field to *every* group and
            # pickles each partial texture back, every frame.
            moved = (
                n_groups * workload.field_bytes
                + workload.particle_bytes
                + texture_bytes
            )
            return dispatch + moved / c.ipc_bandwidth_Bps
        # sharedmem: the field is published at most once per frame (and
        # not at all while it is epoch-stable); particles once; partial
        # textures come back by memcpy.  Charging the field every frame
        # is deliberately conservative.
        moved = workload.field_bytes + workload.particle_bytes + texture_bytes
        return dispatch + moved / c.shm_bandwidth_Bps

    def price(
        self,
        workload: SpotWorkload,
        backend: str,
        n_groups: int,
        partition: str = "round_robin",
        scale: float = 1.0,
    ) -> float:
        """Predicted seconds per texture for one candidate triple."""
        if backend not in PLANNABLE_BACKENDS:
            raise BackendError(f"cannot price backend {backend!r}")
        if n_groups < 1:
            raise MachineError(f"n_groups must be >= 1, got {n_groups}")
        if scale <= 0:
            raise MachineError(f"scale must be positive, got {scale}")
        c = self.costs
        dup = 1.0
        if partition == "spatial" and n_groups > 1:
            dup += tile_duplication(workload, n_groups)
        spots = workload.n_spots * dup
        verts = workload.total_vertices * dup
        pixels = workload.total_pixels * dup
        work = c.shape_time(spots, verts) + c.feed_time(verts) + c.pipe_time(verts, pixels)
        preprocess = c.preprocess_spot_s * workload.n_spots if n_groups > 1 else 0.0
        partial_px = (
            workload.texture_pixels // n_groups
            if partition == "spatial"
            else workload.texture_pixels
        )
        blend = n_groups * c.blend_time(partial_px)  # the eq-3.2 `c` term
        render_s = (work / self._slots(backend, n_groups) + preprocess + blend) * scale
        return render_s + self._transport_s(backend, n_groups, workload, partition)

    # -- planning --------------------------------------------------------------
    def group_candidates(self) -> "Tuple[int, ...]":
        """Group counts worth pricing: powers of two up to the cap, plus
        the host's own parallelism."""
        counts = {1}
        g = 2
        while g <= self.max_groups:
            counts.add(g)
            g *= 2
        if 1 < self.host_workers <= self.max_groups:
            counts.add(self.host_workers)
        return tuple(sorted(counts))

    def plan(
        self,
        workload: SpotWorkload,
        scale: "Optional[float]" = None,
        spatial_ok: "Optional[Callable[[int], bool]]" = None,
    ) -> DecompositionPlan:
        """Price every candidate and return the cheapest plan.

        Parameters
        ----------
        workload:
            The spot workload to decompose.
        scale:
            Host calibration multiplier for the render-work terms
            (``None`` means uncalibrated, i.e. 1.0).
        spatial_ok:
            Optional feasibility predicate for spatial candidates — the
            runtime passes one that checks the tile guard band can
            absorb this config's spot reach at each group count.
        """
        scale = 1.0 if scale is None else float(scale)
        candidates = []
        for backend in self.backends:
            for n_groups in self.group_candidates():
                if backend == "serial" and n_groups != 1:
                    continue
                if backend != "serial" and n_groups == 1:
                    continue  # one group on a pooled backend is serial + overhead
                partitions: Iterable[str] = ("round_robin",)
                if n_groups > 1 and (spatial_ok is None or spatial_ok(n_groups)):
                    partitions = ("round_robin", "spatial")
                for partition in partitions:
                    candidates.append(
                        PlanCandidate(
                            backend=backend,
                            n_groups=n_groups,
                            partition=partition,
                            predicted_s=self.price(
                                workload, backend, n_groups, partition, scale=scale
                            ),
                        )
                    )
        if not candidates:
            raise MachineError("planner produced no candidates")
        rank = {name: i for i, name in enumerate(PLANNABLE_BACKENDS)}
        candidates.sort(
            key=lambda c: (c.predicted_s, c.n_groups, rank[c.backend], c.partition)
        )
        best = candidates[0]
        return DecompositionPlan(
            backend=best.backend,
            n_groups=best.n_groups,
            partition=best.partition,
            predicted_s=best.predicted_s,
            scale=scale,
            candidates=tuple(candidates),
        )
