"""The divide-and-conquer orchestrator.

:class:`DivideAndConquerRuntime` executes figure 5 end to end for one
texture: partition the spot collection, render each particle set on its
own (simulated) graphics pipe via an execution backend, gather and blend
the partial textures.  It guarantees — and the tests assert — that the
result equals the sequential single-group rendering, for every partition
strategy and backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.advection.particles import ParticleSet
from repro.core.config import SpotNoiseConfig
from repro.errors import PartitionError
from repro.fields.vectorfield import VectorField2D
from repro.glsim.pipe import PipeCounters
from repro.parallel.backends import ExecutionBackend, get_backend
from repro.parallel.compose import compose_add, compose_tiles
from repro.parallel.groups import GroupResult, GroupTask
from repro.parallel.partition import (
    block_partition,
    duplication_factor,
    round_robin_partition,
    spatial_partition,
)
from repro.parallel.tiling import Tile, TileLayout
from repro.utils.timing import StageTimer


@dataclass
class RuntimeReport:
    """Accounting for one divide-and-conquer texture synthesis."""

    n_groups: int
    partition: str
    spots_per_group: List[int] = field(default_factory=list)
    duplication: float = 1.0
    counters: PipeCounters = field(default_factory=PipeCounters)
    timer: StageTimer = field(default_factory=StageTimer)

    @property
    def total_spots_rendered(self) -> int:
        return sum(self.spots_per_group)

    def summary(self) -> str:
        t = self.timer.report()
        stages = ", ".join(f"{k}={v * 1e3:.1f}ms" for k, v in t.items())
        return (
            f"{self.n_groups} groups ({self.partition}), "
            f"{self.total_spots_rendered} spots rendered "
            f"(x{self.duplication:.3f} duplication), "
            f"{self.counters.quads_drawn} quads, {stages}"
        )


def spot_reach_world(config: SpotNoiseConfig, cell_size: float) -> float:
    """Conservative world-space radius of influence of one spot.

    Used both to assign border spots to all tiles they may touch and to
    validate that the tile guard band can absorb them.  Standard spots
    reach ``radius * (1 + anisotropy) * sqrt(2)`` (the stretched quad
    corner); bent spots reach about 60% of their spine length plus half
    their width (the spine is centred on the particle; 60% leaves slack
    for curvature).
    """
    if config.spot_mode == "bent":
        b = config.bent
        return (0.6 * b.length_cells + 0.6 * b.width_cells) * cell_size
    return config.spot_radius_cells * cell_size * (1.0 + config.anisotropy) * np.sqrt(2.0)


class DivideAndConquerRuntime:
    """Renders textures by partitioning spots over process groups.

    Parameters
    ----------
    config:
        Synthesis configuration (group count, partition strategy, backend).
    backend:
        Optional pre-built backend instance; by default one is constructed
        from ``config.backend`` and kept for the runtime's lifetime (so
        process pools persist across animation frames).
    """

    def __init__(self, config: SpotNoiseConfig, backend: Optional[ExecutionBackend] = None):
        self.config = config
        self.backend = backend or get_backend(config.backend)
        self._owns_backend = backend is None

    def close(self) -> None:
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "DivideAndConquerRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -------------------------------------------------------------
    def _partition_nonspatial(self, n: int) -> List[np.ndarray]:
        if self.config.partition == "round_robin":
            return round_robin_partition(n, self.config.n_groups)
        return block_partition(n, self.config.n_groups)

    def _validate_guard(self, layout: TileLayout, reach: float) -> None:
        margin = layout.guard_margin_world()
        if reach > margin:
            need = int(np.ceil(reach / margin * layout.guard_px)) if margin > 0 else -1
            raise PartitionError(
                f"guard band of {layout.guard_px}px cannot absorb spots reaching "
                f"{reach:.4g} world units; increase guard_px to about {need}"
            )

    # -- main entry --------------------------------------------------------------
    def synthesize(
        self,
        field_: VectorField2D,
        particles: ParticleSet,
        report: Optional[RuntimeReport] = None,
    ) -> "tuple[np.ndarray, RuntimeReport]":
        """Render one texture from the current particle population.

        Returns ``(texture, report)``; *texture* is a
        ``(texture_size, texture_size)`` float array over the field's
        domain.
        """
        cfg = self.config
        window = field_.grid.bounds
        size = cfg.texture_size
        rep = report or RuntimeReport(n_groups=cfg.n_groups, partition=cfg.partition)

        with rep.timer.time("partition"):
            tiles: Optional[List[Tile]] = None
            layout: Optional[TileLayout] = None
            if cfg.partition == "spatial":
                layout = TileLayout.for_groups(size, cfg.n_groups, window, cfg.guard_px)
                reach = spot_reach_world(cfg, field_.grid.min_spacing())
                self._validate_guard(layout, reach)
                tiles = layout.tiles()
                parts = spatial_partition(
                    particles.positions, [t.world_rect for t in tiles], reach
                )
            else:
                parts = self._partition_nonspatial(len(particles))
            rep.spots_per_group = [int(p.size) for p in parts]
            rep.duplication = duplication_factor(parts, len(particles)) if len(particles) else 1.0

        with rep.timer.time("build_tasks"):
            tasks: List[GroupTask] = []
            for g, idx in enumerate(parts):
                if tiles is not None:
                    fb = layout.make_tile_framebuffer(tiles[g])  # type: ignore[union-attr]
                    fb_size = (fb.width, fb.height)
                    fb_window = fb.window
                else:
                    fb_size = (size, size)
                    fb_window = window
                tasks.append(
                    GroupTask(
                        group_index=g,
                        positions=particles.positions[idx],
                        intensities=particles.intensities[idx],
                        field=field_,
                        config=cfg,
                        fb_size=fb_size,
                        fb_window=fb_window,
                        n_processors=cfg.processors_per_group,
                    )
                )

        with rep.timer.time("render"):
            results: Sequence[GroupResult] = self.backend.run(tasks)

        with rep.timer.time("blend"):
            for r in results:
                rep.counters = rep.counters.merged_with(r.counters)
            if tiles is not None:
                texture = compose_tiles([r.texture for r in results], tiles, size)
            else:
                texture = compose_add([r.texture for r in results])

        return texture, rep
