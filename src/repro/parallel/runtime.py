"""The divide-and-conquer orchestrator.

:class:`DivideAndConquerRuntime` executes figure 5 end to end for one
texture: partition the spot collection, render each particle set on its
own (simulated) graphics pipe via an execution backend, gather and blend
the partial textures.  It guarantees — and the tests assert — that the
result equals the sequential single-group rendering, for every partition
strategy and backend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.advection.particles import ParticleSet
from repro.core.config import SpotNoiseConfig
from repro.errors import PartitionError
from repro.fields.vectorfield import VectorField2D
from repro.glsim.pipe import PipeCounters
from repro.machine.workload import workload_from_config
from repro.parallel.backends import ExecutionBackend, get_backend
from repro.parallel.compose import compose_add, compose_tiles
from repro.parallel.groups import FrameWork, GroupResult, GroupSpec
from repro.parallel.partition import (
    block_partition,
    duplication_factor,
    round_robin_partition,
    spatial_partition,
)
from repro.parallel.planner import DecompositionPlan, DecompositionPlanner
from repro.parallel.tiling import Tile, TileLayout
from repro.utils.timing import StageTimer


@dataclass
class RuntimeReport:
    """Accounting for one divide-and-conquer texture synthesis."""

    n_groups: int
    partition: str
    backend: str = ""
    spots_per_group: List[int] = field(default_factory=list)
    duplication: float = 1.0
    counters: PipeCounters = field(default_factory=PipeCounters)
    timer: StageTimer = field(default_factory=StageTimer)

    @property
    def total_spots_rendered(self) -> int:
        return sum(self.spots_per_group)

    def summary(self) -> str:
        t = self.timer.report()
        stages = ", ".join(f"{k}={v * 1e3:.1f}ms" for k, v in t.items())
        backend = f", backend={self.backend}" if self.backend else ""
        return (
            f"{self.n_groups} groups ({self.partition}{backend}), "
            f"{self.total_spots_rendered} spots rendered "
            f"(x{self.duplication:.3f} duplication), "
            f"{self.counters.quads_drawn} quads, {stages}"
        )


def spot_reach_world(config: SpotNoiseConfig, cell_size: float) -> float:
    """Conservative world-space radius of influence of one spot.

    Used both to assign border spots to all tiles they may touch and to
    validate that the tile guard band can absorb them.  Standard spots
    reach ``radius * (1 + anisotropy) * sqrt(2)`` (the stretched quad
    corner); bent spots reach about 60% of their spine length plus half
    their width (the spine is centred on the particle; 60% leaves slack
    for curvature).
    """
    if config.spot_mode == "bent":
        b = config.bent
        return (0.6 * b.length_cells + 0.6 * b.width_cells) * cell_size
    return config.spot_radius_cells * cell_size * (1.0 + config.anisotropy) * np.sqrt(2.0)


def spatial_feasibility(config: SpotNoiseConfig, field_: VectorField2D):
    """Predicate ``n_groups -> bool``: can a spatial decomposition of
    *config* into that many tiles absorb the spot reach in its guard
    band?  The planner uses this to exclude infeasible spatial
    candidates instead of letting them fail at render time.

    Only the grid's scalars (cell size, bounds) are captured — services
    keep the predicate alive for their whole lifetime, and closing over
    the field itself would pin its full data array with it.
    """
    reach = spot_reach_world(config, field_.grid.min_spacing())
    bounds = field_.grid.bounds
    texture_size = config.texture_size
    guard_px = config.guard_px

    def ok(n_groups: int) -> bool:
        try:
            layout = TileLayout.for_groups(texture_size, n_groups, bounds, guard_px)
        except Exception:
            return False
        return reach <= layout.guard_margin_world()

    return ok


class DivideAndConquerRuntime:
    """Renders textures by partitioning spots over process groups.

    Parameters
    ----------
    config:
        Synthesis configuration (group count, partition strategy, backend).
        With ``backend="auto"`` the decomposition is *planned*: on the
        first :meth:`synthesize` call (when the field, and hence the
        workload, is known) a :class:`DecompositionPlanner` prices the
        candidate (backend, n_groups, partition) triples and the cheapest
        becomes this runtime's effective configuration for its lifetime.
        The plan is resolved once — a stable decomposition keeps repeated
        renders of one config bit-identical, which the serving layer's
        caches depend on; services re-plan by building a new runtime.
    backend:
        Optional pre-built backend instance; by default one is constructed
        from ``config.backend`` and kept for the runtime's lifetime (so
        process pools persist across animation frames).
    planner:
        Planner used to resolve ``backend="auto"`` (a default-constructed
        one otherwise).
    plan_scale:
        Host calibration factor for the planner's render-work terms.
    """

    def __init__(
        self,
        config: SpotNoiseConfig,
        backend: Optional[ExecutionBackend] = None,
        planner: Optional[DecompositionPlanner] = None,
        plan_scale: float = 1.0,
    ):
        self.config = config
        self._effective_config = config
        self._plan: Optional[DecompositionPlan] = None
        self._plan_lock = threading.Lock()
        self._planner: Optional[DecompositionPlanner] = None
        self._plan_scale = plan_scale
        if backend is not None:
            self.backend: Optional[ExecutionBackend] = backend
            self._owns_backend = False
            if config.backend == "auto":
                # An injected backend settles the "auto" choice directly.
                self._effective_config = config.with_overrides(backend=backend.name)
        elif config.backend == "auto":
            self.backend = None  # resolved by the planner on first synthesize
            self._owns_backend = True
            self._planner = planner or DecompositionPlanner()
        else:
            self.backend = get_backend(config.backend)
            self._owns_backend = True

    # -- planning ---------------------------------------------------------------
    @property
    def plan(self) -> Optional[DecompositionPlan]:
        """The resolved plan (``None`` unless ``backend="auto"`` ran)."""
        return self._plan

    @property
    def resolved_config(self) -> SpotNoiseConfig:
        """The effective configuration (the plan applied, for auto)."""
        return self._effective_config

    def _ensure_plan(self, field_: VectorField2D) -> None:
        if self.backend is not None:
            return
        with self._plan_lock:
            if self.backend is not None:  # pragma: no cover - raced resolve
                return
            workload = workload_from_config(self.config, field_)
            plan = self._planner.plan(
                workload,
                scale=self._plan_scale,
                spatial_ok=spatial_feasibility(self.config, field_),
            )
            self._plan = plan
            self._effective_config = plan.apply(self.config)
            self.backend = get_backend(plan.backend)

    def close(self) -> None:
        if self._owns_backend and self.backend is not None:
            self.backend.close()

    def __enter__(self) -> "DivideAndConquerRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -------------------------------------------------------------
    def _partition_nonspatial(self, n: int) -> List[np.ndarray]:
        cfg = self._effective_config
        if cfg.partition == "round_robin":
            return round_robin_partition(n, cfg.n_groups)
        return block_partition(n, cfg.n_groups)

    def _validate_guard(self, layout: TileLayout, reach: float) -> None:
        margin = layout.guard_margin_world()
        if reach > margin:
            need = int(np.ceil(reach / margin * layout.guard_px)) if margin > 0 else -1
            raise PartitionError(
                f"guard band of {layout.guard_px}px cannot absorb spots reaching "
                f"{reach:.4g} world units; increase guard_px to about {need}"
            )

    # -- main entry --------------------------------------------------------------
    def synthesize(
        self,
        field_: VectorField2D,
        particles: ParticleSet,
        report: Optional[RuntimeReport] = None,
    ) -> "tuple[np.ndarray, RuntimeReport]":
        """Render one texture from the current particle population.

        Returns ``(texture, report)``; *texture* is a
        ``(texture_size, texture_size)`` float array over the field's
        domain.
        """
        self._ensure_plan(field_)
        cfg = self._effective_config
        window = field_.grid.bounds
        size = cfg.texture_size
        rep = report or RuntimeReport(
            n_groups=cfg.n_groups, partition=cfg.partition, backend=self.backend.name
        )

        with rep.timer.time("partition"):
            tiles: Optional[List[Tile]] = None
            layout: Optional[TileLayout] = None
            if cfg.partition == "spatial":
                layout = TileLayout.for_groups(size, cfg.n_groups, window, cfg.guard_px)
                reach = spot_reach_world(cfg, field_.grid.min_spacing())
                self._validate_guard(layout, reach)
                tiles = layout.tiles()
                parts = spatial_partition(
                    particles.positions, [t.world_rect for t in tiles], reach
                )
            else:
                parts = self._partition_nonspatial(len(particles))
            rep.spots_per_group = [int(p.size) for p in parts]
            rep.duplication = duplication_factor(parts, len(particles)) if len(particles) else 1.0

        with rep.timer.time("build_tasks"):
            specs: List[GroupSpec] = []
            for g, idx in enumerate(parts):
                if tiles is not None:
                    fb = layout.make_tile_framebuffer(tiles[g])  # type: ignore[union-attr]
                    fb_size = (fb.width, fb.height)
                    fb_window = fb.window
                else:
                    fb_size = (size, size)
                    fb_window = window
                specs.append(
                    GroupSpec(
                        group_index=g,
                        indices=idx,
                        fb_size=fb_size,
                        fb_window=fb_window,
                        n_processors=cfg.processors_per_group,
                    )
                )
            frame = FrameWork(
                field=field_,
                config=cfg,
                positions=particles.positions,
                intensities=particles.intensities,
                groups=specs,
            )

        with rep.timer.time("render"):
            results: Sequence[GroupResult] = self.backend.run_frame(frame)

        with rep.timer.time("blend"):
            for r in results:
                rep.counters = rep.counters.merged_with(r.counters)
            if tiles is not None:
                texture = compose_tiles([r.texture for r in results], tiles, size)
            else:
                texture = compose_add([r.texture for r in results])

        return texture, rep
