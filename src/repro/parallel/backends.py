"""Execution backends for process groups.

The decomposition is backend-agnostic: any callable that maps
:class:`~repro.parallel.groups.GroupTask` objects to
:class:`~repro.parallel.groups.GroupResult` objects in order will do.

* :class:`SerialBackend` — reference implementation, zero concurrency.
* :class:`ThreadBackend` — a thread per group; numpy releases the GIL in
  its inner loops, so groups overlap where it matters.
* :class:`ProcessBackend` — a process per group via
  :mod:`multiprocessing`; true isolation, tasks are pickled.  This is the
  closest analogue of the paper's process groups on IRIX.
* :class:`~repro.parallel.sharedmem.SharedMemoryBackend` (name
  ``"sharedmem"``) — process groups over
  :mod:`multiprocessing.shared_memory`: the field and particle arrays
  are published once per epoch and workers receive only group index
  sets, so nothing heavy is pickled per frame.

Backends consume work at two granularities: :meth:`ExecutionBackend.run`
takes fully materialised :class:`~repro.parallel.groups.GroupTask`
objects, while :meth:`ExecutionBackend.run_frame` takes one
structure-shared :class:`~repro.parallel.groups.FrameWork` (the runtime's
native call).  The default ``run_frame`` materialises tasks and
delegates to ``run``, so classic backends behave exactly as before;
zero-copy backends override it.

The pooled backends (thread and process) keep their worker pools alive
across :meth:`~ExecutionBackend.run` calls so animation frames amortise
worker start-up, and discard a process pool whose ``map`` failed — a
worker that died mid-task leaves the pool unusable, and keeping it would
fail every subsequent frame.  The texture service drives one shared
backend from several scheduler worker threads, so a pooled backend's
``run`` executes under its pool lock: concurrent calls serialise (the
pool *is* the parallelism — overlapping two maps on one pool buys
nothing) and can never race a resize or teardown.  The serial backend
is stateless and fully reentrant.

All backends must return results in group order and produce *identical*
numerical output — asserted by the backend-equivalence tests, since spot
independence (section 3) is exactly what makes that possible.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Sequence, Type

from repro.errors import BackendError
from repro.parallel.groups import FrameWork, GroupResult, GroupTask, render_group


class ExecutionBackend:
    """Interface: run group tasks, return results in group order."""

    name: str = "abstract"

    def run(self, tasks: Sequence[GroupTask]) -> List[GroupResult]:
        raise NotImplementedError

    def run_frame(self, frame: FrameWork) -> List[GroupResult]:
        """Execute one structure-shared frame of group work.

        The default materialises the per-group tasks (bit-identical to
        the arrays the runtime used to build directly) and delegates to
        :meth:`run`; shared-state backends override this to avoid the
        per-group copies entirely.
        """
        return self.run(frame.tasks())

    def close(self) -> None:
        """Release any pooled workers (no-op by default)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run every group in the calling thread, in order."""

    name = "serial"

    def run(self, tasks: Sequence[GroupTask]) -> List[GroupResult]:
        return [render_group(t) for t in tasks]


class ThreadBackend(ExecutionBackend):
    """One thread per group (bounded by *max_workers*).

    The executor persists across frames and *grows in place* to the
    high-water group count when ``max_workers`` is ``None``: raising the
    executor's worker bound keeps every warm thread (a
    ``ThreadPoolExecutor`` only spawns threads on demand up to that
    bound), so a frame that needs more groups than the last one neither
    stalls on a ``shutdown(wait=True)`` nor discards warm workers.  A
    task exception propagates to the caller but leaves the executor
    usable — threads do not die with the task.
    """

    name = "thread"

    def __init__(self, max_workers: "int | None" = None):
        if max_workers is not None and max_workers < 1:
            raise BackendError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: "ThreadPoolExecutor | None" = None  #: guarded-by: _pool_lock
        self._pool_size = 0  #: guarded-by: _pool_lock
        self._pool_lock = threading.Lock()

    def _ensure_pool_locked(self, n: int) -> ThreadPoolExecutor:
        size = self.max_workers or n
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=size)
            self._pool_size = size
        elif self._pool_size < size:
            # Grow to the new high-water mark without tearing the
            # executor down: existing threads stay warm and the extra
            # ones are spawned lazily by the executor itself.
            self._pool._max_workers = size
            self._pool_size = size
        return self._pool

    def run(self, tasks: Sequence[GroupTask]) -> List[GroupResult]:
        if not tasks:
            return []
        with self._pool_lock:
            pool = self._ensure_pool_locked(len(tasks))
            return list(pool.map(render_group, tasks))

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_size = 0


class ProcessBackend(ExecutionBackend):
    """One OS process per group.

    Uses a lazily created ``multiprocessing.Pool`` so repeated frames
    (animation!) amortise worker start-up.  ``fork`` is preferred where
    available: tasks then share the read-only field data with the parent
    at no copy cost until written.
    """

    name = "process"

    def __init__(self, max_workers: "int | None" = None):
        if max_workers is not None and max_workers < 1:
            raise BackendError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: "multiprocessing.pool.Pool | None" = None  #: guarded-by: _pool_lock
        self._pool_size = 0  #: guarded-by: _pool_lock
        self._pool_lock = threading.Lock()

    def _ensure_pool_locked(self, n: int) -> "multiprocessing.pool.Pool":
        size = self.max_workers or n
        if self._pool is not None and self._pool_size < size:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pool_size = 0
        if self._pool is None:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context()
            self._pool = ctx.Pool(processes=size)
            self._pool_size = size
        return self._pool

    def run(self, tasks: Sequence[GroupTask]) -> List[GroupResult]:
        if not tasks:
            return []
        with self._pool_lock:
            pool = self._ensure_pool_locked(len(tasks))
            try:
                return pool.map(render_group, tasks)
            except BaseException as exc:
                # The pool may be unusable after a failed map (dead
                # workers, half-drained queues); discard it so the next
                # frame gets a fresh one instead of failing forever.
                # BaseException on purpose: a KeyboardInterrupt or
                # SystemExit mid-map leaves the pool exactly as corrupt
                # as a task failure does, and skipping the discard here
                # would poison every later frame.
                pool.terminate()
                pool.join()
                self._pool = None
                self._pool_size = 0
                if isinstance(exc, Exception):
                    raise BackendError(f"process backend failed: {exc}") from exc
                raise  # KeyboardInterrupt/SystemExit propagate unwrapped

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool.join()
                self._pool = None
                self._pool_size = 0


_BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}

#: Names resolvable by :func:`get_backend` (``sharedmem`` loads lazily to
#: keep the import cycle between this module and the shared-memory
#: implementation one-directional).
BACKEND_NAMES = ("serial", "thread", "process", "sharedmem")


def get_backend(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate a backend by name (one of :data:`BACKEND_NAMES`).

    ``"auto"`` is deliberately *not* a backend: it is resolved to a
    concrete (backend, n_groups, partition) triple by the
    :class:`~repro.parallel.planner.DecompositionPlanner` before any
    backend is constructed.
    """
    if name == "sharedmem":
        from repro.parallel.sharedmem import SharedMemoryBackend

        return SharedMemoryBackend(**kwargs)
    try:
        cls = _BACKENDS[name]
    except KeyError:
        hint = "; backend='auto' must be resolved by the planner first" if name == "auto" else ""
        raise BackendError(
            f"unknown backend {name!r}; available: {sorted(BACKEND_NAMES)}{hint}"
        ) from None
    return cls(**kwargs)
