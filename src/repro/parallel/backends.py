"""Execution backends for process groups.

The decomposition is backend-agnostic: any callable that maps
:class:`~repro.parallel.groups.GroupTask` objects to
:class:`~repro.parallel.groups.GroupResult` objects in order will do.

* :class:`SerialBackend` — reference implementation, zero concurrency.
* :class:`ThreadBackend` — a thread per group; numpy releases the GIL in
  its inner loops, so groups overlap where it matters.
* :class:`ProcessBackend` — a process per group via
  :mod:`multiprocessing`; true isolation, tasks are pickled.  This is the
  closest analogue of the paper's process groups on IRIX.

The pooled backends (thread and process) keep their worker pools alive
across :meth:`~ExecutionBackend.run` calls so animation frames amortise
worker start-up, and discard a process pool whose ``map`` failed — a
worker that died mid-task leaves the pool unusable, and keeping it would
fail every subsequent frame.  The texture service drives one shared
backend from several scheduler worker threads, so a pooled backend's
``run`` executes under its pool lock: concurrent calls serialise (the
pool *is* the parallelism — overlapping two maps on one pool buys
nothing) and can never race a resize or teardown.  The serial backend
is stateless and fully reentrant.

All backends must return results in group order and produce *identical*
numerical output — asserted by the backend-equivalence tests, since spot
independence (section 3) is exactly what makes that possible.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Sequence, Type

from repro.errors import BackendError
from repro.parallel.groups import GroupResult, GroupTask, render_group


class ExecutionBackend:
    """Interface: run group tasks, return results in group order."""

    name: str = "abstract"

    def run(self, tasks: Sequence[GroupTask]) -> List[GroupResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled workers (no-op by default)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run every group in the calling thread, in order."""

    name = "serial"

    def run(self, tasks: Sequence[GroupTask]) -> List[GroupResult]:
        return [render_group(t) for t in tasks]


class ThreadBackend(ExecutionBackend):
    """One thread per group (bounded by *max_workers*).

    The executor persists across frames (grown when a later frame needs
    more workers), honouring the runtime's promise that pools survive an
    animation.  A task exception propagates to the caller but leaves the
    executor usable — threads do not die with the task.
    """

    name = "thread"

    def __init__(self, max_workers: "int | None" = None):
        if max_workers is not None and max_workers < 1:
            raise BackendError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: "ThreadPoolExecutor | None" = None
        self._pool_size = 0
        self._pool_lock = threading.Lock()

    def _ensure_pool_locked(self, n: int) -> ThreadPoolExecutor:
        size = self.max_workers or n
        if self._pool is not None and self._pool_size < size:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_size = 0
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=size)
            self._pool_size = size
        return self._pool

    def run(self, tasks: Sequence[GroupTask]) -> List[GroupResult]:
        if not tasks:
            return []
        with self._pool_lock:
            pool = self._ensure_pool_locked(len(tasks))
            return list(pool.map(render_group, tasks))

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_size = 0


class ProcessBackend(ExecutionBackend):
    """One OS process per group.

    Uses a lazily created ``multiprocessing.Pool`` so repeated frames
    (animation!) amortise worker start-up.  ``fork`` is preferred where
    available: tasks then share the read-only field data with the parent
    at no copy cost until written.
    """

    name = "process"

    def __init__(self, max_workers: "int | None" = None):
        if max_workers is not None and max_workers < 1:
            raise BackendError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: "multiprocessing.pool.Pool | None" = None
        self._pool_size = 0
        self._pool_lock = threading.Lock()

    def _ensure_pool_locked(self, n: int) -> "multiprocessing.pool.Pool":
        size = self.max_workers or n
        if self._pool is not None and self._pool_size < size:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pool_size = 0
        if self._pool is None:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context()
            self._pool = ctx.Pool(processes=size)
            self._pool_size = size
        return self._pool

    def run(self, tasks: Sequence[GroupTask]) -> List[GroupResult]:
        if not tasks:
            return []
        with self._pool_lock:
            pool = self._ensure_pool_locked(len(tasks))
            try:
                return pool.map(render_group, tasks)
            except Exception as exc:
                # The pool may be unusable after a failed map (dead
                # workers, half-drained queues); discard it so the next
                # frame gets a fresh one instead of failing forever.
                pool.terminate()
                pool.join()
                self._pool = None
                self._pool_size = 0
                raise BackendError(f"process backend failed: {exc}") from exc

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool.join()
                self._pool = None
                self._pool_size = 0


_BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def get_backend(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate a backend by name (``serial``, ``thread``, ``process``)."""
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: {sorted(_BACKENDS)}"
        ) from None
    return cls(**kwargs)
