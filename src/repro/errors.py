"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError` so that callers can catch library failures with a
single ``except`` clause while letting programming errors (``TypeError``
from misuse of numpy, etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GridError(ReproError):
    """Invalid grid construction or grid/data shape mismatch."""


class FieldError(ReproError):
    """Invalid vector/scalar field construction or sampling request."""


class AdvectionError(ReproError):
    """Particle advection failure (bad integrator, step size, ...)."""


class SpotError(ReproError):
    """Invalid spot definition, transform or distribution."""


class RasterError(ReproError):
    """Software rasteriser misuse (bad framebuffer, blend mode, ...)."""


class GLStateError(ReproError):
    """Illegal operation on the simulated OpenGL state machine."""


class MachineError(ReproError):
    """Invalid workstation configuration or cost model."""


class PartitionError(ReproError):
    """Spot partitioning / texture tiling configuration error."""


class BackendError(ReproError):
    """Parallel execution backend failure."""


class PipelineError(ReproError):
    """Spot noise pipeline mis-configuration."""


class ServiceError(ReproError):
    """Texture serving subsystem failure (cache, scheduler, replay)."""


class AdmissionError(ServiceError):
    """Request rejected by the serving layer's admission control."""


class AnimationServiceError(ServiceError):
    """Animation streaming subsystem failure (sequence, checkpoint, stream)."""


class ApplicationError(ReproError):
    """Error in one of the driving applications (smog, DNS)."""


class StoreError(ApplicationError):
    """Error in the chunked time-series data store."""


class SteeringError(ApplicationError):
    """Invalid computational-steering request."""
