"""Shared utilities: deterministic RNG handling, timing, validation."""

from repro.utils.rng import as_rng, spawn_rngs, derive_seed
from repro.utils.timing import Stopwatch, StageTimer
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_shape,
    check_power_of_two,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "derive_seed",
    "Stopwatch",
    "StageTimer",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_shape",
    "check_power_of_two",
]
