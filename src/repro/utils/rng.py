"""Deterministic random-number-generator plumbing.

Spot noise is a stochastic technique: spot positions and intensities are
random (van Wijk '91).  For reproducible experiments every stochastic
component in this library accepts either a seed or a ready-made
:class:`numpy.random.Generator`; these helpers normalise the two and
derive independent child generators for parallel process groups so that
the divide-and-conquer decomposition produces the same texture regardless
of the execution backend.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_rng(seed: "int | np.random.Generator | np.random.SeedSequence | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (fresh entropy), an ``int`` seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged, so callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *path: int) -> int:
    """Derive a stable child seed from *base_seed* and an index path.

    Used when process-based backends must re-create generators inside a
    worker: ``derive_seed(seed, group_index)`` gives every process group its
    own stream while staying reproducible across runs and backends.
    """
    ss = np.random.SeedSequence(entropy=base_seed, spawn_key=tuple(int(p) for p in path))
    return int(ss.generate_state(1, dtype=np.uint64)[0])


def spawn_rngs(seed: "int | np.random.Generator | np.random.SeedSequence | None", n: int) -> list[np.random.Generator]:
    """Spawn *n* statistically independent generators from one seed.

    The split is done with :class:`numpy.random.SeedSequence` spawning, the
    supported way to obtain non-overlapping streams — one per process group
    in the divide-and-conquer runtime.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        # Use the generator itself to produce a root seed; keeps determinism
        # when the caller passed a seeded generator.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


def permutation_chunks(rng: np.random.Generator, n_items: int, n_chunks: int) -> list[np.ndarray]:
    """Randomly permute ``arange(n_items)`` and split into *n_chunks* parts.

    Helper for randomised round-robin partitioning; chunk sizes differ by at
    most one.
    """
    if n_chunks <= 0:
        raise ValueError("n_chunks must be positive")
    perm = rng.permutation(n_items)
    return [np.asarray(c) for c in np.array_split(perm, n_chunks)]
