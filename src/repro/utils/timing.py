"""Wall-clock timing helpers used by the pipeline and the benchmarks.

The paper reports *textures per second* for steps 2 and 3 of the spot
noise pipeline (particle advection + texture synthesis).  To reproduce
those rows we need per-stage timing that can be switched off with zero
overhead in inner loops, hence the tiny explicit classes here instead of
a profiler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator
from contextlib import contextmanager


class Stopwatch:
    """Accumulating stopwatch.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self.laps: int = 0
        self._t0: float | None = None

    def start(self) -> None:
        if self._t0 is not None:
            raise RuntimeError("Stopwatch already running")
        self._t0 = time.perf_counter()

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError("Stopwatch not running")
        dt = time.perf_counter() - self._t0
        self.elapsed += dt
        self.laps += 1
        self._t0 = None
        return dt

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps = 0
        self._t0 = None

    @property
    def mean(self) -> float:
        """Mean lap time (0.0 when no laps were recorded)."""
        return self.elapsed / self.laps if self.laps else 0.0

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class StageTimer:
    """Named per-stage timers for the four pipeline stages of figure 3.

    ``StageTimer`` is deliberately permissive: timing an unknown stage name
    creates it, so applications can add their own stages (e.g. ``"simulate"``
    for the smog model) without registering them first.
    """

    stages: Dict[str, Stopwatch] = field(default_factory=dict)

    @contextmanager
    def time(self, stage: str) -> Iterator[Stopwatch]:
        sw = self.stages.setdefault(stage, Stopwatch())
        sw.start()
        try:
            yield sw
        finally:
            sw.stop()

    def elapsed(self, stage: str) -> float:
        """Total seconds accumulated for *stage* (0.0 if never timed)."""
        sw = self.stages.get(stage)
        return sw.elapsed if sw else 0.0

    def report(self) -> Dict[str, float]:
        """Mapping stage name -> accumulated seconds, insertion ordered."""
        return {name: sw.elapsed for name, sw in self.stages.items()}

    def reset(self) -> None:
        for sw in self.stages.values():
            sw.reset()

    def textures_per_second(self, n_textures: int, stages: "tuple[str, ...]" = ("advect", "synthesize")) -> float:
        """The paper's headline metric over the given stages.

        Tables 1 and 2 count only pipeline steps 2 and 3 (advection and
        texture synthesis), so that is the default.
        """
        total = sum(self.elapsed(s) for s in stages)
        if total <= 0.0:
            return float("inf")
        return n_textures / total
