"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Return *value* if strictly positive, else raise ``ValueError``."""
    if not (value > 0):
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return *value* if >= 0, else raise ``ValueError``."""
    if not (value >= 0):
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Return *value* if ``lo <= value <= hi``, else raise ``ValueError``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_shape(name: str, array: np.ndarray, shape: Sequence[Any]) -> np.ndarray:
    """Check ``array.shape`` against *shape*; ``None`` entries are wildcards."""
    arr = np.asarray(array)
    if len(arr.shape) != len(shape) or any(
        expected is not None and actual != expected for actual, expected in zip(arr.shape, shape)
    ):
        raise ValueError(f"{name} must have shape {tuple(shape)}, got {arr.shape}")
    return arr


def check_power_of_two(name: str, value: int) -> int:
    """Return *value* if it is a positive power of two (texture sizes)."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return value
