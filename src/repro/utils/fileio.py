"""Atomic file writes.

One implementation of the write-to-temp-then-``os.replace`` dance shared
by image IO and the serving disk cache: readers never observe a partial
file, an interrupted write leaves the destination untouched, and the
final file carries normal umask-derived permissions (``mkstemp`` creates
0600 temp files, which must not leak onto the destination — a cache
directory is often read by other processes/users).
"""

from __future__ import annotations

import os
import tempfile
from typing import BinaryIO, Callable, Union

PathLike = Union[str, os.PathLike]

# Process umask, read once (os.umask can only be read by setting it, a
# process-global operation that is not thread-safe mid-run).
_umask = os.umask(0)
os.umask(_umask)


def atomic_write(path: PathLike, writer: Callable[[BinaryIO], None]) -> None:
    """Call ``writer(fh)`` on a same-directory temp file, then rename.

    On any failure the temp file is removed and *path* is untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(prefix=os.path.basename(path) + ".", dir=directory)
    try:
        os.fchmod(fd, 0o666 & ~_umask)
        with os.fdopen(fd, "wb") as fh:
            writer(fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: PathLike, payload: bytes) -> None:
    """Atomically write *payload* to *path*."""
    atomic_write(path, lambda fh: fh.write(payload))
