"""Delta-encoded frame transport: keyframes + digest-addressed diffs.

Shipping every scrub response as a whole texture caps the bandwidth
story of animation serving: N requests over a 64-frame sequence cost N
full textures on the wire no matter how much the frames repeat or how
little they change.  This module is the transport layer that fixes
both, in the release-manifest shape of old_lol_dl's patcher: a sequence
is published as a :class:`DeltaManifest` (header + per-frame table of
chunk digests) whose payload chunks live in a content-addressed blob
store, so clients and edge caches *sync by digest* — every chunk ships
at most once — instead of re-requesting textures.

The encoding itself is exact by construction, never approximate:

* every K-th frame (and every re-anchor after a non-consecutive jump,
  e.g. a render walk resuming from a checkpoint) is a **keyframe** —
  the raw texture bytes;
* every other frame is a **delta** — the byte-wise XOR against the
  previous frame's bytes, which is perfectly invertible and collapses
  to runs of zeros exactly where the frames agree bit-for-bit;
* both streams are cut into fixed-size chunks, byte-shuffled (the
  float64 byte-plane transpose that groups exponent bytes together so
  near-agreement compresses), compressed with zlib or bz2, and stored
  under the SHA-256 of their stored-form bytes
  (:func:`repro.service.keys.chunk_digest`).  Identical chunks —
  all-zero diff regions, repeated frames, shared sequence prefixes —
  dedupe to a single blob.

Decoding XORs the diff chain forward from the nearest keyframe, so
``decode(t)`` is bit-identical to the frame the
:class:`~repro.anim.incremental.IncrementalAnimator` rendered — the
equivalence zoo asserts exactly that.  A missing or corrupt chunk makes
:meth:`DeltaDecoder.decode` return ``None`` (never wrong bytes): the
serving layer falls back to full-frame rendering transparently.

The keyframe cadence K is an economics knob, priced by the
:class:`~repro.machine.costs.CostModel` (``best_keyframe_cadence``):
thin diffs buy long cadences, diffs as fat as keyframes price K down to
1 because a diff chain then costs decode time and saves no bandwidth.
``keyframe_every=0`` resolves K automatically from the first measured
diff.
"""

from __future__ import annotations

import bz2
import json
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.errors import AnimationServiceError
from repro.machine.costs import CostModel
from repro.service.keys import chunk_digest

#: Raw frame bytes per transport chunk.  A multiple of 8 (one float64)
#: so the byte-shuffle transposes whole words within every chunk.
DEFAULT_CHUNK_BYTES = 1 << 14

#: Cadence candidates priced when ``keyframe_every=0`` (auto).
CADENCE_CANDIDATES = (1, 2, 4, 8, 16, 32, 64)

_CODECS = {
    "zlib": (lambda data, level: zlib.compress(data, level), zlib.decompress),
    "bz2": (lambda data, level: bz2.compress(data, level), bz2.decompress),
}


def _shuffle(raw: bytes) -> bytes:
    """Byte-plane transpose over 8-byte words (the HDF5 shuffle trick).

    Groups the i-th byte of every float64 together, so words that agree
    in their high (sign/exponent) bytes — unchanged or nearly-unchanged
    regions after the XOR — become long compressible runs.  Exactly
    invertible by :func:`_unshuffle`; requires ``len(raw) % 8 == 0``.
    """
    return np.frombuffer(raw, dtype=np.uint8).reshape(-1, 8).T.tobytes()


def _unshuffle(raw: bytes) -> bytes:
    return np.frombuffer(raw, dtype=np.uint8).reshape(8, -1).T.tobytes()


def _xor(a: bytes, b: bytes) -> bytes:
    return (
        np.frombuffer(a, dtype=np.uint8) ^ np.frombuffer(b, dtype=np.uint8)
    ).tobytes()


@dataclass(frozen=True)
class ChunkRef:
    """One transport chunk of a frame payload.

    ``digest`` addresses the *stored-form* bytes (post-shuffle,
    pre-compression), so a client verifies a synced chunk by hashing
    what it inflated before applying it.
    """

    digest: str
    raw_bytes: int
    stored_bytes: int

    def to_list(self) -> list:
        return [self.digest, self.raw_bytes, self.stored_bytes]

    @classmethod
    def from_list(cls, row: list) -> "ChunkRef":
        return cls(digest=str(row[0]), raw_bytes=int(row[1]), stored_bytes=int(row[2]))


@dataclass(frozen=True)
class FrameEntry:
    """One row of the manifest's frame table."""

    frame: int
    kind: str  # "key" | "delta"
    frame_digest: str  #: the frame's SequenceKey texture digest
    chunks: Tuple[ChunkRef, ...]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "frame_digest": self.frame_digest,
            "chunks": [c.to_list() for c in self.chunks],
        }

    @classmethod
    def from_dict(cls, frame: int, payload: dict) -> "FrameEntry":
        return cls(
            frame=int(frame),
            kind=str(payload["kind"]),
            frame_digest=str(payload["frame_digest"]),
            chunks=tuple(ChunkRef.from_list(row) for row in payload["chunks"]),
        )


@dataclass(frozen=True)
class DeltaManifest:
    """Header + frame table of one delta-encoded sequence.

    The JSON-able record a client needs to sync a sequence by digest:
    which frames exist, which are keyframes, and which chunk digests
    reconstruct each one.  Published inside the sequence manifest by
    :meth:`FrameSequence.write_manifest` via
    :meth:`AnimationService.write_manifest`.
    """

    sequence: str
    codec: str
    level: int
    chunk_bytes: int
    keyframe_every: int
    shape: Tuple[int, ...]
    dtype: str
    frames: Dict[int, FrameEntry]

    KIND = "repro.anim.delta-manifest"
    VERSION = 1

    def to_dict(self) -> dict:
        return {
            "kind": self.KIND,
            "version": self.VERSION,
            "sequence": self.sequence,
            "codec": self.codec,
            "level": self.level,
            "chunk_bytes": self.chunk_bytes,
            "keyframe_every": self.keyframe_every,
            "shape": list(self.shape),
            "dtype": self.dtype,
            "frames": {
                str(t): self.frames[t].to_dict() for t in sorted(self.frames)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DeltaManifest":
        if payload.get("kind") != cls.KIND:
            raise AnimationServiceError(
                f"not a delta manifest: kind={payload.get('kind')!r}"
            )
        if int(payload.get("version", 0)) > cls.VERSION:
            raise AnimationServiceError(
                f"delta manifest version {payload['version']} is newer than "
                f"this reader (understands <= {cls.VERSION})"
            )
        return cls(
            sequence=str(payload["sequence"]),
            codec=str(payload["codec"]),
            level=int(payload["level"]),
            chunk_bytes=int(payload["chunk_bytes"]),
            keyframe_every=int(payload["keyframe_every"]),
            shape=tuple(int(n) for n in payload["shape"]),
            dtype=str(payload["dtype"]),
            frames={
                int(t): FrameEntry.from_dict(int(t), row)
                for t, row in payload["frames"].items()
            },
        )

    def json_bytes(self) -> int:
        """Size of the manifest on the wire (canonical JSON)."""
        return len(json.dumps(self.to_dict(), sort_keys=True).encode("utf-8"))

    def chunk_digests(self) -> "Set[str]":
        """Every chunk digest referenced by any frame of the table.

        The sync set of the digest-sync protocol: a peer holding these
        blobs can decode every published frame.  Shared chunks appear
        once — the cluster manifest publisher
        (:mod:`repro.cluster.manifest`) uses this to ship each distinct
        chunk at most once no matter how many frames reference it.
        """
        return {
            ref.digest
            for entry in self.frames.values()
            for ref in entry.chunks
        }


def _materialise(
    entry: FrameEntry,
    store,
    decompress,
) -> Optional[bytes]:
    """Fetch, inflate, verify and unshuffle one entry's payload bytes.

    Returns ``None`` on any missing or corrupt chunk — the caller's
    fallback contract; wrong bytes are never returned (every chunk is
    re-hashed against its digest after inflation).
    """
    parts = []
    for ref in entry.chunks:
        payload = store.get_bytes(ref.digest)
        if payload is None:
            return None
        try:
            stored = decompress(payload)
        except (ValueError, OSError, EOFError, zlib.error):
            return None
        if len(stored) != ref.raw_bytes or chunk_digest(stored) != ref.digest:
            return None
        parts.append(_unshuffle(stored))
    return b"".join(parts)


def _decode_frame(
    frame: int,
    entries: Dict[int, FrameEntry],
    store,
    decompress,
    shape: Tuple[int, ...],
    dtype: str,
) -> Optional[np.ndarray]:
    """Reconstruct *frame* from *entries*, or ``None`` when impossible."""
    chain = []
    t = frame
    while True:
        entry = entries.get(t)
        if entry is None:
            return None
        chain.append(entry)
        if entry.kind == "key":
            break
        t -= 1
    buf = _materialise(chain[-1], store, decompress)
    if buf is None:
        return None
    for entry in reversed(chain[:-1]):
        diff = _materialise(entry, store, decompress)
        if diff is None:
            return None
        buf = _xor(buf, diff)
    texture = np.frombuffer(buf, dtype=np.dtype(dtype)).reshape(shape).copy()
    return texture


class DeltaEncoder:
    """Streams one sequence's frames into keyframes + digest-addressed diffs.

    Fed by the render walk in frame order; thread-safe.  A frame that is
    not the successor of the previously-encoded one (a walk resumed from
    a checkpoint, a scrub jump) re-anchors as a keyframe, so every frame
    the walk produces gets a decodable entry regardless of access
    pattern.  ``add_frame`` is idempotent per frame index: re-renders of
    an already-encoded frame only refresh the anchor state.
    """

    def __init__(
        self,
        store,
        sequence_id: str,
        keyframe_every: int = 0,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        codec: str = "zlib",
        level: int = 6,
        cost_model: Optional[CostModel] = None,
    ):
        if codec not in _CODECS:
            raise AnimationServiceError(
                f"unknown delta codec {codec!r}; available: {sorted(_CODECS)}"
            )
        if keyframe_every < 0:
            raise AnimationServiceError(
                f"keyframe_every must be >= 0 (0 = price automatically), "
                f"got {keyframe_every}"
            )
        if chunk_bytes < 8 or chunk_bytes % 8:
            raise AnimationServiceError(
                f"chunk_bytes must be a positive multiple of 8, got {chunk_bytes}"
            )
        self.store = store
        self.sequence_id = sequence_id
        self.codec = codec
        self.level = int(level)
        self.chunk_bytes = int(chunk_bytes)
        self.cost_model = cost_model or CostModel.onyx2()
        self._compress, self._decompress = _CODECS[codec]
        self._lock = threading.Lock()
        self._keyframe_every = int(keyframe_every)  #: guarded-by: _lock
        self._prev: "Optional[Tuple[int, bytes]]" = None  #: guarded-by: _lock
        self._entries: Dict[int, FrameEntry] = {}  #: guarded-by: _lock
        self._shape: "Optional[Tuple[int, ...]]" = None  #: guarded-by: _lock
        self._dtype: Optional[str] = None  #: guarded-by: _lock
        self.shipped_bytes = 0  #: guarded-by: _lock
        self.dedup_chunks = 0  #: guarded-by: _lock
        self.encoded_keys = 0  #: guarded-by: _lock
        self.encoded_deltas = 0  #: guarded-by: _lock

    @property
    def keyframe_every(self) -> int:
        """The cadence in force (0 while auto-pricing awaits its first diff)."""
        with self._lock:
            return self._keyframe_every

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def has_frame(self, frame: int) -> bool:
        """Whether *frame* has a table entry (chunks may still be evicted:
        :meth:`decode` remains the authority on materialisability)."""
        with self._lock:
            return frame in self._entries

    # -- encoding ----------------------------------------------------------------
    def _store_stream(self, stream: bytes) -> Tuple[Tuple[ChunkRef, ...], int]:
        """Chunk, shuffle, compress and store *stream*; returns (refs, shipped)."""
        refs = []
        shipped = 0
        dedup = 0
        for start in range(0, len(stream), self.chunk_bytes):
            stored = _shuffle(stream[start : start + self.chunk_bytes])
            digest = chunk_digest(stored)
            payload = self._compress(stored, self.level)
            if self.store.contains_bytes(digest):
                dedup += 1
            else:
                self.store.put_bytes(digest, payload)
                shipped += len(payload)
            refs.append(
                ChunkRef(
                    digest=digest,
                    raw_bytes=len(stored),
                    stored_bytes=len(payload),
                )
            )
        with self._lock:
            self.dedup_chunks += dedup
        return tuple(refs), shipped

    def _canonical_bytes(self, texture: np.ndarray) -> bytes:
        frame = np.ascontiguousarray(texture, dtype=np.float64)
        return frame.tobytes()

    def add_frame(self, frame: int, texture: np.ndarray, frame_digest: str) -> FrameEntry:
        """Encode *frame*; returns its (possibly pre-existing) table entry."""
        if frame < 0:
            raise AnimationServiceError(f"frame must be >= 0, got {frame}")
        raw = self._canonical_bytes(texture)
        with self._lock:
            if self._shape is None:
                self._shape = tuple(texture.shape)
                self._dtype = np.dtype(np.float64).str
            elif tuple(texture.shape) != self._shape:
                raise AnimationServiceError(
                    f"frame {frame} shape {tuple(texture.shape)} does not match "
                    f"the sequence shape {self._shape}"
                )
            existing = self._entries.get(frame)
            if existing is not None:
                # Already encoded: just refresh the anchor so the walk
                # can keep delta-encoding its successors.
                self._prev = (frame, raw)
                return existing
            cadence = self._keyframe_every
            prev = self._prev
        consecutive = prev is not None and prev[0] == frame - 1
        as_key = (
            not consecutive
            or (cadence > 0 and frame % cadence == 0)
        )
        if as_key:
            stream = raw
        else:
            stream = _xor(raw, prev[1])
        refs, shipped = self._store_stream(stream)
        entry = FrameEntry(
            frame=frame,
            kind="key" if as_key else "delta",
            frame_digest=frame_digest,
            chunks=refs,
        )
        with self._lock:
            self._entries[frame] = entry
            self._prev = (frame, raw)
            self.shipped_bytes += shipped
            if as_key:
                self.encoded_keys += 1
            else:
                self.encoded_deltas += 1
        if not as_key and cadence == 0:
            self._resolve_cadence(frame, raw, entry)
        return entry

    def _resolve_cadence(self, frame: int, raw: bytes, delta_entry: FrameEntry) -> None:
        """Price K from the first measured diff (auto mode).

        Deterministic for a given sequence: the sizes of the first
        keyframe and the first diff fix the cadence.  When the model
        prices K=1 — diffs cost decode time and save no bandwidth — the
        calibration diff itself is re-encoded as a keyframe so the
        manifest honours the cadence from frame 0.
        """
        with self._lock:
            if self._keyframe_every:
                return
            key_entries = sorted(
                t for t, e in self._entries.items() if e.kind == "key"
            )
            if not key_entries:
                return
            key_bytes = sum(
                c.stored_bytes for c in self._entries[key_entries[0]].chunks
            )
            delta_bytes = sum(c.stored_bytes for c in delta_entry.chunks)
            cadence = self.cost_model.best_keyframe_cadence(
                len(raw), key_bytes, delta_bytes, CADENCE_CANDIDATES
            )
            self._keyframe_every = cadence
            needs_rekey = cadence == 1
        if needs_rekey:
            refs, shipped = self._store_stream(raw)
            entry = FrameEntry(
                frame=frame, kind="key",
                frame_digest=delta_entry.frame_digest, chunks=refs,
            )
            with self._lock:
                self._entries[frame] = entry
                self.shipped_bytes += shipped
                self.encoded_keys += 1
                self.encoded_deltas -= 1

    # -- decoding and the manifest -----------------------------------------------
    def decode(self, frame: int) -> Optional[np.ndarray]:
        """Reconstruct *frame* from the store, or ``None`` when impossible."""
        with self._lock:
            entries = dict(self._entries)
            shape, dtype = self._shape, self._dtype
        if shape is None:
            return None
        return _decode_frame(frame, entries, self.store, self._decompress, shape, dtype)

    def manifest(self) -> Optional[DeltaManifest]:
        """Snapshot the frame table as a publishable manifest."""
        with self._lock:
            if self._shape is None:
                return None
            return DeltaManifest(
                sequence=self.sequence_id,
                codec=self.codec,
                level=self.level,
                chunk_bytes=self.chunk_bytes,
                keyframe_every=self._keyframe_every,
                shape=self._shape,
                dtype=self._dtype,
                frames=dict(self._entries),
            )

    def stats(self) -> dict:
        """Bytes-shipped accounting for benches and observability."""
        with self._lock:
            return {
                "frames": len(self._entries),
                "keys": self.encoded_keys,
                "deltas": self.encoded_deltas,
                "keyframe_every": self._keyframe_every,
                "shipped_bytes": self.shipped_bytes,
                "dedup_chunks": self.dedup_chunks,
            }


class DeltaDecoder:
    """Client-side decode of a published :class:`DeltaManifest`.

    The consumer half of the digest-sync protocol: given the manifest
    and any blob store holding (some of) its chunks, ``decode(t)``
    reconstructs frame *t* bit-identically or returns ``None`` when a
    required entry or chunk is missing/corrupt — never wrong bytes.
    """

    def __init__(self, store, manifest: DeltaManifest):
        self.store = store
        self.manifest = manifest
        self._decompress = _CODECS[manifest.codec][1]

    def decode(self, frame: int) -> Optional[np.ndarray]:
        return _decode_frame(
            frame,
            self.manifest.frames,
            self.store,
            self._decompress,
            self.manifest.shape,
            self.manifest.dtype,
        )


class DeltaTransport:
    """Store + codec parameters shared by a service's encoders.

    One transport per :class:`~repro.anim.service.AnimationService`:
    plan re-resolutions create fresh encoders (new sequence identity,
    new frame table) over the *same* chunk store, so byte-identical
    chunks keep deduping across plans and process restarts.
    """

    def __init__(
        self,
        store,
        keyframe_every: int = 0,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        codec: str = "zlib",
        level: int = 6,
        cost_model: Optional[CostModel] = None,
    ):
        # Validate eagerly (the encoder re-checks, but a bad cadence or
        # codec should fail at service construction, not first frame).
        if codec not in _CODECS:
            raise AnimationServiceError(
                f"unknown delta codec {codec!r}; available: {sorted(_CODECS)}"
            )
        self.store = store
        self.keyframe_every = int(keyframe_every)
        self.chunk_bytes = int(chunk_bytes)
        self.codec = codec
        self.level = int(level)
        self.cost_model = cost_model or CostModel.onyx2()

    def encoder(self, sequence_id: str) -> DeltaEncoder:
        return DeltaEncoder(
            self.store,
            sequence_id,
            keyframe_every=self.keyframe_every,
            chunk_bytes=self.chunk_bytes,
            codec=self.codec,
            level=self.level,
            cost_model=self.cost_model,
        )

    def decoder(self, manifest: DeltaManifest) -> DeltaDecoder:
        return DeltaDecoder(self.store, manifest)
