"""Temporally-coherent incremental sequence rendering.

An animation frame is *not* a pure function of its own field: frame *t*
shows particles that advected through fields ``0..t``.  The one-shot way
to produce frame *t* is therefore to rebuild the pipeline and replay the
whole prefix — which is exactly what a per-frame texture service would
have to do, and what :func:`one_shot_frame` implements as the reference
path.  :class:`IncrementalAnimator` instead *threads* the pipeline state
across frames: rendering frame ``t+1`` after frame *t* costs one data
read, one advection and one synthesis, never a replay.

Because stages 3-4 of the pipeline never touch the evolution state, the
incremental path and the one-shot path run the identical sequence of
particle/RNG operations — incremental frames are bit-identical to
one-shot renders of the same ``(fields, config, dt, frame)``, and
:meth:`IncrementalAnimator.verify_frame` checks exactly that.

Two further reuse levers live here:

* *checkpoint restore* — :meth:`IncrementalAnimator.restore` installs a
  :class:`~repro.anim.state.PipelineState`, so a seek backwards (or a
  fresh process) replays only from the nearest checkpoint, not frame 0;
* *unchanged-frame reuse* — when the life-cycle policy is static (fixed
  positions, immortal, no fade) and the incoming field's content is
  unchanged, the previous texture is provably identical and synthesis is
  skipped outright ("re-splat only what changed").
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from repro.advection.advector import auto_dt
from repro.advection.lifecycle import LifeCyclePolicy
from repro.core.config import SpotNoiseConfig
from repro.core.pipeline import FrameResult, SpotNoisePipeline
from repro.errors import AnimationServiceError
from repro.fields.io import field_digest
from repro.fields.vectorfield import VectorField2D
from repro.parallel.runtime import DivideAndConquerRuntime
from repro.anim.state import PipelineState

FieldSource = Callable[[int], VectorField2D]


def _static_policy(policy: LifeCyclePolicy) -> bool:
    """True when frames depend on the field alone (no evolving state output).

    Static positions, immortal particles and no fading mean the texture
    of frame *t* equals the texture of frame ``t-1`` whenever the field
    content is unchanged (ages still tick, but nothing reads them).
    """
    return (
        policy.position_mode == "static"
        and policy.lifetime == 0
        and policy.fade_frames == 0
    )


class IncrementalAnimator:
    """Renders a frame sequence by threading pipeline state across frames.

    Parameters
    ----------
    config:
        Synthesis configuration; must be seeded (``config.seed`` set) so
        the sequence is deterministic and content-addressable.
    field_source:
        ``frame -> VectorField2D`` for the sequence being animated.
    dt:
        Advection step per frame.  ``None`` resolves to the pipeline's
        automatic step for ``field_source(0)`` — resolved eagerly so the
        value is part of the sequence identity before any rendering.
    policy:
        Particle life-cycle policy (defaults to the pipeline default).
    runtime:
        Optional shared :class:`DivideAndConquerRuntime`; injected
        runtimes are left open on :meth:`close` (pool amortisation, same
        contract as the pipeline).
    reuse_unchanged:
        Enable the unchanged-frame fast path for static policies.
    """

    def __init__(
        self,
        config: SpotNoiseConfig,
        field_source: FieldSource,
        dt: Optional[float] = None,
        policy: Optional[LifeCyclePolicy] = None,
        runtime: Optional[DivideAndConquerRuntime] = None,
        reuse_unchanged: bool = True,
    ):
        if config.seed is None:
            raise AnimationServiceError(
                "incremental animation requires a deterministic config: set "
                "SpotNoiseConfig.seed to an integer (got seed=None)"
            )
        self.config = config
        self.field_source = field_source
        self.policy = policy or LifeCyclePolicy()
        self.runtime = runtime
        self.reuse_unchanged = reuse_unchanged and _static_policy(self.policy)
        self.dt = float(dt) if dt is not None else auto_dt(field_source(0))
        self._pipeline: Optional[SpotNoisePipeline] = None
        self._last_digest: Optional[str] = None
        self._last_result: Optional[FrameResult] = None
        self.reused_frames = 0
        self.synthesized_frames = 0

    # -- pipeline lifecycle ------------------------------------------------------
    def _pipe(self) -> SpotNoisePipeline:
        if self._pipeline is None:
            self._pipeline = SpotNoisePipeline(
                self.config,
                self.field_source(0),
                policy=self.policy,
                dt=self.dt,
                runtime=self.runtime,
            )
        return self._pipeline

    def close(self) -> None:
        if self._pipeline is not None:
            self._pipeline.close()
            self._pipeline = None

    def __enter__(self) -> "IncrementalAnimator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- position and state ------------------------------------------------------
    @property
    def position(self) -> int:
        """The next frame this animator would render."""
        return self._pipe().frame_index

    def state(self) -> PipelineState:
        """Checkpoint the current evolution state."""
        return PipelineState.capture(self._pipe())

    def restore(self, state: PipelineState) -> None:
        """Resume from a checkpoint (captured under the same config/dt)."""
        if state.dt != self.dt:
            raise AnimationServiceError(
                f"checkpoint was taken at dt={state.dt!r}, animator runs dt={self.dt!r}"
            )
        state.restore(self._pipe())
        self._last_digest = None
        self._last_result = None

    def reset(self) -> None:
        """Discard all state; the next frame starts the sequence from 0."""
        self.close()
        self._last_digest = None
        self._last_result = None

    # -- rendering ---------------------------------------------------------------
    def advance_to(self, frame: int) -> None:
        """Fast-forward to *frame* (stages 1-2 only, no synthesis).

        Only forward motion is possible; to move backwards, restore a
        checkpoint or :meth:`reset` first.
        """
        pipe = self._pipe()
        if frame < pipe.frame_index:
            raise AnimationServiceError(
                f"cannot advance backwards to frame {frame} from {pipe.frame_index}; "
                "restore a checkpoint or reset"
            )
        if frame == pipe.frame_index:
            return
        while pipe.frame_index < frame:
            pipe.advance_only(self.field_source(pipe.frame_index))
        self._last_digest = None
        self._last_result = None

    def render_next(self) -> FrameResult:
        """Render the frame at :attr:`position` and advance past it."""
        pipe = self._pipe()
        t = pipe.frame_index
        field = self.field_source(t)
        if self.reuse_unchanged:
            digest = field_digest(field)
            previous = self._last_result
            if previous is not None and digest == self._last_digest:
                # Provably identical output: static immortal unfaded spots
                # under unchanged field content.  Advance the cheap state
                # (ages tick; positions and RNG untouched in static mode
                # with no expiry) and reuse the previous texture.
                pipe.advance_only(field)
                self.reused_frames += 1
                result = FrameResult(
                    texture=previous.texture,
                    display=previous.display,
                    image=previous.image,
                    report=previous.report,
                    frame_index=t,
                )
                self._last_result = result
                return result
            self._last_digest = digest
        result = pipe.step(field)
        self.synthesized_frames += 1
        self._last_result = result
        return result

    def render_range(self, start: int, stop: int) -> Iterator[FrameResult]:
        """Yield frames ``start..stop-1``, fast-forwarding as needed."""
        if stop < start:
            raise AnimationServiceError(f"empty range [{start}, {stop})")
        self.advance_to(start)
        for _ in range(start, stop):
            yield self.render_next()

    # -- the bit-identity fallback check -----------------------------------------
    def verify_frame(self, result: FrameResult) -> None:
        """Assert *result* is bit-identical to a one-shot render.

        Re-renders the frame through :func:`one_shot_frame` (full prefix
        replay, fresh pipeline) and raises
        :class:`~repro.errors.AnimationServiceError` on any pixel
        difference.  This is the fallback check that keeps the
        incremental path honest; it is expensive (O(frame) advections)
        and meant for sampled verification, not the hot path.
        """
        reference = one_shot_frame(
            self.config,
            self.field_source,
            result.frame_index,
            dt=self.dt,
            policy=self.policy,
            runtime=self.runtime,
        )
        if not np.array_equal(reference.display, result.display) or not np.array_equal(
            reference.texture, result.texture
        ):
            raise AnimationServiceError(
                f"incremental frame {result.frame_index} diverged from the "
                "one-shot render — state threading is broken"
            )


def one_shot_frame(
    config: SpotNoiseConfig,
    field_source: FieldSource,
    frame: int,
    dt: Optional[float] = None,
    policy: Optional[LifeCyclePolicy] = None,
    runtime: Optional[DivideAndConquerRuntime] = None,
) -> FrameResult:
    """Render sequence frame *frame* from scratch — the reference path.

    Builds a fresh pipeline, replays stages 1-2 over frames
    ``0..frame-1`` and runs the full step only at *frame*.  This is what
    a service with no state reuse pays per request, and the oracle the
    incremental path is verified against.
    """
    if frame < 0:
        raise AnimationServiceError(f"frame must be >= 0, got {frame}")
    pipe = SpotNoisePipeline(
        config, field_source(0), policy=policy, dt=dt, runtime=runtime
    )
    try:
        for i in range(frame):
            pipe.advance_only(field_source(i))
        return pipe.step(field_source(frame))
    finally:
        pipe.close()
