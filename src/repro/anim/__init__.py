"""repro.anim — animation streaming with temporally-coherent reuse.

The serving layer (:mod:`repro.service`) makes repeated *single-frame*
traffic cheap; this subsystem makes *animation* traffic cheap.  The
paper's headline scenarios are animated — steering a running smog
simulation, scrubbing DNS turbulence through time — and an animation
frame is not a pure function of its own field: frame *t* shows particles
that advected through every field before it.  A per-frame service must
therefore replay the whole prefix per request; this package threads the
pipeline state instead and streams the results:

* :mod:`~repro.anim.state` — exact, serialisable pipeline evolution
  snapshots (:class:`PipelineState`);
* :mod:`~repro.anim.incremental` — the incremental renderer
  (:class:`IncrementalAnimator`) and the one-shot reference path it is
  verified bit-identical against;
* :mod:`~repro.anim.sequence` — content-addressed sequence identity
  (rolling field-content chains) and the persistent manifest;
* :mod:`~repro.anim.checkpoints` — resumable pipeline-state checkpoints
  every K frames, memory over disk;
* :mod:`~repro.anim.scheduler` — single-flight streaming over frame
  ranges (overlapping scrubs join one in-flight render walk);
* :mod:`~repro.anim.delta` — the delta frame transport: keyframes +
  digest-addressed compressed diffs clients sync by digest, decoded
  bit-identically on read (``python -m repro.cli delta-bench``);
* :mod:`~repro.anim.service` — :class:`AnimationService`, the front end
  binding a field source + config to the whole stack, with an iterator
  streaming API.

Benchmark it with ``python -m repro.cli anim-bench``; the smog steering
loop (``SteeredSmogApplication.animation_service``) and the DNS browser
(``DataBrowser.animation_service``) are the in-repo clients.
"""

from repro.anim.checkpoints import CheckpointStore
from repro.anim.delta import (
    DeltaDecoder,
    DeltaEncoder,
    DeltaManifest,
    DeltaTransport,
)
from repro.anim.incremental import IncrementalAnimator, one_shot_frame
from repro.anim.scheduler import SequenceFlight, SequenceScheduler
from repro.anim.sequence import FrameSequence
from repro.anim.service import AnimationService, FrameResponse
from repro.anim.state import PipelineState

__all__ = [
    "AnimationService",
    "CheckpointStore",
    "DeltaDecoder",
    "DeltaEncoder",
    "DeltaManifest",
    "DeltaTransport",
    "FrameResponse",
    "FrameSequence",
    "IncrementalAnimator",
    "PipelineState",
    "SequenceFlight",
    "SequenceScheduler",
    "one_shot_frame",
]
