"""Resumable pipeline-state checkpoints.

:class:`CheckpointStore` keeps :class:`~repro.anim.state.PipelineState`
snapshots under their content-addressed state digests — a bounded
in-memory tier for hot seeks plus an optional
:class:`~repro.service.cache.DiskBlobStore` tier so a fresh process can
resume a sequence without replaying it from frame 0.  The streaming
service captures one every K frames; a seek restores the nearest
checkpoint at or below the target and replays only the remainder.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.anim.state import PipelineState
from repro.errors import AnimationServiceError
from repro.service.cache import DiskBlobStore


class CheckpointStore:
    """Two-tier store of pipeline-state checkpoints.

    Parameters
    ----------
    max_memory_entries:
        Bound on the in-memory tier (LRU eviction).  Each entry is a few
        ``n_spots``-sized arrays, so a handful suffices for scrubbing.
    disk:
        Optional blob store; when present every put is persisted and
        memory misses fall through to disk with promotion.
    """

    def __init__(self, max_memory_entries: int = 16, disk: Optional[DiskBlobStore] = None):
        if max_memory_entries < 0:
            raise AnimationServiceError(
                f"max_memory_entries must be >= 0, got {max_memory_entries}"
            )
        self.max_memory_entries = int(max_memory_entries)
        self.disk = disk
        self._entries: "OrderedDict[str, PipelineState]" = OrderedDict()  #: guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  #: guarded-by: _lock
        self.misses = 0  #: guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def put(self, digest: str, state: PipelineState) -> None:
        with self._lock:
            self._entries.pop(digest, None)
            self._entries[digest] = state
            while len(self._entries) > self.max_memory_entries:
                self._entries.popitem(last=False)
        if self.disk is not None:
            self.disk.put(digest, state.to_arrays())

    def get(self, digest: str) -> Optional[PipelineState]:
        with self._lock:
            state = self._entries.get(digest)
            if state is not None:
                self._entries.move_to_end(digest)
                self.hits += 1
                return state
        if self.disk is not None:
            bundle = self.disk.get(digest)
            if bundle is not None:
                state = PipelineState.from_arrays(bundle)
                with self._lock:
                    # Promotion is an access: pop-then-insert so the
                    # promoted entry lands at the hot end of the LRU
                    # order.  Plain assignment would leave an entry that
                    # raced its way in (another thread's promotion or
                    # put) at its old position — the just-accessed
                    # checkpoint would then be evicted before genuinely
                    # colder ones.  Keep the raced-in object when there
                    # is one: callers may already hold it.
                    raced = self._entries.pop(digest, None)
                    if raced is not None:
                        state = raced
                    self._entries[digest] = state
                    while len(self._entries) > self.max_memory_entries:
                        self._entries.popitem(last=False)
                    self.hits += 1
                return state
        with self._lock:
            self.misses += 1
        return None

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            if digest in self._entries:
                return True
        return self.disk is not None and digest in self.disk
