"""Serialisable pipeline evolution state.

:class:`PipelineState` wraps the snapshot dict produced by
:meth:`~repro.core.pipeline.SpotNoisePipeline.capture_state` with the
two things the streaming layer needs on top of it: value semantics
(states are immutable records that can be handed between threads) and an
exact array-bundle serialisation, so checkpoints survive a process
restart through :class:`~repro.service.cache.DiskBlobStore`.

The serialisation is lossless: particle arrays round-trip as native
float64/int64, and the RNG state (numpy bit-generator state, a nested
dict of arbitrary-precision ints) rides along as canonical JSON.  A
restored state therefore continues the animation bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.pipeline import SpotNoisePipeline
from repro.errors import AnimationServiceError


@dataclass(frozen=True)
class PipelineState:
    """Immutable snapshot of a pipeline's evolution state.

    ``frame_index`` is the number of frames already produced — the state
    is what a pipeline needs to render frame ``frame_index`` next.
    """

    positions: np.ndarray
    intensities: np.ndarray
    ages: np.ndarray
    lifetimes: np.ndarray
    rng_state: dict
    frame_index: int
    dt: float

    # -- pipeline round trip -----------------------------------------------------
    @classmethod
    def capture(cls, pipeline: SpotNoisePipeline) -> "PipelineState":
        """Snapshot *pipeline* (arrays are copied; the pipeline keeps running)."""
        raw = pipeline.capture_state()
        return cls(
            positions=raw["positions"],
            intensities=raw["intensities"],
            ages=raw["ages"],
            lifetimes=raw["lifetimes"],
            rng_state=raw["rng_state"],
            frame_index=raw["frame_index"],
            dt=raw["dt"],
        )

    def restore(self, pipeline: SpotNoisePipeline) -> None:
        """Install this state into a pipeline built from the same config."""
        pipeline.restore_state(
            {
                "positions": self.positions,
                "intensities": self.intensities,
                "ages": self.ages,
                "lifetimes": self.lifetimes,
                "rng_state": self.rng_state,
                "frame_index": self.frame_index,
                "dt": self.dt,
            }
        )

    # -- array-bundle serialisation ----------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Encode as a ``{name: array}`` bundle for blob storage."""
        meta = json.dumps(
            {
                "rng_state": self.rng_state,
                "frame_index": int(self.frame_index),
                "dt": float(self.dt),
            },
            sort_keys=True,
        )
        return {
            "positions": np.asarray(self.positions, dtype=np.float64),
            "intensities": np.asarray(self.intensities, dtype=np.float64),
            "ages": np.asarray(self.ages, dtype=np.int64),
            "lifetimes": np.asarray(self.lifetimes, dtype=np.int64),
            "meta": np.frombuffer(meta.encode("utf-8"), dtype=np.uint8).copy(),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "PipelineState":
        """Decode a :meth:`to_arrays` bundle (e.g. read back from disk)."""
        try:
            meta = json.loads(bytes(np.asarray(arrays["meta"], dtype=np.uint8)).decode("utf-8"))
            return cls(
                positions=np.asarray(arrays["positions"], dtype=np.float64),
                intensities=np.asarray(arrays["intensities"], dtype=np.float64),
                ages=np.asarray(arrays["ages"], dtype=np.int64),
                lifetimes=np.asarray(arrays["lifetimes"], dtype=np.int64),
                rng_state=_intify(meta["rng_state"]),
                frame_index=int(meta["frame_index"]),
                dt=float(meta["dt"]),
            )
        except (KeyError, ValueError, UnicodeDecodeError) as exc:
            raise AnimationServiceError(f"malformed pipeline-state bundle: {exc}") from exc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PipelineState):
            return NotImplemented
        return (
            self.frame_index == other.frame_index
            and self.dt == other.dt
            and self.rng_state == other.rng_state
            and np.array_equal(self.positions, other.positions)
            and np.array_equal(self.intensities, other.intensities)
            and np.array_equal(self.ages, other.ages)
            and np.array_equal(self.lifetimes, other.lifetimes)
        )


def _intify(obj):
    """Undo JSON's one lossy step for RNG states: nothing — ints are exact.

    JSON round-trips Python's arbitrary-precision ints exactly (the PCG64
    state holds 128-bit values), so this only normalises containers.
    Kept as an explicit hook so a future bit generator with non-JSON
    state fails loudly here rather than corrupting streams.
    """
    if isinstance(obj, dict):
        return {k: _intify(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_intify(v) for v in obj]
    if isinstance(obj, (int, float, str)) or obj is None:
        return obj
    raise AnimationServiceError(f"unsupported RNG-state element {type(obj).__name__}")
