"""Streaming sequence scheduler: single-flight over frame *ranges*.

The texture scheduler coalesces point requests; animation traffic asks
for *ranges*, and ranges overlap — one client replays frames 0-100 while
another scrubs 10-40.  :class:`SequenceScheduler` extends single-flight
semantics to that shape: per sequence there is at most one in-flight
:class:`SequenceFlight`, a render job that walks frames forward and
publishes each one as it completes.  A new range request whose start the
flight has not passed *joins* it (extending its target if the request
reaches further); everyone waits on the flight's buffer, so N
overlapping scrubs cost one incremental render walk.

On the async spine the walk state lives in a loop-confined
:class:`~repro.runtime.streams.FrameStream` — the condition variable and
its lock are gone; every mutation is a loop callback and every wait an
awaited future.  :class:`SequenceFlight` is the blocking facade the
walk jobs and stream iterators still call.  The flights' jobs execute on
a :class:`~repro.service.scheduler.RequestScheduler` render pool — the
sequence layer adds range semantics and streaming delivery on top of the
single-flight machinery, it does not replace it.  Publication keeps the
load-linked/store-conditional shape of lock-free coordination: joiners
*observe* the stream in one loop callback and only the flight's own
worker advances it, so readers never block the render walk.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import AnimationServiceError, ServiceError
from repro.runtime.loop import RuntimeLoop, get_runtime_loop
from repro.runtime.streams import FrameStream
from repro.service.scheduler import RequestScheduler

#: Published frames a flight keeps buffered for joiners.  The buffer
#: only needs to cover the gap between the walk and its slowest waiter:
#: frames the walk has passed are already in the service cache (puts
#: precede publishes), so evicted entries are served from there.
DEFAULT_BUFFER_LIMIT = 64


class SequenceFlight:
    """One in-flight streaming render of a frame range.

    A blocking facade over a loop-confined
    :class:`~repro.runtime.streams.FrameStream`: mutations
    (:meth:`publish`, :meth:`finish`, :meth:`curtail`, :meth:`try_join`)
    execute as single loop callbacks, :meth:`wait_frame` awaits the
    stream's future on the spine, and the introspection attributes
    (:attr:`frames`, :attr:`position`, :attr:`target`, …) are snapshot
    reads — exact once the loop drains, which is all the old
    condition-variable version guaranteed to outside readers too.
    """

    def __init__(
        self,
        sequence_id: str,
        first: int,
        target: int,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
        runtime: Optional[RuntimeLoop] = None,
    ):
        self._runtime = runtime or get_runtime_loop()
        self._core = FrameStream(sequence_id, first, target, buffer_limit)

    # -- snapshot reads of the loop-confined core --------------------------------
    @property
    def sequence_id(self) -> str:
        return self._core.sequence_id

    @property
    def first(self) -> int:
        return self._core.first

    @property
    def buffer_limit(self) -> int:
        return self._core.buffer_limit

    @property
    def target(self) -> int:
        return self._core.target

    @property
    def position(self) -> int:
        return self._core.position

    @property
    def frames(self):
        return self._core.frames

    @property
    def done(self) -> bool:
        return self._core.done

    @property
    def error(self) -> Optional[BaseException]:
        return self._core.error

    @property
    def joiners(self) -> int:
        return self._core.joiners

    # -- the worker side ---------------------------------------------------------
    def next_frame(self) -> Optional[int]:
        """The worker's claim step: the next frame to render, or ``None``
        (which marks the flight done in the same loop callback — the
        store-conditional that makes join-vs-finish race-free)."""
        return self._runtime.call(self._core.next_frame)

    def publish(self, frame: int, payload: Any) -> None:
        self._runtime.call(self._core.publish, frame, payload)

    def finish(self, error: Optional[BaseException] = None) -> None:
        self._runtime.call(self._core.finish, error)

    def curtail(self) -> int:
        """Stop the walk; returns the end of its unserved remainder, or
        ``0`` when it already finished (see
        :meth:`repro.runtime.streams.FrameStream.curtail`)."""
        return self._runtime.call(self._core.curtail)

    # -- the client side ---------------------------------------------------------
    def try_join(self, start: int, stop: int) -> bool:
        """Join the flight for ``[start, stop)`` if it can still serve it."""
        return self._runtime.call(self._core.try_join, start, stop)

    def wait_frame(self, frame: int, timeout: Optional[float] = None):
        """Block until *frame* is available; returns its payload.

        Returns ``None`` when this flight can no longer deliver *frame*
        from its buffer — the walk already passed it (buffer eviction or
        a late join) or finished without reaching it; the caller should
        fall back to the service cache / a new flight.  Raises the
        flight's error if the render failed, and
        :class:`~repro.errors.ServiceError` when *timeout* (a total
        deadline, not per-publish) expires first.
        """
        try:
            return self._runtime.run(
                asyncio.wait_for(self._core.wait_frame(frame), timeout)
            )
        except asyncio.TimeoutError:
            raise ServiceError(
                f"timed out waiting for frame {frame} of "
                f"{self.sequence_id[:12]}..."
            ) from None


class SequenceScheduler:
    """Single-flight registry of streaming sequence renders.

    Parameters
    ----------
    scheduler:
        The render pool executing flight jobs.  Owned by default; pass
        ``owns_scheduler=False`` to share a pool with a texture service.
    buffer_limit:
        Published-frame buffer size handed to every flight.
    """

    def __init__(
        self,
        scheduler: Optional[RequestScheduler] = None,
        owns_scheduler: Optional[bool] = None,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
    ):
        self.scheduler = scheduler or RequestScheduler(n_workers=1, name="anim-service")
        self._owns_scheduler = (scheduler is None) if owns_scheduler is None else owns_scheduler
        self.buffer_limit = int(buffer_limit)
        self._flights: Dict[str, SequenceFlight] = {}  #: guarded-by: _lock
        self._lock = threading.Lock()
        self._serial = 0  #: guarded-by: _lock
        self.created = 0
        self.joined = 0

    def stream(
        self,
        sequence_id: str,
        start: int,
        stop: int,
        run: Callable[[SequenceFlight], None],
    ) -> Tuple[SequenceFlight, bool]:
        """Join the in-flight render of *sequence_id* or start a new one.

        Returns ``(flight, created)``.  *run* drives the actual frame
        walk when a flight is created: it must loop on
        :meth:`SequenceFlight.next_frame` / :meth:`publish`; errors it
        raises propagate to every waiter.
        """
        if stop <= start:
            raise AnimationServiceError(f"empty stream range [{start}, {stop})")
        with self._lock:
            flight = self._flights.get(sequence_id)
            if flight is not None and flight.try_join(start, stop):
                self.joined += 1
                return flight, False
            if flight is not None:
                # Curtail-and-union: the live flight cannot serve `start`
                # (its walk passed it and evicted it), so it stops where
                # it is and the replacement covers the union of both
                # ranges.  Without this the old walk would keep claiming
                # frames the new one also walks — re-rendering (or
                # double-delivering) the shared boundary.
                stop = max(stop, flight.curtail())
            flight = SequenceFlight(
                sequence_id, start, stop,
                buffer_limit=self.buffer_limit,
                runtime=self.scheduler.runtime,
            )
            self._flights[sequence_id] = flight
            self.created += 1
            self._serial += 1
            submit_key = f"{sequence_id}#{self._serial}"

        dispatched = threading.Event()

        def job() -> None:
            # The walk must not outrun its own registration: the caller
            # holds the flight handle before the first claim runs, the
            # same practical ordering the pre-spine queue handoff gave.
            dispatched.wait(1.0)
            try:
                run(flight)
            except BaseException as exc:  # noqa: BLE001 - delivered to waiters
                flight.finish(exc)
                raise
            finally:
                flight.finish()
                with self._lock:
                    if self._flights.get(sequence_id) is flight:
                        del self._flights[sequence_id]

        self.scheduler.submit(submit_key, job)
        dispatched.set()
        return flight, True

    def inflight(self) -> int:
        with self._lock:
            return len(self._flights)

    def close(self) -> None:
        if self._owns_scheduler:
            self.scheduler.close()

    def __enter__(self) -> "SequenceScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
