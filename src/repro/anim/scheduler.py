"""Streaming sequence scheduler: single-flight over frame *ranges*.

The texture scheduler coalesces point requests; animation traffic asks
for *ranges*, and ranges overlap — one client replays frames 0-100 while
another scrubs 10-40.  :class:`SequenceScheduler` extends single-flight
semantics to that shape: per sequence there is at most one in-flight
:class:`SequenceFlight`, a render job that walks frames forward and
publishes each one as it completes.  A new range request whose start the
flight has not passed *joins* it (extending its target if the request
reaches further); everyone waits on the flight's buffer, so N
overlapping scrubs cost one incremental render walk.

The flights' jobs execute on a
:class:`~repro.service.scheduler.RequestScheduler` worker pool — the
sequence layer adds range semantics and streaming delivery on top of the
single-flight machinery, it does not replace it.  Publication uses the
load-linked/store-conditional shape of lock-free coordination: joiners
*observe* the flight under the registry lock and only the flight's own
worker advances it, so readers never block the render walk.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from repro.errors import AnimationServiceError, ServiceError
from repro.service.scheduler import RequestScheduler

#: Published frames a flight keeps buffered for joiners.  The buffer
#: only needs to cover the gap between the walk and its slowest waiter:
#: frames the walk has passed are already in the service cache (puts
#: precede publishes), so evicted entries are served from there.
DEFAULT_BUFFER_LIMIT = 64


class SequenceFlight:
    """One in-flight streaming render of a frame range.

    The flight renders frames ``first..target-1`` in order;  ``target``
    is monotonically extendable while the flight runs.  Published frames
    are buffered in :attr:`frames` for waiters, bounded to the most
    recent *buffer_limit* entries — anything the walk has passed is in
    the service's content-addressed cache already, so
    :meth:`wait_frame` reports evicted/passed frames as ``None`` and the
    caller falls back to the cache.
    """

    def __init__(
        self,
        sequence_id: str,
        first: int,
        target: int,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
    ):
        self.sequence_id = sequence_id
        self.first = int(first)
        self.target = int(target)  #: guarded-by: cond
        self.position = int(first)  #: guarded-by: cond (next frame the job renders)
        self.buffer_limit = int(buffer_limit)
        self.frames: "OrderedDict[int, object]" = OrderedDict()  #: guarded-by: cond
        self.cond = threading.Condition()
        self.done = False  #: guarded-by: cond
        self.error: Optional[BaseException] = None  #: guarded-by: cond
        self.joiners = 0  #: guarded-by: cond

    # -- the worker side ---------------------------------------------------------
    def next_frame(self) -> Optional[int]:
        """The worker's claim step: the next frame to render, or ``None``.

        Returning ``None`` marks the flight done *under the lock*, so a
        concurrent :meth:`extend` either lands before (and the walk
        continues) or observes ``done`` and starts a new flight — the
        store-conditional that makes join-vs-finish race-free.
        """
        with self.cond:
            if self.position >= self.target:
                self.done = True
                self.cond.notify_all()
                return None
            return self.position

    def publish(self, frame: int, payload: object) -> None:
        with self.cond:
            self.frames[frame] = payload
            while len(self.frames) > self.buffer_limit:
                self.frames.popitem(last=False)
            self.position = frame + 1
            self.cond.notify_all()

    def finish(self, error: Optional[BaseException] = None) -> None:
        with self.cond:
            self.done = True
            if error is not None:
                self.error = error
            self.cond.notify_all()

    def curtail(self) -> int:
        """Stop the walk at its current position; returns the old target.

        The registry's half of replacing a flight that can no longer
        serve a request (the walk passed the requested start and evicted
        it): the old walk stops claiming frames — its `next_frame` sees
        ``position >= target`` and finishes — and the *replacement*
        flight takes over the remainder of its range, so no frame is
        claimed by two walks.  Frames already published stay in the
        buffer for existing waiters.  Returns the target being given up
        (the flight's position when already done) so the caller can
        cover the union.
        """
        with self.cond:
            if self.done:
                return self.position
            old_target, self.target = self.target, self.position
            self.cond.notify_all()
            return old_target

    # -- the client side ---------------------------------------------------------
    def try_join(self, start: int, stop: int) -> bool:
        """Join the flight for ``[start, stop)`` if it can still serve it.

        Joinable iff this flight can still deliver *start* — it is in
        the buffer, or still ahead of the walk.  A frame the walk has
        passed and evicted is refused so the registry can start a fresh
        flight at it instead of waiting on one that will never look
        back.  Extends the target to *stop* when joining.
        """
        with self.cond:
            if self.done or self.error is not None:
                return False
            if start < self.position and start not in self.frames:
                return False
            self.target = max(self.target, int(stop))
            self.joiners += 1
            return True

    def wait_frame(self, frame: int, timeout: Optional[float] = None):
        """Block until *frame* is available; returns its payload.

        Returns ``None`` when this flight can no longer deliver *frame*
        from its buffer — the walk already passed it (buffer eviction or
        a late join) or finished without reaching it; the caller should
        fall back to the service cache / a new flight.  Raises the
        flight's error if the render failed, and
        :class:`~repro.errors.ServiceError` when *timeout* (a total
        deadline, not per-publish) expires first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cond:
            while True:
                if frame in self.frames:
                    return self.frames[frame]
                if self.error is not None:
                    raise self.error
                if self.done or self.position > frame:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServiceError(
                            f"timed out waiting for frame {frame} of "
                            f"{self.sequence_id[:12]}..."
                        )
                self.cond.wait(remaining)


class SequenceScheduler:
    """Single-flight registry of streaming sequence renders.

    Parameters
    ----------
    scheduler:
        The worker pool executing flight jobs.  Owned by default; pass
        ``owns_scheduler=False`` to share a pool with a texture service.
    buffer_limit:
        Published-frame buffer size handed to every flight.
    """

    def __init__(
        self,
        scheduler: Optional[RequestScheduler] = None,
        owns_scheduler: Optional[bool] = None,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
    ):
        self.scheduler = scheduler or RequestScheduler(n_workers=1, name="anim-service")
        self._owns_scheduler = (scheduler is None) if owns_scheduler is None else owns_scheduler
        self.buffer_limit = int(buffer_limit)
        self._flights: Dict[str, SequenceFlight] = {}  #: guarded-by: _lock
        self._lock = threading.Lock()
        self._serial = 0  #: guarded-by: _lock
        self.created = 0
        self.joined = 0

    def stream(
        self,
        sequence_id: str,
        start: int,
        stop: int,
        run: Callable[[SequenceFlight], None],
    ) -> Tuple[SequenceFlight, bool]:
        """Join the in-flight render of *sequence_id* or start a new one.

        Returns ``(flight, created)``.  *run* drives the actual frame
        walk when a flight is created: it must loop on
        :meth:`SequenceFlight.next_frame` / :meth:`publish`; errors it
        raises propagate to every waiter.
        """
        if stop <= start:
            raise AnimationServiceError(f"empty stream range [{start}, {stop})")
        with self._lock:
            flight = self._flights.get(sequence_id)
            if flight is not None and flight.try_join(start, stop):
                self.joined += 1
                return flight, False
            if flight is not None:
                # Curtail-and-union: the live flight cannot serve `start`
                # (its walk passed it and evicted it), so it stops where
                # it is and the replacement covers the union of both
                # ranges.  Without this the old walk would keep claiming
                # frames the new one also walks — re-rendering (or
                # double-delivering) the shared boundary.
                stop = max(stop, flight.curtail())
            flight = SequenceFlight(
                sequence_id, start, stop, buffer_limit=self.buffer_limit
            )
            self._flights[sequence_id] = flight
            self.created += 1
            self._serial += 1
            submit_key = f"{sequence_id}#{self._serial}"

        def job() -> None:
            try:
                run(flight)
            except BaseException as exc:  # noqa: BLE001 - delivered to waiters
                flight.finish(exc)
                raise
            finally:
                flight.finish()
                with self._lock:
                    if self._flights.get(sequence_id) is flight:
                        del self._flights[sequence_id]

        self.scheduler.submit(submit_key, job)
        return flight, True

    def inflight(self) -> int:
        with self._lock:
            return len(self._flights)

    def close(self) -> None:
        if self._owns_scheduler:
            self.scheduler.close()

    def __enter__(self) -> "SequenceScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
