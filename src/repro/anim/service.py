"""The animation streaming front end.

:class:`AnimationService` is to sequences what
:class:`~repro.service.server.TextureService` is to single textures: it
binds a field source and one configuration to the full serving stack and
streams temporally-coherent frames through it.

1. every frame is content-addressed by its
   :class:`~repro.service.keys.SequenceKey` (rolling field-content
   chain + config fingerprint + ``dt`` + policy);
2. the two-tier texture cache answers per-frame hits;
3. missing ranges coalesce through the
   :class:`~repro.anim.scheduler.SequenceScheduler` onto one in-flight
   incremental render walk that streams frames to every joined caller
   as they complete;
4. the walk threads pipeline state across frames
   (:class:`~repro.anim.incremental.IncrementalAnimator`), captures a
   resumable checkpoint every K frames, and resumes seeks from the
   nearest checkpoint instead of frame 0;
5. everything reports into :class:`~repro.service.stats.ServiceStats`.

Responses are bit-identical to one-shot renders of the same
``(fields, config, dt, frame)`` — the incremental walk performs the
exact particle/RNG operation sequence of the from-scratch replay, which
:meth:`AnimationService.verify` (and the ``verify_every`` knob) check
against :func:`~repro.anim.incremental.one_shot_frame`.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.advection.advector import auto_dt
from repro.advection.lifecycle import LifeCyclePolicy
from repro.anim.checkpoints import CheckpointStore
from repro.anim.incremental import FieldSource, IncrementalAnimator, one_shot_frame
from repro.anim.scheduler import SequenceFlight, SequenceScheduler
from repro.anim.sequence import FrameSequence
from repro.core.config import SpotNoiseConfig
from repro.errors import AnimationServiceError, ServiceError
from repro.parallel.runtime import DivideAndConquerRuntime
from repro.service.cache import (
    DiskBlobStore,
    DiskTextureCache,
    LRUTextureCache,
    TieredTextureCache,
)
from repro.service.keys import SequenceKey
from repro.service.scheduler import RequestScheduler
from repro.service.server import DEFAULT_MEMORY_BUDGET
from repro.service.stats import ServiceStats


@dataclass(frozen=True)
class FrameResponse:
    """One streamed frame.

    ``source`` is ``"memory"``/``"disk"`` for cache tiers, ``"stream"``
    when this caller's request created the render walk and
    ``"coalesced"`` when it joined an existing one.
    """

    frame: int
    texture: np.ndarray
    key: SequenceKey
    source: str
    latency_s: float


class AnimationService:
    """Request-coalescing, checkpoint-resumable animation streaming.

    Parameters
    ----------
    field_source:
        ``frame -> VectorField2D``; frames must be immutable once served
        (digest chains are memoised — same contract as
        ``TextureService(memoize_digests=True)``).
    config:
        Seeded synthesis configuration (one service = one sequence).
    dt:
        Advection step; ``None`` resolves the automatic step for frame 0
        eagerly, since the step is part of the sequence identity.
    policy:
        Particle life-cycle policy for the whole sequence.
    length:
        Optional sequence length for range validation and the manifest.
    checkpoint_every:
        Capture a resumable pipeline-state checkpoint every K frames
        (``0`` disables checkpointing; seeks then replay from frame 0).
    memory_budget_bytes / disk_dir:
        Texture cache tiers (checkpoints persist under
        ``<disk_dir>/checkpoints`` when a disk tier is configured).
    n_workers:
        Worker threads driving render walks.  One suffices for a single
        sequence (a service serves exactly one); more only helps when
        callers also use the service's pool for other work.
    verify_every:
        When > 0, every Nth frame rendered by a walk is re-rendered
        one-shot and compared bit-for-bit (expensive — a debugging and
        acceptance-testing knob, not a production default).
    """

    def __init__(
        self,
        field_source: FieldSource,
        config: SpotNoiseConfig,
        dt: Optional[float] = None,
        policy: Optional[LifeCyclePolicy] = None,
        length: Optional[int] = None,
        checkpoint_every: int = 8,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        disk_dir: "str | None" = None,
        n_workers: int = 1,
        verify_every: int = 0,
        stats: Optional[ServiceStats] = None,
    ):
        if checkpoint_every < 0:
            raise AnimationServiceError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.field_source = field_source
        self.config = config
        self.policy = policy or LifeCyclePolicy()
        self.dt = float(dt) if dt is not None else auto_dt(field_source(0))
        self.sequence = FrameSequence(
            field_source, config, self.dt, policy=self.policy, length=length
        )
        self.checkpoint_every = int(checkpoint_every)
        self.verify_every = int(verify_every)
        self.stats = stats or ServiceStats()
        disk = DiskTextureCache(disk_dir) if disk_dir else None
        self.cache = TieredTextureCache(LRUTextureCache(memory_budget_bytes), disk)
        blob = DiskBlobStore(os.path.join(disk_dir, "checkpoints")) if disk_dir else None
        self.checkpoints = CheckpointStore(disk=blob)
        self.runtime = DivideAndConquerRuntime(config)
        self.scheduler = SequenceScheduler(
            RequestScheduler(n_workers=n_workers, name="anim-service"),
            owns_scheduler=True,  # close() must join the walk workers
        )
        self.stats.queue_depth_probe = self.scheduler.scheduler.queue_depth
        self._disk_dir = disk_dir
        self._sequence_id = (
            f"{config.fingerprint()}|{self.dt!r}|{self.sequence._policy_token}"
        )
        self._animator_lock = threading.Lock()
        self._idle_animator: Optional[IncrementalAnimator] = None
        self._book_lock = threading.Lock()
        self._cached_frames: Dict[int, str] = {}
        self._checkpoint_boundaries: Set[int] = set()
        self._closed = False

    # -- construction helpers ----------------------------------------------------
    @classmethod
    def for_store(cls, store, config: SpotNoiseConfig, **kwargs) -> "AnimationService":
        """Stream a :class:`~repro.apps.dns.store.ChunkedFieldStore`."""
        kwargs.setdefault("length", len(store))
        return cls(store.read, config, **kwargs)

    # -- the request path --------------------------------------------------------
    def stream(
        self, start: int, stop: int, timeout: Optional[float] = None
    ) -> Iterator[FrameResponse]:
        """Yield frames ``start..stop-1`` as they become available.

        Cached frames are yielded immediately; the first miss joins (or
        creates) the sequence's in-flight render walk and the remaining
        frames stream out as the walk completes them.  The iterator is
        lazy — frames render ahead of consumption, but nothing blocks
        until the caller pulls.  (Validation is eager: a closed service
        or bad range raises here, not at the first ``next()``.)
        """
        if self._closed:
            raise ServiceError("animation service is closed")
        if stop <= start:
            raise AnimationServiceError(f"empty stream range [{start}, {stop})")
        self.sequence.check_frame(start)
        self.sequence.check_frame(stop - 1)
        return self._stream(start, stop, timeout)

    def _stream(
        self, start: int, stop: int, timeout: Optional[float]
    ) -> Iterator[FrameResponse]:
        flight: Optional[SequenceFlight] = None
        flight_source = "stream"
        for t in range(start, stop):
            t0 = time.perf_counter()
            self.stats.record_request()
            try:
                digest = self.sequence.frame_digest(t)
                texture = None
                source = "memory"
                # Bounded retry: a flight can pass `t` after evicting it
                # from its buffer (or finish early); the frame is then in
                # the cache — unless the memory tier evicted it too, in
                # which case a fresh flight re-renders it.
                for _ in range(8):
                    texture, tier = self.cache.get(digest)
                    if texture is not None:
                        source = tier or "memory"
                        break
                    if flight is None or not flight.try_join(t, stop):
                        flight, created = self.scheduler.stream(
                            self._sequence_id, t, stop, self._run_flight
                        )
                        flight_source = "stream" if created else "coalesced"
                    texture = flight.wait_frame(t, timeout)
                    if texture is not None:
                        source = flight_source
                        break
                    flight = None  # the walk passed us; fall back to cache
                if texture is None:
                    raise AnimationServiceError(
                        f"could not materialise frame {t}: render walks kept "
                        "outpacing this consumer (cache tier too small?)"
                    )
            except Exception:
                self.stats.record_error()
                raise
            latency = time.perf_counter() - t0
            self.stats.record_response(source, latency)
            yield FrameResponse(
                frame=t,
                texture=texture,
                key=self.sequence.frame_key(t),
                source=source,
                latency_s=latency,
            )

    def request(self, frame: int, timeout: Optional[float] = None) -> FrameResponse:
        """Serve a single frame (a one-frame :meth:`stream`)."""
        return next(iter(self.stream(frame, frame + 1, timeout=timeout)))

    def prefetch(self, start: int, stop: int) -> bool:
        """Kick off (or extend) a render walk without waiting.

        Returns ``True`` when a new walk was created, ``False`` when the
        range joined an existing one or was already fully cached.
        """
        if self._closed:
            raise ServiceError("animation service is closed")
        self.sequence.check_frame(start)
        self.sequence.check_frame(stop - 1)
        for t in range(start, stop):
            if self.cache.get(self.sequence.frame_digest(t))[0] is None:
                _, created = self.scheduler.stream(
                    self._sequence_id, t, stop, self._run_flight
                )
                return created
        return False

    def verify(self, frame: int) -> bool:
        """Serve *frame* and compare it bit-for-bit with a one-shot render."""
        response = self.request(frame)
        reference = one_shot_frame(
            self.config,
            self.field_source,
            frame,
            dt=self.dt,
            policy=self.policy,
            runtime=self.runtime,
        )
        return bool(np.array_equal(response.texture, reference.display))

    # -- the render walk ---------------------------------------------------------
    def _run_flight(self, flight: SequenceFlight) -> None:
        animator = self._acquire_animator(flight.first)
        try:
            while True:
                t = flight.next_frame()
                if t is None:
                    break
                digest = self.sequence.frame_digest(t)
                cached, _ = self.cache.get(digest)
                if cached is not None:
                    # Someone materialised this frame earlier: one cheap
                    # advection keeps the walk's state coherent, no splat.
                    animator.advance_to(t + 1)
                    self._bookkeep(t, digest, animator)
                    flight.publish(t, cached)
                    continue
                animator.advance_to(t)
                r0 = time.perf_counter()
                result = animator.render_next()
                self.stats.record_render(None, time.perf_counter() - r0)
                if self.verify_every and result.frame_index % self.verify_every == 0:
                    animator.verify_frame(result)
                self.cache.put(digest, result.display)
                self._bookkeep(t, digest, animator)
                flight.publish(t, result.display)
        except BaseException:
            # The animator may have mutated evolution state for a frame
            # it never finished (e.g. a backend failure mid-synthesis);
            # pooling it would let a later walk advect that frame twice
            # and cache wrong bytes under correct keys.  Discard it.
            animator.close()
            raise
        self._release_animator(animator)

    def _bookkeep(self, t: int, digest: str, animator: IncrementalAnimator) -> None:
        """Record frame *t* and capture the boundary checkpoint if due.

        Runs for rendered *and* cache-hit frames: a walk over a warm
        disk tier must still leave resume points and an honest manifest.
        """
        with self._book_lock:
            self._cached_frames[t] = digest
        boundary = t + 1
        if self.checkpoint_every and boundary % self.checkpoint_every == 0:
            state_digest = self.sequence.checkpoint_digest(boundary)
            if state_digest not in self.checkpoints:
                self.checkpoints.put(state_digest, animator.state())
            with self._book_lock:
                self._checkpoint_boundaries.add(boundary)

    # -- animator pooling and checkpoint restore ---------------------------------
    def _nearest_checkpoint(self, frame: int) -> "Tuple[int, Optional[object]]":
        """Best resume point at or below *frame*: (boundary, state|None)."""
        if self.checkpoint_every:
            boundary = (frame // self.checkpoint_every) * self.checkpoint_every
            while boundary >= self.checkpoint_every:
                state = self.checkpoints.get(self.sequence.checkpoint_digest(boundary))
                if state is not None:
                    return boundary, state
                boundary -= self.checkpoint_every
        return 0, None

    def _acquire_animator(self, first: int) -> IncrementalAnimator:
        with self._animator_lock:
            animator, self._idle_animator = self._idle_animator, None
        if animator is None:
            animator = IncrementalAnimator(
                self.config,
                self.field_source,
                dt=self.dt,
                policy=self.policy,
                runtime=self.runtime,
            )
            position = 0
        else:
            position = animator.position
        boundary, state = self._nearest_checkpoint(first)
        # The idle animator's own position is a "checkpoint" too — reuse
        # it when it is the closest resume point not past `first` (the
        # hot path for forward scrubbing).
        if boundary <= position <= first:
            return animator
        if state is not None:
            animator.restore(state)
        else:
            animator.reset()
        return animator

    def _release_animator(self, animator: IncrementalAnimator) -> None:
        with self._animator_lock:
            if self._idle_animator is None and not self._closed:
                self._idle_animator = animator
                return
        animator.close()

    # -- observability -----------------------------------------------------------
    def manifest(self) -> dict:
        """The sequence manifest: identity, cached frames, checkpoints."""
        with self._book_lock:
            cached = dict(self._cached_frames)
            boundaries: List[int] = sorted(self._checkpoint_boundaries)
        return self.sequence.manifest(cached_frames=cached, checkpoints=boundaries)

    def write_manifest(self) -> Optional[str]:
        """Persist the manifest next to the disk cache (no-op when memory-only)."""
        if not self._disk_dir:
            return None
        with self._book_lock:
            cached = dict(self._cached_frames)
            boundaries = sorted(self._checkpoint_boundaries)
        return self.sequence.write_manifest(
            self._disk_dir, cached_frames=cached, checkpoints=boundaries
        )

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.scheduler.close()
        with self._animator_lock:
            animator, self._idle_animator = self._idle_animator, None
        if animator is not None:
            animator.close()
        self.runtime.close()
        if self._disk_dir:
            self.write_manifest()

    def __enter__(self) -> "AnimationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
