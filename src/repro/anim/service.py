"""The animation streaming front end.

:class:`AnimationService` is to sequences what
:class:`~repro.service.server.TextureService` is to single textures: it
binds a field source and one configuration to the full serving stack and
streams temporally-coherent frames through it.

1. every frame is content-addressed by its
   :class:`~repro.service.keys.SequenceKey` (rolling field-content
   chain + config fingerprint + ``dt`` + policy);
2. the two-tier texture cache answers per-frame hits;
3. missing ranges coalesce through the
   :class:`~repro.anim.scheduler.SequenceScheduler` onto one in-flight
   incremental render walk that streams frames to every joined caller
   as they complete;
4. the walk threads pipeline state across frames
   (:class:`~repro.anim.incremental.IncrementalAnimator`), captures a
   resumable checkpoint every K frames, and resumes seeks from the
   nearest checkpoint instead of frame 0;
5. everything reports into :class:`~repro.service.stats.ServiceStats`.

Responses are bit-identical to one-shot renders of the same
``(fields, config, dt, frame)`` — the incremental walk performs the
exact particle/RNG operation sequence of the from-scratch replay, which
:meth:`AnimationService.verify` (and the ``verify_every`` knob) check
against :func:`~repro.anim.incremental.one_shot_frame`.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from dataclasses import dataclass
from typing import AsyncIterator, Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.advection.advector import auto_dt
from repro.advection.lifecycle import LifeCyclePolicy
from repro.anim.checkpoints import CheckpointStore
from repro.anim.delta import DeltaEncoder, DeltaTransport
from repro.anim.incremental import FieldSource, IncrementalAnimator, one_shot_frame
from repro.anim.scheduler import SequenceFlight, SequenceScheduler
from repro.anim.sequence import FrameSequence
from repro.core.config import SpotNoiseConfig
from repro.errors import AnimationServiceError, ServiceError
from repro.machine.workload import workload_from_config
from repro.parallel.planner import DecompositionPlan, DecompositionPlanner
from repro.parallel.runtime import DivideAndConquerRuntime, spatial_feasibility
from repro.runtime.streams import BoundedFrameChannel, ChannelClosed
from repro.service.admission import LatencyPredictor
from repro.service.cache import (
    DiskBlobStore,
    DiskTextureCache,
    LRUTextureCache,
    MemoryBlobStore,
    TieredTextureCache,
)
from repro.service.keys import SequenceKey
from repro.service.scheduler import RequestScheduler
from repro.service.server import DEFAULT_MEMORY_BUDGET
from repro.service.stats import ServiceStats


@dataclass(frozen=True)
class _PlanContext:
    """Everything a render walk needs, bound to one resolved plan.

    A drift re-plan swaps the service's *current* context atomically;
    walks and streams capture the context they started under and finish
    on it, so frames are always cached under the identity whose config
    rendered them — whatever the service's current plan is by then.
    """

    sequence: FrameSequence
    config: SpotNoiseConfig
    runtime: DivideAndConquerRuntime
    sequence_id: str
    delta_encoder: Optional[DeltaEncoder] = None


@dataclass(frozen=True)
class FrameResponse:
    """One streamed frame.

    ``source`` is ``"memory"``/``"disk"`` for cache tiers, ``"stream"``
    when this caller's request created the render walk and
    ``"coalesced"`` when it joined an existing one.
    """

    frame: int
    texture: np.ndarray
    key: SequenceKey
    source: str
    latency_s: float


class _RangeCursor:
    """One consumer's walk through a frame range.

    Shared by the blocking iterator (:meth:`AnimationService.stream`)
    and the async front end (:meth:`AnimationService.stream_async`):
    both materialise frames through this exact pipeline — cache → delta
    decode → coalesced render walk — so the two delivery shapes cannot
    drift apart.  The cursor pins the plan context it was created under:
    a concurrent re-plan swaps the service's context but never this
    stream's keys, flight or runtime.
    """

    def __init__(
        self,
        service: "AnimationService",
        ctx: _PlanContext,
        stop: int,
        timeout: Optional[float],
    ):
        self.service = service
        self.ctx = ctx
        self.stop = stop
        self.timeout = timeout
        self.flight: Optional[SequenceFlight] = None
        self.flight_source = "stream"

    def materialise(self, t: int) -> FrameResponse:
        """Produce frame *t* (blocking), recording stats and latency."""
        svc = self.service
        ctx = self.ctx
        t0 = time.perf_counter()
        svc.stats.record_request()
        try:
            digest = ctx.sequence.frame_digest(t)
            texture = None
            source = "memory"
            # Bounded retry: a flight can pass `t` after evicting it
            # from its buffer (or finish early); the frame is then in
            # the cache — unless the memory tier evicted it too, in
            # which case a fresh flight re-renders it.
            for _ in range(8):
                texture, tier = svc.cache.get(digest)
                if texture is not None:
                    source = tier or "memory"
                    break
                texture = svc._decode_delta(t, digest, ctx)
                if texture is not None:
                    source = "delta"
                    break
                if self.flight is None or not self.flight.try_join(t, self.stop):
                    self.flight, created = svc.scheduler.stream(
                        ctx.sequence_id, t, self.stop,
                        lambda fl, ctx=ctx: svc._run_flight(fl, ctx),
                    )
                    self.flight_source = "stream" if created else "coalesced"
                texture = self.flight.wait_frame(t, self.timeout)
                if texture is not None:
                    source = self.flight_source
                    break
                self.flight = None  # the walk passed us; fall back to cache
            if texture is None:
                raise AnimationServiceError(
                    f"could not materialise frame {t}: render walks kept "
                    "outpacing this consumer (cache tier too small?)"
                )
        except Exception:
            svc.stats.record_error()
            raise
        latency = time.perf_counter() - t0
        svc.stats.record_response(source, latency)
        return FrameResponse(
            frame=t,
            texture=texture,
            key=ctx.sequence.frame_key(t),
            source=source,
            latency_s=latency,
        )


class AnimationService:
    """Request-coalescing, checkpoint-resumable animation streaming.

    Parameters
    ----------
    field_source:
        ``frame -> VectorField2D``; frames must be immutable once served
        (digest chains are memoised — same contract as
        ``TextureService(memoize_digests=True)``).
    config:
        Seeded synthesis configuration (one service = one sequence).
    dt:
        Advection step; ``None`` resolves the automatic step for frame 0
        eagerly, since the step is part of the sequence identity.
    policy:
        Particle life-cycle policy for the whole sequence.
    length:
        Optional sequence length for range validation and the manifest.
    checkpoint_every:
        Capture a resumable pipeline-state checkpoint every K frames
        (``0`` disables checkpointing; seeks then replay from frame 0).
    memory_budget_bytes / disk_dir:
        Texture cache tiers (checkpoints persist under
        ``<disk_dir>/checkpoints`` when a disk tier is configured).
    n_workers:
        Worker threads driving render walks.  One suffices for a single
        sequence (a service serves exactly one); more only helps when
        callers also use the service's pool for other work.
    verify_every:
        When > 0, every Nth frame rendered by a walk is re-rendered
        one-shot and compared bit-for-bit (expensive — a debugging and
        acceptance-testing knob, not a production default).
    delta_every:
        ``None`` disables the delta transport.  Any integer >= 0 enables
        it: rendered frames are delta-encoded (keyframe every K frames +
        XOR diffs, chunked/compressed/content-addressed) into a chunk
        store — ``<disk_dir>/delta`` when a disk tier is configured, in
        memory otherwise.  ``0`` prices K automatically with the cost
        model.  Texture-cache misses then decode from the chunk store
        (``source == "delta"``) before falling back to a render walk,
        and the manifest embeds the delta frame table for digest-sync
        clients.  Decoded frames are bit-identical to rendered ones — a
        missing or corrupt chunk falls back to rendering transparently.
    planner / predictor:
        With ``config.backend == "auto"`` the decomposition is resolved
        by the planner at construction — a sequence's identity (and
        hence its digest chain, checkpoints and cached frames) is bound
        to the *resolved* config, so the plan must hold for the
        sequence's lifetime.  Incremental render times feed the
        predictor; :meth:`replan_if_drifted` lets a quiesced service
        adopt a new plan (new sequence identity, new keys — old cache
        entries simply go cold, they can never be served wrongly).
    """

    def __init__(
        self,
        field_source: FieldSource,
        config: SpotNoiseConfig,
        dt: Optional[float] = None,
        policy: Optional[LifeCyclePolicy] = None,
        length: Optional[int] = None,
        checkpoint_every: int = 8,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        disk_dir: "str | None" = None,
        n_workers: int = 1,
        verify_every: int = 0,
        stats: Optional[ServiceStats] = None,
        planner: Optional[DecompositionPlanner] = None,
        predictor: Optional[LatencyPredictor] = None,
        delta_every: Optional[int] = None,
    ):
        if checkpoint_every < 0:
            raise AnimationServiceError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.field_source = field_source
        self.requested_config = config
        self.policy = policy or LifeCyclePolicy()
        self._planner: Optional[DecompositionPlanner] = None
        self._plan: Optional[DecompositionPlan] = None  #: guarded-by: _replan_lock
        self._plan_scale = 1.0  #: guarded-by: _replan_lock
        self.predictor = predictor
        self.replans = 0  #: guarded-by: _replan_lock
        # Frame 0 is loaded only when something actually needs it: the
        # automatic advection step, the planner's workload, or the
        # predictor's grid shape.
        field0 = None
        if dt is None or config.backend == "auto" or predictor is not None:
            field0 = field_source(0)
        self.dt = float(dt) if dt is not None else auto_dt(field0)
        self._grid_shape = tuple(field0.grid.shape) if field0 is not None else None
        if config.backend == "auto":
            self._planner = planner or DecompositionPlanner()
            self.predictor = self.predictor or LatencyPredictor()
            self._plan_workload = workload_from_config(config, field0)
            self._spatial_ok = spatial_feasibility(config, field0)
            self._plan_scale = self.predictor.scale or 1.0
            self._plan = self._planner.plan(
                self._plan_workload, scale=self._plan_scale,
                spatial_ok=self._spatial_ok,
            )
            config = self._plan.apply(config)
        self._length = length
        self.delta_transport: Optional[DeltaTransport] = None
        if delta_every is not None:
            delta_store = (
                DiskBlobStore(os.path.join(disk_dir, "delta"))
                if disk_dir
                else MemoryBlobStore()
            )
            self.delta_transport = DeltaTransport(
                delta_store, keyframe_every=int(delta_every)
            )
        # _ctx is published by snapshot-swap: replan_if_drifted builds a
        # whole new _PlanContext and swaps the reference under
        # _replan_lock; readers snapshot self._ctx without locking and
        # finish on whatever context they captured.
        self._replan_lock = threading.Lock()
        self._ctx = self._make_context(config)
        self._retired_runtimes: "List[DivideAndConquerRuntime]" = []  #: guarded-by: _replan_lock
        self.checkpoint_every = int(checkpoint_every)
        self.verify_every = int(verify_every)
        self.stats = stats or ServiceStats()
        disk = DiskTextureCache(disk_dir) if disk_dir else None
        self.cache = TieredTextureCache(LRUTextureCache(memory_budget_bytes), disk)
        blob = DiskBlobStore(os.path.join(disk_dir, "checkpoints")) if disk_dir else None
        self.checkpoints = CheckpointStore(disk=blob)
        self.scheduler = SequenceScheduler(
            RequestScheduler(n_workers=n_workers, name="anim-service"),
            owns_scheduler=True,  # close() must join the walk workers
        )
        self.stats.queue_depth_probe = self.scheduler.scheduler.queue_depth
        self._disk_dir = disk_dir
        self._animator_lock = threading.Lock()
        self._idle_animator: "Optional[Tuple[_PlanContext, IncrementalAnimator]]" = None
        self._book_lock = threading.Lock()
        self._cached_frames: Dict[int, str] = {}
        self._checkpoint_boundaries: Set[int] = set()
        self._closed = False

    def _make_context(self, config: SpotNoiseConfig) -> _PlanContext:
        sequence = FrameSequence(
            self.field_source, config, self.dt, policy=self.policy,
            length=self._length,
        )
        sequence_id = f"{config.fingerprint()}|{self.dt!r}|{sequence._policy_token}"
        # A re-plan gets a fresh encoder (new sequence identity, new
        # frame table) over the *same* chunk store, so byte-identical
        # chunks keep deduping across plans.
        encoder = (
            self.delta_transport.encoder(sequence_id)
            if self.delta_transport is not None
            else None
        )
        return _PlanContext(
            sequence=sequence,
            config=config,
            runtime=DivideAndConquerRuntime(config),
            sequence_id=sequence_id,
            delta_encoder=encoder,
        )

    # The service's *current* plan context; walks and streams capture it
    # once and finish on it, so a concurrent re-plan can never mix two
    # identities inside one walk.
    @property
    def config(self) -> SpotNoiseConfig:
        return self._ctx.config

    @property
    def sequence(self) -> FrameSequence:
        return self._ctx.sequence

    @property
    def runtime(self) -> DivideAndConquerRuntime:
        return self._ctx.runtime

    @property
    def _sequence_id(self) -> str:
        return self._ctx.sequence_id

    # -- construction helpers ----------------------------------------------------
    @classmethod
    def for_store(cls, store, config: SpotNoiseConfig, **kwargs) -> "AnimationService":
        """Stream a :class:`~repro.apps.dns.store.ChunkedFieldStore`."""
        kwargs.setdefault("length", len(store))
        return cls(store.read, config, **kwargs)

    # -- the request path --------------------------------------------------------
    def stream(
        self, start: int, stop: int, timeout: Optional[float] = None
    ) -> Iterator[FrameResponse]:
        """Yield frames ``start..stop-1`` as they become available.

        Cached frames are yielded immediately; the first miss joins (or
        creates) the sequence's in-flight render walk and the remaining
        frames stream out as the walk completes them.  The iterator is
        lazy — frames render ahead of consumption, but nothing blocks
        until the caller pulls.  (Validation is eager: a closed service
        or bad range raises here, not at the first ``next()``.)
        """
        if self._closed:
            raise ServiceError("animation service is closed")
        if stop <= start:
            raise AnimationServiceError(f"empty stream range [{start}, {stop})")
        self.sequence.check_frame(start)
        self.sequence.check_frame(stop - 1)
        return self._stream(start, stop, timeout)

    def _stream(
        self, start: int, stop: int, timeout: Optional[float]
    ) -> Iterator[FrameResponse]:
        cursor = _RangeCursor(self, self._ctx, stop, timeout)
        for t in range(start, stop):
            yield cursor.materialise(t)

    def stream_async(
        self,
        start: int,
        stop: int,
        buffer: int = 8,
        timeout: Optional[float] = None,
    ) -> "AsyncIterator[FrameResponse]":
        """Stream frames ``start..stop-1`` as a backpressured async iterator.

        The asyncio-native face of :meth:`stream`, usable from any event
        loop (the caller's own, not the runtime spine): a producer task
        materialises frames through the exact blocking pipeline —
        cache → delta decode → coalesced render walk — off-loop, and
        pushes them through a :class:`~repro.runtime.streams.BoundedFrameChannel`
        of *buffer* frames, so rendering runs at most *buffer* frames
        ahead of ``async for`` consumption instead of buffering the
        whole range.  Abandoning the iterator (``break`` / ``aclose``)
        cancels the producer; errors surface after the frames that
        preceded them, exactly as in the blocking iterator.  (Validation
        is eager: a closed service or bad range raises here, not at the
        first ``__anext__``.)
        """
        if self._closed:
            raise ServiceError("animation service is closed")
        if stop <= start:
            raise AnimationServiceError(f"empty stream range [{start}, {stop})")
        self.sequence.check_frame(start)
        self.sequence.check_frame(stop - 1)
        cursor = _RangeCursor(self, self._ctx, stop, timeout)
        return self._stream_async(cursor, start, stop, buffer)

    async def _stream_async(
        self, cursor: "_RangeCursor", start: int, stop: int, buffer: int
    ) -> "AsyncIterator[FrameResponse]":
        channel = BoundedFrameChannel(buffer)
        loop = asyncio.get_running_loop()

        async def produce() -> None:
            try:
                for t in range(start, stop):
                    response = await loop.run_in_executor(None, cursor.materialise, t)
                    await channel.put(response)
            except ChannelClosed:
                pass  # the consumer went away mid-range
            except BaseException as exc:  # noqa: BLE001 - delivered via the channel
                channel.close(exc)
            else:
                channel.close()

        producer = loop.create_task(produce())
        try:
            async for response in channel:
                yield response
        finally:
            producer.cancel()
            try:
                await producer
            except (asyncio.CancelledError, Exception):
                pass

    def request(self, frame: int, timeout: Optional[float] = None) -> FrameResponse:
        """Serve a single frame (a one-frame :meth:`stream`)."""
        return next(iter(self.stream(frame, frame + 1, timeout=timeout)))

    def prefetch(self, start: int, stop: int) -> bool:
        """Kick off (or extend) a render walk without waiting.

        Returns ``True`` when a new walk was created, ``False`` when the
        range joined an existing one or was already materialisable —
        fully cached, or (with delta transport) delta-encoded: frames
        with a delta table entry decode on read, so they need no walk.
        (If a chunk turns out evicted by then, the read path's fallback
        renders the frame anyway.)
        """
        if self._closed:
            raise ServiceError("animation service is closed")
        ctx = self._ctx
        ctx.sequence.check_frame(start)
        ctx.sequence.check_frame(stop - 1)
        encoder = ctx.delta_encoder
        for t in range(start, stop):
            if encoder is not None and encoder.has_frame(t):
                continue
            if self.cache.get(ctx.sequence.frame_digest(t))[0] is None:
                _, created = self.scheduler.stream(
                    ctx.sequence_id, t, stop,
                    lambda fl, ctx=ctx: self._run_flight(fl, ctx),
                )
                return created
        return False

    def verify(self, frame: int) -> bool:
        """Serve *frame* and compare it bit-for-bit with a one-shot render."""
        response = self.request(frame)
        reference = one_shot_frame(
            self.config,
            self.field_source,
            frame,
            dt=self.dt,
            policy=self.policy,
            runtime=self.runtime,
        )
        return bool(np.array_equal(response.texture, reference.display))

    # -- the render walk ---------------------------------------------------------
    def _run_flight(self, flight: SequenceFlight, ctx: _PlanContext) -> None:
        animator = self._acquire_animator(flight.first, ctx)
        try:
            while True:
                t = flight.next_frame()
                if t is None:
                    break
                digest = ctx.sequence.frame_digest(t)
                cached, _ = self.cache.get(digest)
                if cached is not None:
                    # Someone materialised this frame earlier: one cheap
                    # advection keeps the walk's state coherent, no splat.
                    animator.advance_to(t + 1)
                    self._bookkeep(t, digest, animator, ctx)
                    # Encode before publish so a consumer that observed
                    # the frame can rely on its delta entry existing.
                    self._encode_delta(t, cached, digest, ctx)
                    flight.publish(t, cached)
                    continue
                animator.advance_to(t)
                r0 = time.perf_counter()
                result = animator.render_next()
                elapsed = time.perf_counter() - r0
                self.stats.record_render(None, elapsed)
                if self.predictor is not None:
                    self.predictor.observe(
                        ctx.config, elapsed, grid_shape=self._grid_shape
                    )
                if self.verify_every and result.frame_index % self.verify_every == 0:
                    animator.verify_frame(result)
                self.cache.put(digest, result.display)
                self._bookkeep(t, digest, animator, ctx)
                self._encode_delta(t, result.display, digest, ctx)
                flight.publish(t, result.display)
        except BaseException:
            # The animator may have mutated evolution state for a frame
            # it never finished (e.g. a backend failure mid-synthesis);
            # pooling it would let a later walk advect that frame twice
            # and cache wrong bytes under correct keys.  Discard it.
            animator.close()
            raise
        self._release_animator(animator, ctx)

    # -- the delta transport -----------------------------------------------------
    def _encode_delta(
        self, t: int, texture: np.ndarray, digest: str, ctx: _PlanContext
    ) -> None:
        """Feed a walk-produced frame into the plan's delta encoder."""
        if ctx.delta_encoder is not None:
            ctx.delta_encoder.add_frame(t, texture, digest)

    def _decode_delta(
        self, t: int, digest: str, ctx: _PlanContext
    ) -> Optional[np.ndarray]:
        """Materialise frame *t* from the delta chunk store, if possible.

        The decode-on-read half of the transport: a texture-cache miss
        whose frame was delta-encoded reconstructs from keyframe + diff
        chain — bit-identical by construction — instead of joining a
        render walk.  Returns ``None`` (transparent fallback to the
        walk) when the frame has no entry or a chunk is missing/corrupt.
        The decoded frame is put back into the texture cache so repeat
        traffic hits the fast tier.
        """
        if ctx.delta_encoder is None:
            return None
        texture = ctx.delta_encoder.decode(t)
        if texture is not None:
            self.cache.put(digest, texture)
        return texture

    def delta_stats(self) -> Optional[dict]:
        """Bytes-shipped accounting of the current plan's encoder."""
        encoder = self._ctx.delta_encoder
        return encoder.stats() if encoder is not None else None

    def _bookkeep(
        self, t: int, digest: str, animator: IncrementalAnimator, ctx: _PlanContext
    ) -> None:
        """Record frame *t* and capture the boundary checkpoint if due.

        Runs for rendered *and* cache-hit frames: a walk over a warm
        disk tier must still leave resume points and an honest manifest.
        """
        with self._book_lock:
            if ctx is self._ctx:  # a superseded walk's frames are cold keys
                self._cached_frames[t] = digest
        boundary = t + 1
        if self.checkpoint_every and boundary % self.checkpoint_every == 0:
            state_digest = ctx.sequence.checkpoint_digest(boundary)
            if state_digest not in self.checkpoints:
                self.checkpoints.put(state_digest, animator.state())
            with self._book_lock:
                if ctx is self._ctx:
                    self._checkpoint_boundaries.add(boundary)

    # -- animator pooling and checkpoint restore ---------------------------------
    def _nearest_checkpoint(
        self, frame: int, ctx: _PlanContext
    ) -> "Tuple[int, Optional[object]]":
        """Best resume point at or below *frame*: (boundary, state|None)."""
        if self.checkpoint_every:
            boundary = (frame // self.checkpoint_every) * self.checkpoint_every
            while boundary >= self.checkpoint_every:
                state = self.checkpoints.get(ctx.sequence.checkpoint_digest(boundary))
                if state is not None:
                    return boundary, state
                boundary -= self.checkpoint_every
        return 0, None

    def _acquire_animator(self, first: int, ctx: _PlanContext) -> IncrementalAnimator:
        animator = None
        with self._animator_lock:
            if self._idle_animator is not None:
                idle_ctx, idle = self._idle_animator
                # An animator is bound to the plan context that built it
                # (config + runtime); one pooled under a superseded plan
                # must not serve a walk under the new one.
                if idle_ctx is ctx:
                    animator, self._idle_animator = idle, None
        if animator is None:
            animator = IncrementalAnimator(
                ctx.config,
                self.field_source,
                dt=self.dt,
                policy=self.policy,
                runtime=ctx.runtime,
            )
            position = 0
        else:
            position = animator.position
        boundary, state = self._nearest_checkpoint(first, ctx)
        # The idle animator's own position is a "checkpoint" too — reuse
        # it when it is the closest resume point not past `first` (the
        # hot path for forward scrubbing).
        if boundary <= position <= first:
            return animator
        if state is not None:
            animator.restore(state)
        else:
            animator.reset()
        return animator

    def _release_animator(self, animator: IncrementalAnimator, ctx: _PlanContext) -> None:
        with self._animator_lock:
            if (
                self._idle_animator is None
                and not self._closed
                and ctx is self._ctx  # superseded-plan animators retire
            ):
                self._idle_animator = (ctx, animator)
                return
        animator.close()

    # -- planning ----------------------------------------------------------------
    @property
    def plan(self) -> Optional[DecompositionPlan]:
        """The resolved decomposition plan (``None`` without auto)."""
        with self._replan_lock:
            return self._plan

    def replan_if_drifted(self, drift: float = 2.0) -> bool:
        """Adopt a new plan when the calibration scale drifted > *drift*.

        A sequence's identity is bound to its resolved config, so the
        service swaps its *whole* plan context (sequence, runtime,
        sequence id) at once; walks and streams that already started
        captured the old context and finish on it — their frames stay
        keyed under the identity whose config rendered them, and the old
        runtime is retired (closed at service :meth:`close`) rather than
        pulled out from under them.  Previously cached frames and
        checkpoints keyed by the old identity simply go cold.

        Safe to call concurrently with in-flight streams and with other
        ``replan_if_drifted`` calls: the drift decision and the context
        swap happen under the re-plan lock (so two racing calls cannot
        both retire the same context), while readers keep snapshotting
        ``self._ctx`` lock-free — the same snapshot-swap discipline as
        :class:`~repro.service.server.TextureService`'s
        ``_RenderBinding``.  The :class:`~repro.runtime.supervisor.PlanSupervisor`
        calls this continuously via :meth:`supervise`.

        Returns ``True`` when a new decomposition was adopted.
        """
        if drift <= 1.0:
            raise AnimationServiceError(f"drift must be > 1, got {drift}")
        if self._planner is None or self.predictor is None or self._closed:
            return False
        scale = self.predictor.scale
        if scale is None:
            return False
        with self._replan_lock:
            ratio = scale / self._plan_scale if self._plan_scale > 0 else float("inf")
            if 1.0 / drift <= ratio <= drift:
                return False
            plan = self._planner.plan(
                self._plan_workload, scale=scale, spatial_ok=self._spatial_ok
            )
            self._plan_scale = scale
            if plan.triple == self._plan.triple:
                self._plan = plan  # same decomposition, fresher pricing
                return False
            old_ctx = self._ctx
            self._plan = plan
            self._ctx = self._make_context(plan.apply(self.requested_config))
            self._retired_runtimes.append(old_ctx.runtime)
            self.replans += 1
        with self._animator_lock:
            idle, self._idle_animator = self._idle_animator, None
        if idle is not None:
            # Pooled under a context this swap (or a concurrent one)
            # superseded — _release_animator only re-pools current-ctx
            # animators, so closing is at worst one warm-up lost.
            idle[1].close()
        with self._book_lock:
            self._cached_frames.clear()
            self._checkpoint_boundaries.clear()
        return True

    def supervise(self, supervisor, drift: float = 2.0) -> None:
        """Register with a :class:`~repro.runtime.supervisor.PlanSupervisor`.

        The supervisor folds the predictor's calibration-drift stream
        into :meth:`replan_if_drifted` at its own cadence — live
        re-planning while streams are in flight, instead of waiting for
        a quiesced moment.
        """
        supervisor.watch(f"anim:{id(self):x}", lambda: self.replan_if_drifted(drift))

    # -- observability -----------------------------------------------------------
    def _delta_manifest_dict(self, ctx: _PlanContext) -> Optional[dict]:
        if ctx.delta_encoder is None:
            return None
        delta = ctx.delta_encoder.manifest()
        return delta.to_dict() if delta is not None else None

    def manifest(self) -> dict:
        """The sequence manifest: identity, cached frames, checkpoints,
        and (with delta transport) the embedded delta frame table."""
        ctx = self._ctx
        with self._book_lock:
            cached = dict(self._cached_frames)
            boundaries: List[int] = sorted(self._checkpoint_boundaries)
        return ctx.sequence.manifest(
            cached_frames=cached,
            checkpoints=boundaries,
            delta=self._delta_manifest_dict(ctx),
        )

    def write_manifest(self) -> Optional[str]:
        """Persist the manifest next to the disk cache (no-op when memory-only)."""
        if not self._disk_dir:
            return None
        ctx = self._ctx
        with self._book_lock:
            cached = dict(self._cached_frames)
            boundaries = sorted(self._checkpoint_boundaries)
        return ctx.sequence.write_manifest(
            self._disk_dir,
            cached_frames=cached,
            checkpoints=boundaries,
            delta=self._delta_manifest_dict(ctx),
        )

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.scheduler.close()
        with self._animator_lock:
            idle, self._idle_animator = self._idle_animator, None
        if idle is not None:
            idle[1].close()
        self.runtime.close()
        with self._replan_lock:
            retired, self._retired_runtimes = self._retired_runtimes, []
        for runtime in retired:
            runtime.close()
        if self._disk_dir:
            self.write_manifest()

    def __enter__(self) -> "AnimationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
