"""Sequence identity: content-addressed frame keys and the manifest.

A :class:`FrameSequence` binds a field source to one configuration, one
advection step and one life-cycle policy, and hands out
:class:`~repro.service.keys.SequenceKey` identities for its frames.  The
data half of each key is a rolling :func:`~repro.service.keys.chain_digest`
over the per-frame field digests, so frame *t* is addressed by the
ordered *contents* of frames ``0..t`` — the honest identity of a
temporally-coherent frame, and the property that lets two sequences
sharing a prefix share cached textures and checkpoints.

The :meth:`manifest` is the sequence's persistent record: configuration
fingerprint, ``dt``, policy token and the per-frame chain/texture/state
digests known so far.  Written next to the disk cache, it lets a fresh
process (or an operator) see exactly which frames and checkpoints a
sequence has materialised without touching the field data.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Callable, Dict, List, Optional

from repro.advection.lifecycle import LifeCyclePolicy
from repro.core.config import SpotNoiseConfig
from repro.errors import AnimationServiceError
from repro.fields.io import field_digest
from repro.fields.vectorfield import VectorField2D
from repro.service.keys import SequenceKey, chain_digest, policy_token
from repro.utils.fileio import atomic_write

FieldSource = Callable[[int], VectorField2D]


class FrameSequence:
    """Content-addressed identity of one animation sequence.

    Parameters
    ----------
    field_source:
        ``frame -> VectorField2D``; must be immutable per frame (the
        chain digests are memoised, so a source that rewrites a frame
        would silently keep its old identity — mirror of the
        ``memoize_digests`` contract in :class:`TextureService`).
    config:
        Synthesis configuration (must be seeded).
    dt:
        Advection step; part of the identity because it changes every
        advected position.
    policy:
        Life-cycle policy; tokenised into the identity because lifetime,
        fading and position mode change every frame after the first.
    length:
        Optional known sequence length, used for range validation.
    """

    def __init__(
        self,
        field_source: FieldSource,
        config: SpotNoiseConfig,
        dt: float,
        policy: Optional[LifeCyclePolicy] = None,
        length: Optional[int] = None,
    ):
        if config.seed is None:
            raise AnimationServiceError(
                "sequence identity requires a deterministic config: set "
                "SpotNoiseConfig.seed to an integer (got seed=None)"
            )
        self.field_source = field_source
        self.config = config
        self.dt = float(dt)
        self.policy = policy or LifeCyclePolicy()
        self.length = length
        self._fingerprint = config.fingerprint()
        self._policy_token = policy_token(self.policy)
        self._chain: List[str] = []  # chain[t] covers fields 0..t
        self._lock = threading.Lock()

    # -- digests -----------------------------------------------------------------
    def check_frame(self, frame: int) -> None:
        if frame < 0:
            raise AnimationServiceError(f"frame must be >= 0, got {frame}")
        if self.length is not None and frame >= self.length:
            raise AnimationServiceError(
                f"frame {frame} outside the sequence [0, {self.length})"
            )

    def chain(self, frame: int) -> str:
        """The rolling field digest covering frames ``0..frame``.

        Extends the memoised chain on demand; computing ``chain(t)`` the
        first time loads and hashes every not-yet-seen field up to *t*.
        """
        self.check_frame(frame)
        with self._lock:
            while len(self._chain) <= frame:
                t = len(self._chain)
                previous = self._chain[t - 1] if t else None
                self._chain.append(
                    chain_digest(previous, field_digest(self.field_source(t)))
                )
            return self._chain[frame]

    def known_frames(self) -> int:
        """How many frames have memoised chain digests."""
        with self._lock:
            return len(self._chain)

    def frame_key(self, frame: int) -> SequenceKey:
        """The full content-addressed identity of *frame*."""
        return SequenceKey(
            field_chain=self.chain(frame),
            config_fingerprint=self._fingerprint,
            frame=frame,
            dt=self.dt,
            policy_token=self._policy_token,
        )

    def frame_digest(self, frame: int) -> str:
        """Texture digest of *frame* (cache address)."""
        return self.frame_key(frame).digest

    def checkpoint_digest(self, boundary: int) -> str:
        """State digest of the checkpoint *before* frame *boundary*.

        A checkpoint at boundary ``b`` is the pipeline state after frame
        ``b-1`` — what a resumed render needs to produce frame ``b``.
        ``b`` must be >= 1 (the state before frame 0 is just the seeded
        pipeline, which any process can rebuild from the config).
        """
        if boundary < 1:
            raise AnimationServiceError(
                f"checkpoint boundary must be >= 1, got {boundary}"
            )
        return self.frame_key(boundary - 1).state_digest

    # -- the manifest ------------------------------------------------------------
    def manifest(
        self,
        cached_frames: Optional[Dict[int, str]] = None,
        checkpoints: Optional[List[int]] = None,
        delta: Optional[dict] = None,
    ) -> dict:
        """The sequence's persistent record as a JSON-able dict.

        *delta*, when given, is an embedded
        :meth:`~repro.anim.delta.DeltaManifest.to_dict` payload — the
        frame table clients sync by digest instead of re-requesting
        textures (absent when the service runs without delta transport).
        """
        with self._lock:
            chains = list(self._chain)
        known = len(chains)
        record = {
            "kind": "repro.anim.sequence-manifest",
            "version": 1,
            "config_fingerprint": self._fingerprint,
            "dt": self.dt,
            "policy": self._policy_token,
            "length": self.length,
            "known_frames": known,
            "chain": chains,
            "cached_frames": dict(sorted((cached_frames or {}).items())),
            "checkpoints": sorted(checkpoints or []),
        }
        if delta is not None:
            record["delta"] = delta
        return record

    def write_manifest(self, directory: "str | os.PathLike", **kwargs) -> str:
        """Atomically write the manifest JSON next to a disk cache."""
        os.makedirs(directory, exist_ok=True)
        name = f"sequence-{self._fingerprint[:12]}-{self._policy_token.replace('|', '_')}.json"
        path = os.path.join(os.fspath(directory), name)
        payload = json.dumps(self.manifest(**kwargs), indent=2, sort_keys=True)
        atomic_write(path, lambda fh: fh.write(payload.encode("utf-8")))
        return path
