"""Blend operators for combining rasters.

Spot noise is defined by *additive* blending (the sum in
``f(x) = sum a_i h(x - x_i)``), which is what the graphics pipes use while
scan-converting spots and what the gather step uses to combine partial
textures.  ``over`` and ``max`` are provided for the overlay compositor
(figure 6 drapes the pollutant colour over the flow texture).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import RasterError


def _check_pair(a: np.ndarray, b: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise RasterError(f"blend operands must have equal shape, got {a.shape} vs {b.shape}")
    return a, b


def blend_add(dst: np.ndarray, src: np.ndarray) -> np.ndarray:
    """Additive blend — the spot noise accumulation operator."""
    a, b = _check_pair(dst, src)
    return a + b


def blend_max(dst: np.ndarray, src: np.ndarray) -> np.ndarray:
    """Per-pixel maximum (useful for mask composition)."""
    a, b = _check_pair(dst, src)
    return np.maximum(a, b)


def blend_over(dst: np.ndarray, src: np.ndarray, alpha: np.ndarray) -> np.ndarray:
    """Alpha compositing: ``src * alpha + dst * (1 - alpha)``.

    *alpha* broadcasts against the operands and must lie in [0, 1].
    """
    a, b = _check_pair(dst, src)
    al = np.asarray(alpha, dtype=np.float64)
    if np.any(al < 0.0) or np.any(al > 1.0):
        raise RasterError("alpha values must lie in [0, 1]")
    return b * al + a * (1.0 - al)


BLEND_MODES: Dict[str, Callable[..., np.ndarray]] = {
    "add": blend_add,
    "max": blend_max,
    "over": blend_over,
}
