"""Texture objects (the spot profile images resident on a graphics pipe)."""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import RasterError

FilterMode = Literal["nearest", "bilinear"]


class Texture:
    """A small 2-D texture sampled by normalised coordinates ``(u, v)``.

    ``u`` and ``v`` are in ``[0, 1]``; samples outside are clamped to the
    border texel (matching ``GL_CLAMP_TO_EDGE``, the mode a spot texture
    needs so stretched quads do not wrap the profile).
    """

    def __init__(self, data: np.ndarray, filter: FilterMode = "bilinear"):
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < 1 or data.shape[1] < 1:
            raise RasterError(f"texture data must be 2-D and non-empty, got shape {data.shape}")
        if filter not in ("nearest", "bilinear"):
            raise RasterError(f"unknown filter mode {filter!r}")
        self.data = data
        self.filter: FilterMode = filter

    @property
    def shape(self) -> "tuple[int, int]":
        return self.data.shape  # type: ignore[return-value]

    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def sample(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Sample at normalised coordinates; arrays of any common shape."""
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        h, w = self.data.shape
        if self.filter == "nearest":
            ix = np.clip((u * w).astype(np.int64), 0, w - 1)
            iy = np.clip((v * h).astype(np.int64), 0, h - 1)
            return self.data[iy, ix]
        # Bilinear with clamp-to-edge: texel centres at (i + 0.5) / w.
        # minimum/maximum pairs are the cheap form of np.clip, and
        # truncation equals floor once the range is clamped non-negative.
        # NaN coordinates pass through the float clamp; the maximum(0)
        # below bounds their garbage int cast back to texel 0, so they
        # yield NaN output (not an IndexError), as np.clip used to.
        fx = np.minimum(np.maximum(u * w - 0.5, 0.0), w - 1.0)
        fy = np.minimum(np.maximum(v * h - 0.5, 0.0), h - 1.0)
        ix0 = np.maximum(fx.astype(np.int64), 0)
        iy0 = np.maximum(fy.astype(np.int64), 0)
        ix0 = np.minimum(ix0, w - 2) if w > 1 else np.zeros_like(ix0)
        iy0 = np.minimum(iy0, h - 2) if h > 1 else np.zeros_like(iy0)
        tx = fx - ix0
        ty = fy - iy0
        ix1 = np.minimum(ix0 + 1, w - 1)
        iy1 = np.minimum(iy0 + 1, h - 1)
        v00 = self.data[iy0, ix0]
        v01 = self.data[iy0, ix1]
        v10 = self.data[iy1, ix0]
        v11 = self.data[iy1, ix1]
        return (v00 * (1 - tx) + v01 * tx) * (1 - ty) + (v10 * (1 - tx) + v11 * tx) * ty

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Texture({self.shape[1]}x{self.shape[0]}, filter={self.filter!r})"
