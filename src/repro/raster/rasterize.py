"""Exact scanline rasterisation of textured quads.

Convex textured quads are split along the ``v0-v2`` diagonal into two
triangles; each triangle is rasterised with edge functions evaluated on
all pixel centres of its bounding box at once.  The shared diagonal uses
complementary inclusive/exclusive rules so no pixel is covered twice —
a requirement for the additive spot-noise blend to stay unbiased.

This path is exact but per-quad: it is the *reference oracle*.  The
production implementation of the same scanline semantics is
:mod:`repro.raster.batched`, which renders bit-identical pixels in
vectorised batches (selected via ``SpotNoiseConfig.raster_backend``);
the anti-aliased splatting alternative lives in
:mod:`repro.raster.splat`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import RasterError
from repro.raster.framebuffer import FrameBuffer
from repro.raster.texture import Texture


def _edge(ax, ay, bx, by, px, py):
    """Edge function: cross(b - a, p - a); > 0 left of the directed edge a->b."""
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


def rasterize_triangle(
    fb: FrameBuffer,
    verts: np.ndarray,
    uvs: np.ndarray,
    intensity: float,
    texture: Optional[Texture] = None,
    exclusive_edge: Optional[int] = None,
) -> int:
    """Rasterise one textured triangle into *fb*; returns pixels covered.

    Parameters
    ----------
    verts, uvs:
        ``(3, 2)`` world vertices and texture coordinates.
    intensity:
        Spot weight ``a_i`` multiplied into every covered pixel.
    texture:
        Spot profile texture; ``None`` renders flat intensity.
    exclusive_edge:
        Index (0, 1 or 2) of an edge tested strictly (``> 0``) instead of
        inclusively — used for the quad diagonal so two triangles sharing
        it never both cover a pixel centre lying exactly on it.  Edge ``k``
        runs from vertex ``k`` to vertex ``(k+1) % 3``.

    Winding is normalised internally, so both orientations rasterise.
    """
    v = np.asarray(verts, dtype=np.float64)
    t = np.asarray(uvs, dtype=np.float64)
    if v.shape != (3, 2) or t.shape != (3, 2):
        raise RasterError(f"triangle needs (3,2) verts and uvs, got {v.shape}, {t.shape}")
    if exclusive_edge is not None and exclusive_edge not in (0, 1, 2):
        raise RasterError(f"exclusive_edge must be 0, 1, 2 or None, got {exclusive_edge}")

    # Pixel-space vertices.
    pv = fb.world_to_pixel(v)
    area2 = _edge(pv[0, 0], pv[0, 1], pv[1, 0], pv[1, 1], pv[2, 0], pv[2, 1])
    if area2 == 0.0:
        return 0
    if area2 < 0.0:
        # Flip winding (swap v1, v2) so edge functions are non-negative
        # inside.  Edge k (vk -> vk+1) becomes edge 2-k reversed; reversal
        # does not move the zero set, so the strict rule transfers to 2-k.
        pv = pv[[0, 2, 1]]
        t = t[[0, 2, 1]]
        area2 = -area2
        if exclusive_edge is not None:
            exclusive_edge = 2 - exclusive_edge

    ix0 = max(0, int(np.floor(pv[:, 0].min())))
    ix1 = min(fb.width, int(np.ceil(pv[:, 0].max())))
    iy0 = max(0, int(np.floor(pv[:, 1].min())))
    iy1 = min(fb.height, int(np.ceil(pv[:, 1].max())))
    if ix0 >= ix1 or iy0 >= iy1:
        return 0

    px = np.arange(ix0, ix1) + 0.5
    py = np.arange(iy0, iy1) + 0.5
    PX, PY = np.meshgrid(px, py)

    edges = [
        _edge(pv[0, 0], pv[0, 1], pv[1, 0], pv[1, 1], PX, PY),
        _edge(pv[1, 0], pv[1, 1], pv[2, 0], pv[2, 1], PX, PY),
        _edge(pv[2, 0], pv[2, 1], pv[0, 0], pv[0, 1], PX, PY),
    ]
    inside = np.ones(PX.shape, dtype=bool)
    for k, e in enumerate(edges):
        inside &= (e > 0.0) if k == exclusive_edge else (e >= 0.0)
    count = int(inside.sum())
    if count == 0:
        return 0

    if texture is None:
        fb.data[iy0:iy1, ix0:ix1][inside] += intensity
        return count

    # Barycentric interpolation of uv: the weight of vertex k is the edge
    # function of the edge opposite to k, normalised by twice the area.
    w0 = edges[1][inside] / area2
    w1 = edges[2][inside] / area2
    w2 = edges[0][inside] / area2
    u = w0 * t[0, 0] + w1 * t[1, 0] + w2 * t[2, 0]
    vv = w0 * t[0, 1] + w1 * t[1, 1] + w2 * t[2, 1]
    fb.data[iy0:iy1, ix0:ix1][inside] += intensity * texture.sample(u, vv)
    return count


def rasterize_quads_exact(
    fb: FrameBuffer,
    quads: np.ndarray,
    uvs: np.ndarray,
    intensities: np.ndarray,
    texture: Optional[Texture] = None,
) -> int:
    """Rasterise a batch of textured quads; returns total pixels covered.

    Each quad is split along its ``v0-v2`` diagonal.  For the first
    triangle the diagonal (its edge 2: ``v2 -> v0``) is inclusive; for the
    second (corner order ``v2, v3, v0``, diagonal = its edge 2:
    ``v0 -> v2``) it is strict.  The two edge functions are exact negatives
    of each other, so every pixel centre on the diagonal is covered exactly
    once.

    Parameters
    ----------
    quads, uvs:
        ``(N, 4, 2)`` world vertices and texture coordinates (counter-
        clockwise corner order; both windings accepted).
    intensities:
        ``(N,)`` spot weights.
    """
    q = np.asarray(quads, dtype=np.float64)
    t = np.asarray(uvs, dtype=np.float64)
    a = np.asarray(intensities, dtype=np.float64)
    if q.ndim != 3 or q.shape[1:] != (4, 2):
        raise RasterError(f"quads must be (N, 4, 2), got {q.shape}")
    if t.shape != q.shape:
        raise RasterError(f"uvs must match quads shape {q.shape}, got {t.shape}")
    if a.shape != (q.shape[0],):
        raise RasterError(f"intensities must be ({q.shape[0]},), got {a.shape}")

    covered = 0
    tri1 = (0, 1, 2)
    tri2 = (2, 3, 0)
    for n in range(q.shape[0]):
        covered += rasterize_triangle(
            fb, q[n, tri1], t[n, tri1], float(a[n]), texture, exclusive_edge=None
        )
        covered += rasterize_triangle(
            fb, q[n, tri2], t[n, tri2], float(a[n]), texture, exclusive_edge=2
        )
    return covered
