"""Accumulation frame buffer.

A :class:`FrameBuffer` is a 2-D float intensity raster with a world-space
window.  Row 0 is the *bottom* row (mathematical orientation, matching
the fields' y-up convention); the PGM/PPM writers flip for display.

The divide-and-conquer runtime gives each graphics pipe its own frame
buffer (possibly covering only a tile of the final texture) and composes
them afterwards; :meth:`paste_from` / :meth:`add_from` implement that
gather step.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import RasterError

Rect = Tuple[int, int, int, int]  # (ix0, ix1, iy0, iy1), half-open pixel ranges


class FrameBuffer:
    """Float64 intensity raster over a world window.

    Parameters
    ----------
    width, height:
        Raster size in pixels (the paper's final texture is 512x512).
    window:
        ``(x0, x1, y0, y1)`` world rectangle covered by the raster.
    """

    def __init__(self, width: int, height: int, window: Tuple[float, float, float, float]):
        if width < 1 or height < 1:
            raise RasterError(f"frame buffer must be at least 1x1, got {width}x{height}")
        x0, x1, y0, y1 = (float(v) for v in window)
        if not (x1 > x0 and y1 > y0):
            raise RasterError(f"degenerate window {window}")
        self.width = int(width)
        self.height = int(height)
        self.window = (x0, x1, y0, y1)
        self.data = np.zeros((height, width), dtype=np.float64)

    # -- geometry ------------------------------------------------------------
    @property
    def pixel_size(self) -> Tuple[float, float]:
        x0, x1, y0, y1 = self.window
        return ((x1 - x0) / self.width, (y1 - y0) / self.height)

    def world_to_pixel(self, points: np.ndarray) -> np.ndarray:
        """Continuous pixel coordinates; pixel (i, j) has centre (i+0.5, j+0.5).

        Returns ``(N, 2)`` with column 0 = x-pixel, column 1 = y-pixel.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts[None, :]
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise RasterError(f"points must be (N, 2), got {pts.shape}")
        x0, x1, y0, y1 = self.window
        out = np.empty_like(pts)
        out[:, 0] = (pts[:, 0] - x0) / (x1 - x0) * self.width
        out[:, 1] = (pts[:, 1] - y0) / (y1 - y0) * self.height
        return out

    def pixel_to_world(self, px: np.ndarray, py: np.ndarray) -> np.ndarray:
        x0, x1, y0, y1 = self.window
        px = np.asarray(px, dtype=np.float64)
        py = np.asarray(py, dtype=np.float64)
        return np.stack(
            [x0 + px / self.width * (x1 - x0), y0 + py / self.height * (y1 - y0)], axis=-1
        )

    def pixel_centers(self) -> "tuple[np.ndarray, np.ndarray]":
        """World coordinates of all pixel centres, two (H, W) arrays."""
        x0, x1, y0, y1 = self.window
        xs = x0 + (np.arange(self.width) + 0.5) / self.width * (x1 - x0)
        ys = y0 + (np.arange(self.height) + 0.5) / self.height * (y1 - y0)
        return np.meshgrid(xs, ys)

    # -- pixel-rect plumbing for tiling ---------------------------------------
    def clip_rect(self, rect: Rect) -> Rect:
        ix0, ix1, iy0, iy1 = rect
        return (
            max(0, min(self.width, ix0)),
            max(0, min(self.width, ix1)),
            max(0, min(self.height, iy0)),
            max(0, min(self.height, iy1)),
        )

    def view(self, rect: Rect) -> np.ndarray:
        """Writable view of a pixel rect (half-open ranges)."""
        ix0, ix1, iy0, iy1 = self.clip_rect(rect)
        return self.data[iy0:iy1, ix0:ix1]

    def paste_from(self, other: "FrameBuffer", dest_rect: Rect, src_rect: Rect) -> None:
        """Copy *src_rect* of *other* over *dest_rect* of self (same size)."""
        dst = self.view(dest_rect)
        ix0, ix1, iy0, iy1 = other.clip_rect(src_rect)
        src = other.data[iy0:iy1, ix0:ix1]
        if dst.shape != src.shape:
            raise RasterError(f"paste shape mismatch: dest {dst.shape} vs src {src.shape}")
        dst[...] = src

    def add_from(self, other: "FrameBuffer", dest_rect: Rect, src_rect: Rect) -> None:
        """Accumulate *src_rect* of *other* into *dest_rect* of self."""
        dst = self.view(dest_rect)
        ix0, ix1, iy0, iy1 = other.clip_rect(src_rect)
        src = other.data[iy0:iy1, ix0:ix1]
        if dst.shape != src.shape:
            raise RasterError(f"blend shape mismatch: dest {dst.shape} vs src {src.shape}")
        dst += src

    # -- content -------------------------------------------------------------
    def clear(self) -> None:
        self.data[...] = 0.0

    def total(self) -> float:
        """Sum of all pixel intensities (conservation checks in tests)."""
        return float(self.data.sum())

    def copy(self) -> "FrameBuffer":
        fb = FrameBuffer(self.width, self.height, self.window)
        fb.data[...] = self.data
        return fb

    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FrameBuffer({self.width}x{self.height}, window={self.window})"
