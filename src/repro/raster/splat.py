"""Vectorised sample-and-splat rendering for huge quad batches.

The bent-spot workloads of the paper push ~1.3-1.9 *million* textured
quadrilaterals per texture through each graphics pipe.  A per-quad Python
loop cannot sustain that, so this renderer trades exact coverage for full
vectorisation:

1. every quad is sampled on an ``s x s`` parametric lattice (bilinear
   patch interpolation of corners and texture coordinates, all quads at
   once);
2. each sample deposits ``intensity * tex(u, v) * area_px / s^2`` into the
   frame buffer with a bilinear (2x2 pixel) footprint.

The per-quad deposit therefore matches the exact rasteriser's total
(``intensity * covered-pixel-area``) while individual pixels receive an
anti-aliased estimate; for the sub-pixel to few-pixel quads of bent-spot
meshes the two renderers agree closely (tested in
``tests/raster/test_splat.py``).  Quads are processed in bounded-memory
chunks, and deposits use ``np.bincount`` — the fastest scatter-add
available in pure numpy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import RasterError
from repro.raster.framebuffer import FrameBuffer
from repro.raster.texture import Texture

#: Default quad-chunk size; keeps peak scratch memory around tens of MB.
_CHUNK = 1 << 18


def splat_points(fb: FrameBuffer, points: np.ndarray, values: np.ndarray) -> int:
    """Deposit *values* at world *points* with a bilinear 2x2 footprint.

    Returns the number of points that landed (at least partially) inside
    the frame buffer.  Conservation: the sum of deposited intensity equals
    the sum of the values of interior points (boundary points lose the
    share that falls off the raster).
    """
    pts = np.asarray(points, dtype=np.float64)
    val = np.asarray(values, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise RasterError(f"points must be (N, 2), got {pts.shape}")
    if val.shape != (pts.shape[0],):
        raise RasterError(f"values must be ({pts.shape[0]},), got {val.shape}")
    if pts.shape[0] == 0:
        return 0

    w, h = fb.width, fb.height
    pp = fb.world_to_pixel(pts)
    # Centre-relative continuous coordinates: pixel (i, j) centre is at
    # (i + 0.5, j + 0.5); fx in [i, i+1) means the point sits between the
    # centres of pixels i and i+1.
    fx = pp[:, 0] - 0.5
    fy = pp[:, 1] - 0.5

    ix0 = np.floor(fx).astype(np.int64)
    iy0 = np.floor(fy).astype(np.int64)
    tx = fx - ix0
    ty = fy - iy0

    landed = np.zeros(pts.shape[0], dtype=bool)
    flat = np.zeros(h * w, dtype=np.float64)
    for dx, dy, wgt in (
        (0, 0, (1 - tx) * (1 - ty)),
        (1, 0, tx * (1 - ty)),
        (0, 1, (1 - tx) * ty),
        (1, 1, tx * ty),
    ):
        ix = ix0 + dx
        iy = iy0 + dy
        ok = (ix >= 0) & (ix < w) & (iy >= 0) & (iy < h) & (wgt != 0.0)
        landed |= ok
        if not ok.any():
            continue
        idx = iy[ok] * w + ix[ok]
        flat += np.bincount(idx, weights=val[ok] * wgt[ok], minlength=h * w)
    fb.data += flat.reshape(h, w)
    return int(landed.sum())


def _pixel_areas(fb: FrameBuffer, quads: np.ndarray) -> np.ndarray:
    """Absolute quad areas in pixel units (shoelace), ``(N, 4, 2) -> (N,)``."""
    pv = fb.world_to_pixel(quads.reshape(-1, 2)).reshape(quads.shape)
    x = pv[..., 0]
    y = pv[..., 1]
    xn = np.roll(x, -1, axis=1)
    yn = np.roll(y, -1, axis=1)
    return np.abs(0.5 * np.sum(x * yn - xn * y, axis=1))


#: Largest adaptive sampling lattice per quad edge (64*64 samples max).
_MAX_SAMPLES_PER_EDGE = 64


def _render_bucket(
    fb: FrameBuffer,
    q: np.ndarray,
    t: np.ndarray,
    a: np.ndarray,
    area_px: np.ndarray,
    texture: Optional[Texture],
    s: int,
    chunk: int,
) -> int:
    """Render one same-sampling-density bucket of quads."""
    # Parametric sample lattice, cell-centred: (i + 0.5) / s.
    c = (np.arange(s) + 0.5) / s
    S, T = np.meshgrid(c, c)
    w00 = ((1 - S) * (1 - T)).ravel()  # corner 0 weight, shape (s*s,)
    w10 = (S * (1 - T)).ravel()
    w11 = (S * T).ravel()
    w01 = ((1 - S) * T).ravel()

    # Keep per-chunk sample count bounded regardless of s.
    quads_per_chunk = max(1, chunk // (s * s))
    landed = 0
    for lo in range(0, q.shape[0], quads_per_chunk):
        hi = min(lo + quads_per_chunk, q.shape[0])
        qc = q[lo:hi]
        tc = t[lo:hi]
        n = hi - lo

        # (n, s*s, 2) sample positions and uvs via the bilinear patch map.
        pos = (
            qc[:, None, 0, :] * w00[None, :, None]
            + qc[:, None, 1, :] * w10[None, :, None]
            + qc[:, None, 2, :] * w11[None, :, None]
            + qc[:, None, 3, :] * w01[None, :, None]
        )
        uv = (
            tc[:, None, 0, :] * w00[None, :, None]
            + tc[:, None, 1, :] * w10[None, :, None]
            + tc[:, None, 2, :] * w11[None, :, None]
            + tc[:, None, 3, :] * w01[None, :, None]
        )

        per_sample = a[lo:hi] * area_px[lo:hi] / (s * s)  # (n,)
        if texture is None:
            values = np.broadcast_to(per_sample[:, None], (n, s * s)).ravel()
        else:
            weights = texture.sample(uv[..., 0], uv[..., 1])
            values = (per_sample[:, None] * weights).ravel()

        landed += splat_points(fb, pos.reshape(-1, 2), values)
    return landed


def rasterize_quads_sampled(
    fb: FrameBuffer,
    quads: np.ndarray,
    uvs: np.ndarray,
    intensities: np.ndarray,
    texture: Optional[Texture] = None,
    samples_per_edge: int = 2,
    chunk: int = _CHUNK,
) -> int:
    """Render textured quads by parametric sampling; returns samples landed.

    Sampling density adapts per quad: the lattice is at least
    *samples_per_edge* wide and grows (in power-of-two buckets, capped at
    64) until samples are spaced about one pixel apart along the quad's
    longest edge, so both the sub-pixel quads of bent meshes and the
    tens-of-pixels quads of standard spots are rendered faithfully.

    Parameters
    ----------
    quads, uvs:
        ``(N, 4, 2)`` corner positions / texture coordinates, corner k at
        parametric ``(s, t)`` = (0,0), (1,0), (1,1), (0,1).
    intensities:
        ``(N,)`` spot weights.
    samples_per_edge:
        Minimum lattice resolution.
    chunk:
        Sample budget per internal batch (bounds scratch memory).
    """
    q = np.asarray(quads, dtype=np.float64)
    t = np.asarray(uvs, dtype=np.float64)
    a = np.asarray(intensities, dtype=np.float64)
    if q.ndim != 3 or q.shape[1:] != (4, 2):
        raise RasterError(f"quads must be (N, 4, 2), got {q.shape}")
    if t.shape != q.shape:
        raise RasterError(f"uvs must match quads shape {q.shape}, got {t.shape}")
    if a.shape != (q.shape[0],):
        raise RasterError(f"intensities must be ({q.shape[0]},), got {a.shape}")
    if samples_per_edge < 1:
        raise RasterError(f"samples_per_edge must be >= 1, got {samples_per_edge}")
    if chunk < 1:
        raise RasterError(f"chunk must be >= 1, got {chunk}")
    if q.shape[0] == 0:
        return 0

    # Drop non-finite quads outright (corrupted particle positions must
    # degrade gracefully, not poison the whole deposit with NaNs).
    finite = np.isfinite(q).all(axis=(1, 2)) & np.isfinite(a)
    if not finite.all():
        q, t, a = q[finite], t[finite], a[finite]
        if q.shape[0] == 0:
            return 0

    area_px = _pixel_areas(fb, q)

    # Longest edge of each quad in pixels decides its sampling bucket.
    pv = fb.world_to_pixel(q.reshape(-1, 2)).reshape(q.shape)
    edges = np.linalg.norm(np.roll(pv, -1, axis=1) - pv, axis=2)  # (N, 4)
    longest = edges.max(axis=1)
    needed = np.maximum(np.ceil(longest), samples_per_edge)
    needed = np.clip(needed, samples_per_edge, _MAX_SAMPLES_PER_EDGE)
    # Power-of-two buckets keep the number of distinct lattices small.
    buckets = (2 ** np.ceil(np.log2(needed))).astype(np.int64)
    buckets = np.minimum(buckets, _MAX_SAMPLES_PER_EDGE)

    landed = 0
    for s in np.unique(buckets):
        sel = buckets == s
        landed += _render_bucket(
            fb, q[sel], t[sel], a[sel], area_px[sel], texture, int(s), chunk
        )
    return landed
