"""Quad bounding boxes and conservative rect clipping.

The texture-tiling tradeoff of section 3 assigns each spot "to each
process group it might affect": a conservative bounding-box-vs-tile-rect
test.  These helpers implement that test on batches of quads.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RasterError


def quad_bboxes(quads: np.ndarray) -> np.ndarray:
    """Axis-aligned bounds of each quad: ``(N, 4, 2) -> (N, 4)`` as (x0, x1, y0, y1)."""
    q = np.asarray(quads, dtype=np.float64)
    if q.ndim != 3 or q.shape[1:] != (4, 2):
        raise RasterError(f"quads must be (N, 4, 2), got {q.shape}")
    out = np.empty((q.shape[0], 4), dtype=np.float64)
    out[:, 0] = q[..., 0].min(axis=1)
    out[:, 1] = q[..., 0].max(axis=1)
    out[:, 2] = q[..., 1].min(axis=1)
    out[:, 3] = q[..., 1].max(axis=1)
    return out


def clip_quads_to_rect(quads: np.ndarray, rect: "tuple[float, float, float, float]") -> np.ndarray:
    """Boolean mask of quads whose bbox intersects the world rect.

    This is a *conservative* test (a bbox may intersect while the quad does
    not); exactly the over-assignment the paper accepts as the cost of easy
    tile composition.
    """
    x0, x1, y0, y1 = rect
    if not (x1 > x0 and y1 > y0):
        raise RasterError(f"degenerate rect {rect}")
    bb = quad_bboxes(quads)
    return (bb[:, 1] >= x0) & (bb[:, 0] <= x1) & (bb[:, 3] >= y0) & (bb[:, 2] <= y1)


def points_in_rect(points: np.ndarray, rect: "tuple[float, float, float, float]", margin: float = 0.0) -> np.ndarray:
    """Mask of points inside a rect expanded by *margin* on all sides.

    Used for spot-to-tile assignment: a spot with extent *margin* can affect
    a tile if its centre lies within the expanded rect.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise RasterError(f"points must be (N, 2), got {pts.shape}")
    if margin < 0:
        raise RasterError(f"margin must be >= 0, got {margin}")
    x0, x1, y0, y1 = rect
    return (
        (pts[:, 0] >= x0 - margin)
        & (pts[:, 0] <= x1 + margin)
        & (pts[:, 1] >= y0 - margin)
        & (pts[:, 1] <= y1 + margin)
    )
