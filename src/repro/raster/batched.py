"""Batched vectorised scanline rasterisation of textured quads.

:func:`rasterize_quads_batched` produces the *same pixels* as the
reference per-quad loop in :mod:`repro.raster.rasterize` but processes
the whole quad batch in a handful of numpy passes:

1. per-quad triangle windings (the reference flips ``v1``/``v2`` of a
   negatively wound triangle) are resolved in bulk from the two signed
   areas, giving each quad one of four winding combinations;
2. quads are bucketed by winding combination and bounding-box size, so
   each bucket evaluates its edge functions over one exactly-sized,
   flattened pixel-centre grid covering the whole quad — both triangles
   of a quad share that grid, and the diagonal edge is evaluated once
   where the winding lets the two triangles share it.  Each edge
   function is separable in x and y, so the full-grid work per edge is
   one gather and one subtraction on contiguous arrays;
3. texture coordinates are interpolated barycentrically at the covered
   pixel centres and the spot profile is sampled for all of them at once;
4. the deposits (tagged with their triangle's position in the reference
   emission order) are stable-sorted back into that order and
   scatter-added into the frame buffer with a single ``np.bincount`` (the
   fast form of ``np.add.at``).

Bit equivalence with the reference renderer is maintained deliberately,
not approximately: every floating-point operation (edge functions,
winding flip, barycentric weights, texture sampling, intensity multiply)
uses the same operands in the same order as
:func:`repro.raster.rasterize.rasterize_triangle`, the inclusive /
exclusive shared-diagonal rule survives winding flips (the strict edge
moves from the diagonal's index 2 to index 0, exactly as the reference
remaps it), and the ordered ``bincount`` reproduces the reference's
per-pixel accumulation order.  Into a cleared frame buffer the result is
therefore *bitwise identical* (asserted by
``tests/raster/test_batched.py``); when accumulating onto non-zero
pixels the two paths may differ in the last rounding only, because the
reference rounds after every triangle while the batch sums its deposits
first.

Degenerate (zero-area) triangles cover nothing in both paths.  Non-finite
vertices make the reference path fail; the batched path drops such quads,
the graceful-degradation behaviour the splat renderer already has.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import RasterError
from repro.raster.framebuffer import FrameBuffer
from repro.raster.texture import Texture

#: Grid-pixel budget per internal pass; bounds scratch memory to a few
#: tens of MB regardless of batch size.
_CHUNK_PX = 1 << 20

#: Bounding boxes are clipped to this pixel range before integer
#: conversion so absurd (finite) coordinates cannot overflow int64.
_COORD_LIMIT = float(1 << 40)

#: Bounding-box dimensions up to this many pixels get their own bucket
#: (an exactly-sized grid); larger ones share power-of-two buckets.
_EXACT_DIM = 8

# The reference splits each quad along the v0-v2 diagonal into triangles
# (v0, v1, v2) and (v2, v3, v0), normalises each winding by swapping the
# triangle's second and third vertices when its signed area is negative,
# and rasterises with edge k running from vertex k to vertex k+1 — the
# second triangle's diagonal (edge 2 unflipped, edge 0 after a flip)
# tested strictly.  Each spec below is that post-flip triangle, per
# winding combination ``flip1 * 2 + flip2``:
#   (edges as directed quad-corner pairs, strict edge position or -1,
#    uv corner order, area index)
_TRI1_UNFLIPPED = (((0, 1), (1, 2), (2, 0)), -1, (0, 1, 2), 0)
_TRI1_FLIPPED = (((0, 2), (2, 1), (1, 0)), -1, (0, 2, 1), 0)
_TRI2_UNFLIPPED = (((2, 3), (3, 0), (0, 2)), 2, (2, 3, 0), 1)
_TRI2_FLIPPED = (((2, 0), (0, 3), (3, 2)), 0, (2, 0, 3), 1)
_COMBO_SPECS = (
    (_TRI1_UNFLIPPED, _TRI2_UNFLIPPED),
    (_TRI1_UNFLIPPED, _TRI2_FLIPPED),
    (_TRI1_FLIPPED, _TRI2_UNFLIPPED),
    (_TRI1_FLIPPED, _TRI2_FLIPPED),
)


def _dim_bucket_index(d: np.ndarray) -> np.ndarray:
    """Bucket index of a grid dimension: exact up to ``_EXACT_DIM``, pow2 above."""
    out = d.copy()
    big = d > _EXACT_DIM
    if big.any():
        out[big] = _EXACT_DIM + np.ceil(np.log2(d[big])).astype(np.int64) - 3
    return out


def _bucket_dim(index: int) -> int:
    """Inverse of :func:`_dim_bucket_index` for a single bucket."""
    return index if index <= _EXACT_DIM else 1 << (index - _EXACT_DIM + 3)


def _min4(c: np.ndarray) -> np.ndarray:
    return np.minimum(np.minimum(c[0], c[1]), np.minimum(c[2], c[3]))


def _max4(c: np.ndarray) -> np.ndarray:
    return np.maximum(np.maximum(c[0], c[1]), np.maximum(c[2], c[3]))


def rasterize_quads_batched(
    fb: FrameBuffer,
    quads: np.ndarray,
    uvs: np.ndarray,
    intensities: np.ndarray,
    texture: Optional[Texture] = None,
    chunk_px: int = _CHUNK_PX,
) -> int:
    """Rasterise a batch of textured quads; returns total pixels covered.

    Drop-in replacement for
    :func:`repro.raster.rasterize.rasterize_quads_exact` — same signature,
    same pixels (see the module docstring for the equivalence guarantee) —
    selected through ``SpotNoiseConfig.raster_backend``.

    Parameters
    ----------
    quads, uvs:
        ``(N, 4, 2)`` world vertices and texture coordinates.
    intensities:
        ``(N,)`` spot weights.
    chunk_px:
        Grid-pixel budget per internal pass (bounds scratch memory).
    """
    q = np.asarray(quads, dtype=np.float64)
    t = np.asarray(uvs, dtype=np.float64)
    a = np.asarray(intensities, dtype=np.float64)
    if q.ndim != 3 or q.shape[1:] != (4, 2):
        raise RasterError(f"quads must be (N, 4, 2), got {q.shape}")
    if t.shape != q.shape:
        raise RasterError(f"uvs must match quads shape {q.shape}, got {t.shape}")
    if a.shape != (q.shape[0],):
        raise RasterError(f"intensities must be ({q.shape[0]},), got {a.shape}")
    if chunk_px < 1:
        raise RasterError(f"chunk_px must be >= 1, got {chunk_px}")
    n = q.shape[0]
    if n == 0:
        return 0

    fbw, fbh = fb.width, fb.height
    wx0, wx1, wy0, wy1 = fb.window
    # World -> continuous pixel coordinates in corner-major layout
    # (contiguous per corner): the same arithmetic, in the same order, as
    # FrameBuffer.world_to_pixel.  One (8, n) matrix — rows 0-3 the
    # corner x coordinates, rows 4-7 the y — so the bucketing permutation
    # later is a single gather.
    P = np.empty((8, n), dtype=np.float64)
    np.subtract(q[:, :, 0].T, wx0, out=P[0:4])
    P[0:4] /= (wx1 - wx0)
    P[0:4] *= fbw
    np.subtract(q[:, :, 1].T, wy0, out=P[4:8])
    P[4:8] /= (wy1 - wy0)
    P[4:8] *= fbh
    gx = P[0:4]
    gy = P[4:8]

    # Signed double areas of both triangles, exactly as the reference
    # computes them; their signs give the quad's winding combination.
    # Non-finite vertices turn areas NaN/inf without warning spam — the
    # validity filter below drops those quads deliberately.
    with np.errstate(invalid="ignore"):
        a1 = (gx[1] - gx[0]) * (gy[2] - gy[0]) - (gy[1] - gy[0]) * (gx[2] - gx[0])
        a2 = (gx[3] - gx[2]) * (gy[0] - gy[2]) - (gy[3] - gy[2]) * (gx[0] - gx[2])
    flip1 = a1 < 0.0
    flip2 = a2 < 0.0
    area1 = np.where(flip1, -a1, a1)
    area2 = np.where(flip2, -a2, a2)

    # Clipped integer bounding boxes of the whole quad (a superset of
    # both triangles' reference boxes; pixels outside a triangle's own
    # box fail its edge tests, so sharing the quad grid changes nothing).
    # maximum(0, ...) lets truncation stand in for floor: they differ
    # only on negative inputs, where both clamp to 0.  The ±_COORD_LIMIT
    # clamp keeps the int64 conversion defined for absurd coordinates;
    # NaN boxes cast to garbage but their quads are dropped below (NaN
    # areas fail valid1 | valid2), so only the cast warning is silenced.
    xmax = np.minimum(_max4(gx), _COORD_LIMIT)
    ymax = np.minimum(_max4(gy), _COORD_LIMIT)
    with np.errstate(invalid="ignore"):
        ix0 = np.maximum(0, np.maximum(_min4(gx), -_COORD_LIMIT).astype(np.int64))
        iy0 = np.maximum(0, np.maximum(_min4(gy), -_COORD_LIMIT).astype(np.int64))
        ix1 = np.minimum(fbw, np.ceil(xmax).astype(np.int64))
        iy1 = np.minimum(fbh, np.ceil(ymax).astype(np.int64))

    # Zero-area triangles are skipped per triangle (the reference skips
    # them individually, which matters for sliver quads), but any
    # non-finite vertex poisons the *whole quad*: the two triangles
    # share corners, a non-finite corner always surfaces as a NaN or
    # infinite area, and an infinite area would otherwise slip past
    # ``> 0`` and turn barycentric weights into NaN downstream.
    finite = np.isfinite(area1) & np.isfinite(area2)
    valid1 = (area1 > 0.0) & finite
    valid2 = (area2 > 0.0) & finite
    keep = (ix0 < ix1) & (iy0 < iy1) & (valid1 | valid2)
    areas = (area1, area2)           # original quad order, gathered lazily
    valid = (valid1, valid2)
    any_invalid = not (valid1.all() and valid2.all())

    bw = ix1 - ix0
    bh = iy1 - iy0
    # Bucket indices stay below 64 (pow2 buckets up to 2^40 pixels), so
    # the composite key fits int16 — numpy stable-sorts 16-bit integers
    # with a radix sort, making the bucketing pass O(n).
    combo = flip1.astype(np.int64) * 2 + flip2
    key = ((combo * 64 + _dim_bucket_index(bh)) * 64 + _dim_bucket_index(bw)).astype(
        np.int16
    )

    # One stable integer sort buckets the quads; dropped quads are
    # filtered out of the permutation rather than compressed separately.
    order = np.argsort(key, kind="stable")
    if not keep.all():
        order = order[keep[order]]
    m = order.shape[0]
    if m == 0:
        return 0

    # Two packed gathers put the per-quad data in bucket order; areas and
    # validity stay in original order and are gathered per deposit chunk.
    P = np.take(P, order, axis=1)
    gx = P[0:4]
    gy = P[4:8]
    I = np.empty((4, n), dtype=np.int32)
    I[0], I[1], I[2], I[3] = ix0, iy0, bw, bh
    I = np.take(I, order, axis=1)
    ix0, iy0, bw, bh = I[0], I[1], I[2], I[3]
    qidx = order  # original quad index, for uv / intensity / area gathers
    key = key[order]

    bounds = np.flatnonzero(np.diff(key)) + 1
    segments = np.concatenate([[0], bounds, [m]])

    covered = 0
    dep_gid: List[np.ndarray] = []
    dep_pix: List[np.ndarray] = []
    dep_val: List[np.ndarray] = []
    for s0, s1 in zip(segments[:-1], segments[1:]):
        k = int(key[s0])
        wc = _bucket_dim(k % 64)
        hc = _bucket_dim((k // 64) % 64)
        specs = _COMBO_SPECS[k // (64 * 64)]
        padded = wc > _EXACT_DIM or hc > _EXACT_DIM
        cell = hc * wc
        row_of = np.arange(cell) // wc
        col_of = np.arange(cell) - row_of * wc
        # (iy0+row)*fbw + (ix0+col) decomposes exactly into a per-quad
        # base plus a per-cell offset.
        pix_of = row_of * fbw + col_of
        step = max(1, chunk_px // cell)
        for c0 in range(int(s0), int(s1), step):
            c1 = min(c0 + step, int(s1))
            sl = slice(c0, c1)
            nc = c1 - c0

            pad_mask = None
            if padded:
                pad_mask = (row_of[:, None] < bh[None, sl]) & (
                    col_of[:, None] < bw[None, sl]
                )

            # Directed edge functions (bx-ax)*(py-ay) - (by-ay)*(px-ax)
            # at the grid's pixel centres, evaluated lazily and shared
            # between the two triangles where the winding allows.  The
            # edge function is separable in x and y, so it decomposes
            # into per-grid-row and per-grid-column terms; the arrays are
            # laid out cell-major, (cell, nc), keeping every operation a
            # contiguous 1-D pass over the chunk's quads.  (Deposit order
            # *within* a triangle is free — no pixel repeats inside one
            # triangle — so cell-major emission stays bit-equivalent.)
            # Pixel-centre coordinate values, hoisted per chunk (shared by
            # all edges); they match the reference's
            # ``np.arange(ix0, ix1) + 0.5`` exactly.
            pys = [(iy0[sl] + r) + 0.5 for r in range(hc)]
            pxs = [(ix0[sl] + c) + 0.5 for c in range(wc)]
            base = iy0[sl].astype(np.int64) * fbw + ix0[sl]
            edge_cache: Dict[Tuple[int, int], np.ndarray] = {}

            def edge(i: int, j: int) -> np.ndarray:
                e = edge_cache.get((i, j))
                if e is None:
                    exi, eyi = gx[i, sl], gy[i, sl]
                    dx = gx[j, sl] - exi
                    dy = gy[j, sl] - eyi
                    term_y = [dx * (py - eyi) for py in pys]
                    term_x = [dy * (px - exi) for px in pxs]
                    e = np.empty((cell, nc), dtype=np.float64)
                    for p in range(cell):
                        np.subtract(term_y[p // wc], term_x[p - (p // wc) * wc], out=e[p])
                    edge_cache[(i, j)] = e
                return e

            for tri_side, (pairs, strict_pos, uv_corners, area_row) in enumerate(specs):
                inside = None
                for pos, (i, j) in enumerate(pairs):
                    e = edge(i, j)
                    mask = e > 0.0 if pos == strict_pos else e >= 0.0
                    inside = mask if inside is None else (inside & mask)
                if pad_mask is not None:
                    inside &= pad_mask
                if any_invalid:
                    v_chunk = valid[area_row][qidx[sl]]
                    if not v_chunk.all():
                        inside &= v_chunk[None, :]

                idx = np.flatnonzero(inside)
                if idx.size == 0:
                    continue
                covered += int(idx.size)

                cellpos = idx // nc
                quad_l = idx - cellpos * nc
                quad_g = quad_l + c0

                quad = qidx[quad_g]
                tri_area = areas[area_row][quad]
                w0 = edge(*pairs[1]).ravel()[idx] / tri_area
                w1 = edge(*pairs[2]).ravel()[idx] / tri_area
                w2 = edge(*pairs[0]).ravel()[idx] / tri_area
                if texture is None:
                    val = a[quad]
                else:
                    u0, u1, u2 = uv_corners
                    u = w0 * t[quad, u0, 0] + w1 * t[quad, u1, 0] + w2 * t[quad, u2, 0]
                    vv = w0 * t[quad, u0, 1] + w1 * t[quad, u1, 1] + w2 * t[quad, u2, 1]
                    val = a[quad] * texture.sample(u, vv)

                dep_gid.append((2 * quad + tri_side).astype(np.int32))
                dep_pix.append(base[quad_l] + pix_of[cellpos])
                dep_val.append(val)

    if covered:
        g = dep_gid[0] if len(dep_gid) == 1 else np.concatenate(dep_gid)
        p = dep_pix[0] if len(dep_pix) == 1 else np.concatenate(dep_pix)
        v = dep_val[0] if len(dep_val) == 1 else np.concatenate(dep_val)
        # Restore the reference emission order (quad 0 triangle 1, quad 0
        # triangle 2, quad 1 triangle 1, ...), then one ordered
        # scatter-add: bincount accumulates per pixel in deposit order,
        # matching the reference's sequential accumulation exactly when
        # the frame buffer starts cleared.
        restore = np.argsort(g, kind="stable")
        fb.data += np.bincount(
            p[restore], weights=v[restore], minlength=fbh * fbw
        ).reshape(fbh, fbw)
    return covered
