"""Software scan conversion and blending.

This package stands in for the rasterisation stage of the InfiniteReality
pipes: textured quads go in, blended intensity rasters come out.  Two
rendering strategies are provided:

* :func:`rasterize_quads_exact` — per-quad scanline coverage with
  barycentric texture interpolation; exact, used for standard spots and
  as the reference in tests;
* :func:`rasterize_quads_sampled` — a fully vectorised sample-and-splat
  renderer that handles the paper's ~1.3-1.9 million bent-spot
  quadrilaterals per texture at numpy speed.

Both accumulate into a :class:`FrameBuffer` using the additive blend that
defines spot noise (``f(x) = sum a_i h(x - x_i)``).
"""

from repro.raster.framebuffer import FrameBuffer
from repro.raster.texture import Texture
from repro.raster.rasterize import rasterize_quads_exact, rasterize_triangle
from repro.raster.splat import rasterize_quads_sampled, splat_points
from repro.raster.blend import blend_add, blend_over, blend_max, BLEND_MODES
from repro.raster.clip import clip_quads_to_rect, quad_bboxes

__all__ = [
    "FrameBuffer",
    "Texture",
    "rasterize_quads_exact",
    "rasterize_triangle",
    "rasterize_quads_sampled",
    "splat_points",
    "blend_add",
    "blend_over",
    "blend_max",
    "BLEND_MODES",
    "clip_quads_to_rect",
    "quad_bboxes",
]
