"""Software scan conversion and blending.

This package stands in for the rasterisation stage of the InfiniteReality
pipes: textured quads go in, blended intensity rasters come out.  Three
rendering strategies are provided:

* :func:`rasterize_quads_exact` — per-quad scanline coverage with
  barycentric texture interpolation; exact, the reference oracle;
* :func:`rasterize_quads_batched` — the same scanline rasterisation,
  bit-identical pixels, but fully vectorised over the quad batch; the
  default implementation of the exact render mode
  (``SpotNoiseConfig.raster_backend``);
* :func:`rasterize_quads_sampled` — a vectorised sample-and-splat
  renderer that trades exact coverage for anti-aliased speed on the
  paper's ~1.3-1.9 million bent-spot quadrilaterals per texture.

All accumulate into a :class:`FrameBuffer` using the additive blend that
defines spot noise (``f(x) = sum a_i h(x - x_i)``).
"""

from repro.raster.framebuffer import FrameBuffer
from repro.raster.texture import Texture
from repro.raster.batched import rasterize_quads_batched
from repro.raster.rasterize import rasterize_quads_exact, rasterize_triangle
from repro.raster.splat import rasterize_quads_sampled, splat_points
from repro.raster.blend import blend_add, blend_over, blend_max, BLEND_MODES
from repro.raster.clip import clip_quads_to_rect, quad_bboxes

__all__ = [
    "FrameBuffer",
    "Texture",
    "rasterize_quads_batched",
    "rasterize_quads_exact",
    "rasterize_triangle",
    "rasterize_quads_sampled",
    "splat_points",
    "blend_add",
    "blend_over",
    "blend_max",
    "BLEND_MODES",
    "clip_quads_to_rect",
    "quad_bboxes",
]
