"""Cost model: seconds per unit of counted work.

Every constant is the simulated time one unit of work takes on one
component of the figure-4 workstation.  The Onyx2 calibration fixes the
two dominant constants (processor time per generated mesh vertex, pipe
time per scan-converted vertex) against the (1 processor, 1 pipe) cells
of Tables 1 and 2 and the ~4-processors-per-pipe saturation point the
paper reports; the remaining constants are set to plausible 1997
magnitudes and are *not* tuned per cell.  See EXPERIMENTS.md for the
resulting paper-vs-model comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import MachineError


@dataclass(frozen=True)
class CostModel:
    """Per-unit simulated costs (all seconds unless noted).

    Attributes
    ----------
    cpu_spot_s:
        Processor time per spot for particle advection and spot set-up.
    cpu_vertex_s:
        Processor time per generated mesh vertex (streamline integration +
        mesh generation + software spot transform — the paper performs the
        transform on the processors).
    cpu_feed_vertex_s:
        Master CPU time per vertex to issue the rendering calls (the
        master "renders each calculated spot").
    dispatch_s:
        Master time per work batch handed to the pipe (driver call,
        bookkeeping of the work distribution).
    coordination_s:
        Per-slave, per-texture group synchronisation overhead; the term
        that makes 8 processors on one pipe slightly *slower* than 4 in
        Table 1.
    preprocess_spot_s:
        Sequential per-spot cost of the spot-distribution preprocessing
        step of section 4 ("spots are distributed based on location and
        assigned to the process group dealing with the corresponding
        region"); paid once per texture when more than one process group
        exists.  Dominant for the 40 000-spot DNS workload — a large part
        of why Table 2's multi-pipe cells fall short of linear speedup.
    pipe_vertex_s:
        Pipe time per vertex (geometry processing of the textured quads).
    pipe_pixel_s:
        Pipe time per pixel filled (scan conversion, texturing, blending).
    pipe_state_sync_s:
        Pipe stall per synchronising state change (setting a transformation
        matrix synchronises the InfiniteReality's geometry processors —
        footnote 1 of the paper).  Zero such changes occur in the paper's
        chosen design (software transform); the hardware-transform ablation
        pays one per spot.
    blend_setup_s:
        Sequential cost per partial texture blended into the final one.
    blend_pixel_s:
        Sequential per-pixel cost of that blend.
    bus_bandwidth_Bps:
        Bus bandwidth (bytes/second); 800 MB/s on the Onyx2.
    ipc_bandwidth_Bps:
        Effective bytes/second through a pickling inter-process channel
        (serialise + pipe write + deserialise) on the *host* running the
        real backends.  Unlike the 1997 constants above this is a
        present-day magnitude, used by the decomposition planner to
        charge the classic process backend for re-shipping the field to
        every group each frame.
    shm_bandwidth_Bps:
        Host memcpy bytes/second into/out of shared memory — what the
        zero-copy backend pays to publish the frame state once.
    worker_dispatch_s:
        Host-side per-group, per-frame overhead of handing work to a
        pooled worker (queue hop, wakeup).
    net_bandwidth_Bps:
        Client-facing link bytes/second — what the delta transport pays
        to ship a keyframe or diff chunk to a scrubbing client or edge
        cache.  A present-day magnitude, like the host constants above.
    delta_decode_Bps:
        Client bytes/second through the delta decode path (inflate +
        XOR-apply); what a random seek pays per frame of diff chain it
        must reconstruct.
    chunk_request_s:
        Per-chunk round-trip overhead of a digest-addressed fetch
        (request dispatch, digest check, bookkeeping).
    """

    cpu_spot_s: float = 1.0e-6
    cpu_vertex_s: float = 6.2e-7
    cpu_feed_vertex_s: float = 5.0e-8
    dispatch_s: float = 2.0e-4
    coordination_s: float = 2.0e-3
    preprocess_spot_s: float = 2.0e-6
    pipe_vertex_s: float = 2.05e-7
    pipe_pixel_s: float = 2.0e-8
    pipe_state_sync_s: float = 5.0e-6
    blend_setup_s: float = 4.0e-3
    blend_pixel_s: float = 3.0e-8
    bus_bandwidth_Bps: float = 800.0e6
    ipc_bandwidth_Bps: float = 300.0e6
    shm_bandwidth_Bps: float = 4.0e9
    worker_dispatch_s: float = 2.0e-4
    net_bandwidth_Bps: float = 100.0e6
    delta_decode_Bps: float = 1.2e9
    chunk_request_s: float = 2.0e-4

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise MachineError(f"cost {name} must be >= 0")
        for name in ("bus_bandwidth_Bps", "ipc_bandwidth_Bps", "shm_bandwidth_Bps",
                     "net_bandwidth_Bps", "delta_decode_Bps"):
            if getattr(self, name) <= 0:
                raise MachineError(f"{name} must be positive")

    @classmethod
    def onyx2(cls) -> "CostModel":
        """The calibrated Onyx2 model used for Tables 1 and 2."""
        return cls()

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy with selected constants replaced (ablation studies)."""
        return replace(self, **kwargs)

    # -- derived helpers -------------------------------------------------------
    def shape_time(self, n_spots: int, n_vertices: int) -> float:
        """Processor seconds to advect and shape a batch of spots."""
        return n_spots * self.cpu_spot_s + n_vertices * self.cpu_vertex_s

    def feed_time(self, n_vertices: int) -> float:
        """Master seconds to issue rendering calls for a batch."""
        return n_vertices * self.cpu_feed_vertex_s

    def pipe_time(self, n_vertices: int, n_pixels: float, n_syncs: int = 0) -> float:
        """Pipe seconds to transform and scan-convert a batch."""
        return (
            n_vertices * self.pipe_vertex_s
            + n_pixels * self.pipe_pixel_s
            + n_syncs * self.pipe_state_sync_s
        )

    def transfer_time(self, nbytes: int) -> float:
        """Uncontended bus seconds for *nbytes* (contention is simulated)."""
        return nbytes / self.bus_bandwidth_Bps

    def blend_time(self, n_pixels: int) -> float:
        """Sequential seconds to blend one partial texture of *n_pixels*."""
        return self.blend_setup_s + n_pixels * self.blend_pixel_s

    # -- delta-transport pricing -----------------------------------------------
    def delta_seek_time(
        self,
        frame_bytes: int,
        key_bytes: int,
        delta_bytes: int,
        keyframe_every: int,
    ) -> float:
        """Expected client seconds per random-seek frame at cadence K.

        Models the scrub-at-scale trade the keyframe cadence controls:
        shipping amortises one keyframe plus ``K-1`` diffs over K frames
        (so a larger K ships fewer keyframe bytes when diffs are thin),
        while a random seek must decode from the nearest keyframe — on
        average ``(K-1)/2`` diff applications on top of the keyframe.
        *key_bytes* / *delta_bytes* are the stored (compressed) sizes;
        *frame_bytes* is the raw texture the decode path walks per link
        of the chain.
        """
        if keyframe_every < 1:
            raise MachineError(
                f"keyframe_every must be >= 1, got {keyframe_every}"
            )
        k = keyframe_every
        shipped = (key_bytes + (k - 1) * delta_bytes) / k
        chain = 1.0 + (k - 1) / 2.0
        return (
            shipped / self.net_bandwidth_Bps
            + self.chunk_request_s
            + chain * frame_bytes / self.delta_decode_Bps
        )

    def best_keyframe_cadence(
        self,
        frame_bytes: int,
        key_bytes: int,
        delta_bytes: int,
        candidates: "tuple[int, ...]" = (1, 2, 4, 8, 16, 32, 64),
    ) -> int:
        """The cadence K minimising :meth:`delta_seek_time`.

        Thin diffs (coherent frames) push K up — bandwidth saved
        outweighs longer decode chains; diffs as fat as keyframes
        (incoherent frames) push K to 1, all-keyframes, because chains
        then cost decode time and save nothing.  Ties break toward the
        earliest candidate, deterministically.
        """
        if not candidates:
            raise MachineError("candidates must be non-empty")
        return min(
            candidates,
            key=lambda k: self.delta_seek_time(
                frame_bytes, key_bytes, delta_bytes, k
            ),
        )
